"""Square-law envelope detector with internal low-pass (e.g. ADL6010).

The combiner output feeds this detector; squaring the sum of the two
delayed chirp copies produces (after low-pass filtering) the baseband beat
tone at ``df = alpha * dT`` (paper Eq. 9).  The detector also sets the
decoder's noise floor via its output-referred noise density.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.dsp import envelope_rc_lowpass_fast
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class EnvelopeDetector:
    """Behavioural square-law detector.

    Parameters
    ----------
    responsivity_v_per_w:
        Output volts per watt of RF input (square-law region).  The ADL6010
        datasheet quotes ~2 kV/W at low levels.
    lowpass_cutoff_hz:
        Cutoff of the internal RC video filter.  Must pass the highest beat
        frequency used by the CSSK alphabet while rejecting RF.
    output_noise_v_per_rt_hz:
        Output-referred voltage noise density, integrating to the tag noise
        floor over the video bandwidth.
    power_consumption_w:
        DC draw of the detector (paper Section 4.1: ~8 mW).
    """

    responsivity_v_per_w: float = 2000.0
    lowpass_cutoff_hz: float = 400e3
    output_noise_v_per_rt_hz: float = 60e-9
    power_consumption_w: float = 8e-3

    def __post_init__(self) -> None:
        ensure_positive("responsivity_v_per_w", self.responsivity_v_per_w)
        ensure_positive("lowpass_cutoff_hz", self.lowpass_cutoff_hz)
        ensure_positive("output_noise_v_per_rt_hz", self.output_noise_v_per_rt_hz)
        ensure_positive("power_consumption_w", self.power_consumption_w)

    def output_noise_rms_v(self, bandwidth_hz: float | None = None) -> float:
        """RMS output noise over ``bandwidth_hz`` (default: video bandwidth)."""
        bw = self.lowpass_cutoff_hz if bandwidth_hz is None else bandwidth_hz
        ensure_positive("bandwidth_hz", bw)
        return self.output_noise_v_per_rt_hz * float(np.sqrt(bw))

    def detect_power(self, rf_power_w: float | np.ndarray) -> float | np.ndarray:
        """Map instantaneous RF power to detector output voltage."""
        return self.responsivity_v_per_w * np.asarray(rf_power_w, dtype=float)

    def video_gain_at(self, video_frequency_hz: float) -> float:
        """First-order low-pass amplitude response at a video frequency."""
        if video_frequency_hz < 0:
            raise ValueError(f"video_frequency_hz must be >= 0, got {video_frequency_hz!r}")
        return 1.0 / float(np.sqrt(1.0 + (video_frequency_hz / self.lowpass_cutoff_hz) ** 2))

    def detect(self, rf_envelope: np.ndarray, sample_rate_hz: float) -> np.ndarray:
        """Full behavioural detection: square-law + internal RC low-pass.

        ``rf_envelope`` is the complex envelope (volts into a normalized
        1-ohm reference) at the detector input; the output is the low-pass
        filtered video voltage.  Instantaneous power of a complex envelope
        is ``|v|^2 / 2`` (the 1/2 from time-averaging the carrier), which is
        exactly the term that retains the beat between two delayed chirp
        copies and discards the RF-frequency terms.
        """
        ensure_positive("sample_rate_hz", sample_rate_hz)
        envelope = np.asarray(rf_envelope)
        instantaneous_power_w = 0.5 * np.abs(envelope) ** 2
        video = self.detect_power(instantaneous_power_w)
        return envelope_rc_lowpass_fast(video, sample_rate_hz, self.lowpass_cutoff_hz)

    def detect_real(self, rf_voltage: np.ndarray, sample_rate_hz: float) -> np.ndarray:
        """Detection of a *passband* (real) voltage waveform.

        Squares the instantaneous voltage (power into the 1-ohm reference)
        and low-pass filters; the RC filter removes the double-frequency
        terms, leaving the DC + beat components.  Only usable when the
        passband is actually sampled (scaled-down validation cases).
        """
        ensure_positive("sample_rate_hz", sample_rate_hz)
        voltage = np.asarray(rf_voltage, dtype=float)
        video = self.detect_power(voltage**2)
        return envelope_rc_lowpass_fast(video, sample_rate_hz, self.lowpass_cutoff_hz)
