"""Radar platform configs, IF-domain simulation, range processing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DetectionError, SimulationError
from repro.radar.config import AUTOMOTIVE_77GHZ, TINYRAD_24GHZ, XBAND_9GHZ, RadarConfig
from repro.radar.fmcw import FMCWRadar, Scatterer
from repro.radar.range_processing import (
    bin_ranges_m,
    estimate_range_zoom,
    find_peak_range,
    range_fft,
    range_profile_power_db,
)
from repro.waveform.frame import FrameSchedule


class TestRadarConfig:
    def test_presets_match_paper(self):
        assert XBAND_9GHZ.max_bandwidth_hz == pytest.approx(1e9)
        assert XBAND_9GHZ.tx_power_dbm == pytest.approx(7.0)
        assert TINYRAD_24GHZ.max_bandwidth_hz == pytest.approx(250e6)
        assert TINYRAD_24GHZ.tx_power_dbm == pytest.approx(8.0)
        assert AUTOMOTIVE_77GHZ.start_frequency_hz == pytest.approx(77e9)

    def test_chirp_factory_validates_duration(self):
        with pytest.raises(ConfigurationError):
            XBAND_9GHZ.chirp(1e-6)  # below the platform minimum

    def test_chirp_factory_validates_bandwidth(self):
        with pytest.raises(ConfigurationError):
            TINYRAD_24GHZ.chirp(100e-6, bandwidth_hz=1e9)

    def test_with_bandwidth_restricts(self):
        narrowband = XBAND_9GHZ.with_bandwidth(250e6)
        assert narrowband.max_bandwidth_hz == 250e6
        with pytest.raises(ConfigurationError):
            XBAND_9GHZ.with_bandwidth(4e9)

    def test_duty_limit(self):
        assert XBAND_9GHZ.max_chirp_duration_for_period(120e-6) == pytest.approx(96e-6)

    def test_invalid_duration_order(self):
        with pytest.raises(ConfigurationError):
            RadarConfig(
                name="bad",
                start_frequency_hz=9e9,
                max_bandwidth_hz=1e9,
                tx_power_dbm=7.0,
                antenna=XBAND_9GHZ.antenna,
                min_chirp_duration_s=1e-4,
                max_chirp_duration_s=1e-5,
            )


def single_target_frame(range_m=3.0, duration=80e-6, num_chirps=4, rcs=1e-2, **scatterer_kwargs):
    chirp = XBAND_9GHZ.chirp(duration)
    frame = FrameSchedule.from_chirps([chirp] * num_chirps, 120e-6)
    scatterer = Scatterer(range_m=range_m, rcs_m2=rcs, gain_jitter_std=0.0, **scatterer_kwargs)
    radar = FMCWRadar(XBAND_9GHZ)
    return radar, frame, scatterer


class TestFMCWSimulation:
    def test_beat_frequency_matches_eq3(self):
        radar, frame, scatterer = single_target_frame(range_m=4.0)
        if_frame = radar.receive_frame(frame, [scatterer], add_noise=False)
        samples = if_frame.chirp_samples[0]
        phase = np.unwrap(np.angle(samples))
        slope = np.polyfit(np.arange(samples.size) / if_frame.sample_rate_hz, phase, 1)[0]
        measured_beat = slope / (2 * np.pi)
        expected = frame.slots[0].chirp.beat_frequency_for_range(4.0)
        assert measured_beat == pytest.approx(expected, rel=1e-3)

    def test_sample_counts_follow_duration(self):
        radar, frame, scatterer = single_target_frame(duration=40e-6)
        if_frame = radar.receive_frame(frame, [scatterer], add_noise=False)
        assert if_frame.samples_per_chirp() == [int(40e-6 * 5e6)] * 4

    def test_amplitude_follows_radar_equation(self):
        radar, _, near = single_target_frame(range_m=1.0)
        far = Scatterer(range_m=2.0, rcs_m2=1e-2, gain_jitter_std=0.0)
        ratio = radar.received_amplitude(near) / radar.received_amplitude(far)
        assert ratio == pytest.approx(4.0, rel=1e-3)  # amplitude ~ r^-2

    def test_amplitude_schedule_gates_chirps(self):
        radar, frame, _ = single_target_frame()
        tag = Scatterer(
            range_m=3.0,
            rcs_m2=1e-2,
            amplitude_schedule=np.array([1.0, 0.0, 1.0, 0.0]),
            gain_jitter_std=0.0,
        )
        if_frame = radar.receive_frame(frame, [tag], add_noise=False)
        on_power = np.mean(np.abs(if_frame.chirp_samples[0]) ** 2)
        off_power = np.mean(np.abs(if_frame.chirp_samples[1]) ** 2)
        assert off_power < on_power * 1e-6

    def test_schedule_too_short_raises(self):
        radar, frame, _ = single_target_frame()
        tag = Scatterer(range_m=3.0, rcs_m2=1e-2, amplitude_schedule=np.array([1.0]))
        with pytest.raises(SimulationError):
            radar.receive_frame(frame, [tag], add_noise=False)

    def test_noise_floor_matches_model(self):
        radar, frame, _ = single_target_frame()
        if_frame = radar.receive_frame(frame, [], rng=0, add_noise=True)
        measured = np.mean(np.abs(np.concatenate(if_frame.chirp_samples)) ** 2)
        assert measured == pytest.approx(radar.noise_power_w(), rel=0.2)

    def test_beyond_nyquist_beat_filtered(self):
        radar, frame, _ = single_target_frame(duration=20e-6)
        # 20 us chirp, 5 MHz fs: ranges beyond ~7.5 m alias -> suppressed.
        distant = Scatterer(range_m=50.0, rcs_m2=1.0, gain_jitter_std=0.0)
        if_frame = radar.receive_frame(frame, [distant], add_noise=False)
        assert np.all(np.abs(if_frame.chirp_samples[0]) < 1e-12)

    def test_moving_target_range_changes_across_frame(self):
        radar, frame, _ = single_target_frame(num_chirps=2)
        mover = Scatterer(range_m=3.0, rcs_m2=1e-2, velocity_m_s=100.0, gain_jitter_std=0.0)
        if_frame = radar.receive_frame(frame, [mover], add_noise=False)
        # Phase of the second chirp differs due to motion.
        p0 = np.angle(if_frame.chirp_samples[0][0])
        p1 = np.angle(if_frame.chirp_samples[1][0])
        assert abs(p1 - p0) > 1e-3

    def test_jitter_perturbs_repeatably(self):
        radar, frame, _ = single_target_frame()
        jittery = Scatterer(range_m=3.0, rcs_m2=1e-2, gain_jitter_std=0.05)
        a = radar.receive_frame(frame, [jittery], rng=7, add_noise=False)
        b = radar.receive_frame(frame, [jittery], rng=7, add_noise=False)
        np.testing.assert_allclose(a.chirp_samples[0], b.chirp_samples[0])
        powers = [np.mean(np.abs(c) ** 2) for c in a.chirp_samples]
        assert np.std(powers) > 0


class TestRangeProcessing:
    def test_range_fft_peak_at_target(self):
        radar, frame, scatterer = single_target_frame(range_m=5.0)
        if_frame = radar.receive_frame(frame, [scatterer], add_noise=False)
        profile = range_fft(if_frame.chirp_samples[0])
        n_fft = profile.size
        ranges = bin_ranges_m(frame.slots[0].chirp, if_frame.sample_rate_hz, n_fft)
        peak_range, _ = find_peak_range(profile[: n_fft // 2], ranges[: n_fft // 2])
        assert peak_range == pytest.approx(5.0, abs=0.2)

    def test_bin_ranges_scale_with_slope(self):
        fast = XBAND_9GHZ.chirp(20e-6)
        slow = XBAND_9GHZ.chirp(80e-6)
        fast_ranges = bin_ranges_m(fast, 5e6, 256)
        slow_ranges = bin_ranges_m(slow, 5e6, 256)
        assert slow_ranges[-1] == pytest.approx(4 * fast_ranges[-1], rel=1e-6)

    def test_amplitude_normalization_across_lengths(self):
        # Same target, different chirp durations: normalized FFT peak
        # amplitudes should match (critical for mixed-slope frames).
        radar = FMCWRadar(XBAND_9GHZ)
        scatterer = Scatterer(range_m=3.0, rcs_m2=1e-2, gain_jitter_std=0.0)
        peaks = []
        for duration in (40e-6, 80e-6):
            chirp = XBAND_9GHZ.chirp(duration)
            frame = FrameSchedule.from_chirps([chirp], 120e-6)
            if_frame = radar.receive_frame(frame, [scatterer], add_noise=False)
            profile = range_fft(if_frame.chirp_samples[0])
            peaks.append(np.abs(profile).max())
        assert peaks[0] == pytest.approx(peaks[1], rel=0.05)

    def test_power_db_floor(self):
        out = range_profile_power_db(np.zeros(8, dtype=complex))
        assert np.all(out == -200.0)

    def test_find_peak_range_window(self):
        profile = np.zeros(100, dtype=complex)
        profile[10] = 1.0
        profile[50] = 2.0
        ranges = np.linspace(0, 10, 100)
        peak, _ = find_peak_range(profile, ranges, min_range_m=0.0, max_range_m=3.0)
        assert peak == pytest.approx(ranges[10], abs=0.1)

    def test_find_peak_empty_window_raises(self):
        with pytest.raises(DetectionError):
            find_peak_range(np.ones(10, dtype=complex), np.linspace(0, 1, 10), min_range_m=5.0)

    def test_zoom_refines_range(self):
        radar, frame, scatterer = single_target_frame(range_m=3.456)
        if_frame = radar.receive_frame(frame, [scatterer], add_noise=False)
        chirp = frame.slots[0].chirp
        estimate = estimate_range_zoom(
            if_frame.chirp_samples[0],
            chirp,
            if_frame.sample_rate_hz,
            coarse_range_m=3.4,
        )
        assert estimate == pytest.approx(3.456, abs=0.01)

    def test_zoom_validates_args(self):
        chirp = XBAND_9GHZ.chirp(80e-6)
        with pytest.raises(ValueError):
            estimate_range_zoom(np.ones(64, dtype=complex), chirp, 5e6, coarse_range_m=3.0, zoom_points=2)
