"""Property-based tests: protocol layers (CRC/ARQ framing, FEC, CSS, network)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.arq import CrcFrame, crc8
from repro.core.css import CssAlphabet
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.core.fec import (
    FecConfig,
    deinterleave,
    hamming74_decode,
    hamming74_encode,
    interleave,
)
from repro.core.network import MultiTagNetwork, assign_modulation_rates
from repro.errors import PacketError

bit_arrays = arrays(np.uint8, st.integers(1, 64), elements=st.integers(0, 1))


def _paper_alphabet():
    return CsskAlphabet.design(
        bandwidth_hz=1e9,
        decoder=DecoderDesign.from_inches(45.0),
        symbol_bits=5,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )


PAPER_ALPHABET = _paper_alphabet()


class TestCrcProperties:
    @settings(max_examples=60)
    @given(bit_arrays, st.integers(0, 1))
    def test_frame_roundtrip(self, payload, sequence):
        frame = CrcFrame(sequence=sequence, payload=payload)
        recovered = CrcFrame.from_bits(frame.to_bits())
        assert recovered.sequence == sequence
        np.testing.assert_array_equal(recovered.payload, payload)

    @settings(max_examples=60)
    @given(bit_arrays, st.integers(0, 1), st.data())
    def test_any_single_flip_detected(self, payload, sequence, data):
        frame = CrcFrame(sequence=sequence, payload=payload)
        wire = frame.to_bits()
        position = data.draw(st.integers(0, wire.size - 1))
        wire[position] ^= 1
        with pytest.raises(PacketError):
            CrcFrame.from_bits(wire)

    @settings(max_examples=60)
    @given(bit_arrays)
    def test_crc_deterministic(self, bits):
        assert crc8(bits) == crc8(bits)
        assert 0 <= crc8(bits) <= 0xFF


class TestFecProperties:
    @settings(max_examples=40)
    @given(arrays(np.uint8, st.sampled_from([4, 8, 16, 32]), elements=st.integers(0, 1)))
    def test_hamming_roundtrip(self, data):
        decoded, corrected = hamming74_decode(hamming74_encode(data))
        np.testing.assert_array_equal(decoded, data)
        assert corrected == 0

    @settings(max_examples=40)
    @given(
        arrays(np.uint8, st.sampled_from([4, 8, 16]), elements=st.integers(0, 1)),
        st.data(),
    )
    def test_hamming_single_error_always_corrected(self, data, draw):
        encoded = hamming74_encode(data)
        codeword_index = draw.draw(st.integers(0, encoded.size // 7 - 1))
        bit_index = draw.draw(st.integers(0, 6))
        corrupted = encoded.copy()
        corrupted[codeword_index * 7 + bit_index] ^= 1
        decoded, corrected = hamming74_decode(corrupted)
        np.testing.assert_array_equal(decoded, data)
        assert corrected == 1

    @settings(max_examples=40)
    @given(st.integers(1, 8), st.integers(1, 10))
    def test_interleaver_is_permutation(self, depth, columns):
        size = depth * columns
        data = np.arange(size, dtype=np.uint8) % 2
        round_trip = deinterleave(interleave(data, depth), depth)
        np.testing.assert_array_equal(round_trip, data)

    @settings(max_examples=30)
    @given(bit_arrays, st.integers(1, 8))
    def test_protect_recover_roundtrip(self, payload, depth):
        config = FecConfig(interleaver_depth=depth)
        recovered, corrected = config.recover(config.protect(payload), payload.size)
        np.testing.assert_array_equal(recovered, payload)
        assert corrected == 0

    @settings(max_examples=30)
    @given(bit_arrays, st.integers(1, 8))
    def test_encoded_size_matches(self, payload, depth):
        config = FecConfig(interleaver_depth=depth)
        assert config.protect(payload).size == config.encoded_size(payload.size)


class TestCssProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 4), st.data())
    def test_symbol_bits_roundtrip(self, position_bits, data):
        css = CssAlphabet(cssk=PAPER_ALPHABET, position_bits=position_bits)
        bits = np.array(
            data.draw(
                st.lists(
                    st.integers(0, 1),
                    min_size=css.bits_per_symbol,
                    max_size=css.bits_per_symbol,
                )
            ),
            dtype=np.uint8,
        )
        slope, position = css.encode_bits(bits)
        np.testing.assert_array_equal(css.decode_symbol(slope, position), bits)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 4))
    def test_rate_strictly_increases(self, position_bits):
        css = CssAlphabet(cssk=PAPER_ALPHABET, position_bits=position_bits)
        assert css.data_rate_bps() > PAPER_ALPHABET.data_rate_bps()
        assert css.wrap_fractions().size == 2**position_bits


class TestNetworkProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 20))
    def test_assigned_rates_all_valid(self, num_tags):
        rates = assign_modulation_rates(num_tags, 120e-6)
        nyquist = 1.0 / (2 * 120e-6)
        assert rates.size == num_tags
        assert np.all((rates > 0) & (rates < nyquist))
        assert np.unique(np.round(rates, 6)).size == num_tags

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 254), bit_arrays)
    def test_addressing_roundtrip(self, address, payload):
        network = MultiTagNetwork(alphabet=PAPER_ALPHABET)
        packet = network.build_addressed_packet(address, payload)
        recovered_address, recovered = MultiTagNetwork.parse_address(
            packet.payload_bits
        )
        assert recovered_address == address
        np.testing.assert_array_equal(recovered[: payload.size], payload)