"""ADC model: sampling, quantization, clipping, optional aperture jitter.

The tag's power story rests on the decoder needing only a kHz-rate ADC
(paper Section 3.2.1); this model enforces the rate and resolution limits
explicitly so that benches and tests exercise a realistic converter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.dsp import quantize_uniform
from repro.utils.rng import resolve_rng
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class ADC:
    """Ideal-clock uniform ADC with optional jitter.

    Parameters
    ----------
    sample_rate_hz:
        Conversion rate.  BiScatter's tag uses 100s of kHz to ~1 MHz.
    bits:
        Resolution; quantization uses a mid-rise uniform characteristic.
    full_scale_v:
        Clipping range is ``[-full_scale_v, +full_scale_v]``.
    aperture_jitter_s:
        RMS sample-clock jitter, modelled as first-order amplitude noise
        proportional to the local signal derivative.
    """

    sample_rate_hz: float = 1e6
    bits: int = 12
    full_scale_v: float = 1.0
    aperture_jitter_s: float = 0.0

    def __post_init__(self) -> None:
        ensure_positive("sample_rate_hz", self.sample_rate_hz)
        if self.bits < 1:
            raise ConfigurationError(f"bits must be >= 1, got {self.bits}")
        ensure_positive("full_scale_v", self.full_scale_v)
        if self.aperture_jitter_s < 0:
            raise ConfigurationError(
                f"aperture_jitter_s must be >= 0, got {self.aperture_jitter_s!r}"
            )

    @property
    def lsb_v(self) -> float:
        """Quantization step size."""
        return 2.0 * self.full_scale_v / 2**self.bits

    @property
    def quantization_noise_rms_v(self) -> float:
        """RMS quantization noise, ``LSB / sqrt(12)``."""
        return self.lsb_v / np.sqrt(12.0)

    def nyquist_hz(self) -> float:
        """Highest representable (real) signal frequency."""
        return self.sample_rate_hz / 2.0

    def sample(
        self,
        signal: np.ndarray,
        signal_rate_hz: float,
        *,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Resample a continuous-time proxy signal and quantize it.

        ``signal`` is treated as samples of the analog waveform at
        ``signal_rate_hz``; the ADC picks (interpolates) values at its own
        rate, applies jitter, then quantizes and clips.  When the rates are
        equal the resampling is an identity.
        """
        ensure_positive("signal_rate_hz", signal_rate_hz)
        x = np.asarray(signal, dtype=float)
        if x.size == 0:
            return x.copy()
        duration = x.size / signal_rate_hz
        num_out = max(int(np.floor(duration * self.sample_rate_hz - 1e-9)) + 1, 1)
        sample_times = np.arange(num_out) / self.sample_rate_hz
        if self.aperture_jitter_s > 0:
            jitter = resolve_rng(rng).normal(0.0, self.aperture_jitter_s, sample_times.size)
            sample_times = np.clip(sample_times + jitter, 0.0, duration - 1.0 / signal_rate_hz)
        source_times = np.arange(x.size) / signal_rate_hz
        analog = np.interp(sample_times, source_times, x)
        return self.quantize(analog)

    def quantize(self, samples: np.ndarray) -> np.ndarray:
        """Quantize already-sampled values (skip resampling)."""
        return quantize_uniform(samples, self.bits, self.full_scale_v)

    def with_full_scale(self, full_scale_v: float) -> "ADC":
        """The same converter with a different clipping range.

        Impairment models use this to emulate gain mis-set / saturation:
        shrinking the full scale below the signal peak clips the waveform
        through the unchanged quantizer characteristic.
        """
        from dataclasses import replace

        return replace(self, full_scale_v=full_scale_v)
