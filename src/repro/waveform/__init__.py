"""FMCW waveform modelling: chirp parameters, synthesis, and frame schedules."""

from repro.waveform.parameters import ChirpParameters
from repro.waveform.chirp import (
    sample_chirp_baseband,
    sample_chirp_real,
    instantaneous_frequency,
)
from repro.waveform.frame import ChirpSlot, FrameSchedule

__all__ = [
    "ChirpParameters",
    "sample_chirp_baseband",
    "sample_chirp_real",
    "instantaneous_frequency",
    "ChirpSlot",
    "FrameSchedule",
]
