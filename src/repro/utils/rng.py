"""Random-number plumbing.

All stochastic code in this package accepts a ``rng`` argument that may be
``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  Monte-Carlo sweeps use
:func:`spawn_streams` to derive independent, reproducible child streams.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def resolve_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted rng spec."""
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, an int seed, or a Generator, got {type(rng).__name__}")


def spawn_streams(rng: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are derived via ``Generator.spawn`` so that sweeps remain
    reproducible under a fixed parent seed while each trial sees an
    independent stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return resolve_rng(rng).spawn(count)
