"""SPDT RF switch (e.g. ADRF5144) toggling the tag between modes.

The switch sits in the middle of the Van Atta transmission line (paper
Fig. 2).  In REFLECTIVE mode the line is closed and the tag retro-reflects;
in ABSORPTIVE mode antenna 1 routes into the decoder (50-ohm matched) and
antenna 2 terminates internally, so almost nothing reflects.  Toggling the
state at the uplink modulation frequency creates the backscatter signal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_positive


class SwitchState(enum.Enum):
    """Tag operating mode selected by the SPDT switch."""

    REFLECTIVE = "reflective"
    ABSORPTIVE = "absorptive"


@dataclass(frozen=True)
class SpdtSwitch:
    """Behavioural SPDT switch.

    Parameters
    ----------
    insertion_loss_db:
        Through-path loss when the path is closed.
    isolation_db:
        Leakage suppression of the open path; bounds the residual
        reflection in absorptive mode (finite ON/OFF contrast).
    switching_time_s:
        10-90% settling time; bounds the maximum uplink modulation rate.
    power_consumption_w:
        DC draw (paper Section 4.1: ~2.86 uW).
    """

    insertion_loss_db: float = 0.8
    isolation_db: float = 30.0
    switching_time_s: float = 20e-9
    power_consumption_w: float = 2.86e-6

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0:
            raise ValueError(f"insertion_loss_db must be >= 0, got {self.insertion_loss_db!r}")
        ensure_positive("isolation_db", self.isolation_db)
        ensure_positive("switching_time_s", self.switching_time_s)
        ensure_positive("power_consumption_w", self.power_consumption_w)

    def group_delay_s(self, frequency_hz: float = 0.0) -> float:
        """Electrical delay through the switch (negligible)."""
        return 0.0

    @property
    def max_modulation_rate_hz(self) -> float:
        """Highest square-wave toggle rate the switch supports.

        A full modulation cycle needs two transitions, each allowed ~10% of
        the half-period for settling; the conventional bound is
        ``1 / (10 * t_switch)``.
        """
        return 1.0 / (10.0 * self.switching_time_s)

    def reflection_amplitude(self, state: SwitchState) -> float:
        """Voltage reflection coefficient magnitude of the tag path.

        REFLECTIVE: unity minus through-path loss (traversed twice along
        the Van Atta line is accounted by the array model; here one pass).
        ABSORPTIVE: residual leakage set by isolation.
        """
        if state is SwitchState.REFLECTIVE:
            return 10.0 ** (-self.insertion_loss_db / 20.0)
        return 10.0 ** (-self.isolation_db / 20.0)

    def modulation_contrast(self) -> float:
        """Amplitude difference between the two states (OOK modulation depth)."""
        return self.reflection_amplitude(SwitchState.REFLECTIVE) - self.reflection_amplitude(
            SwitchState.ABSORPTIVE
        )

    def square_wave_states(
        self,
        modulation_rate_hz: float,
        duration_s: float,
        time_resolution_s: float,
        *,
        initial_state: SwitchState = SwitchState.ABSORPTIVE,
    ) -> np.ndarray:
        """Boolean timeline (True = REFLECTIVE) of a 50% duty square wave."""
        ensure_positive("modulation_rate_hz", modulation_rate_hz)
        ensure_positive("duration_s", duration_s)
        ensure_positive("time_resolution_s", time_resolution_s)
        if modulation_rate_hz > self.max_modulation_rate_hz:
            raise ValueError(
                f"modulation rate {modulation_rate_hz}Hz exceeds switch limit "
                f"{self.max_modulation_rate_hz}Hz"
            )
        t = np.arange(0.0, duration_s, time_resolution_s)
        phase = (t * modulation_rate_hz) % 1.0
        reflective = phase >= 0.5
        if initial_state is SwitchState.REFLECTIVE:
            reflective = ~reflective
        return reflective
