"""Simulation harness: scenarios, Monte-Carlo engines, parameter sweeps."""

from repro.sim.scenario import Scenario, default_office_scenario
from repro.sim.engine import (
    DownlinkTrialConfig,
    run_downlink_trials,
    run_uplink_snr_measurement,
    run_localization_trials,
)
from repro.sim.results import BerPoint, SweepResult, format_table
from repro.sim.sweep import sweep
from repro.sim.trace import load_capture, load_if_frame, save_capture, save_if_frame
from repro.sim.report import LinkTargets, SessionReport, build_report

__all__ = [
    "Scenario",
    "default_office_scenario",
    "DownlinkTrialConfig",
    "run_downlink_trials",
    "run_uplink_snr_measurement",
    "run_localization_trials",
    "BerPoint",
    "SweepResult",
    "format_table",
    "sweep",
    "load_capture",
    "load_if_frame",
    "save_capture",
    "save_if_frame",
    "LinkTargets",
    "SessionReport",
    "build_report",
]
