"""Exception hierarchy for the BiScatter reproduction.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch domain failures without also
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError, ValueError):
    """A component or waveform was configured with invalid parameters."""


class WaveformError(ReproError):
    """A chirp/frame specification is unsatisfiable or inconsistent."""


class AlphabetError(ReproError):
    """A CSSK alphabet cannot be constructed from the given constraints."""


class PacketError(ReproError):
    """Packet encoding or decoding failed (framing, sync, length)."""


class SyncError(PacketError):
    """The tag decoder could not find the preamble/sync pattern."""


class DecodingError(ReproError):
    """Demodulation failed in a way that is not a plain bit error."""


class LinkBudgetError(ReproError):
    """A link-budget computation received non-physical inputs."""


class SimulationError(ReproError):
    """The simulation engine was driven into an inconsistent state."""


class DetectionError(ReproError):
    """Radar-side detection could not find the requested target/tag."""


class StoreError(ReproError):
    """The experiment store was asked to do something unsatisfiable.

    Note the store's read path never raises this for damaged *data*:
    unreadable or checksum-failing cache entries are treated as misses
    and recomputed.  ``StoreError`` marks caller mistakes — a work unit
    that cannot be canonically fingerprinted, or writing a record that
    could never round-trip.
    """
