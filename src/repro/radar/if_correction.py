"""BiScatter's IF correction (paper Section 3.3, Fig. 7, Eq. 15).

When the radar varies chirp slopes within a frame for CSSK downlink, the
same physical range maps to a *different* IF frequency (Eq. 3) and a
different per-bin range interval (Eq. 15) in every chirp.  Naively stacking
the per-chirp FFTs therefore smears a static target across range bins and
breaks Doppler processing.

The correction: (1) convert each chirp's FFT bins to absolute range using
that chirp's own slope, then (2) interpolate every profile onto one common
range grid ("pairwise interpolation between every two FFT bins and rescale
the range profile").  After alignment a static tag occupies a single range
cell across all chirps regardless of slope, so slow-time processing
(Doppler, tag-modulation extraction) works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.radar.fmcw import IFFrame
from repro.radar.range_processing import bin_ranges_m, range_fft
from repro.utils.dsp import next_pow2
from repro.utils.validation import ensure_positive


@dataclass
class IFCorrectionResult:
    """Aligned range profiles for one frame.

    Attributes
    ----------
    range_grid_m:
        The common range axis (uniform spacing).
    aligned:
        Complex matrix of shape (num_chirps, num_range_bins) on the common
        grid.
    raw_profiles:
        The per-chirp complex profiles before alignment (positive-range
        half only), for before/after comparison (Fig. 7a vs 7b).
    raw_ranges_m:
        Per-chirp range axes matching ``raw_profiles``.
    """

    range_grid_m: np.ndarray
    aligned: np.ndarray
    raw_profiles: list[np.ndarray]
    raw_ranges_m: list[np.ndarray]
    confidences: np.ndarray | None = None
    fallback_chirps: "tuple[int, ...]" = ()

    @property
    def num_chirps(self) -> int:
        return self.aligned.shape[0]

    def magnitude_matrix(self) -> np.ndarray:
        """|aligned| — what Fig. 7(b) displays."""
        return np.abs(self.aligned)

    def per_chirp_peak_ranges_m(self, *, min_range_m: float = 0.0) -> np.ndarray:
        """Strongest-return range of each chirp on the common grid.

        On an uncorrected stack these wander with the slope; after
        correction they coincide for a static scene (the Fig. 7 check).
        """
        mask = self.range_grid_m >= min_range_m
        if not np.any(mask):
            raise ValueError(f"min_range_m={min_range_m} excludes the whole grid")
        offset = int(np.argmax(mask))
        magnitudes = np.abs(self.aligned[:, mask])
        peaks = np.argmax(magnitudes, axis=1) + offset
        return self.range_grid_m[peaks]


def uncorrected_bin_peak_ranges(
    if_frame: IFFrame, *, window: str = "hann", min_range_m: float = 0.0
) -> np.ndarray:
    """Peak *apparent* ranges when bins are naively treated as a fixed axis.

    Reproduces the Fig. 7(a) failure: every chirp's FFT is interpreted with
    the range axis of the frame's FIRST chirp, so slope changes shift the
    apparent range of a static target.
    """
    reference_chirp = if_frame.frame.slots[0].chirp
    peaks = []
    for samples in if_frame.chirp_samples:
        n_fft = next_pow2(samples.size)
        profile = range_fft(samples, n_fft=n_fft, window=window)
        half = n_fft // 2
        ranges = bin_ranges_m(reference_chirp, if_frame.sample_rate_hz, n_fft)[:half]
        magnitudes = np.abs(profile[:half])
        mask = ranges >= min_range_m
        offset = int(np.argmax(mask))
        peaks.append(ranges[int(np.argmax(magnitudes[mask])) + offset])
    return np.asarray(peaks)


def profile_confidence(profile_row: np.ndarray) -> float:
    """Peak-to-mean magnitude ratio of one aligned range profile.

    A healthy dechirped chirp concentrates energy in a few range cells
    (ratio well above ~3); a blanked, saturated, or interference-swamped
    chirp flattens toward 1.  Zero for an all-zero row.
    """
    magnitudes = np.abs(np.asarray(profile_row))
    mean = float(magnitudes.mean())
    if mean <= 0:
        return 0.0
    return float(magnitudes.max() / mean)


def align_profiles_to_common_grid(
    if_frame: IFFrame,
    *,
    window: str = "hann",
    range_bins: int | None = None,
    max_range_m: float | None = None,
    pad_factor: int = 4,
    confidence_threshold: float | None = None,
    fallback_profile: np.ndarray | None = None,
) -> IFCorrectionResult:
    """Apply the IF correction to a (possibly mixed-slope) frame.

    Parameters
    ----------
    if_frame:
        Dechirped frame data from :meth:`FMCWRadar.receive_frame`.
    window:
        Fast-time analysis window.
    range_bins:
        Number of bins on the common grid (default: the largest per-chirp
        FFT half-size, preserving the finest native resolution).
    max_range_m:
        Extent of the common grid (default: the smallest per-chirp maximum
        unambiguous range, so every chirp covers the whole grid).

    pad_factor:
        Zero-padding multiple applied to every chirp's FFT (all chirps get
        the SAME padded size).  Dense padding suppresses per-chirp
        scalloping, which would otherwise turn strong static clutter into
        broadband slow-time residue under mixed-slope frames and mask the
        tag's modulation signature.
    confidence_threshold:
        Minimum :func:`profile_confidence` (peak-to-mean ratio) a chirp's
        aligned profile must reach.  Failing rows are replaced by the
        last confident row earlier in the frame (or ``fallback_profile``
        when none exists yet) — the last-good-IF-estimate degradation
        path for blanked/saturated chirps.  ``None`` (the default) skips
        the check entirely; results are then bit-identical to the
        pre-threshold implementation.
    fallback_profile:
        Aligned row (on this call's common grid) substituting for
        low-confidence chirps before the first in-frame good row.

    Complex profiles are interpolated linearly on real and imaginary parts
    between adjacent bins — the "pairwise interpolation" of the paper —
    which preserves slow-time phase coherence for static and slowly moving
    targets.
    """
    if if_frame.num_chirps == 0:
        raise ValueError("frame contains no chirps")
    if pad_factor < 1:
        raise ValueError(f"pad_factor must be >= 1, got {pad_factor}")
    fs = if_frame.sample_rate_hz
    ensure_positive("sample_rate_hz", fs)

    max_samples = max(samples.size for samples in if_frame.chirp_samples)
    common_n_fft = next_pow2(max_samples) * pad_factor
    raw_profiles: list[np.ndarray] = []
    raw_ranges: list[np.ndarray] = []
    native_max_ranges: list[float] = []
    half_sizes: list[int] = []
    for slot, samples in zip(if_frame.frame.slots, if_frame.chirp_samples):
        n_fft = common_n_fft
        profile = range_fft(samples, n_fft=n_fft, window=window)
        # Re-reference the analysis window to its center: a window spanning
        # [0, N) imparts a linear phase ~ (N-1)/2 samples that DIFFERS per
        # chirp length, which would scramble slow-time phase coherence in
        # mixed-slope frames.  The DFT shift property undoes it exactly.
        center_shift = (samples.size - 1) / 2.0
        profile = profile * np.exp(
            2j * np.pi * np.arange(n_fft) * center_shift / n_fft
        )
        half = n_fft // 2
        ranges = bin_ranges_m(slot.chirp, fs, n_fft)[:half]
        raw_profiles.append(profile[:half])
        raw_ranges.append(ranges)
        native_max_ranges.append(float(ranges[-1]))
        half_sizes.append(half)

    grid_extent = min(native_max_ranges) if max_range_m is None else float(max_range_m)
    if grid_extent <= 0:
        raise ValueError(f"common grid extent must be positive, got {grid_extent}")
    num_bins = max(half_sizes) if range_bins is None else int(range_bins)
    if num_bins < 2:
        raise ValueError(f"range_bins must be >= 2, got {num_bins}")
    range_grid = np.linspace(0.0, grid_extent, num_bins)

    aligned = np.empty((if_frame.num_chirps, num_bins), dtype=complex)
    for index, (profile, ranges) in enumerate(zip(raw_profiles, raw_ranges)):
        aligned[index] = np.interp(range_grid, ranges, profile.real) + 1j * np.interp(
            range_grid, ranges, profile.imag
        )

    confidences: np.ndarray | None = None
    fallback_chirps: "tuple[int, ...]" = ()
    if confidence_threshold is not None:
        if confidence_threshold <= 0:
            raise ValueError(
                f"confidence_threshold must be positive, got {confidence_threshold}"
            )
        confidences = np.array([profile_confidence(row) for row in aligned])
        last_good: np.ndarray | None = (
            None if fallback_profile is None else np.asarray(fallback_profile, dtype=complex)
        )
        if last_good is not None and last_good.shape != (num_bins,):
            raise ValueError(
                f"fallback_profile shape {last_good.shape} does not match the "
                f"common grid ({num_bins} bins)"
            )
        replaced = []
        for index in range(aligned.shape[0]):
            if confidences[index] >= confidence_threshold:
                last_good = aligned[index].copy()
            elif last_good is not None:
                aligned[index] = last_good
                replaced.append(index)
            # No good row yet and no external fallback: leave the row as
            # measured — a degraded estimate beats an invented one.
        fallback_chirps = tuple(replaced)
        if fallback_chirps:
            from repro import obs
            from repro.obs import runtime as _obs_runtime

            if _obs_runtime._enabled:
                obs.inc("impair.if_fallbacks", len(fallback_chirps))
                obs.log(
                    "radar.if_correction.fallback",
                    chirps=len(fallback_chirps),
                    threshold=confidence_threshold,
                )

    return IFCorrectionResult(
        range_grid_m=range_grid,
        aligned=aligned,
        raw_profiles=raw_profiles,
        raw_ranges_m=raw_ranges,
        confidences=confidences,
        fallback_chirps=fallback_chirps,
    )
