"""Unit tests for the serve wire protocol: framing and job validation."""

import json

import pytest

from repro.errors import ServeError
from repro.serve.protocol import (
    DEFAULT_ROBUSTNESS_IMPAIR,
    MAX_LINE_BYTES,
    MAX_POINTS_PER_JOB,
    BerPointSpec,
    decode_line,
    encode_message,
    job_summary,
    parse_job,
)
from repro.sim.engine import run_downlink_trials
from repro.store.fingerprint import fingerprint
from repro.utils.rng import SeedSpec


class TestFraming:
    def test_round_trip(self):
        message = {"type": "submit", "id": "job-1", "job": {"kind": "ber"}}
        assert decode_line(encode_message(message)) == message

    def test_encode_is_one_sorted_compact_line(self):
        raw = encode_message({"b": 1, "a": [1.5, None]})
        assert raw == b'{"a":[1.5,null],"b":1}\n'
        assert raw.count(b"\n") == 1

    def test_decode_rejects_oversized_frame(self):
        line = b'{"pad":"' + b"x" * MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(ServeError, match="exceeds"):
            decode_line(line)

    def test_decode_rejects_non_json(self):
        with pytest.raises(ServeError, match="malformed"):
            decode_line(b"not json\n")

    def test_decode_rejects_non_utf8(self):
        with pytest.raises(ServeError, match="malformed"):
            decode_line(b"\xff\xfe\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ServeError, match="JSON object"):
            decode_line(b"[1, 2, 3]\n")


class TestParseJob:
    def test_rejects_non_dict(self):
        with pytest.raises(ServeError, match="JSON object"):
            parse_job("ber")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ServeError, match="unknown job kind"):
            parse_job({"kind": "mystery"})

    def test_rejects_unknown_field(self):
        with pytest.raises(ServeError, match="unknown job field"):
            parse_job({"kind": "ber", "distanc_m": 3.0})

    def test_rejects_bool_as_number(self):
        with pytest.raises(ServeError, match="must be float"):
            parse_job({"kind": "ber", "distance_m": True})

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ServeError, match="distance_m must be positive"):
            parse_job({"kind": "ber", "distance_m": 0.0})

    def test_rejects_invalid_derived_config_at_parse_time(self):
        # A zero-length decoder line cannot be designed into an alphabet;
        # the parser must fail eagerly, not when the point reaches the pool.
        with pytest.raises(ServeError, match="invalid ber point"):
            parse_job({"kind": "ber", "delta_l_inches": 0.0})

    @pytest.mark.parametrize("symbol_bits", [-1, 0, 17, 30])
    def test_rejects_out_of_range_symbol_bits_fast(self, symbol_bits):
        # 2**symbol_bits codewords are enumerated at design time, so the
        # range check must run before the design (30 would hang the parser).
        with pytest.raises(ServeError, match=r"symbol_bits must be in"):
            parse_job({"kind": "ber", "symbol_bits": symbol_bits})

    def test_ber_defaults_mirror_cli(self):
        parsed = parse_job({"kind": "ber"})
        assert parsed.kind == "ber"
        (spec,) = parsed.points
        assert spec == BerPointSpec()
        assert (spec.distance_m, spec.symbol_bits, spec.frames) == (3.0, 5, 100)

    def test_ber_fingerprint_matches_engine_store_key(self):
        # The serve fingerprint must be the exact key the batch engine
        # caches under -- that is what makes serve/CLI runs share entries.
        spec = parse_job({"kind": "ber", "frames": 4, "seed": 3}).points[0]
        expected = fingerprint(
            "downlink-trials",
            {"config": spec.trial_config(), "seed": SeedSpec.from_rng(3)},
        )
        assert spec.fingerprint() == expected

    def test_ber_compute_matches_direct_engine_call(self):
        spec = parse_job({"kind": "ber", "frames": 4, "seed": 1}).points[0]
        payload = spec.compute(None, None)
        point = run_downlink_trials(spec.trial_config(), rng=1)
        assert payload["bit_errors"] == point.bit_errors
        assert payload["bits_total"] == point.bits_total

    def test_sweep_expands_points_in_value_order(self):
        parsed = parse_job({
            "kind": "ber_sweep",
            "frames": 4,
            "sweep": {"field": "symbol_bits", "values": [3, 5]},
        })
        assert parsed.kind == "ber_sweep"
        assert [spec.symbol_bits for spec in parsed.points] == [3, 5]
        assert all(spec.frames == 4 for spec in parsed.points)

    def test_sweep_point_equals_single_ber_job(self):
        sweep = parse_job({
            "kind": "ber_sweep",
            "frames": 4,
            "sweep": {"field": "distance_m", "values": [2.0, 6.0]},
        })
        single = parse_job({"kind": "ber", "frames": 4, "distance_m": 6.0})
        assert sweep.points[1] == single.points[0]
        assert sweep.points[1].fingerprint() == single.points[0].fingerprint()

    def test_sweep_rejects_unknown_sweep_field(self):
        with pytest.raises(ServeError, match="sweep field must be one of"):
            parse_job({
                "kind": "ber_sweep",
                "sweep": {"field": "payload_symbols", "values": [8]},
            })

    def test_sweep_rejects_empty_values(self):
        with pytest.raises(ServeError, match="non-empty list"):
            parse_job({"kind": "ber_sweep",
                       "sweep": {"field": "frames", "values": []}})

    def test_sweep_rejects_non_numeric_values(self):
        with pytest.raises(ServeError, match="must be numbers"):
            parse_job({"kind": "ber_sweep",
                       "sweep": {"field": "frames", "values": [4, "x"]}})

    def test_rejects_oversized_job(self):
        values = list(range(1, MAX_POINTS_PER_JOB + 2))
        with pytest.raises(ServeError, match="limit is"):
            parse_job({"kind": "ber_sweep",
                       "sweep": {"field": "seed", "values": values}})
        with pytest.raises(ServeError, match="limit is"):
            parse_job({"kind": "robustness",
                       "severities": [0.5] * (MAX_POINTS_PER_JOB + 1)})

    def test_robustness_default_ladder(self):
        parsed = parse_job({"kind": "robustness", "frames": 2})
        assert parsed.kind == "robustness"
        assert [spec.severity for spec in parsed.points] == [
            0.0, 0.25, 0.5, 0.75, 1.0,
        ]
        assert [spec.point_index for spec in parsed.points] == [0, 1, 2, 3, 4]
        assert parsed.points[0].impair == DEFAULT_ROBUSTNESS_IMPAIR

    def test_robustness_point_seed_pinned_to_ladder_position(self):
        parsed = parse_job({
            "kind": "robustness", "severities": [0.2, 0.8], "seed": 5,
        })
        assert parsed.points[1]._seed_spec() == SeedSpec.from_rng(5).child(1)

    def test_robustness_rejects_out_of_range_severity(self):
        with pytest.raises(ServeError, match=r"in \[0, 1\]"):
            parse_job({"kind": "robustness", "severities": [0.5, 1.5]})

    def test_job_summary_is_json_serializable(self):
        summary = job_summary(parse_job({"kind": "ber", "frames": 4}))
        assert summary["kind"] == "ber"
        assert summary["points"] == 1
        json.dumps(summary)


class TestAdaptiveJobs:
    """The optional ``"adaptive"`` job object (PR-8)."""

    def test_absent_means_fixed_budget(self):
        spec = parse_job({"kind": "ber", "frames": 4}).points[0]
        assert spec.adaptive is None

    def test_parsed_into_adaptive_config(self):
        from repro.sim.adaptive import AdaptiveConfig

        spec = parse_job({
            "kind": "ber", "frames": 40,
            "adaptive": {"ci_width": 0.3, "min_frames": 5, "batch_frames": 5},
        }).points[0]
        assert spec.adaptive == AdaptiveConfig(
            target_rel_width=0.3, min_frames=5, max_frames=40, batch_frames=5
        )

    def test_max_frames_defaults_to_job_frames(self):
        spec = parse_job({
            "kind": "ber", "frames": 24, "adaptive": {"ci_width": 0.5},
        }).points[0]
        assert spec.adaptive.max_frames == 24

    def test_rejects_non_object(self):
        with pytest.raises(ServeError, match="adaptive must be"):
            parse_job({"kind": "ber", "adaptive": 0.25})

    def test_rejects_unknown_adaptive_field(self):
        with pytest.raises(ServeError, match="unknown adaptive field"):
            parse_job({"kind": "ber", "adaptive": {"ci": 0.25}})

    def test_rejects_inconsistent_config(self):
        with pytest.raises(ServeError, match="invalid adaptive"):
            parse_job({
                "kind": "ber", "frames": 4,
                "adaptive": {"min_frames": 2, "batch_frames": 0},
            })

    def test_adaptive_fingerprint_matches_engine_store_key(self):
        from repro.sim.engine import downlink_trials_work_unit

        spec = parse_job({
            "kind": "ber", "frames": 8, "seed": 3,
            "adaptive": {"ci_width": 0.5, "min_frames": 2, "batch_frames": 2},
        }).points[0]
        expected = fingerprint(*downlink_trials_work_unit(
            spec.trial_config(), SeedSpec.from_rng(3), spec.adaptive
        ))
        assert spec.fingerprint() == expected

    def test_adaptive_and_fixed_jobs_never_share_cache_entries(self):
        fixed = parse_job({"kind": "ber", "frames": 8}).points[0]
        adaptive = parse_job({
            "kind": "ber", "frames": 8, "adaptive": {"ci_width": 0.0},
        }).points[0]
        assert fixed.fingerprint() != adaptive.fingerprint()

    def test_sweep_points_share_one_adaptive_rule(self):
        parsed = parse_job({
            "kind": "ber_sweep", "frames": 8,
            "adaptive": {"ci_width": 0.5, "min_frames": 2},
            "sweep": {"field": "symbol_bits", "values": [3, 5]},
        })
        rules = {spec.adaptive for spec in parsed.points}
        assert len(rules) == 1
        assert rules.pop().target_rel_width == 0.5

    def test_robustness_adaptive_applies_to_every_point(self):
        parsed = parse_job({
            "kind": "robustness", "frames": 8, "severities": [0.0, 0.5],
            "adaptive": {"ci_width": 0.5, "min_frames": 2},
        })
        assert all(spec.adaptive is not None for spec in parsed.points)
        assert len({spec.adaptive for spec in parsed.points}) == 1

    def test_adaptive_compute_matches_direct_engine_call(self):
        spec = parse_job({
            "kind": "ber", "frames": 8, "seed": 1,
            "adaptive": {"ci_width": 0.5, "min_frames": 2, "batch_frames": 2},
        }).points[0]
        payload = spec.compute(None, None)
        point = run_downlink_trials(
            spec.trial_config(), rng=1, adaptive=spec.adaptive
        )
        assert payload["bit_errors"] == point.bit_errors
        assert payload["extra"]["adaptive"] == point.extra["adaptive"]
