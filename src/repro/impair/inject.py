"""Injection helpers: wrap captures and IF frames with a spec's faults.

These functions are the only places impairments touch concrete signal
containers, so the determinism contract lives here in one spot:

* Impairments apply **in spec order**, each drawing from the *same*
  generator the caller threads through the frame — injection is a pure
  function of (input, spec, generator state), bit-exact for any worker
  count because the generator is index-keyed per trial upstream.
* An inactive spec never reaches these functions
  (:meth:`ImpairmentSpec.apply_to_capture` short-circuits), and an
  active spec whose members all decline (e.g. loss drew no losses)
  returns arrays that still compare equal — but severity 0 additionally
  guarantees *zero draws*, which is the stronger hook-freeness property
  the benches bound.

Observability: each applied impairment bumps an ``impair.*`` counter and
runs under a per-impairment span; both are no-ops (one attribute load and
a branch) while observability is disabled.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.obs import runtime as _obs_runtime
from repro.impair.spec import ImpairmentSpec


def _slot_bounds(frame, sample_rate_hz: float) -> "list[tuple[int, int]]":
    """(start, stop) sample indices of each frame slot in a capture."""
    bounds = []
    for slot in frame.slots:
        start = int(round(slot.start_time_s * sample_rate_hz))
        stop = int(round(slot.end_time_s * sample_rate_hz))
        bounds.append((start, stop))
    return bounds


def _counter_name(impairment) -> str:
    return f"impair.applied.{type(impairment).__name__.lower()}"


def impair_tag_capture(capture, spec: ImpairmentSpec, *, rng: np.random.Generator):
    """Apply a spec to the tag's video/ADC stream.

    Returns a new :class:`~repro.tag.frontend.TagCapture` sharing the
    frame and sample rate; the input capture is never mutated.
    """
    from repro.tag.frontend import TagCapture

    samples = capture.samples
    slots = (
        _slot_bounds(capture.frame, capture.sample_rate_hz)
        if capture.frame is not None
        else None
    )
    for impairment in spec.impairments:
        if not impairment.active:
            continue
        with obs.span("impair.capture", kind=type(impairment).__name__):
            samples = impairment.apply_stream(
                samples, capture.sample_rate_hz, rng, slots=slots
            )
        if _obs_runtime._enabled:
            obs.inc(_counter_name(impairment))
    if samples is capture.samples:
        return capture
    return TagCapture(
        samples=samples,
        sample_rate_hz=capture.sample_rate_hz,
        frame=capture.frame,
    )


def impair_if_frame(if_frame, spec: ImpairmentSpec, *, rng: np.random.Generator):
    """Apply a spec to the radar's per-chirp IF samples.

    Returns a new :class:`~repro.radar.fmcw.IFFrame` on the same frame
    schedule; the input frame is never mutated.  Losses here are drawn
    independently of the tag-capture path — the radar RX and the tag RX
    are separate receivers with independent dropouts.
    """
    from repro.radar.fmcw import IFFrame

    chirps = if_frame.chirp_samples
    for impairment in spec.impairments:
        if not impairment.active:
            continue
        with obs.span("impair.if", kind=type(impairment).__name__):
            chirps = impairment.apply_chirps(chirps, if_frame.sample_rate_hz, rng)
        if _obs_runtime._enabled:
            obs.inc(_counter_name(impairment))
    if chirps is if_frame.chirp_samples:
        return if_frame
    return IFFrame(
        frame=if_frame.frame,
        sample_rate_hz=if_frame.sample_rate_hz,
        chirp_samples=list(chirps),
    )
