"""Property-based tests: CSSK alphabet invariants hold across the design space."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cssk import (
    CsskAlphabet,
    DecoderDesign,
    beat_frequency,
    chirp_duration_for_beat,
    gray_code,
    gray_decode,
)
from repro.errors import AlphabetError

bandwidths = st.floats(min_value=100e6, max_value=4e9)
delta_lengths_in = st.floats(min_value=6.0, max_value=60.0)
symbol_bit_counts = st.integers(min_value=1, max_value=8)
periods = st.floats(min_value=60e-6, max_value=500e-6)


def try_design(bandwidth, delta_l_in, bits, period):
    try:
        return CsskAlphabet.design(
            bandwidth_hz=bandwidth,
            decoder=DecoderDesign.from_inches(delta_l_in),
            symbol_bits=bits,
            chirp_period_s=period,
            min_chirp_duration_s=20e-6,
        )
    except AlphabetError:
        return None


class TestGrayProperties:
    @given(st.integers(min_value=0, max_value=2**20))
    def test_roundtrip(self, index):
        assert gray_decode(gray_code(index)) == index

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_adjacent_hamming_distance_one(self, index):
        assert bin(gray_code(index) ^ gray_code(index + 1)).count("1") == 1


class TestEq11Properties:
    @given(
        bandwidths,
        st.floats(min_value=1e-9, max_value=1e-7),
        st.floats(min_value=10e-6, max_value=1e-3),
    )
    def test_beat_duration_inverse(self, bandwidth, delta_t, duration):
        beat = beat_frequency(bandwidth, delta_t, duration)
        recovered = chirp_duration_for_beat(bandwidth, delta_t, beat)
        assert recovered == pytest.approx(duration, rel=1e-9)

    @given(
        bandwidths,
        st.floats(min_value=1e-9, max_value=1e-7),
        st.floats(min_value=10e-6, max_value=1e-3),
    )
    def test_beat_monotone_in_bandwidth(self, bandwidth, delta_t, duration):
        assert beat_frequency(2 * bandwidth, delta_t, duration) > beat_frequency(
            bandwidth, delta_t, duration
        )


class TestAlphabetProperties:
    @settings(max_examples=60, deadline=None)
    @given(bandwidths, delta_lengths_in, symbol_bit_counts, periods)
    def test_designed_alphabets_are_consistent(self, bandwidth, delta_l, bits, period):
        alphabet = try_design(bandwidth, delta_l, bits, period)
        if alphabet is None:
            return  # infeasible corner: the design correctly refused
        # Exactly 2^bits data symbols + 2 preamble slopes.
        assert alphabet.num_slopes == 2**bits + 2
        beats = alphabet.all_beats_hz()
        # Ascending, uniformly spaced.
        spacings = np.diff(beats)
        assert np.all(spacings > 0)
        np.testing.assert_allclose(spacings, spacings[0], rtol=1e-6)
        # Every duration within the window and duty limit.
        for symbol in range(alphabet.num_data_symbols):
            duration = alphabet.data_symbol_duration_s(symbol)
            assert 20e-6 - 1e-12 <= duration <= 0.8 * period + 1e-12
        # Beat-to-duration map inverts (Eq. 11 self-consistency).
        for symbol in (0, alphabet.num_data_symbols - 1):
            beat = alphabet.data_beats_hz[symbol]
            assert alphabet.decoder.beat_for_duration(
                alphabet.bandwidth_hz, alphabet.data_symbol_duration_s(symbol)
            ) == pytest.approx(beat, rel=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(bandwidths, delta_lengths_in, symbol_bit_counts, periods, st.integers(0, 255))
    def test_bits_symbol_roundtrip(self, bandwidth, delta_l, bits, period, raw):
        alphabet = try_design(bandwidth, delta_l, bits, period)
        if alphabet is None:
            return
        symbol = raw % alphabet.num_data_symbols
        assert alphabet.symbol_for_bits(alphabet.bits_for_symbol(symbol)) == symbol

    @settings(max_examples=40, deadline=None)
    @given(bandwidths, delta_lengths_in, symbol_bit_counts, periods)
    def test_nearest_symbol_is_identity_on_exact_beats(
        self, bandwidth, delta_l, bits, period
    ):
        alphabet = try_design(bandwidth, delta_l, bits, period)
        if alphabet is None:
            return
        for symbol in range(alphabet.num_data_symbols):
            assert alphabet.nearest_data_symbol(alphabet.data_beats_hz[symbol]) == symbol

    @settings(max_examples=40, deadline=None)
    @given(bandwidths, delta_lengths_in, symbol_bit_counts, periods)
    def test_data_rate_matches_eq14(self, bandwidth, delta_l, bits, period):
        alphabet = try_design(bandwidth, delta_l, bits, period)
        if alphabet is None:
            return
        assert alphabet.data_rate_bps() == pytest.approx(bits / period)
