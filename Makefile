.PHONY: install test bench examples all clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null && echo "   OK" || exit 1; \
	done

all: test bench examples

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results \
		src/repro.egg-info test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
