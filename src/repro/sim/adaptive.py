"""Adaptive Monte-Carlo: confidence-interval-driven sequential stopping.

Fixed ``num_frames`` budgets spend as much on trivially-easy operating
points (most fig12/13 cells sit at exactly 0.0 BER) as on the error
floors that actually need resolution.  This module adds a variance-aware
mode: trials run in deterministic index-keyed *rounds* — round ``r``
covers trial indices ``[r*batch, (r+1)*batch)`` — until a binomial
confidence interval on the BER is tighter than a requested relative
width, or a hard ``max_frames`` cap is hit.

**Determinism is preserved by construction.**  Trial ``i``'s seed is a
pure function of ``(root SeedSequence, i)`` and never depends on the
stopping decision; the rule only chooses *how many* indices run.  Each
round is one :func:`repro.sim.executor.map_trials` call over its index
window, so ``workers=1/2/4`` stay bit-exact and the per-frame oracle
contract survives unchanged.  Because the stopping rule is part of the
work unit, engines fold the :class:`AdaptiveConfig` into their store
fingerprints — adaptive and fixed-budget results never collide in the
cache.

The decision logic is factored into pure functions
(:func:`should_stop`, :func:`stopping_trials`) of the *cumulative*
per-trial outcome prefix, which is exactly the property the Hypothesis
suite checks: the round at which a run stops depends only on the prefix
of per-trial outcomes up to that round, never on outcomes that were
never drawn.

Stopping rule, evaluated after each completed round with cumulative
``(bit_errors, bits)`` over ``t`` trials:

1. ``t >= max_frames`` — stop (hard cap).
2. ``t < min_frames`` — continue (never trust a tiny sample).
3. ``target_rel_width <= 0`` — continue (degenerate mode: the CI can
   never be "tight enough", so the run is bit-identical to a fixed
   ``num_frames=max_frames`` budget — the CI smoke diffs exactly this).
4. ``bit_errors == 0`` — stop.  The point estimate is 0 and no finite
   sample tightens a *relative* interval around zero; the upper bound
   already shrinks like ``z**2/(z**2+n)``, so further sampling cannot
   change the verdict "no errors observed in >= min_frames frames".
5. Otherwise stop iff ``(hi - lo) <= target_rel_width * (errors/bits)``
   for the configured interval (Wilson score by default,
   Clopper-Pearson exact on request).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro import obs
from repro.obs import manifest as _obs_manifest
from repro.sim.executor import ExecutionPlan, ExecutionReport, map_trials
from repro.utils.rng import SeedSpec

__all__ = [
    "AdaptiveConfig",
    "AdaptiveResult",
    "wilson_interval",
    "clopper_pearson_interval",
    "binomial_interval",
    "should_stop",
    "stop_reason",
    "stopping_trials",
    "run_adaptive_trials",
]

#: Interval methods :class:`AdaptiveConfig` accepts.
INTERVAL_METHODS = ("wilson", "clopper-pearson")


def _normal_quantile(p: float) -> float:
    """The standard-normal quantile via the stdlib (no scipy needed)."""
    from statistics import NormalDist

    return NormalDist().inv_cdf(p)


def wilson_interval(
    errors: int, total: int, confidence: float = 0.95
) -> "tuple[float, float]":
    """Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0 and ``total`` errors both give
    non-degenerate bounds), cheap, and standard for BER work.  Returns
    ``(lo, hi)`` with ``0 <= lo <= hi <= 1``; ``total == 0`` returns the
    vacuous ``(0, 1)``.
    """
    _check_counts(errors, total, confidence)
    if total == 0:
        return 0.0, 1.0
    z = _normal_quantile(0.5 + confidence / 2.0)
    p_hat = errors / total
    denom = 1.0 + z * z / total
    center = (p_hat + z * z / (2 * total)) / denom
    margin = (
        z * math.sqrt(p_hat * (1 - p_hat) / total + z * z / (4 * total * total))
        / denom
    )
    # At the extremes the bound equals p_hat analytically (lo = 0 when
    # errors == 0, hi = 1 when errors == total); pin it so float rounding
    # can't place the interval on the wrong side of the point estimate.
    lo = 0.0 if errors == 0 else max(0.0, center - margin)
    hi = 1.0 if errors == total else min(1.0, center + margin)
    return lo, hi


def clopper_pearson_interval(
    errors: int, total: int, confidence: float = 0.95
) -> "tuple[float, float]":
    """Exact (Clopper-Pearson) binomial interval via the beta quantile.

    Conservative — guaranteed coverage at the cost of width.  Needs
    ``scipy``; the import is deferred so the default Wilson path never
    touches it.
    """
    from scipy.stats import beta

    _check_counts(errors, total, confidence)
    if total == 0:
        return 0.0, 1.0
    alpha = 1.0 - confidence
    lo = 0.0 if errors == 0 else float(beta.ppf(alpha / 2, errors, total - errors + 1))
    hi = (
        1.0
        if errors == total
        else float(beta.ppf(1 - alpha / 2, errors + 1, total - errors))
    )
    return lo, hi


def _check_counts(errors: int, total: int, confidence: float) -> None:
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if not 0 <= errors <= max(total, 0):
        raise ValueError(f"errors must be in [0, total], got {errors}/{total}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")


@dataclass(frozen=True)
class AdaptiveConfig:
    """The sequential-stopping rule for one adaptive Monte-Carlo run.

    Parameters
    ----------
    target_rel_width:
        Stop once the BER confidence interval's full width is at most
        this fraction of the point estimate.  ``0`` is the degenerate
        mode: never satisfied, so exactly ``max_frames`` trials run —
        bit-identical to a fixed budget of the same size.
    min_frames / max_frames:
        Never stop on the CI criterion before ``min_frames`` trials;
        always stop at ``max_frames`` (the hard cap, and the trial count
        of a degenerate run).
    batch_frames:
        Trials per round.  Round ``r`` covers trial indices
        ``[r*batch_frames, (r+1)*batch_frames)`` (the last round is
        truncated at ``max_frames``); the stopping rule is evaluated on
        round boundaries only.
    confidence:
        Two-sided CI coverage (default 95%).
    method:
        ``"wilson"`` (default) or ``"clopper-pearson"``.

    The config is a frozen dataclass so it canonicalizes into store
    fingerprints: the stopping rule is part of the work unit, and
    adaptive results never collide with fixed-budget results (or with
    adaptive results under a different rule).
    """

    target_rel_width: float = 0.25
    min_frames: int = 10
    max_frames: int = 1000
    batch_frames: int = 10
    confidence: float = 0.95
    method: str = "wilson"

    def __post_init__(self) -> None:
        if self.target_rel_width < 0:
            raise ValueError(
                f"target_rel_width must be >= 0, got {self.target_rel_width}"
            )
        if self.min_frames < 1:
            raise ValueError(f"min_frames must be >= 1, got {self.min_frames}")
        if self.max_frames < self.min_frames:
            raise ValueError(
                f"max_frames must be >= min_frames, got "
                f"{self.max_frames} < {self.min_frames}"
            )
        if self.batch_frames < 1:
            raise ValueError(f"batch_frames must be >= 1, got {self.batch_frames}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.method not in INTERVAL_METHODS:
            raise ValueError(
                f"method must be one of {INTERVAL_METHODS}, got {self.method!r}"
            )

    def interval(self, errors: int, total: int) -> "tuple[float, float]":
        """The configured (lo, hi) confidence interval for errors/total."""
        return binomial_interval(
            errors, total, confidence=self.confidence, method=self.method
        )


def binomial_interval(
    errors: int, total: int, *, confidence: float = 0.95, method: str = "wilson"
) -> "tuple[float, float]":
    """Dispatch to the named interval helper."""
    if method == "wilson":
        return wilson_interval(errors, total, confidence)
    if method == "clopper-pearson":
        return clopper_pearson_interval(errors, total, confidence)
    raise ValueError(f"method must be one of {INTERVAL_METHODS}, got {method!r}")


def should_stop(
    errors: int, bits: int, trials_done: int, config: AdaptiveConfig
) -> bool:
    """The stopping rule — a pure function of the cumulative outcome.

    ``trials_done`` is the number of *trials* completed (round boundary);
    ``errors``/``bits`` are the cumulative bit counts over them.  Nothing
    here touches RNG state, so the decision cannot perturb any trial's
    seed — the determinism contract the test suite pins.
    """
    if trials_done >= config.max_frames:
        return True
    if trials_done < config.min_frames:
        return False
    if config.target_rel_width <= 0:
        return False
    if bits == 0:
        return False
    if errors == 0:
        return True
    lo, hi = config.interval(errors, bits)
    return (hi - lo) <= config.target_rel_width * (errors / bits)


def stop_reason(
    errors: int, bits: int, trials_done: int, config: AdaptiveConfig
) -> "str | None":
    """Why a run at this cumulative state stops (None = keeps going)."""
    if not should_stop(errors, bits, trials_done, config):
        return None
    if errors == 0 and trials_done < config.max_frames:
        return "zero-errors"
    if trials_done >= config.max_frames:
        # The cap fires even if the CI also happened to be met — the cap
        # is what bounded the run.
        lo, hi = config.interval(errors, bits) if bits else (0.0, 1.0)
        if (
            config.target_rel_width > 0
            and errors > 0
            and (hi - lo) <= config.target_rel_width * (errors / bits)
        ):
            return "ci-met"
        return "cap"
    return "ci-met"


def stopping_trials(
    per_trial_counts: "Sequence[tuple[int, int]]", config: AdaptiveConfig
) -> int:
    """How many trials an adaptive run over these outcomes would run.

    ``per_trial_counts[i]`` is trial ``i``'s ``(bit_errors, bits)``.
    This is the driver's round loop with the Monte-Carlo replaced by a
    table lookup — a *pure* function of the outcome prefix, used by the
    property suite to prove the stopping round never depends on outcomes
    beyond the stopping point.  The sequence must cover at least
    ``min(len needed)``; shorter sequences stop at their end.
    """
    errors = bits = 0
    trials = 0
    limit = min(len(per_trial_counts), config.max_frames)
    while trials < limit:
        end = min(trials + config.batch_frames, limit)
        for index in range(trials, end):
            e, b = per_trial_counts[index]
            errors += int(e)
            bits += int(b)
        trials = end
        if should_stop(errors, bits, trials, config):
            break
    return trials


@dataclass
class AdaptiveResult:
    """One adaptive run: per-trial results plus the stopping trajectory."""

    per_trial: "list[Any]"
    frames: int
    rounds: int
    errors: int
    bits: int
    ci_low: float
    ci_high: float
    reason: str
    reports: "list[ExecutionReport]" = field(default_factory=list)

    @property
    def ber(self) -> float:
        return self.errors / self.bits if self.bits else 0.0

    @property
    def rel_width(self) -> float:
        """Achieved relative CI width (inf when the estimate is zero)."""
        if self.errors == 0 or self.bits == 0:
            return float("inf")
        return (self.ci_high - self.ci_low) / (self.errors / self.bits)

    def summary(self) -> "dict[str, Any]":
        """JSON-safe trajectory record for result payloads / benches."""
        rel = self.rel_width
        return {
            "frames": int(self.frames),
            "rounds": int(self.rounds),
            "errors": int(self.errors),
            "bits": int(self.bits),
            "ci_low": float(self.ci_low),
            "ci_high": float(self.ci_high),
            "rel_width": None if math.isinf(rel) else float(rel),
            "reason": self.reason,
        }


def run_adaptive_trials(
    chunk_fn,
    payload: Any,
    config: AdaptiveConfig,
    rng: "int | SeedSpec | Any" = 0,
    plan: "ExecutionPlan | None" = None,
    *,
    counts: "Callable[[Any], tuple[int, int]]",
) -> AdaptiveResult:
    """Run index-keyed rounds of ``chunk_fn`` until the CI rule stops.

    ``chunk_fn`` follows the :func:`~repro.sim.executor.map_trials`
    contract (module-level, ``(payload, spec, indices) -> results``);
    ``counts`` maps one per-trial result to its ``(bit_errors, bits)``
    contribution and runs in the parent only, so it need not pickle.

    Round ``r`` is one ``map_trials`` call over
    ``[r*batch, min((r+1)*batch, max_frames))`` — retries, pool
    rebuilds, and the ``batch_frames`` fast path all apply per round
    unchanged.  Returns every per-trial result in trial order plus the
    stopping trajectory.
    """
    spec = SeedSpec.from_rng(rng)
    plan = plan if plan is not None else ExecutionPlan()
    per_trial: "list[Any]" = []
    reports: "list[ExecutionReport]" = []
    errors = bits = 0
    round_index = 0
    reason = None
    obs.log(
        "adaptive.start",
        target_rel_width=config.target_rel_width,
        min_frames=config.min_frames,
        max_frames=config.max_frames,
        batch_frames=config.batch_frames,
        method=config.method,
    )
    while reason is None:
        start = round_index * config.batch_frames
        end = min(start + config.batch_frames, config.max_frames)
        round_results, report = map_trials(
            chunk_fn, payload, end - start, spec, plan, start_trial=start
        )
        per_trial.extend(round_results)
        reports.append(report)
        for result in round_results:
            e, b = counts(result)
            errors += int(e)
            bits += int(b)
        round_index += 1
        reason = stop_reason(errors, bits, end, config)
        obs.inc("adaptive.rounds")
        obs.inc("adaptive.trials", end - start)
        obs.log(
            "adaptive.round",
            round=round_index - 1,
            trials=end,
            errors=errors,
            bits=bits,
            stop=reason,
        )
    lo, hi = config.interval(errors, bits) if bits else (0.0, 1.0)
    result = AdaptiveResult(
        per_trial=per_trial,
        frames=len(per_trial),
        rounds=round_index,
        errors=errors,
        bits=bits,
        ci_low=lo,
        ci_high=hi,
        reason=reason,
        reports=reports,
    )
    obs.log("adaptive.done", **result.summary())
    if _obs_manifest._active is not None:
        _obs_manifest.note_adaptive(result.summary())
    return result
