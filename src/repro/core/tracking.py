"""Multi-frame tag tracking: fusing range, angle, and Doppler over time.

The paper's motivating application (Fig. 1) is a moving radar platform
continuously tracking tags while communicating.  One frame yields a
(range, angle, radial-velocity) measurement of each tag; this module turns
the per-frame measurements into smoothed 2D tracks:

* :class:`TagMeasurement` — one frame's output for one tag.
* :class:`AlphaBetaTracker` — a per-tag alpha-beta filter in polar
  coordinates (range smoothed with Doppler as the rate input; angle
  smoothed independently), with innovation gating against outliers.
* :class:`TrackManager` — one tracker per enrolled tag, coast-and-drop
  logic for missed detections.

An alpha-beta filter (rather than a full Kalman) matches what a real
embedded radar pipeline would ship; its gains relate to a steady-state
Kalman for the chosen maneuver/noise ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class TagMeasurement:
    """One frame's measurement of one tag."""

    time_s: float
    range_m: float
    angle_deg: float | None = None
    radial_velocity_m_s: float | None = None

    def __post_init__(self) -> None:
        ensure_positive("range_m", self.range_m)

    def position_xy(self) -> "tuple[float, float] | None":
        """Cartesian position (x = cross-range, y = down-range)."""
        if self.angle_deg is None:
            return None
        theta = np.radians(self.angle_deg)
        return (self.range_m * np.sin(theta), self.range_m * np.cos(theta))


@dataclass
class TrackState:
    """Smoothed state of one tag track."""

    time_s: float
    range_m: float
    range_rate_m_s: float
    angle_deg: float | None
    angle_rate_deg_s: float
    updates: int = 1
    misses: int = 0

    def position_xy(self) -> "tuple[float, float] | None":
        if self.angle_deg is None:
            return None
        theta = np.radians(self.angle_deg)
        return (self.range_m * np.sin(theta), self.range_m * np.cos(theta))


class AlphaBetaTracker:
    """Alpha-beta smoothing of one tag's polar trajectory.

    Parameters
    ----------
    alpha / beta:
        Position / rate gains (0 < beta <= alpha <= 1).  Defaults suit the
        frame rates and velocities of the paper's scenarios.
    gate_range_m:
        Innovation gate: a range measurement further than this from the
        prediction is rejected as an outlier (counted as a miss).
    use_doppler:
        Blend the measured radial velocity into the rate state (weight
        ``doppler_weight``) — the radar measures rate directly, so the
        filter need not differentiate noisy positions alone.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.5,
        beta: float = 0.2,
        gate_range_m: float = 0.8,
        use_doppler: bool = True,
        doppler_weight: float = 0.6,
    ) -> None:
        ensure_in_range("alpha", alpha, 0.0, 1.0, low_inclusive=False)
        ensure_in_range("beta", beta, 0.0, 1.0, low_inclusive=False)
        if beta > alpha:
            raise ConfigurationError(f"beta ({beta}) must not exceed alpha ({alpha})")
        ensure_positive("gate_range_m", gate_range_m)
        ensure_in_range("doppler_weight", doppler_weight, 0.0, 1.0)
        self.alpha = alpha
        self.beta = beta
        self.gate_range_m = gate_range_m
        self.use_doppler = use_doppler
        self.doppler_weight = doppler_weight
        self.state: TrackState | None = None

    def predict(self, time_s: float) -> TrackState:
        """Coast the state to ``time_s`` without a measurement."""
        if self.state is None:
            raise ConfigurationError("tracker has no state to predict from")
        dt = time_s - self.state.time_s
        if dt < 0:
            raise ConfigurationError(f"time runs backwards: dt = {dt}")
        angle = self.state.angle_deg
        if angle is not None:
            angle = angle + self.state.angle_rate_deg_s * dt
        return TrackState(
            time_s=time_s,
            range_m=self.state.range_m + self.state.range_rate_m_s * dt,
            range_rate_m_s=self.state.range_rate_m_s,
            angle_deg=angle,
            angle_rate_deg_s=self.state.angle_rate_deg_s,
            updates=self.state.updates,
            misses=self.state.misses,
        )

    def update(self, measurement: TagMeasurement) -> TrackState:
        """Fold one measurement in; returns the new smoothed state.

        A gated-out measurement coasts the track instead (miss counted).
        """
        if self.state is None:
            self.state = TrackState(
                time_s=measurement.time_s,
                range_m=measurement.range_m,
                range_rate_m_s=measurement.radial_velocity_m_s or 0.0,
                angle_deg=measurement.angle_deg,
                angle_rate_deg_s=0.0,
            )
            return self.state

        predicted = self.predict(measurement.time_s)
        innovation = measurement.range_m - predicted.range_m
        if abs(innovation) > self.gate_range_m:
            predicted.misses += 1
            self.state = predicted
            return self.state

        dt = max(measurement.time_s - self.state.time_s, 1e-9)
        new_range = predicted.range_m + self.alpha * innovation
        new_rate = predicted.range_rate_m_s + self.beta * innovation / dt
        if self.use_doppler and measurement.radial_velocity_m_s is not None:
            new_rate = (
                (1.0 - self.doppler_weight) * new_rate
                + self.doppler_weight * measurement.radial_velocity_m_s
            )

        angle = predicted.angle_deg
        angle_rate = predicted.angle_rate_deg_s
        if measurement.angle_deg is not None:
            if angle is None:
                angle = measurement.angle_deg
                angle_rate = 0.0
            else:
                angle_innovation = measurement.angle_deg - angle
                angle = angle + self.alpha * angle_innovation
                angle_rate = angle_rate + self.beta * angle_innovation / dt

        self.state = TrackState(
            time_s=measurement.time_s,
            range_m=new_range,
            range_rate_m_s=new_rate,
            angle_deg=angle,
            angle_rate_deg_s=angle_rate,
            updates=predicted.updates + 1,
            misses=predicted.misses,
        )
        return self.state


@dataclass
class TrackManager:
    """One tracker per tag, with coast-and-drop housekeeping.

    Parameters
    ----------
    max_coasts:
        Consecutive missed frames before a track is dropped.
    tracker_kwargs:
        Passed to each new :class:`AlphaBetaTracker`.
    """

    max_coasts: int = 5
    tracker_kwargs: dict = field(default_factory=dict)
    _trackers: "dict[int, AlphaBetaTracker]" = field(default_factory=dict)
    _coasts: "dict[int, int]" = field(default_factory=dict)

    def observe(self, tag_id: int, measurement: "TagMeasurement | None", time_s: float) -> "TrackState | None":
        """Feed one frame's outcome for one tag (None = not detected)."""
        if measurement is None:
            tracker = self._trackers.get(tag_id)
            if tracker is None or tracker.state is None:
                return None
            self._coasts[tag_id] = self._coasts.get(tag_id, 0) + 1
            if self._coasts[tag_id] > self.max_coasts:
                del self._trackers[tag_id]
                del self._coasts[tag_id]
                return None
            tracker.state = tracker.predict(time_s)
            tracker.state.misses += 1
            return tracker.state
        tracker = self._trackers.get(tag_id)
        if tracker is None:
            tracker = AlphaBetaTracker(**self.tracker_kwargs)
            self._trackers[tag_id] = tracker
        self._coasts[tag_id] = 0
        return tracker.update(measurement)

    def active_tracks(self) -> "dict[int, TrackState]":
        """Tag id -> current state for every live track."""
        return {
            tag_id: tracker.state
            for tag_id, tracker in self._trackers.items()
            if tracker.state is not None
        }

    def track(self, tag_id: int) -> "TrackState | None":
        """Current state of one tag's track, if alive."""
        tracker = self._trackers.get(tag_id)
        return tracker.state if tracker else None
