"""MilBack baseline (reference [29]): two-way, but dual-waveform + handshake.

MilBack achieves two-way communication and localization with a *custom*
access point that transmits two independent waveforms — a two-tone signal
for downlink and triangular FMCW for sensing/uplink — and a frequency
scanning antenna (FSA) tag.  Its structural costs, which this model makes
measurable:

* **Handshake**: the FSA's frequency-selective beam means the AP must scan
  tones to find the tag's orientation before communicating; every session
  (and every re-orientation) pays ``handshake_steps`` probe slots.
* **Spectrum**: sensing and communication occupy separate waveform
  airtime, halving effective utilization versus an integrated waveform.
* **No commodity radar**: the dual-waveform AP cannot be an off-the-shelf
  FMCW device.

Downlink data itself (two-tone FSK to an envelope-detecting tag) is a
conventional non-coherent link; its BER model is standard binary
non-coherent FSK.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import SystemCapabilities
from repro.channel.noise import NoiseModel
from repro.channel.propagation import one_way_received_power_dbm
from repro.utils.validation import ensure_positive


@dataclass
class MilBackSystem:
    """Behavioural MilBack model for protocol/feature comparison.

    Parameters
    ----------
    frequency_hz / tx_power_dbm / antenna gains:
        The custom AP's RF parameters (MilBack prototypes at 24 GHz).
    handshake_steps:
        Orientation-scan probes needed before any communication.
    probe_slot_s:
        Airtime of each handshake probe.
    downlink_bandwidth_hz:
        Receiver bandwidth of the tag's envelope detector path.
    """

    frequency_hz: float = 24.0e9
    tx_power_dbm: float = 10.0
    ap_antenna_gain_dbi: float = 20.0
    tag_antenna_gain_dbi: float = 10.0
    handshake_steps: int = 16
    probe_slot_s: float = 1e-3
    downlink_bandwidth_hz: float = 1.0e6
    tag_noise_figure_db: float = 12.0
    downlink_rate_bps: float = 100e3

    def __post_init__(self) -> None:
        ensure_positive("frequency_hz", self.frequency_hz)
        if self.handshake_steps < 1:
            raise ValueError(f"handshake_steps must be >= 1, got {self.handshake_steps}")

    @staticmethod
    def capabilities() -> SystemCapabilities:
        """Table 1 row."""
        return SystemCapabilities(
            name="MilBack",
            uplink_comm=True,
            downlink_comm=True,
            tag_localization=True,
            integrated_sensing_and_comms=False,
            commercial_radar_compatible=False,
        )

    def handshake_overhead_s(self) -> float:
        """Airtime spent before the first payload bit can flow."""
        return self.handshake_steps * self.probe_slot_s

    def downlink_snr_db(self, distance_m: float) -> float:
        """Two-tone downlink SNR at the tag's detector."""
        received = one_way_received_power_dbm(
            self.tx_power_dbm,
            self.ap_antenna_gain_dbi,
            self.tag_antenna_gain_dbi,
            distance_m,
            self.frequency_hz,
        )
        noise = NoiseModel(noise_figure_db=self.tag_noise_figure_db)
        return received - noise.noise_power_dbm(self.downlink_bandwidth_hz)

    def downlink_ber(self, distance_m: float) -> float:
        """Non-coherent binary FSK BER: ``0.5 exp(-SNR / 2)``."""
        snr_linear = 10.0 ** (self.downlink_snr_db(distance_m) / 10.0)
        return float(0.5 * np.exp(-snr_linear / 2.0))

    def effective_throughput_bps(
        self, session_duration_s: float, *, sensing_duty: float = 0.5
    ) -> float:
        """Downlink goodput of a session, charging handshake + waveform split.

        Sensing and communication use separate waveforms, so only
        ``1 - sensing_duty`` of post-handshake airtime carries data.
        """
        ensure_positive("session_duration_s", session_duration_s)
        if not 0 <= sensing_duty < 1:
            raise ValueError(f"sensing_duty must be in [0, 1), got {sensing_duty}")
        usable = session_duration_s - self.handshake_overhead_s()
        if usable <= 0:
            return 0.0
        return usable * (1.0 - sensing_duty) * self.downlink_rate_bps / session_duration_s
