"""Serve wire protocol: NDJSON framing and job-spec validation.

One message per line, each line a single JSON object terminated by
``\\n`` — the framing Acconeer's exptool streaming server popularized for
sensor sessions, chosen here because it keeps the protocol inspectable
with ``nc`` and trivially implementable from any language.

Client -> server message types: ``submit``, ``cancel``, ``status``,
``metrics``, ``ping``, ``shutdown``.  Server -> client: ``accepted``,
``rejected``, ``point``, ``progress``, ``done``, ``cancelled``,
``status_ok``, ``metrics_ok``, ``pong``, ``shutting_down``, ``error``.

A *job* is a JSON object validated by :func:`parse_job` into a
:class:`ParsedJob` — an ordered tuple of point specs, each an independent
unit of work with its own store fingerprint.  Point specs are the dedup
and scheduling granularity: the scheduler keys in-flight sharing on
``spec.fingerprint()`` (identical to the fingerprint the batch engines
store results under, so serve and CLI runs share cache entries), and
``spec.compute(execution, store)`` reproduces the batch code path
exactly, which is what makes streamed results bit-identical to one-shot
CLI runs.

Supported job kinds:

``ber``
    One downlink BER operating point; the same knobs as ``repro ber``.
``ber_sweep``
    A fig12/13-style sweep: the base ``ber`` knobs plus
    ``{"sweep": {"field": ..., "values": [...]}}``; each value yields one
    point equal to a ``repro ber`` invocation with that field overridden.
``robustness``
    An impairment-severity ladder, the same knobs as ``repro robustness``;
    each severity is one point, bit-identical to the batch sweep's.

Every kind also accepts an optional ``"adaptive"`` object mirroring the
CLI's ``--adaptive`` knobs — ``{"ci_width": 0.25, "min_frames": 10,
"max_frames": 200, "batch_frames": 10, "confidence": 0.95, "method":
"wilson"}`` — which switches each point to CI-driven sequential stopping
(:class:`repro.sim.adaptive.AdaptiveConfig`).  The stopping rule joins
the point fingerprint through the same engine work-unit helpers batch
runs use, so adaptive serve jobs share cache entries with adaptive CLI
runs and never collide with fixed-budget ones.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any

from repro.errors import ServeError
from repro.utils.rng import SeedSpec

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "JobRejected",
    "BerPointSpec",
    "RobustnessPointSpec",
    "ParsedJob",
    "parse_job",
    "select_points",
    "encode_message",
    "decode_line",
]

PROTOCOL_VERSION = 1

#: Hard cap on one framed line (defense against unframed/binary garbage).
MAX_LINE_BYTES = 1 << 20


class JobRejected(ServeError):
    """The server refused a job (backpressure or drain).

    ``retry_after_s`` carries the server's resubmission hint.
    """

    def __init__(self, message: str, retry_after_s: "float | None" = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


def encode_message(message: "dict[str, Any]") -> bytes:
    """One protocol frame: compact JSON + newline, key-sorted."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> "dict[str, Any]":
    """Parse one received frame; raises :class:`ServeError` on violations."""
    if len(line) > MAX_LINE_BYTES:
        raise ServeError(f"frame exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServeError(f"malformed frame: {error}") from None
    if not isinstance(message, dict):
        raise ServeError("frame must be a JSON object")
    return message


# -- job validation ----------------------------------------------------------


def _typed(job: "dict", key: str, kind, default):
    """``job[key]`` coerced to ``kind`` (bool is not an int here)."""
    value = job.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) and kind is not bool:
        raise ServeError(f"job field {key!r} must be {kind.__name__}, got bool")
    try:
        return kind(value)
    except (TypeError, ValueError):
        raise ServeError(
            f"job field {key!r} must be {kind.__name__}, got {value!r}"
        ) from None


@dataclass(frozen=True)
class BerPointSpec:
    """One downlink BER operating point — the unit ``repro ber`` computes.

    ``compute`` routes through :func:`repro.sim.engine.run_downlink_trials`
    with a config built by the exact expressions the CLI uses, so the
    fingerprint (and therefore the store entry and the result) is shared
    with batch runs of the same knobs.
    """

    distance_m: float = 3.0
    snr_db: "float | None" = None
    symbol_bits: int = 5
    bandwidth_ghz: float = 1.0
    delta_l_inches: float = 45.0
    frames: int = 100
    payload_symbols: int = 16
    full_sync: bool = False
    impair: "str | None" = None
    seed: int = 0
    adaptive: "Any | None" = None

    kind = "ber"

    def trial_config(self):
        from repro.core.cssk import CsskAlphabet, DecoderDesign
        from repro.errors import AlphabetError, ConfigurationError
        from repro.impair import ImpairmentSpec
        from repro.radar.config import XBAND_9GHZ
        from repro.sim.engine import DownlinkTrialConfig

        try:
            alphabet = CsskAlphabet.design(
                bandwidth_hz=self.bandwidth_ghz * 1e9,
                decoder=DecoderDesign.from_inches(self.delta_l_inches),
                symbol_bits=self.symbol_bits,
                chirp_period_s=120e-6,
                min_chirp_duration_s=20e-6,
            )
            impairments = (
                ImpairmentSpec.parse(self.impair) if self.impair else None
            )
            return DownlinkTrialConfig(
                radar_config=XBAND_9GHZ.with_bandwidth(self.bandwidth_ghz * 1e9),
                alphabet=alphabet,
                distance_m=self.distance_m,
                snr_override_db=self.snr_db,
                num_frames=self.frames,
                payload_symbols_per_frame=self.payload_symbols,
                full_sync=self.full_sync,
                impairments=impairments,
            )
        except (AlphabetError, ConfigurationError, TypeError, ValueError) as error:
            raise ServeError(f"invalid ber point: {error}") from None

    def fingerprint(self) -> str:
        from repro.sim.engine import downlink_trials_work_unit
        from repro.store.fingerprint import fingerprint

        kind, work_unit = downlink_trials_work_unit(
            self.trial_config(), SeedSpec.from_rng(self.seed), self.adaptive
        )
        return fingerprint(kind, work_unit)

    def compute(self, execution, store) -> "dict[str, Any]":
        from repro.sim.engine import _ber_point_payload, run_downlink_trials

        point = run_downlink_trials(
            self.trial_config(),
            rng=self.seed,
            execution=execution,
            store=store,
            adaptive=self.adaptive,
        )
        return _ber_point_payload(point)


@dataclass(frozen=True)
class RobustnessPointSpec:
    """One severity point of a robustness ladder.

    ``point_index`` pins the seed derivation
    (``SeedSpec.from_rng(seed).child(point_index)``) to the position the
    point holds in the batch sweep's ladder, which is what keeps a
    streamed curve bit-identical to ``repro robustness``.
    """

    range_m: float
    impair: str
    severity: float
    point_index: int
    frames: int = 8
    downlink_bits: int = 10
    uplink_bits: int = 4
    if_threshold: "float | None" = None
    seed: int = 0
    adaptive: "Any | None" = None

    kind = "robustness"

    def robustness_config(self):
        from repro.errors import ConfigurationError, ImpairmentError
        from repro.impair import ImpairmentSpec
        from repro.sim.robustness import RobustnessConfig
        from repro.sim.scenario import default_office_scenario

        try:
            return RobustnessConfig(
                scenario=default_office_scenario(tag_range_m=self.range_m),
                impairments=ImpairmentSpec.parse(self.impair),
                severities=(self.severity,),
                num_frames=self.frames,
                downlink_bits=self.downlink_bits,
                uplink_bits=self.uplink_bits,
                if_confidence_threshold=self.if_threshold,
            )
        except (ConfigurationError, ImpairmentError, TypeError, ValueError) as error:
            raise ServeError(f"invalid robustness point: {error}") from None

    def _seed_spec(self) -> SeedSpec:
        return SeedSpec.from_rng(self.seed).child(self.point_index)

    def fingerprint(self) -> str:
        from repro.sim.robustness import robustness_point_work_unit
        from repro.store.fingerprint import fingerprint

        return fingerprint(
            "robustness-point",
            robustness_point_work_unit(
                self.robustness_config(), self.severity, self._seed_spec(),
                self.adaptive,
            ),
        )

    def compute(self, execution, store) -> "dict[str, Any]":
        from repro.sim.robustness import _point_payload_dict, run_robustness_point

        metrics = run_robustness_point(
            self.robustness_config(),
            self.severity,
            self._seed_spec(),
            execution=execution,
            store=store,
            adaptive=self.adaptive,
        )
        return {
            "severity": float(self.severity),
            "metrics": _point_payload_dict(metrics),
        }


@dataclass(frozen=True)
class ParsedJob:
    """A validated job: an ordered tuple of independently schedulable points."""

    kind: str
    points: "tuple[Any, ...]"


_BER_KEYS = {
    "kind", "distance_m", "snr_db", "symbol_bits", "bandwidth_ghz",
    "delta_l_inches", "frames", "payload_symbols", "full_sync", "impair",
    "seed", "adaptive",
}
_SWEEP_KEYS = _BER_KEYS | {"sweep"}
_SWEEP_FIELDS = {
    "distance_m": float,
    "snr_db": float,
    "symbol_bits": int,
    "bandwidth_ghz": float,
    "frames": int,
    "seed": int,
}
_ROBUSTNESS_KEYS = {
    "kind", "range_m", "impair", "severities", "frames", "downlink_bits",
    "uplink_bits", "if_threshold", "seed", "adaptive",
}

_ADAPTIVE_KEYS = {
    "ci_width", "min_frames", "max_frames", "batch_frames", "confidence",
    "method",
}


def _parse_adaptive(job: "dict"):
    """The job's ``"adaptive"`` object as an AdaptiveConfig (None = fixed).

    Defaults mirror the CLI: ``max_frames`` falls back to the job's
    ``frames`` budget, ``batch_frames`` to ``min_frames``; validation is
    AdaptiveConfig's own, surfaced as a submit-time rejection.
    """
    raw = job.get("adaptive")
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ServeError("adaptive must be a JSON object")
    unknown = sorted(set(raw) - _ADAPTIVE_KEYS)
    if unknown:
        raise ServeError(f"unknown adaptive field(s): {', '.join(unknown)}")
    from repro.sim.adaptive import AdaptiveConfig

    ci_width = _typed(raw, "ci_width", float, 0.25)
    min_frames = _typed(raw, "min_frames", int, 10)
    max_frames = _typed(raw, "max_frames", int, None)
    if max_frames is None:
        max_frames = _typed(job, "frames", int, 100)
    batch_frames = _typed(raw, "batch_frames", int, None)
    if batch_frames is None:
        batch_frames = min_frames
    method = raw.get("method", "wilson")
    if not isinstance(method, str):
        raise ServeError(f"adaptive method must be a string, got {method!r}")
    try:
        return AdaptiveConfig(
            target_rel_width=ci_width,
            min_frames=min(min_frames, max_frames),
            max_frames=max_frames,
            batch_frames=batch_frames,
            confidence=_typed(raw, "confidence", float, 0.95),
            method=method,
        )
    except ValueError as error:
        raise ServeError(f"invalid adaptive config: {error}") from None

#: Mirrors the ``repro robustness`` CLI default bundle.
DEFAULT_ROBUSTNESS_IMPAIR = (
    "interference:0.6,drift:0.4,clip:0.5,loss:0.4,impulse:0.5"
)

#: Hard ceiling on points per job — one submit cannot monopolize a queue.
MAX_POINTS_PER_JOB = 256


def _reject_unknown(job: "dict", allowed: "set[str]") -> None:
    unknown = sorted(set(job) - allowed)
    if unknown:
        raise ServeError(f"unknown job field(s): {', '.join(unknown)}")


def _base_ber_spec(job: "dict") -> BerPointSpec:
    spec = BerPointSpec(
        distance_m=_typed(job, "distance_m", float, 3.0),
        snr_db=_typed(job, "snr_db", float, None),
        symbol_bits=_typed(job, "symbol_bits", int, 5),
        bandwidth_ghz=_typed(job, "bandwidth_ghz", float, 1.0),
        delta_l_inches=_typed(job, "delta_l_inches", float, 45.0),
        frames=_typed(job, "frames", int, 100),
        payload_symbols=_typed(job, "payload_symbols", int, 16),
        full_sync=bool(job.get("full_sync", False)),
        impair=job.get("impair") or None,
        seed=_typed(job, "seed", int, 0),
        adaptive=_parse_adaptive(job),
    )
    if spec.frames < 1 or spec.payload_symbols < 1:
        raise ServeError("frames and payload_symbols must be >= 1")
    # Bound the alphabet size before design: 2**symbol_bits codewords are
    # enumerated eagerly, so an unchecked large value is a parse-time DoS.
    if not 1 <= spec.symbol_bits <= 16:
        raise ServeError(
            f"symbol_bits must be in [1, 16], got {spec.symbol_bits}"
        )
    if spec.distance_m is None or not spec.distance_m > 0:
        raise ServeError(f"distance_m must be positive, got {spec.distance_m}")
    # Validate the derived config eagerly so a bad spec is rejected at
    # submit time, not when the point reaches the pool.
    spec.trial_config()
    return spec


def _parse_ber(job: "dict") -> ParsedJob:
    _reject_unknown(job, _BER_KEYS)
    return ParsedJob(kind="ber", points=(_base_ber_spec(job),))


def _parse_ber_sweep(job: "dict") -> ParsedJob:
    _reject_unknown(job, _SWEEP_KEYS)
    sweep = job.get("sweep")
    if not isinstance(sweep, dict):
        raise ServeError("ber_sweep requires a \"sweep\" object")
    unknown = sorted(set(sweep) - {"field", "values"})
    if unknown:
        raise ServeError(f"unknown sweep field(s): {', '.join(unknown)}")
    field = sweep.get("field")
    if field not in _SWEEP_FIELDS:
        raise ServeError(
            f"sweep field must be one of {sorted(_SWEEP_FIELDS)}, got {field!r}"
        )
    values = sweep.get("values")
    if not isinstance(values, list) or not values:
        raise ServeError("sweep values must be a non-empty list")
    if len(values) > MAX_POINTS_PER_JOB:
        # Bounce before building specs: each spec validates its derived
        # config, which is too much work to spend on a rejected job.
        raise ServeError(
            f"job has {len(values)} points, limit is {MAX_POINTS_PER_JOB}"
        )
    base = {key: value for key, value in job.items() if key not in ("kind", "sweep")}
    caster = _SWEEP_FIELDS[field]
    points = []
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ServeError(f"sweep values must be numbers, got {value!r}")
        points.append(_base_ber_spec({**base, field: caster(value)}))
    return ParsedJob(kind="ber_sweep", points=tuple(points))


def _parse_robustness(job: "dict") -> ParsedJob:
    _reject_unknown(job, _ROBUSTNESS_KEYS)
    severities = job.get("severities", [0.0, 0.25, 0.5, 0.75, 1.0])
    if not isinstance(severities, list) or not severities:
        raise ServeError("severities must be a non-empty list")
    if len(severities) > MAX_POINTS_PER_JOB:
        raise ServeError(
            f"job has {len(severities)} points, limit is {MAX_POINTS_PER_JOB}"
        )
    for severity in severities:
        if isinstance(severity, bool) or not isinstance(severity, (int, float)):
            raise ServeError(f"severities must be numbers, got {severity!r}")
        if not 0.0 <= float(severity) <= 1.0:
            raise ServeError(f"severities must be in [0, 1], got {severity}")
    frames = _typed(job, "frames", int, 8)
    downlink_bits = _typed(job, "downlink_bits", int, 10)
    uplink_bits = _typed(job, "uplink_bits", int, 4)
    if min(frames, downlink_bits, uplink_bits) < 1:
        raise ServeError("frames, downlink_bits and uplink_bits must be >= 1")
    adaptive = _parse_adaptive({**job, "frames": frames})
    points = tuple(
        RobustnessPointSpec(
            range_m=_typed(job, "range_m", float, 3.0),
            impair=job.get("impair") or DEFAULT_ROBUSTNESS_IMPAIR,
            severity=float(severity),
            point_index=index,
            frames=frames,
            downlink_bits=downlink_bits,
            uplink_bits=uplink_bits,
            if_threshold=_typed(job, "if_threshold", float, None),
            seed=_typed(job, "seed", int, 0),
            adaptive=adaptive,
        )
        for index, severity in enumerate(severities)
    )
    points[0].robustness_config()  # eager validation, shared knobs
    return ParsedJob(kind="robustness", points=points)


_PARSERS = {
    "ber": _parse_ber,
    "ber_sweep": _parse_ber_sweep,
    "robustness": _parse_robustness,
}


def parse_job(job: Any) -> ParsedJob:
    """Validate a submitted job object into its point specs.

    Raises :class:`ServeError` with a client-presentable message on any
    violation — unknown kind or field, bad types/ranges, or a derived
    simulation config that the engines would reject.
    """
    if not isinstance(job, dict):
        raise ServeError("job must be a JSON object")
    kind = job.get("kind")
    parser = _PARSERS.get(kind)
    if parser is None:
        raise ServeError(
            f"unknown job kind {kind!r}; expected one of {sorted(_PARSERS)}"
        )
    parsed = parser(job)
    if len(parsed.points) > MAX_POINTS_PER_JOB:
        raise ServeError(
            f"job has {len(parsed.points)} points, limit is {MAX_POINTS_PER_JOB}"
        )
    return parsed


def select_points(parsed: ParsedJob, indices: Any) -> ParsedJob:
    """A sub-job keeping only ``indices`` of ``parsed`` (submit ``points``).

    This is the wire form of partial-stream resume: a reconnecting client
    resubmits the *same job object* plus the original point indices it is
    still missing, and the server schedules only those.  The selected
    points stream as indices ``0..n-1`` in selection order; mapping them
    back to original positions is the caller's job (the client keeps its
    ``missing`` list, the journal replay keeps the record's
    ``remaining()``).  Because selection happens *after* ``parse_job``,
    each selected point keeps the exact spec — and therefore the exact
    fingerprint — it has in the full job, which is what makes a resumed
    stream bit-identical to an uninterrupted one.

    Raises :class:`ServeError` unless ``indices`` is a non-empty,
    strictly increasing list of unique in-range integers.
    """
    if not isinstance(indices, list) or not indices:
        raise ServeError("points must be a non-empty list of point indices")
    for index in indices:
        if isinstance(index, bool) or not isinstance(index, int):
            raise ServeError(f"point indices must be integers, got {index!r}")
        if not 0 <= index < len(parsed.points):
            raise ServeError(
                f"point index {index} out of range for a "
                f"{len(parsed.points)}-point job"
            )
    if list(indices) != sorted(set(indices)):
        raise ServeError("point indices must be strictly increasing and unique")
    return ParsedJob(
        kind=parsed.kind,
        points=tuple(parsed.points[index] for index in indices),
    )


def job_summary(parsed: ParsedJob) -> "dict[str, Any]":
    """Loggable description of a parsed job (no large payloads)."""
    return {
        "kind": parsed.kind,
        "points": len(parsed.points),
        "first": dataclasses.asdict(parsed.points[0]),
    }
