"""Generic parameter-sweep helper with reproducible per-point seeding.

Sweeps run on the :mod:`repro.sim.executor` layer: each point's RNG is
index-keyed off the root seed (point ``i`` -> ``SeedSpec.stream(i)``),
so the values are bit-identical for any ``workers`` choice and editing
one point's workload does not perturb the others.  Per-chunk wall-clock
timings land in ``SweepResult.metadata["_execution"]`` — a volatile side
channel that :func:`repro.sim.executor.strip_execution` removes when
comparing results across execution plans.

Passing ``store=`` (an :class:`repro.store.ExperimentStore`) makes the
sweep *incremental*: every point is fingerprinted over ``(evaluate
identity, parameter, its child SeedSpec)``, cached points are loaded
instead of recomputed, and only the misses are dispatched to the
executor.  Because seeding is index-keyed, editing one point's parameter
invalidates exactly that point — the rest hit the cache.  Cache traffic
is reported in ``metadata["_execution"]["store"]`` (volatile, stripped
alongside the timings).

Sweeps inherit the executor's fault tolerance through the ``execution``
plan: crashed workers and failed chunks are retried bit-identically (the
recovery counters land in ``metadata["_execution"]["faults"]``), and
retry exhaustion raises :class:`repro.errors.ExecutorError` naming the
failing point indices — see :class:`repro.sim.executor.ExecutionPlan`'s
``max_retries`` / ``chunk_timeout_s`` / ``on_failure`` knobs.

The plan's ``batch_frames`` knob also rides through unchanged: a sweep
whose ``evaluate`` forwards ``execution`` into a batch-aware engine
(e.g. :func:`repro.sim.engine.run_downlink_trials`) gets the stacked
``(frames, samples)`` fast path per point, bit-identical to the
per-frame oracle — so batched and per-frame sweeps share store entries.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Sequence

import numpy as np

from repro import obs
from repro.errors import StoreError
from repro.obs import manifest as _obs_manifest
from repro.obs import runtime as _obs_runtime
from repro.sim.executor import ChunkTiming, ExecutionPlan, _is_picklable, map_trials
from repro.sim.results import SweepResult
from repro.utils.rng import SeedSpec


class _SweepProgress:
    """Parent-side progress hook emitting ``sweep.progress`` events.

    Wraps (and chains to) any user-supplied ``ExecutionPlan.progress``
    callback; runs only in the parent process, once per finished chunk,
    so the ETA estimate costs nothing on the workers.  Telemetry only —
    nothing here feeds back into values or seeds.
    """

    def __init__(self, label: str, total: int,
                 inner: "Callable[[ChunkTiming], None] | None",
                 cached: int = 0):
        self.label = label
        self.total = total
        self.inner = inner
        self.cached = cached
        # Cache hits are already done when dispatch starts; folding them
        # in keeps done/total consistent with the sweep.start point count
        # (a warm sweep no longer "restarts" its progress fraction).
        self.done = cached
        self._started = time.perf_counter()

    def __call__(self, timing: ChunkTiming) -> None:
        self.done += timing.num_trials
        obs.inc("sweep.points.completed", timing.num_trials)
        elapsed = time.perf_counter() - self._started
        remaining = max(self.total - self.done, 0)
        # ETA extrapolates only over dispatched work — hits cost nothing.
        computed = self.done - self.cached
        eta_s = (elapsed / computed) * remaining if computed else None
        obs.log(
            "sweep.progress",
            label=self.label,
            done=self.done,
            total=self.total,
            dispatched=self.total - self.cached,
            cached=self.cached,
            eta_s=round(eta_s, 3) if eta_s is not None else None,
        )
        if self.inner is not None:
            self.inner(timing)


def _with_progress(
    execution: "ExecutionPlan | None", label: str, total: int, cached: int = 0
) -> "ExecutionPlan | None":
    """The execution plan with a sweep-progress reporter chained in.

    ``total`` is the *full* point count (matching ``sweep.start``);
    ``cached`` is how many of those were served from the store before
    dispatch, so progress events stay monotone on warm caches.
    """
    if not _obs_runtime._enabled:
        return execution
    plan = execution if execution is not None else ExecutionPlan()
    return dataclasses.replace(
        plan, progress=_SweepProgress(label, total, plan.progress, cached)
    )


def _with_on_point(
    execution: "ExecutionPlan | None",
    params: "list[float]",
    index_map: "Sequence[int]",
    on_point: "Callable[[int, float, float], None]",
) -> ExecutionPlan:
    """The execution plan with a per-point completion hook chained in.

    Translates the executor's per-chunk ``on_chunk`` stream into
    ``on_point(index, parameter, value)`` calls, one per sweep point, in
    chunk-completion order.  ``index_map`` maps trial positions (what the
    executor numbers) back to original sweep indices, so subset dispatch
    of cache misses reports the true point index.
    """
    plan = execution if execution is not None else ExecutionPlan()
    inner = plan.on_chunk

    def hook(timing: ChunkTiming, chunk_results: list) -> None:
        if inner is not None:
            inner(timing, chunk_results)
        for offset, value in enumerate(chunk_results):
            index = index_map[timing.start_index + offset]
            on_point(index, params[index], float(value))

    return dataclasses.replace(plan, on_chunk=hook)


def _sweep_chunk(payload, spec: SeedSpec, indices) -> "list[float]":
    """Evaluate one chunk of sweep points with index-keyed streams."""
    evaluate, params = payload
    return [float(evaluate(params[index], spec.stream(index))) for index in indices]


def _sweep_subset_chunk(payload, spec: SeedSpec, positions) -> "list[float]":
    """Evaluate a *subset* of sweep points, preserving their original seeds.

    ``positions`` index into the miss list; each maps back to the point's
    original sweep index so its stream (and therefore its value) is
    bit-identical to a full, uncached run.
    """
    evaluate, params, original_indices = payload
    results = []
    for position in positions:
        index = original_indices[position]
        results.append(float(evaluate(params[index], spec.stream(index))))
    return results


def _replay_sweep_point(payload) -> "dict[str, Any]":
    """Recompute one cached sweep point (``repro cache verify`` hook)."""
    evaluate, parameter, point_spec = payload
    return {
        "parameter": float(parameter),
        "value": float(evaluate(parameter, point_spec.generator())),
    }


def _point_fingerprint(evaluate, parameter: float, point_spec: SeedSpec) -> str:
    from repro.store.fingerprint import fingerprint

    return fingerprint(
        "sweep-point",
        {"evaluate": evaluate, "parameter": parameter, "seed": point_spec},
    )


class _SeriesEvaluate:
    """Picklable adapter binding a grid ``evaluate`` to one series context."""

    def __init__(self, evaluate: "Callable[[Any, float, np.random.Generator], float]", context: Any):
        self.evaluate = evaluate
        self.context = context

    def __call__(self, parameter: float, stream: np.random.Generator) -> float:
        return self.evaluate(self.context, parameter, stream)


def _cached_sweep_values(
    params: "list[float]",
    evaluate,
    spec: SeedSpec,
    execution: "ExecutionPlan | None",
    store,
    label: str = "",
    on_point: "Callable[[int, float, float], None] | None" = None,
) -> "tuple[list[float], dict[str, Any]]":
    """Values for every point, serving hits from ``store``.

    Returns ``(values, execution-metadata)``.  Falls back to a full
    uncached run (noted under ``["store"]["status"]``) when the work unit
    cannot be fingerprinted — lambdas, closures, exotic contexts — so
    ``store=`` never changes *whether* a sweep runs, only how fast.
    """
    from repro.store.cache import ReplayRecipe

    started = time.perf_counter()
    try:
        fingerprints = [
            _point_fingerprint(evaluate, parameter, spec.child(index))
            for index, parameter in enumerate(params)
        ]
    except StoreError as error:
        plan = _with_progress(execution, label, len(params))
        if on_point is not None:
            plan = _with_on_point(plan, params, range(len(params)), on_point)
        values, report = map_trials(
            _sweep_chunk,
            (evaluate, params),
            len(params),
            spec,
            plan,
        )
        execution_meta = report.as_metadata()
        execution_meta["store"] = {
            "root": str(store.root),
            "status": f"disabled:{error}",
            "hits": 0,
            "misses": len(params),
        }
        return values, execution_meta

    values: "list[float | None]" = [None] * len(params)
    misses: "list[int]" = []
    for index, point_fingerprint in enumerate(fingerprints):
        record = store.get(point_fingerprint)
        if record is not None:
            values[index] = float(record["payload"]["value"])
            if on_point is not None:
                # Hits stream immediately (index order), before any miss
                # is dispatched — a fully warm sweep streams synchronously.
                on_point(index, params[index], values[index])
        else:
            misses.append(index)

    if _obs_runtime._enabled:
        obs.log(
            "sweep.cache",
            label=label,
            hits=len(params) - len(misses),
            misses=len(misses),
        )
        obs.inc("sweep.points.cached", len(params) - len(misses))

    if misses:
        plan = _with_progress(
            execution, label, len(params), cached=len(params) - len(misses)
        )
        if on_point is not None:
            plan = _with_on_point(plan, params, misses, on_point)
        computed, report = map_trials(
            _sweep_subset_chunk,
            (evaluate, params, misses),
            len(misses),
            spec,
            plan,
        )
        replayable = _is_picklable(evaluate)
        for position, index in enumerate(misses):
            value = float(computed[position])
            values[index] = value
            replay = None
            if replayable:
                replay = ReplayRecipe(
                    entry="repro.sim.sweep:_replay_sweep_point",
                    payload=(evaluate, params[index], spec.child(index)),
                )
            store.put(
                fingerprints[index],
                "sweep-point",
                {"parameter": params[index], "value": value},
                replay=replay,
            )
        execution_meta = report.as_metadata()
    else:
        execution_meta = {
            "backend": "cache",
            "workers": 0,
            "chunk_size": 0,
            "num_trials": 0,
            "total_seconds": time.perf_counter() - started,
            "chunks": [],
        }
    execution_meta["store"] = {
        "root": str(store.root),
        "status": "ok",
        "hits": len(params) - len(misses),
        "misses": len(misses),
    }
    return values, execution_meta


def sweep(
    label: str,
    parameters: "Sequence[float]",
    evaluate: "Callable[[float, np.random.Generator], float]",
    *,
    rng: "int | np.random.Generator | SeedSpec | None" = 0,
    metadata: "dict[str, Any] | None" = None,
    execution: "ExecutionPlan | None" = None,
    store=None,
    on_point: "Callable[[int, float, float], None] | None" = None,
) -> SweepResult:
    """Evaluate ``evaluate(parameter, rng)`` over a parameter list.

    Each point receives an independent child RNG keyed by its index, so
    (a) the whole sweep is reproducible from one seed, (b) editing one
    point's workload does not perturb the others, and (c) the result is
    the same whether points run serially or across a process pool.  With
    ``execution.workers > 1`` the ``evaluate`` callable must be picklable
    (module-level function or picklable callable object); unpicklable
    callables fall back to the serial backend, noted in
    ``metadata["_execution"]["backend"]``.

    ``store`` (an :class:`repro.store.ExperimentStore`) caches each
    point's value under its canonical fingerprint: re-running the sweep
    serves hits from disk and computes only the misses, bit-identically
    to an uncached run.

    ``on_point`` streams incremental completion: it is called in the
    parent process with ``(index, parameter, value)`` as each point's
    value materializes — cache hits first (index order), then computed
    points as their chunks finish (completion order).  Every point is
    reported exactly once; the returned :class:`SweepResult` is unchanged
    by the hook.  The serve subsystem uses this to push per-point results
    to subscribers while the sweep is still running.
    """
    params = [float(p) for p in parameters]
    if not params:
        raise ValueError("parameters must be non-empty")
    spec = SeedSpec.from_rng(rng)
    if _obs_runtime._enabled:
        obs.log(
            "sweep.start", label=label, points=len(params), cached=store is not None
        )
    started = time.perf_counter()
    if store is not None:
        values, execution_meta = _cached_sweep_values(
            params, evaluate, spec, execution, store, label=label,
            on_point=on_point,
        )
    else:
        plan = _with_progress(execution, label, len(params))
        if on_point is not None:
            plan = _with_on_point(plan, params, range(len(params)), on_point)
        values, report = map_trials(
            _sweep_chunk,
            (evaluate, params),
            len(params),
            spec,
            plan,
        )
        execution_meta = report.as_metadata()
    if _obs_manifest._active is not None:
        store_meta = execution_meta.get("store", {})
        _obs_manifest.note_sweep(
            label,
            len(params),
            store_meta.get("hits", 0),
            store_meta.get("misses", len(params) if store is None else 0),
        )
    if _obs_runtime._enabled:
        obs.log(
            "sweep.done",
            label=label,
            points=len(params),
            seconds=round(time.perf_counter() - started, 6),
            backend=execution_meta.get("backend"),
        )
    combined = dict(metadata or {})
    combined["_execution"] = execution_meta
    return SweepResult(
        label=label,
        parameters=params,
        values=values,
        metadata=combined,
    )


def sweep_grid(
    series: "dict[str, Any]",
    parameters: "Sequence[float]",
    evaluate: "Callable[[Any, float, np.random.Generator], float]",
    *,
    rng: "int | np.random.Generator | SeedSpec | None" = 0,
    execution: "ExecutionPlan | None" = None,
    store=None,
    on_point: "Callable[[str, int, float, float], None] | None" = None,
) -> "list[SweepResult]":
    """Sweep the same parameter list for several labelled series.

    ``series`` maps label -> series context object passed to ``evaluate``;
    returns one :class:`SweepResult` per series.  Series ``k`` sweeps
    under seed child ``k`` of the root — the same derivation the serial
    implementation has always used — so grid results are reproducible
    and worker-count independent too.  ``store`` caches per point, as in
    :func:`sweep`; the series context is folded into each point's
    fingerprint, so different series never share cache entries.

    ``on_point`` is :func:`sweep`'s streaming hook with the series label
    prepended: ``on_point(series_label, index, parameter, value)``, one
    call per point per series, series in declaration order and points in
    the per-series hit-then-completion order.  The returned results are
    unchanged by the hook.
    """
    if not series:
        raise ValueError("series must be non-empty")
    parent = SeedSpec.from_rng(rng)
    results = []
    for series_index, (label, context) in enumerate(series.items()):
        series_hook = None
        if on_point is not None:
            def series_hook(index, parameter, value, _label=label):
                on_point(_label, index, parameter, value)
        results.append(
            sweep(
                label,
                parameters,
                _SeriesEvaluate(evaluate, context),
                rng=parent.child(series_index),
                metadata={"series": label},
                execution=execution,
                store=store,
                on_point=series_hook,
            )
        )
    return results
