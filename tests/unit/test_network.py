"""Multi-tag network: addressing, rate assignment, ALOHA scheduling."""

import numpy as np
import pytest

from repro.core.network import (
    ADDRESS_BITS,
    BROADCAST_ADDRESS,
    MultiTagNetwork,
    TagEndpoint,
    assign_modulation_rates,
    slotted_aloha_schedule,
)
from repro.errors import ConfigurationError, PacketError
from repro.tag.architecture import BiScatterTag


@pytest.fixture
def network(alphabet):
    return MultiTagNetwork(alphabet=alphabet)


def make_tag(alphabet):
    return BiScatterTag(decoder_design=alphabet.decoder)


class TestRateAssignment:
    def test_unique_and_positive(self):
        rates = assign_modulation_rates(6, 120e-6)
        assert np.unique(rates).size == 6
        assert np.all(rates > 0)

    def test_below_nyquist(self):
        rates = assign_modulation_rates(10, 120e-6)
        assert np.all(rates < 1.0 / (2 * 120e-6))

    def test_no_harmonic_collisions(self):
        rates = assign_modulation_rates(5, 120e-6)
        for i, a in enumerate(rates):
            for b in rates[i + 1 :]:
                ratio = max(a, b) / min(a, b)
                assert abs(ratio - round(ratio)) > 0.02

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            assign_modulation_rates(0, 120e-6)


class TestEnrollment:
    def test_addresses_sequential(self, network, alphabet):
        first = network.enroll(make_tag(alphabet), range_m=2.0)
        second = network.enroll(make_tag(alphabet), range_m=4.0)
        assert first.address == 0
        assert second.address == 1

    def test_rates_unique_after_enrollment(self, network, alphabet):
        for i in range(4):
            network.enroll(make_tag(alphabet), range_m=1.0 + i)
        rates = [e.tag.modulator.modulation_rate_hz for e in network.endpoints]
        assert len(set(rates)) == 4

    def test_lookup(self, network, alphabet):
        endpoint = network.enroll(make_tag(alphabet), range_m=3.0)
        assert network.endpoint_for_address(endpoint.address) is endpoint
        with pytest.raises(ConfigurationError):
            network.endpoint_for_address(99)

    def test_endpoint_validation(self, alphabet):
        with pytest.raises(ConfigurationError):
            TagEndpoint(tag=make_tag(alphabet), address=BROADCAST_ADDRESS, range_m=1.0)


class TestAddressing:
    def test_addressed_packet_roundtrip(self, network, alphabet):
        payload = np.array([1, 0, 1, 1], dtype=np.uint8)
        packet = network.build_addressed_packet(5, payload)
        bits = packet.payload_bits
        address, recovered = MultiTagNetwork.parse_address(bits)
        assert address == 5
        np.testing.assert_array_equal(recovered[: payload.size], payload)

    def test_broadcast_address(self, network):
        packet = network.build_broadcast_packet(np.array([1, 1], dtype=np.uint8))
        address, _ = MultiTagNetwork.parse_address(packet.payload_bits)
        assert address == BROADCAST_ADDRESS

    def test_tags_accepting(self, network, alphabet):
        a = network.enroll(make_tag(alphabet), range_m=1.0)
        b = network.enroll(make_tag(alphabet), range_m=2.0)
        assert network.tags_accepting(a.address) == [a]
        assert set(map(id, network.tags_accepting(BROADCAST_ADDRESS))) == {id(a), id(b)}

    def test_parse_too_short(self):
        with pytest.raises(PacketError):
            MultiTagNetwork.parse_address(np.zeros(ADDRESS_BITS - 1, dtype=np.uint8))

    def test_address_out_of_range(self, network):
        with pytest.raises(PacketError):
            network.build_addressed_packet(300, np.array([1], dtype=np.uint8))

    def test_payload_padded_to_symbols(self, network, alphabet):
        packet = network.build_addressed_packet(1, np.array([1], dtype=np.uint8))
        assert packet.payload_bits.size % alphabet.symbol_bits == 0


class TestAloha:
    def test_schedule_covers_all_radars(self):
        schedule = slotted_aloha_schedule(3, 10e-3)
        assert sorted({entry[0] for entry in schedule}) == [0, 1, 2]

    def test_slots_non_overlapping(self):
        schedule = slotted_aloha_schedule(2, 5e-3, cycle_slots=4)
        for (_, start_a, end_a), (_, start_b, _b) in zip(schedule, schedule[1:]):
            assert end_a <= start_b + 1e-12

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            slotted_aloha_schedule(0, 1e-3)
        with pytest.raises(ConfigurationError):
            slotted_aloha_schedule(4, 1e-3, cycle_slots=2)
