"""Tag frontends and decoder DSP: period estimation, sync, demodulation."""

import numpy as np
import pytest

from repro.channel.link_budget import DownlinkBudget
from repro.core.downlink import DownlinkEncoder
from repro.core.packet import DownlinkPacket, PacketFields
from repro.errors import SimulationError, SyncError
from repro.radar.config import XBAND_9GHZ
from repro.tag.decoder_dsp import TagDecoder
from repro.tag.frontend import AnalyticTagFrontend, TagCapture
from repro.core.ber import bit_error_rate


@pytest.fixture(scope="module")
def link(alphabet):
    budget = DownlinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
    )
    encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
    frontend = AnalyticTagFrontend(budget=budget, delta_t_s=alphabet.decoder.delta_t_s)
    decoder = TagDecoder(alphabet)
    return encoder, frontend, decoder


def make_capture(link, alphabet, symbols, distance=2.0, rng=0, snr=None, fields=None):
    encoder, frontend, _ = link
    bits = np.concatenate([alphabet.bits_for_symbol(s) for s in symbols])
    packet = DownlinkPacket.from_bits(alphabet, bits, fields=fields)
    frame = encoder.encode_packet(packet)
    capture = frontend.capture(frame, distance, rng=rng, snr_override_db=snr)
    return bits, capture


class TestFrontendCapture:
    def test_capture_length(self, link, alphabet):
        _, capture = make_capture(link, alphabet, [0, 1])
        expected = capture.frame.duration_s * capture.sample_rate_hz
        assert capture.samples.size == pytest.approx(expected, abs=2)

    def test_slot_samples_slicing(self, link, alphabet):
        _, capture = make_capture(link, alphabet, [0])
        slot = capture.slot_samples(0)
        assert slot.size == pytest.approx(120, abs=1)

    def test_amplitude_scales_with_distance(self, link, alphabet):
        encoder, frontend, _ = link
        bits = alphabet.bits_for_symbol(0)
        frame = encoder.encode_packet(DownlinkPacket.from_bits(alphabet, bits))
        near = frontend.capture(frame, 1.0, rng=0)
        far = frontend.capture(frame, 4.0, rng=0)
        # square-law: amplitude ~ 1/d^2 -> 16x between 1 m and 4 m.
        ratio = np.std(near.samples) / np.std(far.samples)
        assert ratio == pytest.approx(16.0, rel=0.3)

    def test_absorptive_slots_gate_signal(self, link, alphabet):
        encoder, frontend, _ = link
        bits = np.concatenate([alphabet.bits_for_symbol(0)] * 2)
        frame = encoder.encode_packet(DownlinkPacket.from_bits(alphabet, bits))
        mask = np.ones(len(frame), dtype=bool)
        mask[0] = False  # tag reflecting during slot 0
        capture = frontend.capture(frame, 1.0, rng=0, absorptive_slots=mask, snr_override_db=60.0)
        assert np.std(capture.slot_samples(0)) < 0.05 * np.std(capture.slot_samples(1))

    def test_absorptive_mask_length_checked(self, link, alphabet):
        encoder, frontend, _ = link
        bits = alphabet.bits_for_symbol(0)
        frame = encoder.encode_packet(DownlinkPacket.from_bits(alphabet, bits))
        with pytest.raises(SimulationError):
            frontend.capture(frame, 1.0, absorptive_slots=np.ones(3, dtype=bool))

    def test_snr_override_controls_noise(self, link, alphabet):
        encoder, frontend, _ = link
        bits = alphabet.bits_for_symbol(0)
        frame = encoder.encode_packet(DownlinkPacket.from_bits(alphabet, bits))
        clean = frontend.capture(frame, 5.0, rng=1, snr_override_db=60.0)
        noisy = frontend.capture(frame, 5.0, rng=1, snr_override_db=-10.0)
        assert np.std(noisy.samples) > 2 * np.std(clean.samples)

    def test_slot_samples_requires_frame(self):
        capture = TagCapture(samples=np.zeros(10), sample_rate_hz=1e6)
        with pytest.raises(SimulationError):
            capture.slot_samples(0)


class TestScoring:
    def test_correct_symbol_wins_clean(self, link, alphabet):
        _, frontend, decoder = link
        for symbol in (0, 15, 31):
            bits, capture = make_capture(link, alphabet, [symbol], snr=50.0)
            slot = capture.slot_samples(PacketFields().preamble_length)
            got, _ = decoder.demodulate_data_slot(slot, capture.sample_rate_hz)
            assert got == symbol

    def test_score_slot_lists_all_hypotheses(self, link, alphabet):
        _, _, decoder = link
        _, capture = make_capture(link, alphabet, [3], snr=40.0)
        scores = decoder.score_slot(capture.slot_samples(11), capture.sample_rate_hz)
        kinds = [kind for kind, *_ in scores]
        assert kinds.count("header") == 1
        assert kinds.count("sync") == 1
        assert kinds.count("data") == alphabet.num_data_symbols

    def test_classify_header_slot(self, link, alphabet):
        _, _, decoder = link
        _, capture = make_capture(link, alphabet, [3], snr=40.0)
        kind, symbol, beat = decoder.classify_slot(capture.slot_samples(0), capture.sample_rate_hz)
        assert kind == "header"
        assert beat == pytest.approx(alphabet.header_beat_hz)

    def test_classify_sync_slot(self, link, alphabet):
        _, _, decoder = link
        _, capture = make_capture(link, alphabet, [3], snr=40.0)
        kind, _, _ = decoder.classify_slot(capture.slot_samples(8), capture.sample_rate_hz)
        assert kind == "sync"

    def test_window_fraction_validation(self, alphabet):
        with pytest.raises(ValueError):
            TagDecoder(alphabet, window_fraction=0.05)


class TestPeriodEstimation:
    def test_snaps_to_nominal(self, link, alphabet):
        _, _, decoder = link
        _, capture = make_capture(link, alphabet, [1, 2, 3], snr=30.0)
        estimate = decoder.estimate_period(capture)
        assert estimate.period_s == pytest.approx(120e-6)

    def test_detects_start_offset(self, link, alphabet):
        _, _, decoder = link
        _, capture = make_capture(link, alphabet, [1, 2], snr=30.0)
        # Prepend silence: the tag woke up before the radar started.
        silence = np.zeros(500)
        shifted = TagCapture(
            samples=np.concatenate([silence, capture.samples]),
            sample_rate_hz=capture.sample_rate_hz,
            frame=capture.frame,
        )
        estimate = decoder.estimate_period(shifted)
        assert estimate.first_chirp_start_s == pytest.approx(500 / 1e6, abs=30e-6)

    def test_too_short_capture(self, alphabet):
        decoder = TagDecoder(alphabet)
        capture = TagCapture(samples=np.zeros(4), sample_rate_hz=1e6)
        with pytest.raises(SyncError):
            decoder.estimate_period(capture)


class TestFullDecode:
    def test_decode_recovers_payload(self, link, alphabet):
        _, _, decoder = link
        symbols = [0, 31, 15, 7, 22]
        bits, capture = make_capture(link, alphabet, symbols, snr=35.0)
        decoded = decoder.decode(capture, num_payload_symbols=len(symbols))
        assert decoded.symbols == symbols
        assert bit_error_rate(bits, decoded.bits) == 0.0
        assert decoded.payload_start_slot == PacketFields().preamble_length

    def test_decode_with_leading_silence(self, link, alphabet):
        _, _, decoder = link
        symbols = [4, 9]
        bits, capture = make_capture(link, alphabet, symbols, snr=35.0)
        padded = TagCapture(
            samples=np.concatenate([np.zeros(777), capture.samples]),
            sample_rate_hz=capture.sample_rate_hz,
            frame=capture.frame,
        )
        decoded = decoder.decode(padded, num_payload_symbols=2)
        assert decoded.symbols == symbols

    def test_decode_aligned_fast_path(self, link, alphabet):
        _, _, decoder = link
        symbols = [11, 29, 3]
        bits, capture = make_capture(link, alphabet, symbols, snr=35.0)
        decoded = decoder.decode_aligned(capture, num_payload_symbols=3)
        assert decoded.symbols == symbols

    def test_decode_aligned_validates(self, link, alphabet):
        _, _, decoder = link
        _, capture = make_capture(link, alphabet, [0], snr=35.0)
        with pytest.raises(ValueError):
            decoder.decode_aligned(capture, num_payload_symbols=0)

    def test_capture_without_preamble_fails_sync(self, link, alphabet):
        _, _, decoder = link
        capture = TagCapture(
            samples=np.random.default_rng(0).normal(0, 1e-6, 600),
            sample_rate_hz=1e6,
        )
        with pytest.raises(SyncError):
            decoder.decode(capture)

    def test_moderate_snr_low_ber(self, link, alphabet):
        _, _, decoder = link
        rng = np.random.default_rng(5)
        total_errors = 0
        total_bits = 0
        for trial in range(10):
            symbols = list(rng.integers(0, 32, 8))
            bits, capture = make_capture(
                link, alphabet, [int(s) for s in symbols], snr=16.0, rng=trial
            )
            decoded = decoder.decode_aligned(capture, num_payload_symbols=8)
            total_errors += int(np.sum(bits[: decoded.bits.size] != decoded.bits))
            total_bits += bits.size
        assert total_errors / total_bits < 0.01
