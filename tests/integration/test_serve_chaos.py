"""Chaos integration: injected failures converge to golden results.

Every test here runs a *real* server and drives a real client through
:class:`repro.serve.chaosproxy.ChaosProxy` (or kills a real ``repro
serve`` subprocess outright), then asserts the two acceptance criteria
of the crash-safe service layer:

* **Bit-identity** — the reassembled result equals a clean uninterrupted
  run of the same job (golden-anchored where the end-to-end suite has an
  anchor), no matter how the stream was torn, dropped, or restarted.
* **No recomputation** — a point that reached the store is never
  computed again by any recovery path.  The store's session ``misses``
  counter is the ground truth: one miss per genuinely new point, zero
  for every replayed/re-requested one.

All chaos is seed-deterministic (``ChaosConfig.seed``), so a failure
here replays its exact fault sequence.
"""

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.errors import ServeConnectionLost, ServeError
from repro.serve.chaosproxy import ChaosConfig, ChaosProxyThread
from repro.serve.client import BackoffPolicy, ServeClient
from repro.serve.journal import JobJournal
from repro.serve.protocol import MAX_LINE_BYTES, encode_message, parse_job
from repro.serve.server import ServeConfig, ServerThread
from repro.store import ExperimentStore

#: A sweep long enough to interrupt, fast enough for CI.
SWEEP_JOB = {
    "kind": "ber_sweep", "frames": 20, "distance_m": 9.0,
    "sweep": {"field": "seed", "values": [0, 1, 2, 3]},
}

#: Zero-sleep backoff: the schedule is still computed and asserted on,
#: the test just does not wait it out.
FAST_POLICY = BackoffPolicy(base_s=0.01, cap_s=0.05, jitter=0.0, seed=0,
                            max_attempts=12)


def clean_run(job, cache_dir=None):
    """The uninterrupted golden: one server, one client, no chaos."""
    with ServerThread(ServeConfig(pool_workers=2,
                                  cache_dir=cache_dir)) as handle:
        with ServeClient(handle.host, handle.port) as client:
            return client.run(job)


def wait_for(predicate, timeout=60.0, message="condition not met in time"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, message
        time.sleep(0.02)


class TestChaosProxyConvergence:
    """Connection drops, torn lines, slow reads — all converge."""

    def _run_through_chaos(self, tmp_path, **chaos_knobs):
        cache_dir = str(tmp_path / "chaos-cache")
        with ServerThread(ServeConfig(pool_workers=2,
                                      cache_dir=cache_dir)) as handle:
            with ChaosProxyThread(ChaosConfig(
                target_host=handle.host, target_port=handle.port,
                **chaos_knobs,
            )) as chaos:
                waits = []
                with ServeClient(chaos.host, chaos.port) as client:
                    client._sleep = lambda _s: None  # schedule, don't wait
                    result = client.run_resilient(
                        SWEEP_JOB, policy=FAST_POLICY,
                        on_wait=lambda a, d, r: waits.append((a, d, r)),
                    )
                counters = dict(chaos.counters)
            # No-recompute ground truth, straight from the real server.
            with ServeClient(handle.host, handle.port) as direct:
                store_session = direct.status()["store"]["session"]
        return result, counters, waits, store_session

    def test_connection_drops_converge_bit_identical(self, tmp_path):
        result, counters, waits, store_session = self._run_through_chaos(
            tmp_path, seed=1, drop_after_frames=3, max_faults=3,
        )
        golden = clean_run(SWEEP_JOB)
        assert result.points == golden.points
        assert result.failed == []
        assert counters["drops"] >= 1
        assert waits != []  # the client actually backed off
        # Each of the 4 points was computed exactly once, ever.
        assert store_session["misses"] == len(parse_job(SWEEP_JOB).points)

    def test_torn_lines_converge_bit_identical(self, tmp_path):
        result, counters, _waits, store_session = self._run_through_chaos(
            tmp_path, seed=2, truncate_probability=0.25, max_faults=2,
        )
        golden = clean_run(SWEEP_JOB)
        assert result.points == golden.points
        assert counters["truncations"] + counters["drops"] >= 1
        assert store_session["misses"] == len(parse_job(SWEEP_JOB).points)

    def test_slow_reads_still_complete(self, tmp_path):
        result, counters, _waits, store_session = self._run_through_chaos(
            tmp_path, seed=3, delay_probability=0.5, delay_s=0.05,
        )
        golden = clean_run(SWEEP_JOB)
        assert result.points == golden.points
        assert counters["delays"] >= 1
        assert store_session["misses"] == len(parse_job(SWEEP_JOB).points)

    def test_fault_sequence_is_seed_deterministic(self, tmp_path):
        # Same seed, same fault sequence.  (frames_forwarded is excluded:
        # with two pool workers the point *completion order* is not
        # pinned, only the fault decisions and the reassembled result.)
        knobs = dict(drop_after_frames=2, max_faults=2)
        faults = ("connections", "drops", "truncations", "delays")
        _r1, first, _w1, _s1 = self._run_through_chaos(
            tmp_path / "a", seed=42, **knobs
        )
        _r2, second, _w2, _s2 = self._run_through_chaos(
            tmp_path / "b", seed=42, **knobs
        )
        assert {k: first[k] for k in faults} == {k: second[k] for k in faults}

    def test_budget_exhausts_into_connection_lost(self, tmp_path):
        # Unlimited faults + drop-every-frame: the client must give up
        # with the retryable error class after its whole backoff budget.
        with ServerThread(ServeConfig(pool_workers=1)) as handle:
            with ChaosProxyThread(ChaosConfig(
                target_host=handle.host, target_port=handle.port,
                seed=4, drop_after_frames=0,
            )) as chaos:
                with ServeClient(chaos.host, chaos.port) as client:
                    client._sleep = lambda _s: None
                    policy = BackoffPolicy(base_s=0.01, cap_s=0.02,
                                           jitter=0.0, max_attempts=2)
                    with pytest.raises(ServeConnectionLost):
                        client.run_resilient(SWEEP_JOB, policy=policy)


class TestOverlongLineResync:
    """Satellite: an over-long frame must not tear the session down."""

    def test_oversized_line_gets_error_frame_and_session_survives(self):
        with ServerThread(ServeConfig(pool_workers=1)) as handle:
            with socket.create_connection(
                (handle.host, handle.port), timeout=30.0,
            ) as sock:
                reader = sock.makefile("rb")
                # A single line well past the cap, then a normal ping.
                sock.sendall(b"x" * (MAX_LINE_BYTES + 4096) + b"\n")
                sock.sendall(encode_message({"type": "ping"}))
                error = json.loads(reader.readline())
                assert error["type"] == "error"
                assert error["code"] == "frame_too_long"
                assert error["resynced"] is True
                # The connection is still alive and correctly framed.
                pong = json.loads(reader.readline())
                assert pong["type"] == "pong"


class TestRejectionBackoff:
    """run_resilient honors retry_after_s instead of failing fast."""

    def test_rejected_job_waits_and_completes(self, tmp_path):
        # The blocker occupies the single pending slot until it finishes
        # computing, so the client genuinely has to wait it out: real
        # (small) sleeps, with a budget far past the blocker's runtime.
        blocker = {"kind": "ber", "frames": 120, "seed": 7}
        small = {"kind": "ber", "frames": 8, "seed": 3}
        policy = BackoffPolicy(base_s=0.01, cap_s=0.05, jitter=0.0,
                               max_attempts=1200)
        with ServerThread(ServeConfig(pool_workers=1, max_pending=1,
                                      retry_after_s=0.5)) as handle:
            with ServeClient(handle.host, handle.port) as block_client, \
                    ServeClient(handle.host, handle.port) as client:
                block_client.submit(blocker)
                waits = []
                result = client.run_resilient(
                    small, policy=policy,
                    on_wait=lambda a, d, r: waits.append((a, d, r)),
                )
                assert result.ber_point() is not None
                # At least one rejection happened, and its delay honored
                # the server's retry_after_s hint of 0.5 s — clamped to
                # the client's own 0.05 s cap, proving the hint was the
                # floor and the cap still won.
                rejected = [w for w in waits if w[2] == "rejected"]
                assert rejected != []
                assert all(d == 0.05 for _a, d, _r in rejected)


REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class ServeProcess:
    """A real ``repro serve`` subprocess (the thing we get to SIGKILL)."""

    def __init__(self, cache_dir, *extra_args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--pool-workers", "1", "--cache-dir", str(cache_dir),
             *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(REPO_ROOT),
        )
        self.host, self.port = self._scrape_address()

    def _scrape_address(self):
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            if line.startswith("serving on "):
                host, _, port = line.strip().rpartition(":")
                return host.split()[-1], int(port)
        raise AssertionError("serve subprocess never announced its address")

    def sigkill(self):
        self.proc.kill()  # SIGKILL: no atexit, no graceful anything
        self.proc.wait(timeout=30.0)

    def terminate(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGINT)
            try:
                self.proc.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=30.0)


@pytest.mark.slow
class TestSigkillResume:
    """The headline acceptance test: SIGKILL mid-sweep, restart --resume,
    and the reassembled stream is bit-identical with zero recomputation."""

    def test_sigkill_midsweep_then_resume_is_bit_identical(self, tmp_path):
        cache_dir = tmp_path / "crash-cache"
        specs = parse_job(SWEEP_JOB).points
        fingerprints = [spec.fingerprint() for spec in specs]
        store = ExperimentStore(cache_dir)
        journal = JobJournal(cache_dir)

        # Phase 1: submit against a real server process, wait until at
        # least one point has durably landed, then SIGKILL mid-sweep.
        first = ServeProcess(cache_dir)
        try:
            with ServeClient(first.host, first.port, timeout=120.0) as client:
                client_id = client.submit(SWEEP_JOB)
                wait_for(
                    lambda: any(store.contains(f) for f in fingerprints),
                    message="no point landed before the kill",
                )
                first.sigkill()
                # The client sees the crash as a retryable connection loss.
                with pytest.raises((ServeConnectionLost, ServeError, OSError)):
                    for _message in client.events(client_id):
                        pass
        finally:
            first.terminate()
        stored_before = sum(store.contains(f) for f in fingerprints)
        journaled = len(journal.incomplete())
        assert journaled == 1, "the crashed server must leave its WAL behind"

        # Phase 2: restart with --resume; the journal replays, missing
        # points compute, completed points come back from the store.
        second = ServeProcess(cache_dir, "--resume")
        try:
            with ServeClient(second.host, second.port, timeout=120.0) as client:
                client._sleep = lambda _s: None
                result = client.run_resilient(SWEEP_JOB, policy=FAST_POLICY)
                status = client.status()
            wait_for(lambda: not journal.incomplete(),
                     message="journal record never retired after resume")
        finally:
            second.terminate()

        # Bit-identity against a clean uninterrupted run.
        golden = clean_run(SWEEP_JOB)
        assert result.points == golden.points
        assert result.failed == []
        # No recomputation: the restarted server recomputed exactly the
        # points missing from the store, never the ones already in it.
        session = status["store"]["session"]
        assert status["counters"]["journal_replayed"] == 1
        assert session["misses"] == len(fingerprints) - stored_before
        assert session["hits"] >= stored_before
