"""MCU compute-cost accounting: FFT vs Goertzel at the tag (paper §4.1).

The paper argues "replacing the FFT with the Goertzel filter, a
point-by-point DFT evaluator, on the MCU can reduce power usage since
evaluating the entire FFT spectrum is not necessary."  This module makes
that argument quantitative: multiply-accumulate (MAC) counts per decoded
chirp for the candidate demodulation strategies, converted to an MCU duty
and energy figure.

Strategies compared
-------------------
* ``fft`` — a full N-point radix-2 FFT of the slot, then peak search over
  all bins: ``(N/2) log2(N)`` complex butterflies ≈ ``2 N log2(N)`` MACs.
* ``goertzel`` — one Goertzel recursion (1 MAC + 1 add per sample, counted
  as ~1 MAC) per *candidate beat*: ``N_slopes x N`` MACs; only the
  alphabet's beats are evaluated, not the whole spectrum.
* ``glrt`` — this package's gated DC+tone projector (3 basis rows):
  ``3 x N_slopes x N`` MACs, buying the duration evidence that removes the
  short-chirp error floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.cssk import CsskAlphabet
from repro.errors import ConfigurationError
from repro.utils.dsp import next_pow2
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class McuModel:
    """A small MCU's arithmetic characteristics.

    Parameters
    ----------
    clock_hz:
        Core clock (the paper runs 1 MHz to feed the ADC).
    cycles_per_mac:
        Cycles one multiply-accumulate costs (Cortex-M0-class: ~4 without
        a hardware MAC, 1 with).
    active_power_w:
        Core power while crunching (paper: ~40 mW at 1 MHz).
    """

    clock_hz: float = 1e6
    cycles_per_mac: float = 4.0
    active_power_w: float = 40e-3

    def __post_init__(self) -> None:
        ensure_positive("clock_hz", self.clock_hz)
        ensure_positive("cycles_per_mac", self.cycles_per_mac)
        ensure_positive("active_power_w", self.active_power_w)

    def time_for_macs_s(self, macs: float) -> float:
        """Wall time to execute ``macs`` multiply-accumulates."""
        if macs < 0:
            raise ConfigurationError(f"macs must be >= 0, got {macs}")
        return macs * self.cycles_per_mac / self.clock_hz

    def energy_for_macs_j(self, macs: float) -> float:
        """Energy to execute ``macs`` multiply-accumulates."""
        return self.time_for_macs_s(macs) * self.active_power_w


def macs_per_chirp(
    alphabet: CsskAlphabet, adc_rate_hz: float, strategy: str
) -> float:
    """Multiply-accumulate count to demodulate one chirp slot.

    ``strategy`` is one of ``fft``, ``goertzel``, ``glrt``.
    """
    ensure_positive("adc_rate_hz", adc_rate_hz)
    samples = max(int(round(alphabet.chirp_period_s * adc_rate_hz)), 1)
    candidates = alphabet.num_slopes
    if strategy == "fft":
        n_fft = next_pow2(samples)
        return 2.0 * n_fft * math.log2(n_fft) + n_fft  # butterflies + peak scan
    if strategy == "goertzel":
        return float(candidates * samples)
    if strategy == "glrt":
        return 3.0 * candidates * samples
    raise ConfigurationError(f"unknown strategy {strategy!r}")


@dataclass(frozen=True)
class ComputeReport:
    """Per-strategy cost summary for one configuration."""

    strategy: str
    macs_per_chirp: float
    mcu_duty: float
    energy_per_chirp_j: float

    def feasible(self) -> bool:
        """Whether the MCU keeps up with the chirp rate (duty <= 1)."""
        return self.mcu_duty <= 1.0


def analyze_strategies(
    alphabet: CsskAlphabet,
    *,
    adc_rate_hz: float = 1e6,
    mcu: McuModel | None = None,
) -> "list[ComputeReport]":
    """Cost report for every demodulation strategy on this alphabet.

    ``mcu_duty`` is compute time per chirp over the chirp period — above
    1.0 the MCU cannot decode in real time at that clock.
    """
    mcu = mcu or McuModel()
    reports = []
    for strategy in ("fft", "goertzel", "glrt"):
        macs = macs_per_chirp(alphabet, adc_rate_hz, strategy)
        time_s = mcu.time_for_macs_s(macs)
        reports.append(
            ComputeReport(
                strategy=strategy,
                macs_per_chirp=macs,
                mcu_duty=time_s / alphabet.chirp_period_s,
                energy_per_chirp_j=mcu.energy_for_macs_j(macs),
            )
        )
    return reports
