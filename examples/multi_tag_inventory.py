#!/usr/bin/env python3
"""Multi-tag inventory: one radar, several tags, addressed + broadcast downlink.

Demonstrates the Section-6 network extension:

* every enrolled tag gets a unique uplink modulation rate (its identity
  signature at the radar) chosen to avoid harmonic collisions,
* the downlink header carries an 8-bit address; tags decode every packet
  but only act on their own address or broadcast,
* two tags modulating SIMULTANEOUSLY in the same frame are separated and
  localized by their distinct signatures.

Run:  python examples/multi_tag_inventory.py
"""

import numpy as np

from repro.channel.link_budget import DownlinkBudget
from repro.core.downlink import DownlinkEncoder
from repro.core.localization import TagLocalizer
from repro.core.network import BROADCAST_ADDRESS, MultiTagNetwork
from repro.core.ber import random_bits
from repro.radar.config import XBAND_9GHZ
from repro.radar.fmcw import FMCWRadar, Scatterer
from repro.sim.scenario import default_office_scenario
from repro.tag.architecture import BiScatterTag
from repro.waveform.frame import FrameSchedule


def main() -> None:
    print("Multi-tag inventory round")
    print("=========================")
    scenario = default_office_scenario()
    alphabet = scenario.alphabet
    network = MultiTagNetwork(alphabet=alphabet)

    placements = [1.8, 3.6, 5.4]
    for distance in placements:
        endpoint = network.enroll(
            BiScatterTag(decoder_design=alphabet.decoder), range_m=distance
        )
        print(
            f"enrolled tag addr={endpoint.address} at {distance} m, "
            f"signature {endpoint.tag.modulator.modulation_rate_hz:.0f} Hz"
        )

    # ---- addressed downlink: configure tag 1 only --------------------------
    encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
    budget = DownlinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
    )
    command = random_bits(12, rng=5)
    packet = network.build_addressed_packet(1, command)
    frame = encoder.encode_packet(packet)

    print(f"\naddressed packet to tag 1 ({packet.num_slots} chirps):")
    acted = []
    for endpoint in network.endpoints:
        capture = endpoint.tag.frontend(budget).capture(
            frame, endpoint.range_m, rng=endpoint.address
        )
        decoded = endpoint.tag.decoder(alphabet).decode(
            capture, num_payload_symbols=packet.num_payload_symbols
        )
        address, payload = MultiTagNetwork.parse_address(decoded.bits)
        if endpoint in network.tags_accepting(address):
            acted.append(endpoint.address)
            ok = np.array_equal(payload[: command.size], command)
            print(f"  tag {endpoint.address}: ACTS on packet "
                  f"(payload {'intact' if ok else 'CORRUPT'})")
        else:
            print(f"  tag {endpoint.address}: hears addr={address}, ignores")
    assert acted == [1]

    # ---- broadcast: wake everyone ------------------------------------------
    broadcast = network.build_broadcast_packet(random_bits(4, rng=6))
    address, _ = MultiTagNetwork.parse_address(
        np.concatenate(
            [alphabet.bits_for_symbol(s) for s in broadcast.payload_symbols()]
        )
    )
    wake = [e.address for e in network.tags_accepting(address)]
    print(f"\nbroadcast packet: tags acting = {wake} "
          f"(address 0x{BROADCAST_ADDRESS:02X})")
    assert wake == [0, 1, 2]

    # ---- simultaneous uplink: all tags beacon in one frame ------------------
    print("\nsimultaneous uplink localization (all tags in one frame):")
    num_chirps = 256
    chirp = XBAND_9GHZ.chirp(80e-6)
    sensing = FrameSchedule.from_chirps([chirp] * num_chirps, alphabet.chirp_period_s)
    times = np.array([slot.start_time_s for slot in sensing.slots])
    scatterers = []
    for endpoint in network.endpoints:
        states = endpoint.tag.modulator.beacon_states(times)
        schedule = endpoint.tag.amplitude_schedule_for_states(
            states, XBAND_9GHZ.center_frequency_hz
        )
        scatterers.append(
            Scatterer(
                range_m=endpoint.range_m,
                rcs_m2=endpoint.tag.reflective_rcs_m2(XBAND_9GHZ.center_frequency_hz),
                amplitude_schedule=schedule,
            )
        )
    if_frame = FMCWRadar(XBAND_9GHZ).receive_frame(sensing, scatterers, rng=9)
    for endpoint in network.endpoints:
        localizer = TagLocalizer(endpoint.tag.modulator.modulation_rate_hz)
        result = localizer.localize(if_frame)
        error_cm = abs(result.range_m - endpoint.range_m) * 100
        print(
            f"  tag {endpoint.address} "
            f"({endpoint.tag.modulator.modulation_rate_hz:7.1f} Hz): "
            f"{result.range_m:6.3f} m (truth {endpoint.range_m} m, "
            f"err {error_cm:.2f} cm)"
        )
        assert error_cm < 10.0
    print("\nOK: addressing, broadcast, and simultaneous multi-tag uplink.")


if __name__ == "__main__":
    main()
