"""Angle-of-arrival estimation: 2D tag localization from a small RX array.

Millimetro-class systems pair the range estimate with an interferometric
azimuth from two (or a few) RX antennas; BiScatter inherits the same
capability because the tag's modulation signature isolates its cell in
every element's data.  With elements at positions ``x_m`` (in carrier
wavelengths) a tag at azimuth ``theta`` contributes phase
``2 pi x_m sin(theta)`` at element ``m``; the cross-element phase of the
tag's slow-time signature gives ``theta``.

Unambiguous field of view: ``|sin(theta)| < 1 / (2 d)`` for element
spacing ``d`` wavelengths — a half-wavelength pair covers +/-90 deg.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DetectionError
from repro.radar.if_correction import IFCorrectionResult
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class AngleEstimate:
    """Result of one AoA measurement."""

    angle_deg: float
    coherence: float  # |cross-correlation| / power, in [0, 1]

    def reliable(self, threshold: float = 0.7) -> bool:
        """Whether the cross-element phases were consistent enough."""
        return self.coherence >= threshold


def estimate_tag_angle(
    corrections: "list[IFCorrectionResult]",
    range_bin: int,
    rx_offsets_wavelengths: "list[float]",
) -> AngleEstimate:
    """Interferometric azimuth of the target occupying ``range_bin``.

    Parameters
    ----------
    corrections:
        IF-corrected (aligned) results, one per RX element, from the SAME
        frame (e.g. via ``FMCWRadar.receive_frame_multi_rx`` + one
        ``align_profiles_to_common_grid`` per element).
    range_bin:
        The tag's cell on the common grid (from signature detection on any
        element).
    rx_offsets_wavelengths:
        Element positions used in the simulation/receiver, in wavelengths.

    The estimator cross-correlates each adjacent element pair's slow-time
    series at the cell (DC removed so static clutter sharing the cell
    cancels), fits the per-baseline phase slope, and converts to angle.
    """
    if len(corrections) < 2:
        raise DetectionError("angle estimation needs at least two RX elements")
    if len(corrections) != len(rx_offsets_wavelengths):
        raise DetectionError(
            f"{len(corrections)} corrections for {len(rx_offsets_wavelengths)} elements"
        )
    series = []
    for correction in corrections:
        matrix = correction.aligned
        if not 0 <= range_bin < matrix.shape[1]:
            raise DetectionError(
                f"range_bin {range_bin} outside [0, {matrix.shape[1]})"
            )
        cell = matrix[:, range_bin]
        series.append(cell - cell.mean())

    phases = []
    weights = []
    coherences = []
    for index in range(len(series) - 1):
        baseline = rx_offsets_wavelengths[index + 1] - rx_offsets_wavelengths[index]
        if baseline == 0:
            raise DetectionError("co-located RX elements carry no angle information")
        cross = np.vdot(series[index], series[index + 1])  # sum conj(a) b
        power = np.sqrt(
            float(np.sum(np.abs(series[index]) ** 2))
            * float(np.sum(np.abs(series[index + 1]) ** 2))
        )
        if power <= 0:
            raise DetectionError("empty slow-time series at the requested cell")
        coherences.append(abs(cross) / power)
        phases.append(np.angle(cross) / (2.0 * np.pi * baseline))
        weights.append(abs(cross))
    sin_theta = float(np.average(phases, weights=weights))
    if not -1.0 <= sin_theta <= 1.0:
        raise DetectionError(
            f"phase slope implies sin(theta) = {sin_theta:.2f}: aliased baseline "
            "(element spacing too large for this arrival angle)"
        )
    return AngleEstimate(
        angle_deg=float(np.degrees(np.arcsin(sin_theta))),
        coherence=float(np.mean(coherences)),
    )


def unambiguous_fov_deg(spacing_wavelengths: float) -> float:
    """Half-angle of the alias-free field of view for a given spacing."""
    ensure_positive("spacing_wavelengths", spacing_wavelengths)
    limit = 1.0 / (2.0 * spacing_wavelengths)
    if limit >= 1.0:
        return 90.0
    return float(np.degrees(np.arcsin(limit)))
