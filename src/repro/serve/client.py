"""Synchronous serve client: submit jobs, reassemble streamed results.

:class:`ServeClient` speaks the NDJSON line protocol over a plain
blocking socket — no asyncio required on the client side — and
:class:`JobResult` reassembles the streamed per-point payloads into the
same result objects the batch CLI produces
(:class:`repro.sim.results.BerPoint`,
:class:`repro.sim.robustness.DegradationCurve`), in point-index order
regardless of completion order.  Because the server computes each point
through the exact batch code path under the same store fingerprint, a
reassembled result is bit-identical to a one-shot run of the same spec.

Self-healing: the client knows how to survive the failures a long
streaming job actually meets.  :class:`BackoffPolicy` is a *deterministic*
capped exponential schedule (same seed → same delays, reproducible in
tests and logs) that honors the server's ``retry_after_s`` backpressure
hint, and :meth:`ServeClient.run_resilient` drives it: on a lost
connection it reconnects, resubmits the same job object with a
``points`` subset naming only the indices it has not yet received
(partial-stream resume), and merges the gap into what it already holds.
Resubmission is idempotent by construction — the server keys points by
engine fingerprint, so a point computed before the drop is answered from
the in-flight registry or the store, never recomputed.
"""

from __future__ import annotations

import collections
import itertools
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import ServeConnectionLost, ServeError
from repro.serve.protocol import JobRejected, decode_line, encode_message

__all__ = ["BackoffPolicy", "ServeClient", "JobResult"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Deterministic capped exponential backoff for retryable failures.

    ``delay(attempt)`` is a pure function of ``(seed, attempt)``: the
    exponential ramp ``base_s * factor**attempt`` plus a seeded jitter
    fraction, clamped to ``cap_s``.  A server ``retry_after_s`` hint
    raises the delay to at least the hint (never above the cap — the cap
    is the client's own patience, not the server's).  Determinism is the
    point: a retry schedule that can be asserted in tests and reproduced
    from a log line beats one that cannot.
    """

    base_s: float = 0.25
    factor: float = 2.0
    cap_s: float = 30.0
    #: Max jitter fraction added on top of the ramp (0 = none).
    jitter: float = 0.1
    #: Retry budget: attempts *beyond* the first try.
    max_attempts: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s <= 0 or self.factor < 1.0 or self.cap_s < self.base_s:
            raise ValueError(
                "backoff requires base_s > 0, factor >= 1, cap_s >= base_s"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")

    def delay(self, attempt: int,
              retry_after_s: "float | None" = None) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        ramp = min(self.cap_s, self.base_s * self.factor ** attempt)
        if self.jitter:
            unit = random.Random(f"{self.seed}:{attempt}").random()
            ramp *= 1.0 + self.jitter * unit
        if retry_after_s is not None:
            ramp = max(ramp, float(retry_after_s))
        return min(ramp, self.cap_s)

    def schedule(self, attempts: "int | None" = None,
                 retry_after_s: "float | None" = None) -> "list[float]":
        """The full delay schedule (``max_attempts`` entries by default)."""
        count = self.max_attempts if attempts is None else attempts
        return [self.delay(attempt, retry_after_s) for attempt in range(count)]


@dataclass
class JobResult:
    """One completed job reassembled from its streamed points."""

    kind: str
    points: "list[dict[str, Any]]"
    #: Per-point delivery metadata: fingerprint / shared / cached flags.
    meta: "list[dict[str, Any]]"
    progress_frames: int = 0
    extra_messages: "list[dict[str, Any]]" = field(default_factory=list)
    #: Quarantined points, as ``{"index", "error"}`` (their slots in
    #: ``points``/``meta`` hold ``None``); empty on a fully clean job.
    failed: "list[dict[str, Any]]" = field(default_factory=list)

    def ber_points(self):
        """The points as :class:`repro.sim.results.BerPoint` objects."""
        from repro.sim.engine import _ber_point_from_payload

        if self.kind not in ("ber", "ber_sweep"):
            raise ServeError(f"job kind {self.kind!r} has no BER points")
        if self.failed:
            raise ServeError(
                f"{len(self.failed)} point(s) failed server-side: "
                f"indices {[item['index'] for item in self.failed]}"
            )
        return [_ber_point_from_payload(payload) for payload in self.points]

    def ber_point(self):
        """The single point of a ``ber`` job."""
        points = self.ber_points()
        if len(points) != 1:
            raise ServeError(f"expected exactly one point, got {len(points)}")
        return points[0]

    def degradation_curve(self):
        """A ``robustness`` job as the batch sweep's DegradationCurve."""
        from repro.sim.robustness import DegradationCurve

        if self.kind != "robustness":
            raise ServeError(f"job kind {self.kind!r} is not a robustness job")
        if self.failed:
            raise ServeError(
                f"{len(self.failed)} point(s) failed server-side: "
                f"indices {[item['index'] for item in self.failed]}"
            )
        curve = DegradationCurve()
        for payload in self.points:
            metrics = payload["metrics"]
            curve.severities.append(float(payload["severity"]))
            curve.downlink_ber.append(metrics["downlink_ber"])
            curve.uplink_ber.append(metrics["uplink_ber"])
            curve.erasure_rate.append(metrics["erasure_rate"])
            curve.median_ranging_error_m.append(
                metrics["median_ranging_error_m"]
            )
            curve.if_fallback_rate.append(metrics["if_fallback_rate"])
            # Older servers predate the metric; NaN = not recorded.
            curve.localization_rate.append(
                metrics.get("localization_rate", float("nan"))
            )
        return curve


class ServeClient:
    """Blocking line-protocol client for one server connection.

    ``run`` is the high-level call: submit, stream, reassemble.
    ``run_resilient`` is the same contract under failure: it retries
    rejections on the server's schedule and survives dropped connections
    by reconnecting and requesting only the missing points.
    ``submit`` + ``events`` expose the incremental frames for callers
    that want them live.  Frames for other in-flight jobs that arrive
    while waiting for a specific reply are buffered and re-delivered to
    their own consumers, so several jobs may overlap on one connection
    (streamed frames from an earlier job never corrupt a later submit's
    reply).
    """

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: "socket.socket | None" = None
        self._file = None
        self._ids = itertools.count(1)
        self._buffered: "collections.deque[dict[str, Any]]" = collections.deque()
        #: Injection point so tests exercise real schedules in zero time.
        self._sleep: "Callable[[float], None]" = time.sleep
        self.connect()

    # -- connection ----------------------------------------------------------

    def connect(self) -> None:
        """Open the TCP connection (no-op when already connected)."""
        if self._sock is not None:
            return
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rb")

    def _teardown(self) -> None:
        """Drop the connection and any half-received state."""
        self._buffered.clear()
        for closable in (self._file, self._sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass
        self._file = None
        self._sock = None

    def reconnect(self) -> None:
        """Tear the connection down and dial again."""
        self._teardown()
        self.connect()

    @property
    def connected(self) -> bool:
        return self._sock is not None

    # -- framing -------------------------------------------------------------

    def _send(self, message: "dict[str, Any]") -> None:
        if self._sock is None:
            raise ServeConnectionLost("not connected")
        try:
            self._sock.sendall(encode_message(message))
        except OSError as error:
            self._teardown()
            raise ServeConnectionLost(f"send failed: {error}") from None

    def _recv(self) -> "dict[str, Any]":
        if self._file is None:
            raise ServeConnectionLost("not connected")
        line = self._file.readline()
        if not line:
            self._teardown()
            raise ServeConnectionLost("server closed the connection")
        if not line.endswith(b"\n"):
            # EOF landed mid-frame: a torn line is *not* a frame, and
            # trusting it would hand half a JSON document to the caller.
            self._teardown()
            raise ServeConnectionLost("connection lost mid-frame (torn line)")
        return decode_line(line)

    def _take(self, match: "Callable[[dict[str, Any]], bool]"
              ) -> "dict[str, Any]":
        """The next frame satisfying ``match``; buffers everything else."""
        for position, message in enumerate(self._buffered):
            if match(message):
                del self._buffered[position]
                return message
        while True:
            message = self._recv()
            if match(message):
                return message
            self._buffered.append(message)

    # -- requests ------------------------------------------------------------

    def _submit(self, job: "dict[str, Any]", *, priority: int,
                job_id: "str | None",
                points: "list[int] | None") -> "tuple[str, dict[str, Any]]":
        """Send one submit; returns ``(client_id, accepted_reply)``."""
        client_id = job_id if job_id is not None else f"job-{next(self._ids)}"
        request: "dict[str, Any]" = {
            "type": "submit", "id": client_id, "job": job, "priority": priority,
        }
        if points is not None:
            request["points"] = points
        self._send(request)
        reply = self._take(lambda m: (
            m.get("type") in ("accepted", "rejected") and m.get("id") == client_id
        ) or m.get("type") == "error")
        if reply.get("type") == "accepted":
            return client_id, reply
        if reply.get("type") == "rejected":
            raise JobRejected(
                f"job rejected: {reply.get('reason')}",
                retry_after_s=reply.get("retry_after_s"),
            )
        raise ServeError(f"submit failed: {reply.get('message', reply)}")

    def submit(self, job: "dict[str, Any]", *, priority: int = 0,
               job_id: "str | None" = None) -> str:
        """Submit a job; returns its client id once the server accepts.

        Raises :class:`JobRejected` (with ``retry_after_s``) on
        backpressure and :class:`ServeError` on validation failure.
        """
        client_id, _reply = self._submit(
            job, priority=priority, job_id=job_id, points=None
        )
        return client_id

    def events(self, client_id: str) -> "Iterator[dict[str, Any]]":
        """Yield this job's frames (point/progress/...) through ``done``."""
        while True:
            message = self._take(lambda m: (
                m.get("id") == client_id
                or m.get("type") in ("error", "shutting_down")
            ))
            yield message
            if message.get("type") == "done" and message.get("id") == client_id:
                return
            if message.get("type") == "error":
                raise ServeError(f"server error: {message.get('message')}")
            if message.get("type") == "shutting_down":
                # Retryable by reconnecting once the server is back.
                raise ServeConnectionLost("server shut down mid-stream")

    def run(self, job: "dict[str, Any]", *, priority: int = 0,
            allow_failed: bool = False) -> JobResult:
        """Submit ``job`` and collect its streamed points into a JobResult.

        A server-quarantined point arrives as a ``failed`` frame; by
        default that raises once the stream completes (the job is not
        the result the caller asked for).  ``allow_failed=True`` returns
        the partial result instead, with ``None`` in the failed slots
        and the details under ``result.failed``.
        """
        client_id = self.submit(job, priority=priority)
        points: "dict[int, dict[str, Any]]" = {}
        meta: "dict[int, dict[str, Any]]" = {}
        failed: "dict[int, dict[str, Any]]" = {}
        progress = 0
        extra: "list[dict[str, Any]]" = []
        for message in self.events(client_id):
            consumed = self._absorb(
                message, None, points, meta, failed, extra
            )
            if consumed == "progress":
                progress += 1
        return self._assemble(
            job, points, meta, failed, progress, extra,
            allow_failed=allow_failed,
        )

    def run_resilient(
        self,
        job: "dict[str, Any]",
        *,
        priority: int = 0,
        policy: "BackoffPolicy | None" = None,
        on_wait: "Callable[[int, float, str], None] | None" = None,
        allow_failed: bool = False,
    ) -> JobResult:
        """``run`` that survives rejections, disconnects and restarts.

        Retryable failures — :class:`JobRejected` backpressure (waits at
        least the server's ``retry_after_s``), a lost/reset connection,
        a server ``shutting_down`` mid-stream, or a refused reconnect
        while the server restarts — trigger ``policy``'s deterministic
        backoff, at most ``policy.max_attempts`` *consecutive* times
        (any received point proves forward progress and resets the
        budget, so a long sweep may outlive many drops).  After a
        reconnect the client resubmits the same job object with a
        ``points`` subset naming only the indices still missing; points
        already streamed are never re-requested, and the server answers
        the resubmission from its in-flight registry or store, never by
        recomputing.  ``on_wait(attempt, delay_s, reason)`` observes
        each backoff step (the example client prints the schedule from
        it).  Validation errors are not retried — a job the server
        cannot parse today it cannot parse in ``delay_s`` seconds
        either.
        """
        if policy is None:
            policy = BackoffPolicy()
        total: "int | None" = None
        points: "dict[int, dict[str, Any]]" = {}
        meta: "dict[int, dict[str, Any]]" = {}
        failed: "dict[int, dict[str, Any]]" = {}
        progress = 0
        extra: "list[dict[str, Any]]" = []
        attempt = 0

        def back_off(reason: str, retry_after_s: "float | None") -> None:
            nonlocal attempt
            delay = policy.delay(attempt, retry_after_s)
            if on_wait is not None:
                on_wait(attempt, delay, reason)
            self._sleep(delay)
            attempt += 1

        while True:
            missing: "list[int] | None" = None
            if total is not None:
                missing = [
                    index for index in range(total)
                    if index not in points and index not in failed
                ]
                if not missing:
                    break
            try:
                self.connect()
                client_id, accepted = self._submit(
                    job, priority=priority, job_id=None, points=missing
                )
                if total is None:
                    total = int(accepted.get("points", 0))
                for message in self.events(client_id):
                    consumed = self._absorb(
                        message, missing, points, meta, failed, extra
                    )
                    if consumed == "progress":
                        progress += 1
                    if consumed in ("point", "failed"):
                        attempt = 0  # forward progress resets the budget
            except JobRejected as rejected:
                if attempt >= policy.max_attempts:
                    raise
                back_off("rejected", rejected.retry_after_s)
            except (ServeConnectionLost, OSError) as error:
                self._teardown()
                if attempt >= policy.max_attempts:
                    if isinstance(error, ServeConnectionLost):
                        raise
                    raise ServeConnectionLost(
                        f"connection failed: {error}"
                    ) from error
                back_off("disconnected", None)
        return self._assemble(
            job, points, meta, failed, progress, extra,
            allow_failed=allow_failed,
        )

    @staticmethod
    def _absorb(message: "dict[str, Any]", mapping: "list[int] | None",
                points: "dict[int, dict[str, Any]]",
                meta: "dict[int, dict[str, Any]]",
                failed: "dict[int, dict[str, Any]]",
                extra: "list[dict[str, Any]]") -> str:
        """Merge one streamed frame into the reassembly state.

        ``mapping`` translates a subset submission's stream indices back
        to original point positions (``None`` = identity).  Returns the
        frame class consumed: point / failed / progress / done / extra.
        """
        message_type = message.get("type")
        if message_type == "point":
            index = int(message["index"])
            if mapping is not None:
                index = mapping[index]
            points[index] = message["payload"]
            meta[index] = {
                "fingerprint": message.get("fingerprint"),
                "shared": message.get("shared"),
                "cached": message.get("cached"),
            }
            return "point"
        if message_type == "failed":
            index = int(message["index"])
            if mapping is not None:
                index = mapping[index]
            failed[index] = {"index": index, "error": message.get("error")}
            return "failed"
        if message_type == "progress":
            return "progress"
        if message_type == "done":
            return "done"
        extra.append(message)
        return "extra"

    @staticmethod
    def _assemble(job: "dict[str, Any]",
                  points: "dict[int, dict[str, Any]]",
                  meta: "dict[int, dict[str, Any]]",
                  failed: "dict[int, dict[str, Any]]",
                  progress: int, extra: "list[dict[str, Any]]",
                  *, allow_failed: bool) -> JobResult:
        resolved = sorted(set(points) | set(failed))
        if resolved != list(range(len(resolved))):
            raise ServeError(f"incomplete stream: got point indices {resolved}")
        if failed and not allow_failed:
            raise ServeError(
                f"{len(failed)} point(s) failed server-side: "
                + "; ".join(
                    f"#{index}: {failed[index]['error']}"
                    for index in sorted(failed)
                )
            )
        return JobResult(
            kind=str(job.get("kind", "")),
            points=[points.get(index) for index in resolved],
            meta=[meta.get(index) for index in resolved],
            progress_frames=progress,
            extra_messages=extra,
            failed=[failed[index] for index in sorted(failed)],
        )

    def _request(self, request: "dict[str, Any]", reply_type: str
                 ) -> "dict[str, Any]":
        """Send a control frame and wait for its (or an error) reply."""
        self._send(request)
        message = self._take(
            lambda m: m.get("type") in (reply_type, "error")
        )
        if message.get("type") != reply_type:
            raise ServeError(
                f"{request['type']} failed: {message.get('message', message)}"
            )
        return message

    def cancel(self, client_id: str) -> "dict[str, Any]":
        """Cancel an in-flight job; returns the ``cancelled`` frame."""
        return self._request({"type": "cancel", "id": client_id}, "cancelled")

    def status(self) -> "dict[str, Any]":
        return self._request({"type": "status"}, "status_ok")

    def metrics(self) -> "dict[str, Any]":
        return self._request({"type": "metrics"}, "metrics_ok")

    def ping(self) -> None:
        self._request({"type": "ping"}, "pong")

    def shutdown_server(self) -> None:
        """Ask the server to drain and stop (acknowledged before it does)."""
        self._request({"type": "shutdown"}, "shutting_down")

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
