"""Fig. 7 — range-profile ambiguity under CSSK and BiScatter's IF correction.

A frame whose chirp slopes vary (downlink payload) makes a static target's
IF frequency wander (Eq. 3), so naively stacked range profiles disagree
across chirps (Fig. 7a).  After converting bins to range per-chirp and
rescaling onto a common grid (Eq. 15), the target collapses back to one
range cell (Fig. 7b).  The bench measures the per-chirp apparent peak
range before and after correction.
"""

import numpy as np

from conftest import emit
from repro.radar.config import XBAND_9GHZ
from repro.radar.fmcw import FMCWRadar, Scatterer
from repro.radar.if_correction import (
    align_profiles_to_common_grid,
    uncorrected_bin_peak_ranges,
)
from repro.sim.results import format_table
from repro.waveform.frame import FrameSchedule

TARGET_RANGE_M = 4.0


def run_correction_study(paper_alphabet):
    rng = np.random.default_rng(7)
    symbols = rng.integers(0, paper_alphabet.num_data_symbols, 24)
    chirps = [
        XBAND_9GHZ.chirp(paper_alphabet.data_symbol_duration_s(int(s)))
        for s in symbols
    ]
    frame = FrameSchedule.from_chirps(chirps, paper_alphabet.chirp_period_s)
    target = Scatterer(range_m=TARGET_RANGE_M, rcs_m2=1e-2, gain_jitter_std=0.0)
    if_frame = FMCWRadar(XBAND_9GHZ).receive_frame(frame, [target], rng=1)

    apparent = uncorrected_bin_peak_ranges(if_frame, min_range_m=0.5)
    corrected = align_profiles_to_common_grid(if_frame).per_chirp_peak_ranges_m(
        min_range_m=0.5
    )
    return apparent, corrected


def test_fig7_if_correction(benchmark, paper_alphabet):
    apparent, corrected = benchmark.pedantic(
        run_correction_study, args=(paper_alphabet,), rounds=1, iterations=1
    )
    rows = [
        [
            "uncorrected (Fig. 7a)",
            f"{apparent.mean():.2f}",
            f"{np.ptp(apparent):.2f}",
            f"{apparent.std():.3f}",
        ],
        [
            "IF-corrected (Fig. 7b)",
            f"{corrected.mean():.2f}",
            f"{np.ptp(corrected):.2f}",
            f"{corrected.std():.3f}",
        ],
    ]
    table = format_table(
        ["processing", "mean peak range (m)", "peak spread (m)", "std (m)"], rows
    )
    table += f"\ntrue target range: {TARGET_RANGE_M:.2f} m over {apparent.size} mixed-slope chirps"
    emit("fig7_if_correction", table)

    # Paper shape: uncorrected readings are wildly inconsistent; corrected
    # ones agree with the ground truth across every slope.
    assert np.ptp(apparent) > 1.0
    assert np.ptp(corrected) < 0.1
    assert abs(np.median(corrected) - TARGET_RANGE_M) < 0.1
