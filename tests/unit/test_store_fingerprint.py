"""Canonical fingerprinting: stability, injectivity, clean refusals."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.radar.config import XBAND_9GHZ
from repro.store.fingerprint import (
    SCHEMA_VERSION,
    canonical_json,
    canonicalize,
    fingerprint,
)
from repro.utils.rng import SeedSpec


def module_level_evaluate(parameter, stream):
    return parameter


def another_evaluate(parameter, stream):
    return parameter


class CallableContext:
    def __init__(self, scale):
        self.scale = scale

    def __call__(self, parameter, stream):
        return self.scale * parameter


class TestCanonicalize:
    def test_dict_key_order_is_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_list_and_tuple_are_the_same_sequence(self):
        assert canonical_json((1, 2.5, "x")) == canonical_json([1, 2.5, "x"])

    def test_floats_are_exact_not_formatted(self):
        # 0.1 + 0.2 != 0.3 exactly; a scheme that formats with limited
        # precision could conflate them, float.hex() never does.
        assert canonical_json(0.1 + 0.2) != canonical_json(0.3)
        assert canonical_json(0.1 + 0.2) == canonical_json(0.30000000000000004)
        assert canonical_json(1.0) != canonical_json(1)  # float vs int distinct

    def test_nan_and_infinities(self):
        assert canonical_json(float("nan")) == canonical_json(float("nan"))
        assert canonical_json(float("inf")) != canonical_json(float("-inf"))

    def test_numpy_scalars_match_python_scalars(self):
        assert canonical_json(np.float64(2.5)) == canonical_json(2.5)
        assert canonical_json(np.int64(7)) == canonical_json(7)
        assert canonical_json(np.bool_(True)) == canonical_json(True)

    def test_ndarray_digest_is_content_addressed(self):
        a = canonicalize(np.arange(6.0))
        b = canonicalize(np.arange(6.0))
        c = canonicalize(np.arange(6.0) + 1e-12)
        assert a == b
        assert a != c
        assert a["shape"] == [6]

    def test_dataclass_includes_type_identity(self):
        spec = canonicalize(SeedSpec.from_rng(3))
        assert spec["__dataclass__"].endswith("SeedSpec")
        assert canonicalize(SeedSpec.from_rng(3)) != canonicalize(SeedSpec.from_rng(4))

    def test_nested_dataclasses_recurse(self):
        tree = canonicalize(XBAND_9GHZ)
        assert tree["__dataclass__"].endswith("RadarConfig")
        assert "antenna" in tree["fields"]

    def test_module_function_identity(self):
        tree = canonicalize(module_level_evaluate)
        assert tree["__callable__"].endswith("module_level_evaluate")
        assert canonicalize(module_level_evaluate) != canonicalize(another_evaluate)

    def test_callable_object_state_distinguishes_instances(self):
        assert canonicalize(CallableContext(2.0)) != canonicalize(CallableContext(3.0))
        assert canonicalize(CallableContext(2.0)) == canonicalize(CallableContext(2.0))

    def test_lambda_is_refused(self):
        with pytest.raises(StoreError):
            canonicalize(lambda p, s: p)

    def test_local_closure_is_refused(self):
        def local(parameter, stream):
            return parameter

        with pytest.raises(StoreError):
            canonicalize(local)

    def test_non_string_dict_keys_are_refused(self):
        with pytest.raises(StoreError):
            canonicalize({1: "x"})

    def test_unserializable_object_is_refused(self):
        with pytest.raises(StoreError):
            canonicalize(object())


class TestFingerprint:
    def test_stable_across_calls(self):
        unit = {"parameter": 3.0, "seed": SeedSpec.from_rng(7)}
        assert fingerprint("sweep-point", unit) == fingerprint("sweep-point", unit)

    def test_is_sha256_hex(self):
        digest = fingerprint("k", {"x": 1})
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_kind_separates_identical_payloads(self):
        assert fingerprint("a", {"x": 1}) != fingerprint("b", {"x": 1})

    def test_seed_changes_fingerprint(self):
        assert fingerprint("k", {"seed": SeedSpec.from_rng(0)}) != fingerprint(
            "k", {"seed": SeedSpec.from_rng(1)}
        )

    def test_child_spec_changes_fingerprint(self):
        root = SeedSpec.from_rng(0)
        assert fingerprint("k", {"seed": root.child(0)}) != fingerprint(
            "k", {"seed": root.child(1)}
        )

    def test_schema_version_changes_fingerprint(self):
        unit = {"x": 1}
        assert fingerprint("k", unit) != fingerprint(
            "k", unit, schema_version=SCHEMA_VERSION + 1
        )
