"""Angle-of-arrival estimation and multi-RX simulation."""

import numpy as np
import pytest

from repro.errors import DetectionError, SimulationError
from repro.radar.angle import estimate_tag_angle, unambiguous_fov_deg
from repro.radar.config import XBAND_9GHZ
from repro.radar.detection import detect_modulated_tag
from repro.radar.fmcw import FMCWRadar, Scatterer
from repro.radar.if_correction import align_profiles_to_common_grid
from repro.waveform.frame import FrameSchedule

PERIOD = 120e-6


def beacon_scene(theta_deg, num_chirps=128, rate=2000.0):
    chirp = XBAND_9GHZ.chirp(80e-6)
    frame = FrameSchedule.from_chirps([chirp] * num_chirps, PERIOD)
    times = np.arange(num_chirps) * PERIOD
    states = ((times * rate) % 1.0) < 0.5
    tag = Scatterer(
        range_m=3.0,
        rcs_m2=3e-3,
        angle_deg=theta_deg,
        amplitude_schedule=np.where(states, 1.0, 0.03),
    )
    clutterer = Scatterer(range_m=5.0, rcs_m2=0.5)
    return frame, [tag, clutterer]


def measure(theta_deg, offsets=(0.0, 0.5), rng=1):
    frame, scatterers = beacon_scene(theta_deg)
    frames = FMCWRadar(XBAND_9GHZ).receive_frame_multi_rx(
        frame, scatterers, rx_offsets_wavelengths=list(offsets), rng=rng
    )
    corrections = [align_profiles_to_common_grid(f) for f in frames]
    detection = detect_modulated_tag(
        corrections[0].aligned, corrections[0].range_grid_m, PERIOD, 2000.0
    )
    return estimate_tag_angle(corrections, detection.range_bin, list(offsets))


class TestMultiRxSimulation:
    def test_single_rx_equivalence(self):
        frame, scatterers = beacon_scene(0.0, num_chirps=8)
        radar = FMCWRadar(XBAND_9GHZ)
        single = radar.receive_frame(frame, scatterers, rng=3)
        multi = radar.receive_frame_multi_rx(
            frame, scatterers, rx_offsets_wavelengths=[0.0], rng=3
        )
        np.testing.assert_allclose(
            single.chirp_samples[0], multi[0].chirp_samples[0]
        )

    def test_element_count(self):
        frame, scatterers = beacon_scene(5.0, num_chirps=8)
        frames = FMCWRadar(XBAND_9GHZ).receive_frame_multi_rx(
            frame, scatterers, rx_offsets_wavelengths=[0.0, 0.5, 1.0], rng=0
        )
        assert len(frames) == 3

    def test_boresight_elements_identical_up_to_noise(self):
        frame, scatterers = beacon_scene(0.0, num_chirps=8)
        frames = FMCWRadar(XBAND_9GHZ).receive_frame_multi_rx(
            frame, scatterers, rx_offsets_wavelengths=[0.0, 0.5], rng=0, add_noise=False
        )
        np.testing.assert_allclose(
            frames[0].chirp_samples[0], frames[1].chirp_samples[0]
        )

    def test_off_boresight_elements_phase_shifted(self):
        frame, scatterers = beacon_scene(20.0, num_chirps=8)
        tag_only = [scatterers[0]]
        frames = FMCWRadar(XBAND_9GHZ).receive_frame_multi_rx(
            frame, tag_only, rx_offsets_wavelengths=[0.0, 0.5], rng=0, add_noise=False
        )
        expected = 2 * np.pi * 0.5 * np.sin(np.radians(20.0))
        measured = np.angle(
            np.vdot(frames[0].chirp_samples[0], frames[1].chirp_samples[0])
        )
        assert measured == pytest.approx(expected, abs=1e-6)

    def test_empty_rx_list_rejected(self):
        frame, scatterers = beacon_scene(0.0, num_chirps=4)
        with pytest.raises(SimulationError):
            FMCWRadar(XBAND_9GHZ).receive_frame_multi_rx(
                frame, scatterers, rx_offsets_wavelengths=[]
            )


class TestAngleEstimation:
    @pytest.mark.parametrize("theta", [0.0, 8.0, 12.0, -14.0])
    def test_recovers_angle_within_beam(self, theta):
        estimate = measure(theta)
        assert estimate.angle_deg == pytest.approx(theta, abs=1.0)

    def test_far_outside_beam_flagged_unreliable(self):
        # 35 deg is far outside the 18-deg radar beam: SNR collapses, and
        # the coherence metric must expose the estimate as untrustworthy.
        estimate = measure(35.0)
        assert not estimate.reliable()

    def test_coherence_high_at_boresight(self):
        estimate = measure(0.0)
        assert estimate.coherence > 0.95
        assert estimate.reliable()

    def test_three_element_array(self):
        estimate = measure(8.0, offsets=(0.0, 0.5, 1.0))
        assert estimate.angle_deg == pytest.approx(8.0, abs=1.0)

    def test_needs_two_elements(self):
        frame, scatterers = beacon_scene(0.0, num_chirps=16)
        frames = FMCWRadar(XBAND_9GHZ).receive_frame_multi_rx(
            frame, scatterers, rx_offsets_wavelengths=[0.0], rng=0
        )
        corrections = [align_profiles_to_common_grid(f) for f in frames]
        with pytest.raises(DetectionError):
            estimate_tag_angle(corrections, 10, [0.0])

    def test_range_bin_validated(self):
        frame, scatterers = beacon_scene(0.0, num_chirps=16)
        frames = FMCWRadar(XBAND_9GHZ).receive_frame_multi_rx(
            frame, scatterers, rx_offsets_wavelengths=[0.0, 0.5], rng=0
        )
        corrections = [align_profiles_to_common_grid(f) for f in frames]
        with pytest.raises(DetectionError):
            estimate_tag_angle(corrections, 10**9, [0.0, 0.5])


class TestFov:
    def test_half_wavelength_full_fov(self):
        assert unambiguous_fov_deg(0.5) == pytest.approx(90.0)

    def test_wider_spacing_narrower_fov(self):
        assert unambiguous_fov_deg(1.0) == pytest.approx(30.0, abs=0.1)
        assert unambiguous_fov_deg(2.0) < unambiguous_fov_deg(1.0)
