"""Store-backed sweeps and engines: incremental resumption, spy-counted.

The counters spied on here are module globals, NOT state on the evaluate
callables — callable-object state is folded into the point fingerprint,
so a counter stored there would make every run look like a new experiment.
"""

import numpy as np
import pytest

from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import (
    DownlinkTrialConfig,
    run_downlink_trials,
    run_localization_trials,
    run_uplink_snr_measurement,
)
from repro.sim.executor import ExecutionPlan, sweep_results_equal
from repro.sim.sweep import sweep, sweep_grid
from repro.store import ExperimentStore

#: module-global spy counters (see module docstring)
CALLS = {"count": 0}


def counted_double(parameter, stream):
    CALLS["count"] += 1
    return parameter * 2.0


def counted_noisy(parameter, stream):
    CALLS["count"] += 1
    return parameter + stream.normal()


def counted_grid(context, parameter, stream):
    CALLS["count"] += 1
    return context * 10.0 + parameter + stream.normal() * 0.01


@pytest.fixture()
def store(tmp_path):
    return ExperimentStore(tmp_path / "cache")


@pytest.fixture(autouse=True)
def reset_spy():
    CALLS["count"] = 0


class TestSweepResumption:
    def test_cold_then_warm_is_bit_identical_with_zero_calls(self, store):
        params = [1.0, 2.0, 3.0, 4.0]
        cold = sweep("s", params, counted_noisy, rng=7, store=store)
        assert CALLS["count"] == len(params)

        CALLS["count"] = 0
        warm = sweep("s", params, counted_noisy, rng=7, store=store)
        assert CALLS["count"] == 0
        assert sweep_results_equal(warm, cold)
        assert warm.metadata["_execution"]["backend"] == "cache"
        assert warm.metadata["_execution"]["store"]["hits"] == len(params)

    def test_store_matches_uncached_reference(self, store):
        params = [0.5, 1.5, 2.5]
        reference = sweep("s", params, counted_noisy, rng=3)
        cached = sweep("s", params, counted_noisy, rng=3, store=store)
        assert sweep_results_equal(cached, reference)

    def test_single_point_edit_recomputes_exactly_that_point(self, store):
        sweep("s", [1.0, 2.0, 3.0, 4.0], counted_noisy, rng=7, store=store)
        CALLS["count"] = 0

        edited = [1.0, 2.0, 3.5, 4.0]  # one value changed
        result = sweep("s", edited, counted_noisy, rng=7, store=store)
        assert CALLS["count"] == 1
        assert result.metadata["_execution"]["store"]["hits"] == 3
        assert result.metadata["_execution"]["store"]["misses"] == 1

        # Unchanged points keep their cached (bit-identical) values.
        reference = sweep("s", edited, counted_noisy, rng=7)
        assert sweep_results_equal(result, reference)

    def test_appending_points_computes_only_the_new_ones(self, store):
        sweep("s", [1.0, 2.0], counted_noisy, rng=7, store=store)
        CALLS["count"] = 0
        sweep("s", [1.0, 2.0, 3.0, 4.0], counted_noisy, rng=7, store=store)
        assert CALLS["count"] == 2

    def test_seed_change_invalidates_everything(self, store):
        sweep("s", [1.0, 2.0], counted_noisy, rng=7, store=store)
        CALLS["count"] = 0
        sweep("s", [1.0, 2.0], counted_noisy, rng=8, store=store)
        assert CALLS["count"] == 2

    def test_different_evaluate_does_not_collide(self, store):
        sweep("s", [1.0, 2.0], counted_double, rng=7, store=store)
        CALLS["count"] = 0
        result = sweep("s", [1.0, 2.0], counted_noisy, rng=7, store=store)
        assert CALLS["count"] == 2
        reference = sweep("s", [1.0, 2.0], counted_noisy, rng=7)
        assert sweep_results_equal(result, reference)

    def test_lambda_degrades_to_uncached_run(self, store):
        result = sweep("s", [1.0, 2.0], lambda p, s: p * 2, rng=0, store=store)
        assert result.values == [2.0, 4.0]
        assert result.metadata["_execution"]["store"]["status"].startswith("disabled")
        assert store.stats().entries == 0

    def test_process_workers_populate_a_reusable_cache(self, store):
        params = [1.0, 2.0, 3.0]
        parallel = sweep(
            "s", params, counted_noisy, rng=5,
            execution=ExecutionPlan(workers=2), store=store,
        )
        CALLS["count"] = 0
        warm = sweep("s", params, counted_noisy, rng=5, store=store)
        assert CALLS["count"] == 0
        reference = sweep("s", params, counted_noisy, rng=5)
        assert sweep_results_equal(parallel, reference)
        assert sweep_results_equal(warm, reference)


class TestSweepGridResumption:
    def test_grid_cold_then_warm(self, store):
        series = {"one": 1.0, "two": 2.0}
        parameters = [0.1, 0.2]
        cold = sweep_grid(series, parameters, counted_grid, rng=11, store=store)
        assert CALLS["count"] == 4
        CALLS["count"] = 0
        warm = sweep_grid(series, parameters, counted_grid, rng=11, store=store)
        assert CALLS["count"] == 0
        for warm_series, cold_series in zip(warm, cold):
            assert sweep_results_equal(warm_series, cold_series)

    def test_grid_parameter_extension_is_incremental(self, store):
        series = {"one": 1.0, "two": 2.0}
        sweep_grid(series, [0.1, 0.2], counted_grid, rng=11, store=store)
        CALLS["count"] = 0
        sweep_grid(series, [0.1, 0.2, 0.3], counted_grid, rng=11, store=store)
        assert CALLS["count"] == 2  # only the new 0.3 point, per series


class TestEngineStorePaths:
    def test_downlink_trials_cold_warm(self, store, office_scenario):
        config = DownlinkTrialConfig(
            radar_config=XBAND_9GHZ,
            alphabet=office_scenario.alphabet,
            distance_m=1.0,
            num_frames=3,
            payload_symbols_per_frame=4,
        )
        reference = run_downlink_trials(config, rng=0)
        cold = run_downlink_trials(config, rng=0, store=store)
        assert store.session_misses == 1
        warm = run_downlink_trials(config, rng=0, store=store)
        assert store.session_hits == 1
        for point in (cold, warm):
            assert point.ber == reference.ber
            assert point.bits_total == reference.bits_total
            assert point.extra == reference.extra

    def test_uplink_snr_cold_warm(self, store, office_scenario):
        kwargs = dict(
            tag_range_m=1.5, num_chirps=64, num_trials=2, rng=1, store=store
        )
        args = (XBAND_9GHZ, office_scenario.tag.modulator, office_scenario.tag.van_atta)
        reference = run_uplink_snr_measurement(
            *args, **{**kwargs, "store": None}
        )
        cold = run_uplink_snr_measurement(*args, **kwargs)
        warm = run_uplink_snr_measurement(*args, **kwargs)
        assert cold == reference
        assert warm == reference
        assert store.session_hits == 1

    def test_localization_trials_round_trip_arrays(self, store, office_scenario):
        kwargs = dict(
            tag_range_m=2.75,
            varying_slopes=True,
            num_frames=2,
            num_chirps=64,
            rng=3,
        )
        args = (
            XBAND_9GHZ,
            office_scenario.alphabet,
            office_scenario.tag.modulator,
            office_scenario.tag.van_atta,
        )
        reference = run_localization_trials(*args, **kwargs)
        cold = run_localization_trials(*args, **kwargs, store=store)
        warm = run_localization_trials(*args, **kwargs, store=store)
        np.testing.assert_array_equal(cold, reference)
        # The warm path reloads the full error array from the npz sidecar.
        np.testing.assert_array_equal(warm, reference)
        assert store.session_hits == 1

    def test_engine_verify_recomputes_bit_exactly(self, store, office_scenario):
        config = DownlinkTrialConfig(
            radar_config=XBAND_9GHZ,
            alphabet=office_scenario.alphabet,
            distance_m=1.0,
            num_frames=2,
            payload_symbols_per_frame=4,
        )
        run_downlink_trials(config, rng=0, store=store)
        report = store.verify(sample=1)
        assert report.ok()
        assert report.recomputed == 1


class TestSweepProgressEvents:
    """``sweep.progress`` accounting on warm caches (the PR-8 fix).

    Before the fix the reporter counted only dispatched chunks, so a
    half-warm sweep restarted its done/total fraction from zero and the
    stream never reached ``total``.  Hits now pre-fill ``done`` and the
    events carry explicit ``dispatched``/``cached`` fields.
    """

    def _progress_events(self, stream, *, total):
        import json

        return [
            record
            for record in map(json.loads, stream.getvalue().splitlines())
            if record.get("event") == "sweep.progress"
            and record.get("total") == total
        ]

    def test_half_warm_sweep_folds_hits_into_done(self, store):
        import io

        from repro import obs
        from repro.sim.executor import ExecutionPlan

        sweep("s", [1.0, 2.0], counted_noisy, rng=7, store=store)
        stream = io.StringIO()
        obs.configure(log_format="json", stream=stream, export_env=False)
        try:
            sweep(
                "s", [1.0, 2.0, 3.0, 4.0], counted_noisy, rng=7,
                store=store, execution=ExecutionPlan(chunk_size=1),
            )
        finally:
            obs.reset()
        events = self._progress_events(stream, total=4)
        # Two misses, chunk_size=1: done climbs from the 2 cached points
        # straight to the full total — never restarting at zero.
        assert [event["done"] for event in events] == [3, 4]
        assert all(event["dispatched"] == 2 for event in events)
        assert all(event["cached"] == 2 for event in events)
        assert events[-1]["done"] == events[-1]["total"]

    def test_cold_sweep_reports_zero_cached(self, store):
        import io

        from repro import obs
        from repro.sim.executor import ExecutionPlan

        stream = io.StringIO()
        obs.configure(log_format="json", stream=stream, export_env=False)
        try:
            sweep(
                "s", [1.0, 2.0, 3.0], counted_noisy, rng=9,
                store=store, execution=ExecutionPlan(chunk_size=1),
            )
        finally:
            obs.reset()
        events = self._progress_events(stream, total=3)
        assert [event["done"] for event in events] == [1, 2, 3]
        assert all(event["cached"] == 0 for event in events)
        assert all(event["dispatched"] == 3 for event in events)


class TestSweepGridOnPoint:
    def test_on_point_streams_every_grid_cell(self):
        calls = []

        def hook(series_label, index, parameter, value):
            calls.append((series_label, index, parameter, value))

        series = {"one": 1.0, "two": 2.0}
        parameters = [0.1, 0.2, 0.3]
        results = sweep_grid(series, parameters, counted_grid, rng=11,
                             on_point=hook)
        assert len(calls) == len(series) * len(parameters)
        # Series arrive in declaration order; values match the results.
        assert [label for label, *_ in calls[:3]] == ["one"] * 3
        assert [label for label, *_ in calls[3:]] == ["two"] * 3
        by_series = {result.label: result for result in results}
        for label, index, parameter, value in calls:
            assert parameter == parameters[index]
            assert value == by_series[label].values[index]

    def test_on_point_fires_for_cache_hits_too(self, store):
        series = {"one": 1.0, "two": 2.0}
        parameters = [0.1, 0.2]
        sweep_grid(series, parameters, counted_grid, rng=11, store=store)

        calls = []
        sweep_grid(
            series, parameters, counted_grid, rng=11, store=store,
            on_point=lambda label, index, parameter, value:
                calls.append((label, index)),
        )
        assert calls == [("one", 0), ("one", 1), ("two", 0), ("two", 1)]
