"""Golden regression pins for the Fig. 12 / Fig. 13 operating points.

EXPERIMENTS.md publishes numbers from these benches, so engine refactors
must not silently shift them.  Each case here pins the *exact* seed-0
Monte-Carlo outcome (bit errors, total bits, BER, link SNR) of one
operating point at a reduced trial count — small enough to run in the
tier-1 suite, sensitive enough that a change anywhere in the
encode/channel/decode pipeline (or in trial seeding) flips a pin.

The pinned values were generated at the commit that introduced the
parallel executor and match the pre-executor serial implementation bit
for bit (index-keyed seeding reproduces ``Generator.spawn`` exactly).
If a pin moves, either a bug crept into the pipeline or a deliberate
physics/DSP change needs the goldens — and EXPERIMENTS.md — re-baselined
in the same commit.

Every case is also re-run under a 2-worker plan: the goldens double as a
cross-backend anchor, so "parallel == serial" cannot quietly become
"parallel == parallel".
"""

import pytest

from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
from repro.sim.executor import ExecutionPlan

NUM_FRAMES = 12
SYMBOLS_PER_FRAME = 8
SEED = 0

# (case id, bandwidth_hz, symbol_bits, delta_l_inches, distance_m,
#  bit_errors, bits_total, ber, video_snr_db)
GOLDEN_POINTS = [
    # Fig. 12 — BER vs symbol size x bandwidth, tag at 4 m.
    ("fig12_250MHz_3bit", 250e6, 3, 45.0, 4.0, 0, 288, 0.0, 23.03888478145963),
    ("fig12_500MHz_5bit", 500e6, 5, 45.0, 4.0, 0, 480, 0.0, 22.788926810379543),
    ("fig12_1GHz_5bit", 1e9, 5, 45.0, 4.0, 0, 480, 0.0, 22.299548553699097),
    (
        "fig12_1GHz_7bit",
        1e9, 7, 45.0, 4.0,
        1, 672, 0.001488095238095238, 22.299548553699097,
    ),
    # Fig. 13 — BER vs distance at 1 GHz, rate series via delta-L.
    ("fig13_3bit_7m", 1e9, 3, 18.0, 7.0, 0, 288, 0.0, 12.57802660624732),
    ("fig13_5bit_7m", 1e9, 5, 45.0, 7.0, 0, 480, 0.0, 12.57802660624732),
    (
        "fig13_7bit_7m",
        1e9, 7, 60.0, 7.0,
        13, 672, 0.019345238095238096, 12.57802660624732,
    ),
    (
        "fig13_5bit_8m",
        1e9, 5, 45.0, 8.0,
        1, 480, 0.0020833333333333333, 10.258348727139847,
    ),
]


def _run_point(bandwidth_hz, symbol_bits, delta_l_inches, distance_m, execution=None):
    alphabet = CsskAlphabet.design(
        bandwidth_hz=bandwidth_hz,
        decoder=DecoderDesign.from_inches(delta_l_inches),
        symbol_bits=symbol_bits,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )
    config = DownlinkTrialConfig(
        radar_config=XBAND_9GHZ.with_bandwidth(bandwidth_hz),
        alphabet=alphabet,
        distance_m=distance_m,
        num_frames=NUM_FRAMES,
        payload_symbols_per_frame=SYMBOLS_PER_FRAME,
    )
    return run_downlink_trials(config, rng=SEED, execution=execution)


@pytest.mark.parametrize(
    "case_id, bandwidth_hz, symbol_bits, delta_l_inches, distance_m, "
    "bit_errors, bits_total, ber, video_snr_db",
    GOLDEN_POINTS,
    ids=[case[0] for case in GOLDEN_POINTS],
)
def test_golden_point_serial(
    case_id, bandwidth_hz, symbol_bits, delta_l_inches, distance_m,
    bit_errors, bits_total, ber, video_snr_db,
):
    point = _run_point(bandwidth_hz, symbol_bits, delta_l_inches, distance_m)
    assert point.bit_errors == bit_errors
    assert point.bits_total == bits_total
    assert point.ber == ber  # exact: same integer division, same order
    assert point.extra["video_snr_db"] == video_snr_db


@pytest.mark.parametrize(
    "case_id, bandwidth_hz, symbol_bits, delta_l_inches, distance_m, "
    "bit_errors, bits_total, ber, video_snr_db",
    [GOLDEN_POINTS[3], GOLDEN_POINTS[6]],  # the error-bearing, most sensitive pins
    ids=["fig12_1GHz_7bit", "fig13_7bit_7m"],
)
def test_golden_point_parallel_matches(
    case_id, bandwidth_hz, symbol_bits, delta_l_inches, distance_m,
    bit_errors, bits_total, ber, video_snr_db,
):
    point = _run_point(
        bandwidth_hz, symbol_bits, delta_l_inches, distance_m,
        execution=ExecutionPlan(workers=2, chunk_size=3),
    )
    assert point.bit_errors == bit_errors
    assert point.bits_total == bits_total
    assert point.ber == ber
    assert point.extra["video_snr_db"] == video_snr_db


@pytest.mark.parametrize(
    "case_id, bandwidth_hz, symbol_bits, delta_l_inches, distance_m, "
    "bit_errors, bits_total, ber, video_snr_db",
    [GOLDEN_POINTS[3], GOLDEN_POINTS[6], GOLDEN_POINTS[7]],
    ids=["fig12_1GHz_7bit", "fig13_7bit_7m", "fig13_5bit_8m"],
)
def test_golden_point_batched_matches(
    case_id, bandwidth_hz, symbol_bits, delta_l_inches, distance_m,
    bit_errors, bits_total, ber, video_snr_db,
):
    """The batched fast path reproduces the same seed-0 pins, any workers.

    This anchors ``batch_frames=True`` to the *same* golden numbers the
    per-frame oracle pins — batched serial and batched 2-worker both —
    so a fast-path regression cannot hide behind its own baseline.
    """
    for execution in (
        ExecutionPlan(batch_frames=True),
        ExecutionPlan(batch_frames=True, workers=2, chunk_size=3),
    ):
        point = _run_point(
            bandwidth_hz, symbol_bits, delta_l_inches, distance_m,
            execution=execution,
        )
        assert point.bit_errors == bit_errors
        assert point.bits_total == bits_total
        assert point.ber == ber
        assert point.extra["video_snr_db"] == video_snr_db


# -- adaptive Monte-Carlo anchors (PR 8) -------------------------------------
#
# Seed-0 pins for the sequential-stopping path.  Because trial seeds are
# index-keyed, the adaptive trajectory (frames consumed, per-round CI) is
# as deterministic as the fixed-budget pins above — and must stay
# bit-exact across worker counts.  The error-bearing fig13 point runs to
# its cap; the clean fig12 point stops at min_frames via the zero-errors
# rule, anchoring the early exit itself.

ADAPTIVE_MAX_FRAMES = 24
ADAPTIVE_GOLDEN = [
    # (case id, bandwidth_hz, symbol_bits, delta_l_inches, distance_m,
    #  trajectory dict)
    (
        "fig13_7bit_7m_adaptive",
        1e9, 7, 60.0, 7.0,
        {
            "frames": 24, "rounds": 6, "errors": 31, "bits": 1344,
            "ci_low": 0.0162964385354024, "ci_high": 0.03255311894764364,
            "rel_width": 0.7048057572274913, "reason": "cap",
        },
    ),
    (
        "fig12_1GHz_5bit_adaptive",
        1e9, 5, 45.0, 4.0,
        {
            "frames": 4, "rounds": 1, "errors": 0, "bits": 160,
            "ci_low": 0.0, "ci_high": 0.02344619517150518,
            "rel_width": None, "reason": "zero-errors",
        },
    ),
]


def _run_adaptive_point(
    bandwidth_hz, symbol_bits, delta_l_inches, distance_m, execution=None
):
    from repro.sim.adaptive import AdaptiveConfig

    alphabet = CsskAlphabet.design(
        bandwidth_hz=bandwidth_hz,
        decoder=DecoderDesign.from_inches(delta_l_inches),
        symbol_bits=symbol_bits,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )
    config = DownlinkTrialConfig(
        radar_config=XBAND_9GHZ.with_bandwidth(bandwidth_hz),
        alphabet=alphabet,
        distance_m=distance_m,
        num_frames=ADAPTIVE_MAX_FRAMES,
        payload_symbols_per_frame=SYMBOLS_PER_FRAME,
    )
    adaptive = AdaptiveConfig(
        target_rel_width=0.6, min_frames=4,
        max_frames=ADAPTIVE_MAX_FRAMES, batch_frames=4,
    )
    return run_downlink_trials(
        config, rng=SEED, execution=execution, adaptive=adaptive
    )


@pytest.mark.parametrize(
    "case_id, bandwidth_hz, symbol_bits, delta_l_inches, distance_m, trajectory",
    ADAPTIVE_GOLDEN,
    ids=[case[0] for case in ADAPTIVE_GOLDEN],
)
def test_golden_adaptive_trajectory(
    case_id, bandwidth_hz, symbol_bits, delta_l_inches, distance_m, trajectory
):
    point = _run_adaptive_point(
        bandwidth_hz, symbol_bits, delta_l_inches, distance_m
    )
    assert point.extra["adaptive"] == trajectory
    assert point.bit_errors == trajectory["errors"]
    assert point.bits_total == trajectory["bits"]


@pytest.mark.parametrize("workers", [2, 4])
def test_golden_adaptive_worker_matrix(workers):
    """The error-bearing adaptive pin is bit-exact under process pools."""
    case = ADAPTIVE_GOLDEN[0]
    _, bandwidth_hz, symbol_bits, delta_l_inches, distance_m, trajectory = case
    point = _run_adaptive_point(
        bandwidth_hz, symbol_bits, delta_l_inches, distance_m,
        execution=ExecutionPlan(workers=workers, chunk_size=2),
    )
    assert point.extra["adaptive"] == trajectory
    assert point.bit_errors == trajectory["errors"]


def test_golden_adaptive_degenerate_equals_fixed_pin():
    """``target_rel_width=0`` with the cap at the golden budget reproduces
    the fixed fig13_7bit_7m pin exactly (12 frames, 13/672)."""
    from repro.sim.adaptive import AdaptiveConfig

    alphabet = CsskAlphabet.design(
        bandwidth_hz=1e9,
        decoder=DecoderDesign.from_inches(60.0),
        symbol_bits=7,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )
    config = DownlinkTrialConfig(
        radar_config=XBAND_9GHZ.with_bandwidth(1e9),
        alphabet=alphabet,
        distance_m=7.0,
        num_frames=NUM_FRAMES,
        payload_symbols_per_frame=SYMBOLS_PER_FRAME,
    )
    degenerate = AdaptiveConfig(
        target_rel_width=0.0, min_frames=1,
        max_frames=NUM_FRAMES, batch_frames=5,
    )
    point = run_downlink_trials(config, rng=SEED, adaptive=degenerate)
    assert point.bit_errors == 13
    assert point.bits_total == 672
    assert point.ber == 0.019345238095238096
    assert point.extra["adaptive"]["reason"] == "cap"
