"""mmTag baseline (reference [32]): uplink-only mmWave backscatter.

mmTag tags modulate radar reflections to carry data to the radar but have
no downlink receiver and (per Table 1) no localization function.  The
uplink path reuses this package's backscatter machinery with fixed-slope
frames; the tag is write-blind — any configuration change needs physical
access, which is exactly the limitation BiScatter targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import SystemCapabilities
from repro.channel.multipath import Clutter
from repro.components.van_atta import VanAttaArray
from repro.core.uplink import UplinkDecoder, UplinkResult
from repro.radar.config import RadarConfig
from repro.radar.fmcw import FMCWRadar, Scatterer
from repro.tag.modulator import ModulationScheme, UplinkModulator
from repro.utils.rng import resolve_rng
from repro.utils.validation import ensure_positive
from repro.waveform.frame import FrameSchedule


@dataclass
class MmTagSystem:
    """An mmTag-style uplink-only backscatter link."""

    radar_config: RadarConfig
    modulation_rate_hz: float = 2000.0
    chirp_period_s: float = 120e-6
    chirp_duration_s: float = 80e-6
    chirps_per_bit: int = 32
    scheme: ModulationScheme = ModulationScheme.FSK
    van_atta: VanAttaArray = field(default_factory=VanAttaArray)

    def __post_init__(self) -> None:
        ensure_positive("modulation_rate_hz", self.modulation_rate_hz)

    @staticmethod
    def capabilities() -> SystemCapabilities:
        """Table 1 row."""
        return SystemCapabilities(
            name="mmTag",
            uplink_comm=True,
            downlink_comm=False,
            tag_localization=False,
            integrated_sensing_and_comms=False,
            commercial_radar_compatible=True,
        )

    def modulator(self) -> UplinkModulator:
        """The tag's uplink modulator."""
        return UplinkModulator(
            modulation_rate_hz=self.modulation_rate_hz,
            chirp_period_s=self.chirp_period_s,
            chirps_per_bit=self.chirps_per_bit,
            scheme=self.scheme,
        )

    def uplink_frame(self, num_bits: int) -> FrameSchedule:
        """Fixed-slope frame sized for ``num_bits`` uplink bits."""
        if num_bits < 1:
            raise ValueError(f"num_bits must be >= 1, got {num_bits}")
        num_chirps = num_bits * self.chirps_per_bit
        chirp = self.radar_config.chirp(self.chirp_duration_s)
        return FrameSchedule.from_chirps([chirp] * num_chirps, self.chirp_period_s)

    def transmit_uplink(
        self,
        bits: np.ndarray,
        tag_range_m: float,
        *,
        clutter: Clutter | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> UplinkResult:
        """End-to-end uplink: tag modulates, radar decodes."""
        ensure_positive("tag_range_m", tag_range_m)
        payload = np.asarray(bits, dtype=np.uint8)
        generator = resolve_rng(rng)
        frame = self.uplink_frame(payload.size)
        modulator = self.modulator()
        times = np.array([slot.start_time_s for slot in frame.slots])
        states = modulator.states_for_bits(payload, times)
        frequency = self.radar_config.center_frequency_hz
        on_rcs, off_rcs = self.van_atta.modulated_rcs_amplitudes(frequency)
        schedule = np.where(states, 1.0, float(np.sqrt(off_rcs / on_rcs)))
        scatterers = [
            Scatterer(
                range_m=tag_range_m,
                rcs_m2=self.van_atta.rcs_m2(frequency),
                amplitude_schedule=schedule,
            )
        ]
        env = clutter or Clutter()
        scatterers += [
            Scatterer(range_m=r.range_m, rcs_m2=r.rcs_m2, angle_deg=r.angle_deg)
            for r in env.reflectors
        ]
        radar = FMCWRadar(self.radar_config)
        if_frame = radar.receive_frame(frame, scatterers, rng=generator)
        decoder = UplinkDecoder(modulator)
        return decoder.decode(if_frame, num_bits=payload.size)
