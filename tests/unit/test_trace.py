"""Record/replay traces: exact round-trips, safety, error handling."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.radar.config import XBAND_9GHZ
from repro.radar.fmcw import FMCWRadar, Scatterer
from repro.sim.trace import load_capture, load_if_frame, save_capture, save_if_frame
from repro.tag.frontend import TagCapture
from repro.waveform.frame import FrameSchedule


@pytest.fixture
def if_frame():
    chirps = [XBAND_9GHZ.chirp(d) for d in (40e-6, 80e-6, 96e-6)]
    frame = FrameSchedule.from_chirps(chirps, 120e-6, symbols=[None, 3, 7])
    target = Scatterer(range_m=3.0, rcs_m2=1e-2)
    return FMCWRadar(XBAND_9GHZ).receive_frame(frame, [target], rng=0)


class TestIfFrameRoundtrip:
    def test_exact_samples(self, if_frame, tmp_path):
        path = tmp_path / "frame.npz"
        save_if_frame(path, if_frame)
        loaded = load_if_frame(path)
        assert loaded.num_chirps == if_frame.num_chirps
        for original, restored in zip(if_frame.chirp_samples, loaded.chirp_samples):
            np.testing.assert_array_equal(original, restored)

    def test_schedule_restored(self, if_frame, tmp_path):
        path = tmp_path / "frame.npz"
        save_if_frame(path, if_frame)
        loaded = load_if_frame(path)
        assert loaded.sample_rate_hz == if_frame.sample_rate_hz
        assert loaded.frame.symbols == (None, 3, 7)
        for a, b in zip(loaded.frame.slots, if_frame.frame.slots):
            assert a.chirp.duration_s == b.chirp.duration_s
            assert a.start_time_s == b.start_time_s

    def test_replay_processes_identically(self, if_frame, tmp_path):
        from repro.radar.if_correction import align_profiles_to_common_grid

        path = tmp_path / "frame.npz"
        save_if_frame(path, if_frame)
        loaded = load_if_frame(path)
        live = align_profiles_to_common_grid(if_frame)
        replay = align_profiles_to_common_grid(loaded)
        np.testing.assert_array_equal(live.aligned, replay.aligned)


class TestCaptureRoundtrip:
    def test_with_frame(self, tmp_path):
        chirps = [XBAND_9GHZ.chirp(50e-6)] * 2
        frame = FrameSchedule.from_chirps(chirps, 120e-6)
        capture = TagCapture(
            samples=np.random.default_rng(0).normal(size=240),
            sample_rate_hz=1e6,
            frame=frame,
        )
        path = tmp_path / "capture.npz"
        save_capture(path, capture)
        loaded = load_capture(path)
        np.testing.assert_array_equal(loaded.samples, capture.samples)
        assert loaded.frame is not None
        assert len(loaded.frame) == 2

    def test_without_frame(self, tmp_path):
        capture = TagCapture(samples=np.ones(16), sample_rate_hz=2e6)
        path = tmp_path / "bare.npz"
        save_capture(path, capture)
        loaded = load_capture(path)
        assert loaded.frame is None
        assert loaded.sample_rate_hz == 2e6

    def test_kind_mismatch_rejected(self, if_frame, tmp_path):
        path = tmp_path / "frame.npz"
        save_if_frame(path, if_frame)
        with pytest.raises(SimulationError, match=str(path)):
            load_capture(path)

    def test_capture_not_an_if_frame(self, tmp_path):
        capture = TagCapture(samples=np.ones(16), sample_rate_hz=2e6)
        path = tmp_path / "c.npz"
        save_capture(path, capture)
        with pytest.raises(SimulationError, match=str(path)):
            load_if_frame(path)

    def test_version_error_names_file(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez_compressed(
            path,
            kind=np.array(["capture"]),
            format_version=np.array([999]),
            sample_rate_hz=np.array([2e6]),
            samples=np.ones(4),
            has_frame=np.array([False]),
        )
        with pytest.raises(SimulationError, match=str(path)):
            load_capture(path)
