"""Noise models: thermal floor, receiver noise figure, AWGN injection.

SNR bookkeeping convention: all SNRs are power ratios in dB over the noise
power integrated across the stated bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import BOLTZMANN, REFERENCE_TEMPERATURE_K
from repro.errors import ConfigurationError
from repro.utils.rng import resolve_rng
from repro.utils.units import db_to_power_ratio, watts_to_dbm
from repro.utils.validation import ensure_positive


def thermal_noise_power_dbm(
    bandwidth_hz: float, *, temperature_k: float = REFERENCE_TEMPERATURE_K
) -> float:
    """Thermal noise power ``k T B`` in dBm."""
    ensure_positive("bandwidth_hz", bandwidth_hz)
    ensure_positive("temperature_k", temperature_k)
    return float(watts_to_dbm(BOLTZMANN * temperature_k * bandwidth_hz))


@dataclass(frozen=True)
class NoiseModel:
    """Receiver-referred noise: thermal floor raised by a noise figure.

    Parameters
    ----------
    noise_figure_db:
        Cascade noise figure of the receive chain.
    temperature_k:
        Physical temperature for the thermal floor.
    """

    noise_figure_db: float = 6.0
    temperature_k: float = REFERENCE_TEMPERATURE_K

    def __post_init__(self) -> None:
        if self.noise_figure_db < 0:
            raise ConfigurationError(
                f"noise_figure_db must be >= 0, got {self.noise_figure_db!r}"
            )
        ensure_positive("temperature_k", self.temperature_k)

    def noise_power_dbm(self, bandwidth_hz: float) -> float:
        """Total noise power over ``bandwidth_hz``."""
        return thermal_noise_power_dbm(bandwidth_hz, temperature_k=self.temperature_k) + self.noise_figure_db

    def snr_db(self, signal_power_dbm: float, bandwidth_hz: float) -> float:
        """SNR of a signal at ``signal_power_dbm`` over this noise floor."""
        return signal_power_dbm - self.noise_power_dbm(bandwidth_hz)


def awgn(
    shape: "int | tuple[int, ...]",
    noise_power_w: float,
    *,
    complex_valued: bool = False,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Generate AWGN samples of total power ``noise_power_w``.

    For complex noise the power splits equally between I and Q.
    """
    ensure_positive("noise_power_w", noise_power_w)
    generator = resolve_rng(rng)
    if complex_valued:
        scale = np.sqrt(noise_power_w / 2.0)
        return scale * (generator.standard_normal(shape) + 1j * generator.standard_normal(shape))
    return np.sqrt(noise_power_w) * generator.standard_normal(shape)


def awgn_for_snr(
    signal: np.ndarray,
    snr_db: float,
    *,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Return ``signal`` plus AWGN sized for the requested mean SNR.

    Signal power is estimated as the mean squared magnitude; complex
    signals receive complex noise.
    """
    x = np.asarray(signal)
    if x.size == 0:
        raise ConfigurationError("cannot add noise to an empty signal")
    power = float(np.mean(np.abs(x) ** 2))
    if power <= 0:
        raise ConfigurationError("cannot add noise relative to a zero-power signal")
    noise_power = power / db_to_power_ratio(snr_db)
    noise = awgn(x.shape, noise_power, complex_valued=np.iscomplexobj(x), rng=rng)
    return x + noise


def phase_noise_samples(
    num_samples: int,
    sample_rate_hz: float,
    *,
    linewidth_hz: float = 100.0,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Wiener (random-walk) phase-noise process, ``exp(j phi[n])``.

    Models oscillator phase noise with a Lorentzian linewidth; multiply a
    complex envelope by these samples to impose the impairment.
    """
    if num_samples < 1:
        raise ConfigurationError(f"num_samples must be >= 1, got {num_samples}")
    ensure_positive("sample_rate_hz", sample_rate_hz)
    if linewidth_hz < 0:
        raise ConfigurationError(f"linewidth_hz must be >= 0, got {linewidth_hz!r}")
    if linewidth_hz == 0:
        return np.ones(num_samples, dtype=complex)
    generator = resolve_rng(rng)
    increment_std = np.sqrt(2.0 * np.pi * linewidth_hz / sample_rate_hz)
    increments = generator.normal(0.0, increment_std, num_samples)
    phase = np.cumsum(increments)
    return np.exp(1j * phase)
