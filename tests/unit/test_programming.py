"""Commercial chirp-engine programming: profiles, quantization, round-trip."""

import numpy as np
import pytest

from repro.core.downlink import DownlinkEncoder
from repro.core.packet import DownlinkPacket
from repro.core.ber import random_bits
from repro.errors import WaveformError
from repro.radar.config import XBAND_9GHZ
from repro.radar.programming import (
    ChirpEngine,
    ChirpProfile,
    EngineLimits,
    compile_frame,
    profile_for_chirp,
    quantization_beat_error_hz,
)


@pytest.fixture(scope="module")
def packet_frame(alphabet):
    encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
    bits = random_bits(alphabet.symbol_bits * 20, rng=0)
    return encoder.encode_packet(DownlinkPacket.from_bits(alphabet, bits))


class TestProfile:
    def test_bandwidth_and_period(self):
        profile = ChirpProfile(
            start_frequency_hz=8.5e9,
            slope_hz_per_s=1e13,
            ramp_time_s=100e-6,
            idle_time_s=20e-6,
        )
        assert profile.bandwidth_hz == pytest.approx(1e9)
        assert profile.period_s == pytest.approx(120e-6)
        chirp = profile.to_chirp()
        assert chirp.slope_hz_per_s == pytest.approx(1e13)

    def test_quantization_steps(self):
        chirp = XBAND_9GHZ.chirp(96.0037e-6)
        profile = profile_for_chirp(chirp, 120e-6, EngineLimits())
        # Timing snapped to 10 ns.
        assert (profile.ramp_time_s / 10e-9) == pytest.approx(
            round(profile.ramp_time_s / 10e-9)
        )

    def test_min_idle_enforced(self):
        chirp = XBAND_9GHZ.chirp(119e-6)
        with pytest.raises(WaveformError):
            profile_for_chirp(chirp, 120e-6, EngineLimits(min_idle_s=2e-6))


class TestEngine:
    def test_profile_dedup(self):
        engine = ChirpEngine()
        profile = ChirpProfile(8.5e9, 1e13, 100e-6, 20e-6)
        first = engine.add_profile(profile)
        second = engine.add_profile(profile)
        assert first == second
        assert engine.num_profiles == 1

    def test_bank_capacity_enforced(self):
        engine = ChirpEngine(limits=EngineLimits(max_profiles=2))
        engine.add_profile(ChirpProfile(8.5e9, 1e13, 100e-6, 20e-6))
        engine.add_profile(ChirpProfile(8.5e9, 2e13, 50e-6, 70e-6))
        with pytest.raises(WaveformError):
            engine.add_profile(ChirpProfile(8.5e9, 3e13, 33e-6, 87e-6))

    def test_sequence_validation(self):
        engine = ChirpEngine()
        with pytest.raises(WaveformError):
            engine.append(0)


class TestCompile:
    def test_packet_fits_34_profiles(self, packet_frame, alphabet):
        engine = compile_frame(packet_frame, limits=EngineLimits(max_profiles=40))
        # Header + sync + at most 2^bits data slopes, NOT packet length.
        assert engine.num_profiles <= alphabet.num_slopes
        assert len(engine.sequence) == len(packet_frame)

    def test_small_alphabet_fits_default_ti_bank(self, small_alphabet):
        # A 2-bit alphabet (6 slopes) fits a stock 16-profile engine — the
        # compatibility configuration for unmodified silicon.
        encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=small_alphabet)
        bits = random_bits(small_alphabet.symbol_bits * 30, rng=1)
        frame = encoder.encode_packet(DownlinkPacket.from_bits(small_alphabet, bits))
        engine = compile_frame(frame)  # default 16-slot limits
        assert engine.num_profiles <= 6

    def test_sequence_length_enforced(self, alphabet):
        encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
        bits = random_bits(alphabet.symbol_bits * 30, rng=2)
        frame = encoder.encode_packet(DownlinkPacket.from_bits(alphabet, bits))
        with pytest.raises(WaveformError):
            compile_frame(frame, limits=EngineLimits(max_sequence_length=10))

    def test_round_trip_preserves_timing(self, packet_frame):
        engine = compile_frame(packet_frame, limits=EngineLimits(max_profiles=40))
        replayed = engine.to_frame()
        assert len(replayed) == len(packet_frame)
        for original, emitted in zip(packet_frame.slots, replayed.slots):
            assert emitted.chirp.duration_s == pytest.approx(
                original.chirp.duration_s, abs=10e-9
            )
            assert emitted.period_s == pytest.approx(original.period_s, abs=20e-9)

    def test_quantization_beat_error_negligible(self, packet_frame, alphabet):
        engine = compile_frame(packet_frame, limits=EngineLimits(max_profiles=40))
        errors = quantization_beat_error_hz(engine, alphabet.decoder.delta_t_s)
        # Register quantization must perturb the tag's beats far less than
        # the alphabet spacing, or the compatibility claim fails.
        assert np.max(np.abs(errors)) < 0.01 * alphabet.beat_spacing_hz

    def test_quantized_program_still_decodes(self, packet_frame, alphabet):
        """End-to-end: the tag decodes the QUANTIZED engine output clean."""
        from repro.channel.link_budget import DownlinkBudget
        from repro.tag.decoder_dsp import TagDecoder
        from repro.tag.frontend import AnalyticTagFrontend

        engine = compile_frame(packet_frame, limits=EngineLimits(max_profiles=40))
        replayed = engine.to_frame()
        budget = DownlinkBudget(
            tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
            radar_antenna=XBAND_9GHZ.antenna,
            frequency_hz=XBAND_9GHZ.center_frequency_hz,
        )
        frontend = AnalyticTagFrontend(budget=budget, delta_t_s=alphabet.decoder.delta_t_s)
        capture = frontend.capture(replayed, 2.0, rng=3)
        decoder = TagDecoder(alphabet)
        decoded = decoder.decode_aligned(capture, num_payload_symbols=20)
        expected = [s for s in packet_frame.symbols if s is not None]
        assert decoded.symbols == expected
