"""Multi-tag / multi-radar network extension (paper Section 6).

The paper sketches the extension: unique uplink modulation frequencies per
tag, tag IDs in the downlink header, broadcast downlink, and slotted-ALOHA
style time division for multiple radars.  This module implements the
single-radar multi-tag network: addressing, frequency assignment, and
simultaneous multi-tag uplink separation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cssk import CsskAlphabet
from repro.core.packet import DownlinkPacket, PacketFields, pad_bits_to_symbols
from repro.errors import ConfigurationError, PacketError
from repro.tag.architecture import BiScatterTag
from repro.tag.modulator import UplinkModulator
from repro.utils.validation import ensure_positive

#: Number of leading payload bits reserved for tag addressing.
ADDRESS_BITS = 8

#: Address that every tag accepts (broadcast).
BROADCAST_ADDRESS = 0xFF


@dataclass
class TagEndpoint:
    """A tag enrolled in the network, with its assigned identity."""

    tag: BiScatterTag
    address: int
    range_m: float

    def __post_init__(self) -> None:
        if not 0 <= self.address < BROADCAST_ADDRESS:
            raise ConfigurationError(
                f"address must be in [0, {BROADCAST_ADDRESS}), got {self.address}"
            )
        ensure_positive("range_m", self.range_m)


def assign_modulation_rates(
    num_tags: int,
    chirp_period_s: float,
    *,
    min_fraction_of_nyquist: float = 0.25,
    max_fraction_of_nyquist: float = 0.85,
) -> np.ndarray:
    """Unique, well-separated uplink modulation rates for ``num_tags`` tags.

    Rates are spread across the usable slow-time band and avoid harmonic
    collisions (no rate is an integer multiple of another), so each tag's
    square-wave signature stays separable at the radar.
    """
    if num_tags < 1:
        raise ConfigurationError(f"num_tags must be >= 1, got {num_tags}")
    ensure_positive("chirp_period_s", chirp_period_s)
    if not 0 < min_fraction_of_nyquist < max_fraction_of_nyquist <= 1:
        raise ConfigurationError("fractions must satisfy 0 < min < max <= 1")
    nyquist = 1.0 / (2.0 * chirp_period_s)
    low = min_fraction_of_nyquist * nyquist
    high = max_fraction_of_nyquist * nyquist
    candidates = np.linspace(low, high, num_tags + 2)[1:-1]
    min_separation = (high - low) / max(3 * num_tags, 1)
    # Harmonic-collision margin tightens as the band gets crowded: the
    # physical requirement is only that no fundamental lands ON another
    # tag's harmonic (plus a template-width guard).
    harmonic_tolerance = min(0.05, 10.0 / num_tags / 100.0 + 0.01)
    rates: list[float] = []
    for candidate in candidates:
        rate = float(candidate)
        for _attempt in range(128):
            conflict = False
            for assigned in rates:
                ratio = max(rate, assigned) / min(rate, assigned)
                if (
                    abs(ratio - round(ratio)) < harmonic_tolerance
                    or abs(rate - assigned) < min_separation
                ):
                    conflict = True
                    break
            if not conflict:
                break
            # Step by an irrational-ish stride; wrap inside the band so the
            # nudge can never pile assignments up against the band edge.
            rate += 0.37 * min_separation + 1.0
            if rate > high:
                rate = low + (rate - high)
        else:
            raise ConfigurationError(
                f"could not place {num_tags} separable rates in "
                f"[{low:.0f}, {high:.0f}] Hz"
            )
        rates.append(rate)
    return np.asarray(rates)


@dataclass
class MultiTagNetwork:
    """A single-radar, multi-tag BiScatter network.

    Responsibilities: enrolling tags with unique addresses and modulation
    rates, building addressed/broadcast downlink packets, and filtering
    which tags act on a received packet.
    """

    alphabet: CsskAlphabet
    fields: PacketFields = field(default_factory=PacketFields)
    endpoints: "list[TagEndpoint]" = field(default_factory=list)

    def enroll(self, tag: BiScatterTag, *, range_m: float, chirps_per_bit: int = 32) -> TagEndpoint:
        """Add a tag: assign the next address and a unique modulation rate.

        Re-derives the whole rate plan so separations stay maximal as the
        network grows; existing tags are retuned (a downlink
        reconfiguration in a live network).
        """
        address = len(self.endpoints)
        if address >= BROADCAST_ADDRESS:
            raise ConfigurationError("address space exhausted")
        endpoint = TagEndpoint(tag=tag, address=address, range_m=range_m)
        self.endpoints.append(endpoint)
        rates = assign_modulation_rates(len(self.endpoints), self.alphabet.chirp_period_s)
        for rate, enrolled in zip(rates, self.endpoints):
            enrolled.tag.modulator = UplinkModulator(
                modulation_rate_hz=float(rate),
                chirp_period_s=self.alphabet.chirp_period_s,
                chirps_per_bit=chirps_per_bit,
            )
        return endpoint

    def endpoint_for_address(self, address: int) -> TagEndpoint:
        """Look up an enrolled endpoint."""
        for endpoint in self.endpoints:
            if endpoint.address == address:
                return endpoint
        raise ConfigurationError(f"no endpoint with address {address}")

    def build_addressed_packet(
        self, address: int, payload_bits: np.ndarray
    ) -> DownlinkPacket:
        """Downlink packet whose first ADDRESS_BITS select the recipient."""
        if not (0 <= address <= BROADCAST_ADDRESS):
            raise PacketError(f"address {address} out of range")
        header = np.array(
            [(address >> shift) & 1 for shift in range(ADDRESS_BITS - 1, -1, -1)],
            dtype=np.uint8,
        )
        bits = np.concatenate([header, np.asarray(payload_bits, dtype=np.uint8)])
        bits = pad_bits_to_symbols(bits, self.alphabet.symbol_bits)
        return DownlinkPacket.from_bits(self.alphabet, bits, fields=self.fields)

    def build_broadcast_packet(self, payload_bits: np.ndarray) -> DownlinkPacket:
        """Packet every tag accepts."""
        return self.build_addressed_packet(BROADCAST_ADDRESS, payload_bits)

    @staticmethod
    def parse_address(decoded_bits: np.ndarray) -> tuple[int, np.ndarray]:
        """Split decoded downlink bits into (address, payload)."""
        bits = np.asarray(decoded_bits, dtype=np.uint8)
        if bits.size < ADDRESS_BITS:
            raise PacketError(
                f"decoded packet has {bits.size} bits, needs >= {ADDRESS_BITS}"
            )
        address = 0
        for bit in bits[:ADDRESS_BITS]:
            address = (address << 1) | int(bit)
        return address, bits[ADDRESS_BITS:]

    def tags_accepting(self, address: int) -> "list[TagEndpoint]":
        """Endpoints that should act on a packet addressed to ``address``."""
        if address == BROADCAST_ADDRESS:
            return list(self.endpoints)
        return [e for e in self.endpoints if e.address == address]


def slotted_aloha_schedule(
    num_radars: int,
    frame_duration_s: float,
    *,
    cycle_slots: int | None = None,
) -> "list[tuple[int, float, float]]":
    """Time-division schedule for multiple radars sharing a space.

    Returns (radar_index, start_s, end_s) tuples for one cycle — the
    paper's suggested route to multi-radar coexistence.
    """
    if num_radars < 1:
        raise ConfigurationError(f"num_radars must be >= 1, got {num_radars}")
    ensure_positive("frame_duration_s", frame_duration_s)
    slots = num_radars if cycle_slots is None else cycle_slots
    if slots < num_radars:
        raise ConfigurationError(
            f"cycle of {slots} slots cannot fit {num_radars} radars"
        )
    schedule = []
    for slot in range(slots):
        radar = slot % num_radars
        start = slot * frame_duration_s
        schedule.append((radar, start, start + frame_duration_s))
    return schedule
