"""Hypothesis properties for the crash-safe serve layer.

Two families:

* **Journal records** — ``encode -> decode`` is the identity over the
  whole representable space (the ledger must survive any job it can
  record), the JSON layer round-trips byte-stably, and any unknown
  ``schema_version`` is rejected loudly rather than misread.
* **Backoff schedules** — the delay sequence is a pure function of the
  seed (same seed, same schedule), monotonically bounded by the cap, and
  never below a server-supplied ``retry_after_s`` floor (up to the cap).
"""

import json

import pytest
from hypothesis import given, strategies as st

from repro.errors import ServeError
from repro.serve.client import BackoffPolicy
from repro.serve.journal import JOURNAL_SCHEMA_VERSION, JournalRecord

# -- strategies ---------------------------------------------------------------

_identifiers = st.text(
    alphabet="abcdef0123456789-", min_size=1, max_size=24,
).filter(lambda s: not s.startswith("."))

_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=16),
)

_jobs = st.dictionaries(
    st.text(min_size=1, max_size=12), _json_scalars, max_size=6,
)


@st.composite
def journal_records(draw):
    fingerprints = tuple(draw(st.lists(
        st.text(alphabet="0123456789abcdef", min_size=8, max_size=64),
        min_size=1, max_size=8,
    )))
    count = len(fingerprints)
    completed = tuple(sorted(draw(st.sets(
        st.integers(min_value=0, max_value=count - 1), max_size=count,
    ))))
    point_indices = draw(st.one_of(
        st.none(),
        st.lists(
            st.integers(min_value=0, max_value=255),
            min_size=count, max_size=count, unique=True,
        ).map(lambda items: tuple(sorted(items))),
    ))
    return JournalRecord(
        journal_id=draw(_identifiers),
        kind=draw(st.sampled_from(["ber", "ber_sweep", "robustness"])),
        job=draw(_jobs),
        fingerprints=fingerprints,
        completed=completed,
        point_indices=point_indices,
        state=draw(st.sampled_from(["running", "done"])),
        pid=draw(st.integers(min_value=0, max_value=2 ** 22)),
        created_unix=draw(st.floats(
            min_value=0.0, max_value=4e9, allow_nan=False,
        )),
    )


# -- journal properties -------------------------------------------------------


class TestJournalRecordProperties:
    @given(record=journal_records())
    def test_encode_decode_identity(self, record):
        assert JournalRecord.decode(record.encode()) == record

    @given(record=journal_records())
    def test_survives_json_round_trip(self, record):
        # The on-disk representation is JSON bytes; identity must hold
        # through serialization, not just through the dict form.
        wire = json.dumps(record.encode(), sort_keys=True)
        assert JournalRecord.decode(json.loads(wire)) == record

    @given(record=journal_records())
    def test_remaining_partitions_the_points(self, record):
        remaining = set(record.remaining())
        completed = set(record.completed)
        assert remaining | completed == set(range(len(record.fingerprints)))
        assert remaining & completed == set()

    @given(
        record=journal_records(),
        version=st.one_of(
            st.integers().filter(lambda v: v != JOURNAL_SCHEMA_VERSION),
            st.none(),
            st.text(max_size=4),
        ),
    )
    def test_unknown_schema_version_rejected_loudly(self, record, version):
        encoded = record.encode()
        encoded["schema_version"] = version
        with pytest.raises(ServeError, match="schema_version"):
            JournalRecord.decode(encoded)


# -- backoff properties -------------------------------------------------------

_policies = st.builds(
    BackoffPolicy,
    base_s=st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
    factor=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
    cap_s=st.floats(min_value=2.0, max_value=120.0, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    max_attempts=st.integers(min_value=0, max_value=12),
    seed=st.integers(min_value=0, max_value=2 ** 32),
)


class TestBackoffProperties:
    @given(policy=_policies, attempts=st.integers(min_value=0, max_value=24))
    def test_same_seed_same_delays(self, policy, attempts):
        rebuilt = BackoffPolicy(
            base_s=policy.base_s, factor=policy.factor, cap_s=policy.cap_s,
            jitter=policy.jitter, max_attempts=policy.max_attempts,
            seed=policy.seed,
        )
        assert policy.schedule(attempts) == rebuilt.schedule(attempts)

    @given(policy=_policies, attempt=st.integers(min_value=0, max_value=64))
    def test_cap_respected(self, policy, attempt):
        assert 0.0 < policy.delay(attempt) <= policy.cap_s

    @given(
        policy=_policies,
        attempt=st.integers(min_value=0, max_value=16),
        retry_after=st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
    )
    def test_retry_after_is_a_floor_up_to_the_cap(
        self, policy, attempt, retry_after
    ):
        delay = policy.delay(attempt, retry_after_s=retry_after)
        assert delay <= policy.cap_s
        assert delay >= min(retry_after, policy.cap_s)
        # And the hint never *lowers* the ramp.
        assert delay >= min(policy.delay(attempt), policy.cap_s)
