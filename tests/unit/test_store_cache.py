"""ExperimentStore: round-trips, corruption tolerance, concurrency, verify."""

import json
import threading

import numpy as np
import pytest

from repro.errors import StoreError
from repro.store import ExperimentStore, ReplayRecipe
from repro.store.fingerprint import fingerprint


def replay_double(payload):
    return {"value": payload["x"] * 2}


@pytest.fixture()
def store(tmp_path):
    return ExperimentStore(tmp_path / "cache")


def put_one(store, x=1.0, kind="unit-test", with_replay=True):
    payload = {"value": replay_double({"x": x})["value"]}
    fp = fingerprint(kind, {"x": x})
    replay = (
        ReplayRecipe("tests.unit.test_store_cache:replay_double", {"x": x})
        if with_replay
        else None
    )
    store.put(fp, kind, payload, replay=replay)
    return fp, payload


class TestRoundTrip:
    def test_put_get(self, store):
        fp, payload = put_one(store)
        record = store.get(fp)
        assert record is not None
        assert record["payload"] == payload
        assert record["kind"] == "unit-test"

    def test_get_missing_is_none(self, store):
        assert store.get("0" * 64) is None

    def test_contains(self, store):
        fp, _ = put_one(store)
        assert store.contains(fp)
        assert not store.contains("f" * 64)

    def test_put_is_idempotent(self, store):
        fp, payload = put_one(store)
        store.put(fp, "unit-test", payload)
        assert store.get(fp)["payload"] == payload
        assert store.stats().entries == 1

    def test_arrays_round_trip_bitwise(self, store):
        errors = np.linspace(0.0, 0.1, 17)
        fp = fingerprint("arrays", {"n": 17})
        store.put(fp, "arrays", {"n": 17}, arrays={"errors": errors})
        loaded = store.load_arrays(fp)
        assert loaded is not None
        np.testing.assert_array_equal(loaded["errors"], errors)

    def test_session_counters(self, store):
        fp, _ = put_one(store)
        store.get(fp)
        store.get("a" * 64)
        assert store.session_hits == 1
        assert store.session_misses == 1

    def test_non_json_payload_is_refused(self, store):
        with pytest.raises(StoreError):
            store.put("b" * 64, "bad", {"x": object()})


class TestCorruptionTolerance:
    """Any damaged entry is a miss — the read path never raises."""

    def _record_path(self, store, fp):
        [path] = [p for p in store.root.rglob(f"{fp}.json")]
        return path

    def test_truncated_record_is_a_miss(self, store):
        fp, _ = put_one(store)
        path = self._record_path(store, fp)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert store.get(fp) is None

    def test_garbage_record_is_a_miss(self, store):
        fp, _ = put_one(store)
        self._record_path(store, fp).write_text("not json at all {{{")
        assert store.get(fp) is None

    def test_empty_record_is_a_miss(self, store):
        fp, _ = put_one(store)
        self._record_path(store, fp).write_bytes(b"")
        assert store.get(fp) is None

    def test_payload_tamper_fails_checksum(self, store):
        fp, _ = put_one(store, x=3.0)
        path = self._record_path(store, fp)
        record = json.loads(path.read_text())
        record["payload"]["value"] = 999.0
        path.write_text(json.dumps(record))
        assert store.get(fp) is None

    def test_fingerprint_mismatch_is_a_miss(self, store):
        fp, _ = put_one(store)
        path = self._record_path(store, fp)
        record = json.loads(path.read_text())
        record["fingerprint"] = "e" * 64
        path.write_text(json.dumps(record))
        assert store.get(fp) is None

    def test_schema_version_mismatch_is_a_miss(self, store):
        fp, _ = put_one(store)
        path = self._record_path(store, fp)
        record = json.loads(path.read_text())
        record["schema_version"] = record["schema_version"] + 1
        path.write_text(json.dumps(record))
        assert store.get(fp) is None

    def test_missing_npz_sidecar_is_a_miss(self, store):
        fp = fingerprint("arrays", {"n": 3})
        store.put(fp, "arrays", {"n": 3}, arrays={"v": np.ones(3)})
        [npz] = list(store.root.rglob(f"{fp}.npz"))
        npz.unlink()
        assert store.get(fp) is None
        assert store.load_arrays(fp) is None

    def test_corrupted_npz_sidecar_is_a_miss(self, store):
        fp = fingerprint("arrays", {"n": 4})
        store.put(fp, "arrays", {"v": 4}, arrays={"v": np.ones(4)})
        [npz] = list(store.root.rglob(f"{fp}.npz"))
        npz.write_bytes(b"\x00" * 40)
        assert store.get(fp) is None

    def test_stale_index_is_rebuilt(self, store):
        fp, _ = put_one(store)
        (store.root / "index.json").write_text("][broken")
        index = store.index()
        assert index["entries"] == 1
        assert fp in store.fingerprints()

    def test_stats_counts_corrupt_entries(self, store):
        fp, _ = put_one(store)
        put_one(store, x=2.0)
        self._record_path(store, fp).write_text("junk")
        stats = store.stats()
        assert stats.entries == 2  # both record files still present...
        assert stats.corrupt == 1  # ...but one no longer validates
        assert stats.kinds == {"unit-test": 1}


class TestConcurrency:
    def test_concurrent_writers_same_fingerprint(self, tmp_path):
        """N threads racing to put the same entry: no error, entry readable."""
        root = tmp_path / "cache"
        fp = fingerprint("race", {"x": 1})
        errors = []

        def writer():
            try:
                local = ExperimentStore(root)
                local.put(fp, "race", {"x": 1}, arrays={"v": np.arange(5.0)})
            except Exception as exc:  # pragma: no cover - the assertion target
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        store = ExperimentStore(root)
        assert store.get(fp) is not None
        np.testing.assert_array_equal(store.load_arrays(fp)["v"], np.arange(5.0))

    def test_concurrent_writers_distinct_fingerprints(self, tmp_path):
        root = tmp_path / "cache"
        errors = []

        def writer(i):
            try:
                put_one(ExperimentStore(root), x=float(i))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        assert ExperimentStore(root).stats().entries == 8


class TestMaintenance:
    def test_clear_removes_everything(self, store):
        put_one(store, x=1.0)
        fp = fingerprint("arrays", {"n": 2})
        store.put(fp, "arrays", {"n": 2}, arrays={"v": np.ones(2)})
        removed = store.clear()
        assert removed == 2
        assert store.stats().entries == 0
        assert list(store.root.rglob("*.npz")) == []

    def test_stats_shape(self, store):
        put_one(store, x=1.0)
        put_one(store, x=2.0)
        stats = store.stats()
        assert stats.entries == 2
        assert stats.kinds == {"unit-test": 2}
        assert stats.total_bytes > 0
        assert stats.tmp_files == 0
        assert stats.as_dict()["tmp_files"] == 0

    def _make_orphans(self, store):
        """Plant orphaned temp files where crashed writers would leave them."""
        fp, _ = put_one(store, x=1.0)
        shard = store.root / "objects" / fp[:2]
        record_orphan = shard / f"{fp}.json.abcd1234.tmp"
        record_orphan.write_bytes(b"half-written record")
        index_orphan = store.root / "index.json.wxyz5678.tmp"
        index_orphan.write_bytes(b"half-written index")
        return fp, record_orphan, index_orphan

    def test_stats_counts_orphaned_tmp_files(self, store):
        fp, record_orphan, index_orphan = self._make_orphans(store)
        stats = store.stats()
        assert stats.tmp_files == 2
        # Orphans never shadow real entries.
        assert stats.entries == 1
        assert store.get(fp) is not None

    def test_clear_removes_orphaned_tmp_files(self, store):
        _, record_orphan, index_orphan = self._make_orphans(store)
        removed = store.clear()
        assert removed == 1  # records only; orphans are not entries
        assert not record_orphan.exists()
        assert not index_orphan.exists()
        assert store.stats().tmp_files == 0


class TestDurability:
    def test_write_fsyncs_temp_before_replace(self, store, monkeypatch):
        """The temp file must reach disk before the rename publishes it."""
        import os as os_module

        events = []
        real_fsync, real_replace = os_module.fsync, os_module.replace

        def spy_fsync(fd):
            events.append("fsync")
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr("repro.store.cache.os.fsync", spy_fsync)
        monkeypatch.setattr("repro.store.cache.os.replace", spy_replace)
        put_one(store, x=3.0)
        assert "fsync" in events and "replace" in events
        # Every replace is preceded by at least one fsync (file durability),
        # and more fsyncs than replaces implies the directory fsync ran too.
        assert events.index("fsync") < events.index("replace")
        assert events.count("fsync") > events.count("replace")


class TestVerify:
    def test_verify_recomputes_bit_exactly(self, store):
        for x in (1.0, 2.0, 3.0):
            put_one(store, x=x)
        report = store.verify(sample=3)
        assert report.ok()
        assert report.integrity_checked == 3
        assert report.recomputed == 3
        assert report.mismatched == []

    def test_verify_catches_forged_payload(self, store):
        fp, _ = put_one(store, x=5.0)
        [path] = [p for p in store.root.rglob(f"{fp}.json")]
        record = json.loads(path.read_text())
        # Forge the payload AND its checksum so the entry reads as intact;
        # only a replay recompute can expose the forgery.
        record["payload"]["value"] = -1.0
        from repro.store.cache import _payload_checksum

        record["checksum"] = _payload_checksum(record["payload"])
        path.write_text(json.dumps(record))

        report = store.verify(sample=1)
        assert not report.ok()
        assert fp in report.mismatched

    def test_verify_counts_corrupt_entries(self, store):
        fp, _ = put_one(store)
        [path] = [p for p in store.root.rglob(f"{fp}.json")]
        path.write_text("junk")
        report = store.verify(sample=4)
        assert not report.ok()
        assert fp in report.corrupt

    def test_verify_skips_unreplayable_entries(self, store):
        put_one(store, x=1.0, with_replay=False)
        report = store.verify(sample=4)
        assert report.ok()
        assert report.unreplayable == 1
        assert report.recomputed == 0

    def test_verify_empty_store(self, store):
        report = store.verify()
        assert report.ok()
        assert report.total == 0
