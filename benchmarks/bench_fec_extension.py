"""Extension bench — FEC-protected downlink vs uncoded at the range margin.

Hamming(7,4) + a symbol-width interleaver costs 7/4 airtime and buys back
the range the raw link loses past 7 m.  The table reports payload BER for
both arms across distance, plus the goodput after the code rate.
"""

import numpy as np

from conftest import emit
from repro.channel.link_budget import DownlinkBudget
from repro.core.downlink import DownlinkEncoder
from repro.core.fec import FecConfig
from repro.core.packet import DownlinkPacket, pad_bits_to_symbols
from repro.core.ber import random_bits
from repro.radar.config import XBAND_9GHZ
from repro.sim.results import format_table
from repro.tag.decoder_dsp import TagDecoder
from repro.tag.frontend import AnalyticTagFrontend

DISTANCES_M = [6.0, 7.0, 8.0, 9.0, 10.0]
TRIALS = 15
PAYLOAD_BITS = 60


def run_comparison(paper_alphabet):
    alphabet = paper_alphabet
    encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
    budget = DownlinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
    )
    frontend = AnalyticTagFrontend(budget=budget, delta_t_s=alphabet.decoder.delta_t_s)
    decoder = TagDecoder(alphabet)
    fec = FecConfig(interleaver_depth=alphabet.symbol_bits)

    def run_link(bits_on_air, distance, trial):
        padded = pad_bits_to_symbols(bits_on_air, alphabet.symbol_bits)
        packet = DownlinkPacket.from_bits(alphabet, padded)
        frame = encoder.encode_packet(packet)
        capture = frontend.capture(frame, distance, rng=trial)
        decoded = decoder.decode_aligned(
            capture, num_payload_symbols=packet.num_payload_symbols
        )
        out = decoded.bits
        if out.size < padded.size:
            out = np.concatenate([out, np.zeros(padded.size - out.size, dtype=np.uint8)])
        return out[: bits_on_air.size]

    rows = []
    results = {}
    for distance in DISTANCES_M:
        uncoded_errors = coded_errors = total = 0
        for trial in range(TRIALS):
            payload = random_bits(PAYLOAD_BITS, rng=trial)
            received = run_link(payload, distance, 1000 * int(distance) + trial)
            uncoded_errors += int(np.sum(received != payload))
            protected = fec.protect(payload)
            coded_rx = run_link(protected, distance, 5000 * int(distance) + trial)
            recovered, _ = fec.recover(coded_rx, payload.size)
            coded_errors += int(np.sum(recovered != payload))
            total += payload.size
        results[distance] = (uncoded_errors / total, coded_errors / total)
        rows.append(
            [
                f"{distance:.0f}",
                f"{uncoded_errors / total:.2e}",
                f"{coded_errors / total:.2e}",
            ]
        )
    rate = paper_alphabet.data_rate_bps()
    footer = (
        f"\nairtime cost: rate {rate / 1e3:.1f} -> {rate * fec.code_rate / 1e3:.1f} kbps "
        f"(code rate {fec.code_rate:.2f})"
    )
    return rows, results, footer


def test_fec_extension(benchmark, paper_alphabet):
    rows, results, footer = benchmark.pedantic(
        run_comparison, args=(paper_alphabet,), rounds=1, iterations=1
    )
    table = format_table(
        ["distance (m)", "uncoded payload BER", "FEC payload BER"], rows
    ) + footer
    emit("ext_fec", table)

    # The coded arm must never lose, and must win where raw errors exist.
    for distance, (uncoded, coded) in results.items():
        assert coded <= uncoded + 1e-9, f"FEC lost at {distance} m"
    margins = [d for d, (u, _) in results.items() if u > 1e-3]
    assert margins, "sweep should include the error margin"
    assert any(results[d][1] < results[d][0] / 2 for d in margins)