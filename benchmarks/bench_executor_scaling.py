"""Executor scaling — parallel Monte-Carlo is bit-exact and (given cores) faster.

Runs a 240-frame downlink BER workload serially and under a 4-worker
``ExecutionPlan``, asserting the two ``BerPoint`` results — including the
``extra`` payload — are identical bit for bit, and emits the wall-clock
timing table.  A distance sweep over the same engine records per-chunk
timings into ``SweepResult.metadata["_execution"]``, exercising the
progress/timing side channel end to end.

The speedup assertion is gated on the cores actually available to this
process: on a single-core CI runner a process pool cannot beat serial
execution, and pretending otherwise would make the bench flaky.  The
timing metadata is recorded (and emitted) either way.
"""

import os
import time

from conftest import emit
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
from repro.sim.executor import ExecutionPlan, strip_execution
from repro.sim.results import format_table
from repro.sim.sweep import sweep

NUM_FRAMES = 240
SYMBOLS_PER_FRAME = 16
DISTANCE_M = 5.0
PARALLEL_WORKERS = 4


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _downlink_eval(distance, stream):
    """Module-level sweep evaluate (picklable for the process backend)."""
    from repro.sim.scenario import default_office_scenario

    scenario = default_office_scenario(tag_range_m=float(distance))
    config = DownlinkTrialConfig(
        radar_config=XBAND_9GHZ,
        alphabet=scenario.alphabet,
        distance_m=float(distance),
        num_frames=4,
        payload_symbols_per_frame=4,
    )
    return run_downlink_trials(config, rng=stream).ber


def run_study(paper_alphabet):
    config = DownlinkTrialConfig(
        radar_config=XBAND_9GHZ,
        alphabet=paper_alphabet,
        distance_m=DISTANCE_M,
        num_frames=NUM_FRAMES,
        payload_symbols_per_frame=SYMBOLS_PER_FRAME,
    )
    timings = {}
    points = {}
    for label, plan in (
        ("serial", ExecutionPlan(workers=1)),
        (f"{PARALLEL_WORKERS} workers", ExecutionPlan(workers=PARALLEL_WORKERS)),
    ):
        start = time.perf_counter()
        points[label] = run_downlink_trials(config, rng=0, execution=plan)
        timings[label] = time.perf_counter() - start

    swept = sweep(
        "ber-vs-distance",
        [2.0, 4.0, 6.0],
        _downlink_eval,
        rng=0,
        execution=ExecutionPlan(workers=2, chunk_size=1),
    )
    return points, timings, swept


def test_executor_scaling(benchmark, paper_alphabet):
    points, timings, swept = benchmark.pedantic(
        run_study, args=(paper_alphabet,), rounds=1, iterations=1
    )
    serial_point = points["serial"]
    parallel_label = f"{PARALLEL_WORKERS} workers"
    parallel_point = points[parallel_label]
    speedup = timings["serial"] / timings[parallel_label]

    rows = [
        [label, f"{timings[label]:.2f}", f"{point.ber:.2e}",
         f"{point.bit_errors}/{point.bits_total}"]
        for label, point in points.items()
    ]
    table = format_table(["backend", "wall (s)", "BER", "errors/bits"], rows)
    table += (
        f"\n{NUM_FRAMES} frames x {SYMBOLS_PER_FRAME} symbols at {DISTANCE_M} m; "
        f"speedup x{speedup:.2f} on {_available_cores()} available core(s)"
    )
    exec_meta = swept.metadata["_execution"]
    table += (
        f"\nsweep executor: backend={exec_meta['backend']} "
        f"chunks={len(exec_meta['chunks'])} total={exec_meta['total_seconds']:.2f} s"
    )
    emit("executor_scaling", table)

    # The determinism contract: identical results, bit for bit, extras included.
    assert parallel_point == serial_point
    # The timing side channel is populated with one record per chunk.
    assert exec_meta["chunks"], "sweep recorded no per-chunk timings"
    assert sum(c["num_trials"] for c in exec_meta["chunks"]) == len(swept.parameters)
    # Deterministic payloads stay comparable once timing is stripped.
    assert strip_execution(swept.metadata) == {}
    # Honest speedup claim only where the hardware can deliver one.
    if _available_cores() >= PARALLEL_WORKERS:
        assert speedup > 1.2, (
            f"expected >1.2x speedup with {PARALLEL_WORKERS} workers, got {speedup:.2f}"
        )
