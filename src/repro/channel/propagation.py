"""Propagation: free-space loss, one-way links, and the radar equation.

Downlink (radar -> tag) is a one-way link; uplink (radar -> tag -> radar)
is a two-way backscatter link whose received power follows the radar
equation with the tag's (retro-reflective) RCS — this is why the paper's
uplink SNR is much lower than the downlink at the same distance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LinkBudgetError
from repro.utils.units import wavelength
from repro.utils.validation import ensure_positive


def free_space_path_loss_db(distance_m: float, frequency_hz: float) -> float:
    """Friis free-space path loss ``(4 pi d / lambda)^2`` in dB."""
    ensure_positive("frequency_hz", frequency_hz)
    if distance_m <= 0:
        raise LinkBudgetError(f"distance_m must be positive, got {distance_m!r}")
    lam = wavelength(frequency_hz)
    return float(20.0 * np.log10(4.0 * np.pi * distance_m / lam))


def one_way_received_power_dbm(
    tx_power_dbm: float,
    tx_gain_dbi: float,
    rx_gain_dbi: float,
    distance_m: float,
    frequency_hz: float,
    *,
    extra_loss_db: float = 0.0,
) -> float:
    """Received power of a one-way link (the downlink into the tag antenna)."""
    path_loss = free_space_path_loss_db(distance_m, frequency_hz)
    return tx_power_dbm + tx_gain_dbi + rx_gain_dbi - path_loss - extra_loss_db


def radar_received_power_dbm(
    tx_power_dbm: float,
    tx_gain_dbi: float,
    rx_gain_dbi: float,
    distance_m: float,
    frequency_hz: float,
    rcs_m2: float,
    *,
    extra_loss_db: float = 0.0,
) -> float:
    """Radar-equation received power for a scatterer of RCS ``sigma``.

    ``P_r = P_t G_t G_r lambda^2 sigma / ((4 pi)^3 d^4)``; the R^4 term is
    the double attenuation the paper highlights for the uplink.
    """
    ensure_positive("frequency_hz", frequency_hz)
    if distance_m <= 0:
        raise LinkBudgetError(f"distance_m must be positive, got {distance_m!r}")
    if rcs_m2 <= 0:
        raise LinkBudgetError(f"rcs_m2 must be positive, got {rcs_m2!r}")
    lam = wavelength(frequency_hz)
    numerator_db = (
        tx_power_dbm
        + tx_gain_dbi
        + rx_gain_dbi
        + 20.0 * np.log10(lam)
        + 10.0 * np.log10(rcs_m2)
    )
    denominator_db = 30.0 * np.log10(4.0 * np.pi) + 40.0 * np.log10(distance_m)
    return float(numerator_db - denominator_db - extra_loss_db)
