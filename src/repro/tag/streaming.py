"""Firmware-style streaming decoder: bounded memory, chunked ADC input.

The batch :class:`~repro.tag.decoder_dsp.TagDecoder` assumes the whole
capture in memory — fine for simulation, not for a tag MCU with a few kB
of RAM.  This module restructures the same algorithms as an incremental
state machine that consumes ADC samples chunk by chunk:

``IDLE`` → (energy rises) → ``PERIOD_LOCK`` (buffer one header field,
estimate/verify the chirp period and fine alignment) → ``SYNC_SEARCH``
(slot-by-slot preamble matching) → ``PAYLOAD`` (demodulate each completed
slot, emit symbols through a callback) → back to ``IDLE`` at packet end.

Memory bound: the decoder never holds more than
``header_repeats + 2`` slots of samples (~1.3 k samples at the default
configuration — a realistic MCU buffer).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.cssk import CsskAlphabet
from repro.core.packet import PacketFields
from repro.errors import ConfigurationError
from repro.tag.decoder_dsp import PeriodEstimate, TagDecoder
from repro.tag.frontend import TagCapture
from repro.utils.validation import ensure_positive


class DecoderState(enum.Enum):
    """Streaming decoder states."""

    IDLE = "idle"
    PERIOD_LOCK = "period_lock"
    SYNC_SEARCH = "sync_search"
    PAYLOAD = "payload"


@dataclass
class StreamingStats:
    """Observability counters for the state machine."""

    samples_consumed: int = 0
    packets_started: int = 0
    packets_completed: int = 0
    symbols_emitted: int = 0
    max_buffer_samples: int = 0


class StreamingTagDecoder:
    """Incremental CSSK decoder with bounded memory.

    Parameters
    ----------
    alphabet / fields:
        Protocol configuration (shared with the batch decoder).
    sample_rate_hz:
        The tag ADC rate the stream arrives at.
    on_symbol:
        Callback invoked with each demodulated data symbol (int).
    payload_symbols:
        Symbols per packet (the protocol's fixed payload length; streaming
        firmware knows this from the header in a fuller protocol).
    energy_threshold_factor:
        Rise-over-floor factor that arms the decoder from IDLE.
    """

    def __init__(
        self,
        alphabet: CsskAlphabet,
        sample_rate_hz: float,
        *,
        fields: PacketFields | None = None,
        on_symbol: "Callable[[int], None] | None" = None,
        payload_symbols: int = 16,
        energy_threshold_factor: float = 8.0,
    ) -> None:
        ensure_positive("sample_rate_hz", sample_rate_hz)
        if payload_symbols < 1:
            raise ConfigurationError(
                f"payload_symbols must be >= 1, got {payload_symbols}"
            )
        ensure_positive("energy_threshold_factor", energy_threshold_factor)
        self.alphabet = alphabet
        self.fields = fields or PacketFields()
        self.sample_rate_hz = sample_rate_hz
        self.on_symbol = on_symbol
        self.payload_symbols = payload_symbols
        self.energy_threshold_factor = energy_threshold_factor

        # The batch decoder supplies the per-slot scoring machinery (its
        # projector cache is exactly the MCU's precomputed tables).
        self._batch = TagDecoder(alphabet, fields=self.fields)
        self._slot_samples = int(round(alphabet.chirp_period_s * sample_rate_hz))
        self._lock_samples = (self.fields.header_repeats + 1) * self._slot_samples

        self.state = DecoderState.IDLE
        self.stats = StreamingStats()
        self._buffer = np.empty(0)
        self._noise_floor = None
        self._period: PeriodEstimate | None = None
        self._slots_consumed = 0
        self._sync_run = 0
        self._symbols: "list[int]" = []
        self._packet_start = 0

    # ------------------------------------------------------------------ api

    @property
    def buffer_bound_samples(self) -> int:
        """The guaranteed maximum buffer occupancy."""
        return self._lock_samples + 2 * self._slot_samples

    def process(self, chunk: np.ndarray) -> "list[int]":
        """Consume one ADC chunk; returns symbols completed by this chunk."""
        samples = np.asarray(chunk, dtype=float)
        if samples.ndim != 1:
            raise ConfigurationError(f"chunk must be 1-D, got shape {samples.shape}")
        self.stats.samples_consumed += samples.size
        emitted_before = self.stats.symbols_emitted
        self._buffer = np.concatenate([self._buffer, samples])
        progressed = True
        while progressed:
            progressed = self._step()
        self.stats.max_buffer_samples = max(
            self.stats.max_buffer_samples, self._buffer.size
        )
        newly = self.stats.symbols_emitted - emitted_before
        return self._symbols[-newly:] if newly else []

    def finish(self) -> "list[int]":
        """Flush: process whatever remains and return ALL emitted symbols."""
        if self.state is DecoderState.PAYLOAD:
            while self._step_payload(final=True):
                if self.state is not DecoderState.PAYLOAD:
                    break
        return list(self._symbols)

    # ------------------------------------------------------------------ steps

    def _step(self) -> bool:
        if self.state is DecoderState.IDLE:
            return self._step_idle()
        if self.state is DecoderState.PERIOD_LOCK:
            return self._step_period_lock()
        if self.state is DecoderState.SYNC_SEARCH:
            return self._step_sync()
        return self._step_payload()

    def _step_idle(self) -> bool:
        block = max(self._slot_samples // 2, 16)
        if self._buffer.size < 3 * block:
            return False
        blocks = self._buffer[: (self._buffer.size // block) * block].reshape(-1, block)
        powers = blocks.var(axis=1)
        # Robust floor: track the MINIMUM quiet level, drifting upward only
        # slowly (5%/step).  Signal blocks can therefore never drag the
        # floor up to their own level, while genuine temperature/gain drift
        # is still followed.
        quiet_power = float(np.percentile(powers, 20))
        if self._noise_floor is None:
            self._noise_floor = quiet_power
        else:
            self._noise_floor = min(quiet_power, self._noise_floor * 1.05)
        floor = max(self._noise_floor, 1e-30)
        hot = powers > self.energy_threshold_factor * floor
        # Require SUSTAINED energy (two consecutive hot blocks) so the
        # variance spread of short noise blocks cannot arm the decoder.
        sustained = hot[:-1] & hot[1:]
        if not np.any(sustained):
            self._buffer = self._buffer[-2 * block :]
            return False
        # Keep one spare block BEFORE the trigger: the packet may have
        # started mid-block, and the aligner can only search forward within
        # the buffer it is given.
        first_hot = max(int(np.argmax(sustained)) - 1, 0)
        self._buffer = self._buffer[first_hot * block :]
        self.state = DecoderState.PERIOD_LOCK
        self.stats.packets_started += 1
        return True

    def _step_period_lock(self) -> bool:
        if self._buffer.size < self._lock_samples:
            return False
        capture = TagCapture(
            samples=self._buffer[: self._lock_samples],
            sample_rate_hz=self.sample_rate_hz,
        )
        period = self._batch.estimate_period(capture)
        if period.confidence < 0.05:
            # No credible chirp periodicity: a false energy trigger.
            self._reset()
            self._buffer = self._buffer[self._slot_samples :]
            return True
        # The energy trigger is block-granular (up to ~half a slot early or
        # late), so search a generous alignment span.
        period = self._batch._fine_align(
            capture, period, coarse_span=self._slot_samples // 2 + 8
        )
        start = int(round(period.first_chirp_start_s * self.sample_rate_hz))
        self._buffer = self._buffer[start:]
        self._period = period
        self._slots_consumed = 0
        self._sync_run = 0
        self.state = DecoderState.SYNC_SEARCH
        return True

    def _pop_slot(self) -> "np.ndarray | None":
        if self._buffer.size < self._slot_samples:
            return None
        slot = self._buffer[: self._slot_samples]
        self._buffer = self._buffer[self._slot_samples :]
        self._slots_consumed += 1
        return slot

    def _step_sync(self) -> bool:
        slot = self._pop_slot()
        if slot is None:
            return False
        kind, _, _ = self._batch.classify_slot(slot, self.sample_rate_hz)
        required_syncs = min(2, self.fields.sync_repeats)
        if kind == "sync":
            self._sync_run += 1
        elif self._sync_run >= required_syncs:
            # First non-sync after a credible sync field: payload slot 0.
            self._emit(slot)
            self.state = DecoderState.PAYLOAD
            return True
        elif kind != "header":
            self._sync_run = 0
        if self._slots_consumed > 4 * self.fields.preamble_length:
            # Lost: no sync found in a generous window; re-arm.
            self._reset()
        return True

    def _step_payload(self, final: bool = False) -> bool:
        if len(self._symbols_in_packet()) >= self.payload_symbols:
            self._complete()
            return True
        slot = self._pop_slot()
        if slot is None:
            if final and self._buffer.size >= 8:
                self._emit(self._buffer)
                self._buffer = np.empty(0)
            return False
        self._emit(slot)
        if len(self._symbols_in_packet()) >= self.payload_symbols:
            self._complete()
        return True

    # ------------------------------------------------------------------ misc

    def _symbols_in_packet(self) -> "list[int]":
        return self._symbols[self._packet_start :]

    def _emit(self, slot: np.ndarray) -> None:
        if self.state is DecoderState.SYNC_SEARCH:
            # This is payload slot 0: the packet's symbols start here.
            self._packet_start = len(self._symbols)
        symbol, _ = self._batch.demodulate_data_slot(slot, self.sample_rate_hz)
        self._symbols.append(symbol)
        self.stats.symbols_emitted += 1
        if self.on_symbol is not None:
            self.on_symbol(symbol)

    def _complete(self) -> None:
        self.stats.packets_completed += 1
        self._reset()

    def _reset(self) -> None:
        self.state = DecoderState.IDLE
        self._period = None
        self._sync_run = 0
        self._slots_consumed = 0
        self._packet_start = len(self._symbols)

    def decoded_bits(self) -> np.ndarray:
        """All emitted symbols expanded to their Gray-coded bits."""
        if not self._symbols:
            return np.empty(0, dtype=np.uint8)
        return np.concatenate(
            [self.alphabet.bits_for_symbol(s) for s in self._symbols]
        )
