"""Frame batching — the stacked fast path is bit-exact and >=5x faster.

Runs the ``bench_executor_scaling`` workload (240 frames x 16 symbols at
5 m) through ``run_downlink_trials`` twice on a single worker: once on
the per-frame reference path and once with ``batch_frames=True``, which
synthesizes and decodes each chunk's frames as stacked
``(n_frames, n_samples)`` arrays.  The bench asserts the two
``BerPoint`` results — including the ``extra`` payload — are identical
bit for bit, then asserts the batched path clears a 5x single-core
trials/sec floor.

Each mode is timed best-of-N: the first repetition pays one-time costs
(template and slot-projector caches, BLAS warm-up) and single-core
wall-clock jitters by double-digit percent on shared runners, so the
minimum is the honest steady-state number.  Both modes use one chunk
spanning the whole run so the comparison isolates the DSP kernels rather
than executor chunking overhead.
"""

import time

from conftest import emit, emit_bench_json
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
from repro.sim.executor import ExecutionPlan
from repro.sim.results import format_table

NUM_FRAMES = 240
SYMBOLS_PER_FRAME = 16
DISTANCE_M = 5.0
REPEATS = 5
MIN_SPEEDUP = 5.0


def run_study(paper_alphabet):
    config = DownlinkTrialConfig(
        radar_config=XBAND_9GHZ,
        alphabet=paper_alphabet,
        distance_m=DISTANCE_M,
        num_frames=NUM_FRAMES,
        payload_symbols_per_frame=SYMBOLS_PER_FRAME,
    )
    plans = {
        "per-frame": ExecutionPlan(workers=1, chunk_size=NUM_FRAMES),
        "batched": ExecutionPlan(
            workers=1, chunk_size=NUM_FRAMES, batch_frames=True
        ),
    }
    points = {}
    timings = {label: [] for label in plans}
    for _rep in range(REPEATS):
        for label, plan in plans.items():
            start = time.perf_counter()
            points[label] = run_downlink_trials(config, rng=0, execution=plan)
            timings[label].append(time.perf_counter() - start)
    best = {label: min(times) for label, times in timings.items()}
    return points, best, timings


def test_frame_batching(benchmark, paper_alphabet):
    points, best, timings = benchmark.pedantic(
        run_study, args=(paper_alphabet,), rounds=1, iterations=1
    )
    speedup = best["per-frame"] / best["batched"]
    trials_per_s = {label: NUM_FRAMES / seconds for label, seconds in best.items()}

    rows = [
        [
            label,
            f"{best[label] * 1e3:.1f}",
            f"{trials_per_s[label]:.0f}",
            f"{points[label].ber:.2e}",
            f"{points[label].bit_errors}/{points[label].bits_total}",
        ]
        for label in points
    ]
    table = format_table(
        ["mode", "best wall (ms)", "trials/s", "BER", "errors/bits"], rows
    )
    table += (
        f"\n{NUM_FRAMES} frames x {SYMBOLS_PER_FRAME} symbols at {DISTANCE_M} m; "
        f"best of {REPEATS}; batched speedup x{speedup:.2f} "
        f"(floor x{MIN_SPEEDUP:.1f}) on one worker"
    )
    emit("frame_batching", table)
    emit_bench_json(
        "frame_batching",
        elapsed_seconds=sum(sum(times) for times in timings.values()),
        results={
            "num_frames": NUM_FRAMES,
            "symbols_per_frame": SYMBOLS_PER_FRAME,
            "distance_m": DISTANCE_M,
            "repeats": REPEATS,
            "per_frame_seconds": best["per-frame"],
            "batched_seconds": best["batched"],
            "per_frame_trials_per_second": trials_per_s["per-frame"],
            "batched_trials_per_second": trials_per_s["batched"],
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "bit_exact": points["batched"] == points["per-frame"],
            "ber": float(points["per-frame"].ber),
        },
    )

    # The oracle contract: the fast path changes wall-clock, never bits.
    assert points["batched"] == points["per-frame"]
    # The throughput claim: >=5x single-core trials/sec over per-frame.
    assert speedup >= MIN_SPEEDUP, (
        f"expected >={MIN_SPEEDUP:.1f}x batched speedup, got {speedup:.2f}x "
        f"(per-frame {best['per-frame']:.3f} s, batched {best['batched']:.3f} s)"
    )
