"""Impairment models: composable signal-chain faults with severity knobs.

Each model is a frozen dataclass with a single shared ``severity`` knob in
``[0, 1]``.  Severity 0 means the impairment is *off*; the contract every
model honours — and :mod:`tests/unit/test_impair.py` enforces — is that an
inactive impairment returns its input **unchanged and draws nothing from
the RNG**, so a severity-0 run is bit-identical to a run with no
impairment hooks at all.  At severity 1 the model applies its configured
maximum (the ``max_*`` parameters).

All models are plain dataclasses, so they canonicalize through
:mod:`repro.store.fingerprint` and impaired runs flow through the
content-addressed experiment store exactly like clean ones.

The five faults, and what each emulates physically:

* :class:`InterferenceBurst` — a co-channel FMCW radar sweeping through
  the victim band; appears as chirp-like swept-tone bursts in both the
  tag's video stream and the radar's IF chirps.
* :class:`ClockDrift` — tag oscillator ppm error: the tag's switching
  rates and its decoder's notion of the beat grid drift off-nominal
  (CFO); not a stream transform, queried via ``offset_ppm``.
* :class:`AdcSaturation` — the tag's video amplifier overdriving its ADC:
  the clipping range shrinks below the signal peak and the waveform is
  re-quantized through :class:`repro.components.adc.ADC`.
* :class:`ChirpLoss` — dropped or truncated chirps (receiver blanking,
  packet-level sample erasures): whole slots are zeroed, or their tails
  are, keeping array shapes intact.
* :class:`ImpulsiveNoise` — non-Gaussian interference (switching
  transients, ignition noise): Bernoulli-gated high-amplitude Gaussian
  impulses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.components.adc import ADC
from repro.utils.validation import ensure_in_range, ensure_positive, ensure_probability


def _stream_power(x: np.ndarray) -> float:
    """Mean-square power of a (real or complex) stream, floored at tiny."""
    power = float(np.mean(np.abs(x) ** 2)) if x.size else 0.0
    return power if power > 0 else 1e-30


@dataclass(frozen=True)
class Impairment:
    """Base class: the shared severity knob and fingerprint plumbing.

    Subclasses implement :meth:`apply_stream` (the tag's real-valued
    video/ADC stream) and :meth:`apply_chirps` (the radar's per-chirp
    complex IF samples).  Both must be identity — no copy, no RNG draw —
    when :attr:`active` is false.
    """

    severity: float = 1.0

    def __post_init__(self) -> None:
        ensure_in_range("severity", self.severity, 0.0, 1.0)

    @property
    def active(self) -> bool:
        """Whether this impairment perturbs anything at all."""
        return self.severity > 0.0

    def with_severity(self, severity: float) -> "Impairment":
        """The same fault at a different severity."""
        return replace(self, severity=severity)

    def fingerprint(self) -> str:
        """Content hash of this impairment (store/cache identity)."""
        from repro.store.fingerprint import fingerprint

        return fingerprint("impairment", self)

    # -- injection points (subclasses override what applies to them) ------

    def apply_stream(
        self,
        samples: np.ndarray,
        sample_rate_hz: float,
        rng: np.random.Generator,
        *,
        slots: "list[tuple[int, int]] | None" = None,
    ) -> np.ndarray:
        """Impair one contiguous real-valued sample stream."""
        return samples

    def apply_chirps(
        self,
        chirps: "list[np.ndarray]",
        sample_rate_hz: float,
        rng: np.random.Generator,
    ) -> "list[np.ndarray]":
        """Impair a frame's per-chirp complex IF samples."""
        return chirps


@dataclass(frozen=True)
class InterferenceBurst(Impairment):
    """Co-channel FMCW interference: swept-tone bursts in-band.

    Parameters
    ----------
    power_ratio_db:
        Interference-to-signal power ratio at severity 1 (positive =
        interferer stronger than the victim signal).
    burst_duty:
        Fraction of the stream (or of the frame's chirps) hit by bursts
        at severity 1; scales linearly with severity.
    """

    power_ratio_db: float = 3.0
    burst_duty: float = 0.25

    def __post_init__(self) -> None:
        super().__post_init__()
        ensure_probability("burst_duty", self.burst_duty)

    def _tone(
        self, n: int, sample_rate_hz: float, power_w: float, rng: np.random.Generator,
        *, complex_valued: bool,
    ) -> np.ndarray:
        """One linear-FM burst with random start/stop frequency and phase."""
        t = np.arange(n) / sample_rate_hz
        nyquist = sample_rate_hz / 2.0
        f0 = rng.uniform(0.02, 0.45) * nyquist
        f1 = rng.uniform(0.02, 0.45) * nyquist
        phi0 = rng.uniform(0.0, 2.0 * np.pi)
        duration = max(n, 1) / sample_rate_hz
        phase = 2.0 * np.pi * (f0 * t + 0.5 * (f1 - f0) / duration * t**2) + phi0
        if complex_valued:
            return np.sqrt(power_w) * np.exp(1j * phase)
        return np.sqrt(2.0 * power_w) * np.cos(phase)

    def apply_stream(self, samples, sample_rate_hz, rng, *, slots=None):
        if not self.active or samples.size < 2:
            return samples
        power = _stream_power(samples)
        burst_power = power * 10.0 ** (self.power_ratio_db / 10.0) * self.severity
        n_burst = max(int(self.burst_duty * self.severity * samples.size), 2)
        n_burst = min(n_burst, samples.size)
        start = int(rng.integers(0, samples.size - n_burst + 1))
        out = np.array(samples, dtype=float, copy=True)
        out[start : start + n_burst] += self._tone(
            n_burst, sample_rate_hz, burst_power, rng, complex_valued=False
        )
        return out

    def apply_chirps(self, chirps, sample_rate_hz, rng):
        if not self.active or not chirps:
            return chirps
        num_hit = max(int(round(self.burst_duty * self.severity * len(chirps))), 1)
        hit = set(rng.choice(len(chirps), size=min(num_hit, len(chirps)), replace=False).tolist())
        out = []
        for index, chirp in enumerate(chirps):
            if index in hit and chirp.size >= 2:
                power = _stream_power(chirp)
                burst_power = power * 10.0 ** (self.power_ratio_db / 10.0) * self.severity
                out.append(
                    chirp
                    + self._tone(
                        chirp.size, sample_rate_hz, burst_power, rng,
                        complex_valued=True,
                    )
                )
            else:
                out.append(chirp)
        return out


@dataclass(frozen=True)
class ClockDrift(Impairment):
    """Tag oscillator ppm drift (CFO): queried, not stream-applied.

    The tag derives both its switching rates and its ADC/beat grid from
    one oscillator, so a ppm error shows up as (a) the uplink square wave
    running off its assigned rate and (b) the downlink decoder's
    hypothesis beats landing off the true tones.  The session reads
    :attr:`offset_ppm` and threads it into
    :class:`repro.tag.modulator.UplinkModulator` /
    :class:`repro.tag.decoder_dsp.TagDecoder`; the streams themselves are
    untouched.
    """

    max_offset_ppm: float = 200.0

    def __post_init__(self) -> None:
        super().__post_init__()
        ensure_positive("max_offset_ppm", self.max_offset_ppm)

    @property
    def offset_ppm(self) -> float:
        """The drift in effect at this severity."""
        return self.severity * self.max_offset_ppm


@dataclass(frozen=True)
class AdcSaturation(Impairment):
    """Tag ADC clipping: the full-scale range shrinks below the peak.

    At severity ``s`` the converter's clipping level drops
    ``s * max_backoff_db`` below the stream's own peak, then the stream
    is re-quantized through the uniform characteristic of
    :class:`repro.components.adc.ADC` — hard clipping plus coarse
    requantization, exactly what an overdriven video amplifier produces.
    Deterministic (no RNG draws).
    """

    max_backoff_db: float = 20.0
    bits: int = 10

    def __post_init__(self) -> None:
        super().__post_init__()
        ensure_positive("max_backoff_db", self.max_backoff_db)
        if self.bits < 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"bits must be >= 1, got {self.bits}")

    def apply_stream(self, samples, sample_rate_hz, rng, *, slots=None):
        if not self.active or samples.size == 0:
            return samples
        peak = float(np.max(np.abs(samples)))
        if peak <= 0:
            return samples
        full_scale = peak * 10.0 ** (-self.severity * self.max_backoff_db / 20.0)
        adc = ADC(
            sample_rate_hz=sample_rate_hz, bits=self.bits, full_scale_v=full_scale
        )
        return adc.quantize(np.asarray(samples, dtype=float))


@dataclass(frozen=True)
class ChirpLoss(Impairment):
    """Dropped or truncated chirps: slots blanked to zero.

    Each slot is independently lost with probability
    ``severity * max_loss_fraction``; a lost slot's samples are zeroed
    (receiver blanking) rather than removed, so every downstream array
    shape and slot index stays valid.  ``truncate_fraction > 0`` instead
    zeroes only the trailing fraction of each lost slot, modelling a
    chirp cut short mid-sweep.
    """

    max_loss_fraction: float = 0.5
    truncate_fraction: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        ensure_probability("max_loss_fraction", self.max_loss_fraction)
        ensure_probability("truncate_fraction", self.truncate_fraction)

    def _loss_mask(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return rng.random(count) < (self.severity * self.max_loss_fraction)

    def _blank(self, samples: np.ndarray) -> np.ndarray:
        out = np.array(samples, copy=True)
        if self.truncate_fraction > 0:
            keep = int(round((1.0 - self.truncate_fraction) * out.size))
            out[keep:] = 0
        else:
            out[:] = 0
        return out

    def apply_stream(self, samples, sample_rate_hz, rng, *, slots=None):
        if not self.active or samples.size == 0:
            return samples
        if not slots:
            # No slot structure: treat the whole stream as one slot.
            slots = [(0, samples.size)]
        mask = self._loss_mask(len(slots), rng)
        if not np.any(mask):
            return samples
        out = np.array(samples, copy=True)
        for (start, stop), lost in zip(slots, mask):
            if lost and stop > start:
                out[start:stop] = self._blank(out[start:stop])
        return out

    def apply_chirps(self, chirps, sample_rate_hz, rng):
        if not self.active or not chirps:
            return chirps
        mask = self._loss_mask(len(chirps), rng)
        if not np.any(mask):
            return chirps
        return [
            self._blank(chirp) if lost else chirp
            for chirp, lost in zip(chirps, mask)
        ]


@dataclass(frozen=True)
class ImpulsiveNoise(Impairment):
    """Bernoulli-Gaussian impulses: heavy-tailed, non-AWGN noise.

    Each sample is hit with probability ``severity * impulse_probability``
    by a Gaussian impulse whose RMS sits ``impulse_power_db`` above the
    stream's own RMS — the classic two-state impulsive-channel model.
    """

    impulse_probability: float = 0.01
    impulse_power_db: float = 15.0

    def __post_init__(self) -> None:
        super().__post_init__()
        ensure_probability("impulse_probability", self.impulse_probability)

    def _impulses(
        self, shape, power_w: float, rng: np.random.Generator, *, complex_valued: bool
    ) -> np.ndarray:
        probability = self.severity * self.impulse_probability
        gate = rng.random(shape) < probability
        if complex_valued:
            scale = np.sqrt(power_w / 2.0)
            noise = scale * (rng.standard_normal(shape) + 1j * rng.standard_normal(shape))
        else:
            noise = np.sqrt(power_w) * rng.standard_normal(shape)
        return np.where(gate, noise, 0.0)

    def apply_stream(self, samples, sample_rate_hz, rng, *, slots=None):
        if not self.active or samples.size == 0:
            return samples
        power = _stream_power(samples) * 10.0 ** (self.impulse_power_db / 10.0)
        return np.asarray(samples, dtype=float) + self._impulses(
            samples.shape, power, rng, complex_valued=False
        )

    def apply_chirps(self, chirps, sample_rate_hz, rng):
        if not self.active or not chirps:
            return chirps
        out = []
        for chirp in chirps:
            if chirp.size == 0:
                out.append(chirp)
                continue
            power = _stream_power(chirp) * 10.0 ** (self.impulse_power_db / 10.0)
            out.append(
                chirp + self._impulses(chirp.shape, power, rng, complex_valued=True)
            )
        return out
