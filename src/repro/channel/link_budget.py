"""Link budgets for the two BiScatter directions.

Downlink (radar -> tag decoder)
    One-way path into the tag antenna, then through the decoder RF chain
    (switch RF2 path, splitter, delay lines, combiner) into the square-law
    envelope detector.  Because the detector is square-law, the video-band
    beat-tone amplitude is proportional to the *RF power* product of the two
    branches: ``v_beat = 2 R sqrt(P1 P2)``, and the competing noise is the
    detector's output-referred noise plus ADC quantization noise.  The
    decoder's per-chirp detection SNR additionally enjoys the Goertzel/FFT
    processing gain ``f_s T_chirp`` over the video bandwidth.

Uplink (radar -> tag -> radar)
    Radar-equation (R^4) backscatter link with the Van Atta array's
    retro-reflective RCS; the tag's OOK modulation places half the
    modulated power into the signature sidebands the radar detects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.noise import NoiseModel
from repro.channel.propagation import (
    one_way_received_power_dbm,
    radar_received_power_dbm,
)
from repro.components.adc import ADC
from repro.components.antenna import Antenna
from repro.components.envelope_detector import EnvelopeDetector
from repro.components.van_atta import VanAttaArray
from repro.errors import LinkBudgetError
from repro.utils.units import dbm_to_watts, power_ratio_to_db, watts_to_dbm
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class DownlinkBudget:
    """Radar-to-tag decoder link budget.

    Parameters
    ----------
    tx_power_dbm:
        Radar transmit power (paper: 7 dBm at 9 GHz, 8 dBm at 24 GHz).
    radar_antenna / tag_antenna:
        Antennas at each end.
    frequency_hz:
        Carrier (band-center) frequency.
    decoder_path_loss_db:
        Total RF loss from the tag antenna to the detector input on ONE
        branch: switch through-path + split + delay line + combine.  The
        short/long branches are assumed loss-matched to this value (their
        small difference is absorbed into the loss figure).
    detector / adc:
        The envelope detector and sampling ADC that set the video noise
        floor.
    video_bandwidth_hz:
        Analysis bandwidth for the video SNR (defaults to the detector's
        low-pass cutoff).
    """

    tx_power_dbm: float = 7.0
    radar_antenna: Antenna = field(default_factory=lambda: Antenna(gain_dbi=20.0, beamwidth_deg=18.0))
    tag_antenna: Antenna = field(default_factory=lambda: Antenna(gain_dbi=10.0, beamwidth_deg=45.0))
    frequency_hz: float = 9.0e9
    decoder_path_loss_db: float = 11.0
    detector: EnvelopeDetector = field(default_factory=EnvelopeDetector)
    adc: ADC = field(default_factory=ADC)
    video_bandwidth_hz: float | None = None
    video_amplifier_gain: float = 1000.0

    def __post_init__(self) -> None:
        ensure_positive("frequency_hz", self.frequency_hz)
        if self.decoder_path_loss_db < 0:
            raise LinkBudgetError(
                f"decoder_path_loss_db must be >= 0, got {self.decoder_path_loss_db!r}"
            )
        if self.video_bandwidth_hz is not None:
            ensure_positive("video_bandwidth_hz", self.video_bandwidth_hz)
        ensure_positive("video_amplifier_gain", self.video_amplifier_gain)

    @property
    def effective_video_bandwidth_hz(self) -> float:
        """Video analysis bandwidth (detector cutoff unless overridden)."""
        if self.video_bandwidth_hz is not None:
            return self.video_bandwidth_hz
        return self.detector.lowpass_cutoff_hz

    def received_power_at_tag_dbm(self, distance_m: float, *, off_boresight_deg: float = 0.0) -> float:
        """Power captured by the tag antenna."""
        return one_way_received_power_dbm(
            self.tx_power_dbm,
            self.radar_antenna.gain_db_at(off_boresight_deg),
            self.tag_antenna.gain_db_at(off_boresight_deg),
            distance_m,
            self.frequency_hz,
        )

    def branch_power_w(self, distance_m: float, *, off_boresight_deg: float = 0.0) -> float:
        """RF power arriving at the detector via one delay-line branch."""
        rx_dbm = self.received_power_at_tag_dbm(distance_m, off_boresight_deg=off_boresight_deg)
        return float(dbm_to_watts(rx_dbm - self.decoder_path_loss_db))

    def video_beat_amplitude_v(self, distance_m: float, *, off_boresight_deg: float = 0.0) -> float:
        """Peak amplitude of the beat tone at the detector output.

        For equal branch powers ``P``, the square-law cross term is
        ``2 R P`` volts peak (see module docstring).
        """
        branch = self.branch_power_w(distance_m, off_boresight_deg=off_boresight_deg)
        return 2.0 * self.detector.responsivity_v_per_w * branch

    def video_noise_rms_v(self) -> float:
        """RMS video-band noise referred to the detector output.

        The uV-level detector output rides through a video amplifier before
        the ADC, so quantization noise is divided by the amplifier gain
        when referred back to the detector — with the default 60 dB gain it
        is negligible against the detector's own noise, as in the real tag.
        """
        detector_noise = self.detector.output_noise_rms_v(self.effective_video_bandwidth_hz)
        quantization = self.adc.quantization_noise_rms_v / self.video_amplifier_gain
        return float(np.hypot(detector_noise, quantization))

    def video_snr_db(self, distance_m: float, *, off_boresight_deg: float = 0.0) -> float:
        """Video-band SNR of the beat tone (before processing gain)."""
        amplitude = self.video_beat_amplitude_v(distance_m, off_boresight_deg=off_boresight_deg)
        signal_power = amplitude**2 / 2.0
        noise_power = self.video_noise_rms_v() ** 2
        return float(power_ratio_to_db(signal_power / noise_power))

    def processing_gain_db(self, chirp_duration_s: float) -> float:
        """Goertzel/FFT coherent integration gain over one chirp.

        Integrating ``N = f_adc * T_chirp`` samples narrows the detection
        bandwidth from the video bandwidth to ``1 / T_chirp``.
        """
        ensure_positive("chirp_duration_s", chirp_duration_s)
        bin_bandwidth = 1.0 / chirp_duration_s
        gain = self.effective_video_bandwidth_hz / bin_bandwidth
        return float(power_ratio_to_db(max(gain, 1.0)))

    def detection_snr_db(
        self, distance_m: float, chirp_duration_s: float, *, off_boresight_deg: float = 0.0
    ) -> float:
        """Per-chirp SNR in the decoder's detection bin."""
        return self.video_snr_db(
            distance_m, off_boresight_deg=off_boresight_deg
        ) + self.processing_gain_db(chirp_duration_s)

    def distance_for_video_snr(self, target_snr_db: float) -> float:
        """Distance at which the video SNR equals ``target_snr_db``.

        Because the detector is square-law, video SNR falls 40 dB/decade of
        distance (one-way power enters squared); solved in closed form.
        """
        reference_distance = 1.0
        reference_snr = self.video_snr_db(reference_distance)
        # snr(d) = snr(1m) - 40 log10(d)
        return float(10.0 ** ((reference_snr - target_snr_db) / 40.0))


def decoder_path_loss_db(
    switch,
    splitter,
    delay_line,
    combiner,
    frequency_hz: float,
) -> float:
    """One-branch RF loss from the tag antenna to the detector input.

    Cascade: switch through-path -> split -> delay line -> combine.  The
    default :class:`DownlinkBudget.decoder_path_loss_db` of 11 dB is this
    cascade evaluated on the default component models at 9 GHz; use this
    helper to derive the figure for any other component set.
    """
    ensure_positive("frequency_hz", frequency_hz)
    return float(
        switch.insertion_loss_db
        + splitter.insertion_loss_db(frequency_hz)
        + delay_line.insertion_loss_db(frequency_hz)
        + combiner.insertion_loss_db(frequency_hz)
    )


@dataclass(frozen=True)
class UplinkBudget:
    """Tag-to-radar backscatter link budget (radar equation, R^4).

    Parameters
    ----------
    tx_power_dbm / radar_antenna / frequency_hz:
        Radar parameters (monostatic: same antenna gain both ways).
    van_atta:
        The tag's retro-reflective array, providing the modulated RCS.
    noise:
        Radar receive-chain noise model.
    if_bandwidth_hz:
        IF (fast-time) bandwidth of the radar ADC.
    residual_clutter_dbm:
        Post-background-subtraction clutter floor in the tag's
        range-Doppler cell; bounds achievable SNR at short range.
    """

    tx_power_dbm: float = 7.0
    radar_antenna: Antenna = field(default_factory=lambda: Antenna(gain_dbi=20.0, beamwidth_deg=18.0))
    frequency_hz: float = 9.0e9
    van_atta: VanAttaArray = field(default_factory=VanAttaArray)
    noise: NoiseModel = field(default_factory=lambda: NoiseModel(noise_figure_db=10.0))
    if_bandwidth_hz: float = 2.0e6
    residual_clutter_dbm: float = -95.0
    self_interference_ceiling_db: float | None = 25.0

    def __post_init__(self) -> None:
        ensure_positive("frequency_hz", self.frequency_hz)
        ensure_positive("if_bandwidth_hz", self.if_bandwidth_hz)

    def modulated_rcs_m2(self, *, incidence_deg: float = 0.0) -> float:
        """Effective RCS of the *modulated* component of the tag return.

        OOK toggling between the reflective and absorptive RCS levels puts
        the difference of the two amplitude states into the modulation
        sidebands; a 50% duty square wave places ``(d_sigma_amp / 2)^2`` of
        power at the fundamental (x ``8/pi^2`` for the square-to-sine
        projection, folded into the 3 dB modulation allowance below).
        """
        reflective, absorptive = self.van_atta.modulated_rcs_amplitudes(
            self.frequency_hz, incidence_deg=incidence_deg
        )
        amplitude_swing = (np.sqrt(reflective) - np.sqrt(absorptive)) / 2.0
        return float(amplitude_swing**2)

    def received_power_dbm(self, distance_m: float, *, incidence_deg: float = 0.0) -> float:
        """Modulated backscatter power at the radar receiver input."""
        gain = self.radar_antenna.gain_db_at(incidence_deg)
        return radar_received_power_dbm(
            self.tx_power_dbm,
            gain,
            gain,
            distance_m,
            self.frequency_hz,
            self.modulated_rcs_m2(incidence_deg=incidence_deg),
        )

    def noise_floor_dbm(self) -> float:
        """Noise plus residual clutter competing in the detection cell."""
        thermal = self.noise.noise_power_dbm(self.if_bandwidth_hz)
        thermal_w = float(dbm_to_watts(thermal))
        clutter_w = float(dbm_to_watts(self.residual_clutter_dbm))
        return float(watts_to_dbm(thermal_w + clutter_w))

    def snr_db(
        self,
        distance_m: float,
        *,
        incidence_deg: float = 0.0,
        processing_gain_db: float = 0.0,
    ) -> float:
        """Uplink SNR in the radar's detection cell.

        ``processing_gain_db`` accounts for range-Doppler integration
        (``10 log10(N_samples x N_chirps)`` relative to the IF bandwidth);
        pass 0 for the raw per-sample SNR.

        ``self_interference_ceiling_db`` (an attribute) bounds the result:
        residual oscillator phase noise and clutter leakage scale WITH the
        received signal, so close-range SNR saturates instead of following
        R^4 indefinitely — the compression visible in the paper's measured
        Fig. 15 (and in this package's IF-domain simulator, whose 1%
        per-chirp gain jitter produces the same kind of ceiling).  Set the
        field to None for the pure radar-equation result.
        """
        received = self.received_power_dbm(distance_m, incidence_deg=incidence_deg)
        thermal_limited = received - self.noise_floor_dbm() + processing_gain_db
        if self.self_interference_ceiling_db is None:
            return thermal_limited
        linear = 10.0 ** (thermal_limited / 10.0)
        ceiling = 10.0 ** (self.self_interference_ceiling_db / 10.0)
        return float(10.0 * np.log10(1.0 / (1.0 / linear + 1.0 / ceiling)))

    def range_doppler_processing_gain_db(
        self, samples_per_chirp: int, num_chirps: int
    ) -> float:
        """Coherent 2D-FFT gain of range-Doppler processing."""
        if samples_per_chirp < 1 or num_chirps < 1:
            raise LinkBudgetError("samples_per_chirp and num_chirps must be >= 1")
        return float(power_ratio_to_db(float(samples_per_chirp * num_chirps)))


def ook_ber_from_snr_db(snr_db: float) -> float:
    """Theoretical BER of OOK at a given detection SNR.

    ``BER = Q(sqrt(2 SNR)) = erfc(sqrt(SNR)) / 2`` — the reference curve
    consistent with the paper's quoted operating point ("4 dB SNR ...
    theoretical BER of 1e-2": this expression gives 1.2e-2 at 4 dB).
    """
    from scipy.special import erfc

    snr_linear = 10.0 ** (snr_db / 10.0)
    return float(0.5 * erfc(np.sqrt(snr_linear)))
