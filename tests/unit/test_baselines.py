"""Baseline systems and the Table 1 capability matrix."""

import numpy as np
import pytest

from repro.baselines import (
    BiScatterSystem,
    MilBackSystem,
    MillimetroSystem,
    MmTagSystem,
)
from repro.baselines.base import TABLE1_COLUMNS
from repro.core.ber import random_bits
from repro.radar.config import XBAND_9GHZ


class TestCapabilities:
    def test_table1_matrix_matches_paper(self):
        rows = {
            "Millimetro": (False, False, True, False, True),
            "mmTag": (True, False, False, False, True),
            "MilBack": (True, True, True, False, False),
            "BiScatter (this work)": (True, True, True, True, True),
        }
        systems = [
            MillimetroSystem.capabilities(),
            MmTagSystem.capabilities(),
            MilBackSystem.capabilities(),
            BiScatterSystem.capabilities(),
        ]
        for caps in systems:
            expected = rows[caps.name]
            assert (
                caps.uplink_comm,
                caps.downlink_comm,
                caps.tag_localization,
                caps.integrated_sensing_and_comms,
                caps.commercial_radar_compatible,
            ) == expected

    def test_as_row_renders(self):
        row = MillimetroSystem.capabilities().as_row()
        assert len(row) == len(TABLE1_COLUMNS)
        assert row[0] == "Millimetro"
        assert row[3] == "yes"  # localization


class TestMillimetro:
    def test_localizes_beacon_tag(self):
        system = MillimetroSystem(radar_config=XBAND_9GHZ)
        result = system.localize_tag(4.2, num_chirps=96, rng=1)
        assert abs(result.range_m - 4.2) < 0.05

    def test_fixed_slope_frames(self):
        system = MillimetroSystem(radar_config=XBAND_9GHZ)
        frame = system.sensing_frame(8)
        slopes = frame.slopes_hz_per_s
        np.testing.assert_allclose(slopes, slopes[0])


class TestMmTag:
    def test_uplink_roundtrip(self):
        system = MmTagSystem(radar_config=XBAND_9GHZ)
        bits = random_bits(5, rng=3)
        result = system.transmit_uplink(bits, 2.5, rng=4)
        np.testing.assert_array_equal(result.bits, bits)

    def test_frame_sized_for_bits(self):
        system = MmTagSystem(radar_config=XBAND_9GHZ, chirps_per_bit=16)
        frame = system.uplink_frame(3)
        assert len(frame) == 48

    def test_rejects_zero_bits(self):
        system = MmTagSystem(radar_config=XBAND_9GHZ)
        with pytest.raises(ValueError):
            system.uplink_frame(0)


class TestMilBack:
    def test_handshake_overhead(self):
        system = MilBackSystem(handshake_steps=16, probe_slot_s=1e-3)
        assert system.handshake_overhead_s() == pytest.approx(16e-3)

    def test_downlink_snr_declines(self):
        system = MilBackSystem()
        assert system.downlink_snr_db(1.0) > system.downlink_snr_db(5.0)

    def test_ber_monotone(self):
        system = MilBackSystem()
        assert system.downlink_ber(10.0) >= system.downlink_ber(2.0)

    def test_throughput_charged_for_handshake_and_split(self):
        system = MilBackSystem(downlink_rate_bps=100e3)
        goodput = system.effective_throughput_bps(100e-3, sensing_duty=0.5)
        # Handshake 16 ms of 100 ms, then half the airtime is sensing.
        assert goodput == pytest.approx(100e3 * 0.84 * 0.5, rel=1e-6)

    def test_session_shorter_than_handshake(self):
        system = MilBackSystem()
        assert system.effective_throughput_bps(1e-3) == 0.0


class TestBiScatterEntry:
    def test_no_handshake(self):
        assert BiScatterSystem().handshake_overhead_s() == 0.0

    def test_throughput_beats_milback(self, alphabet):
        ours = BiScatterSystem(alphabet=alphabet)
        theirs = MilBackSystem(downlink_rate_bps=alphabet.data_rate_bps())
        duration = 50e-3
        assert ours.effective_throughput_bps(duration) > theirs.effective_throughput_bps(duration)

    def test_throughput_needs_alphabet(self):
        with pytest.raises(ValueError):
            BiScatterSystem().effective_throughput_bps(1.0)
