"""Coverage for the error hierarchy, top-level API, and smaller utilities."""

import numpy as np
import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "WaveformError",
            "AlphabetError",
            "PacketError",
            "SyncError",
            "DecodingError",
            "LinkBudgetError",
            "SimulationError",
            "DetectionError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_sync_error_is_packet_error(self):
        assert issubclass(errors.SyncError, errors.PacketError)

    def test_catching_base_catches_domain_failures(self):
        from repro.core.cssk import CsskAlphabet, DecoderDesign

        with pytest.raises(errors.ReproError):
            CsskAlphabet.design(
                bandwidth_hz=1e9,
                decoder=DecoderDesign.from_inches(45.0),
                symbol_bits=5,
                chirp_period_s=25e-6,  # window collapses
                min_chirp_duration_s=20e-6,
            )


class TestTopLevelApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_presets_importable_from_top_level(self):
        assert repro.XBAND_9GHZ.name == "xband-9ghz"
        assert repro.TINYRAD_24GHZ.name == "tinyrad-24ghz"
        assert repro.AUTOMOTIVE_77GHZ.name == "automotive-77ghz"

    def test_core_exports_resolve(self):
        from repro import core

        for name in core.__all__:
            assert getattr(core, name, None) is not None, name

    def test_tag_exports_resolve(self):
        from repro import tag

        for name in tag.__all__:
            assert getattr(tag, name, None) is not None, name

    def test_radar_exports_resolve(self):
        from repro import radar

        for name in radar.__all__:
            assert getattr(radar, name, None) is not None, name


class TestDetectAllTags:
    def test_finds_every_enrolled_tag(self):
        from repro.radar.config import XBAND_9GHZ
        from repro.radar.detection import detect_all_tags
        from repro.radar.fmcw import FMCWRadar, Scatterer
        from repro.radar.if_correction import align_profiles_to_common_grid
        from repro.waveform.frame import FrameSchedule

        period = 120e-6
        chirp = XBAND_9GHZ.chirp(80e-6)
        frame = FrameSchedule.from_chirps([chirp] * 192, period)
        times = np.array([slot.start_time_s for slot in frame.slots])
        placements = {1500.0: 2.0, 2600.0: 4.5}
        scatterers = []
        for rate, distance in placements.items():
            states = ((times * rate) % 1.0) < 0.5
            scatterers.append(
                Scatterer(
                    range_m=distance,
                    rcs_m2=3e-3,
                    amplitude_schedule=np.where(states, 1.0, 0.03),
                )
            )
        if_frame = FMCWRadar(XBAND_9GHZ).receive_frame(frame, scatterers, rng=0)
        correction = align_profiles_to_common_grid(if_frame)
        # Probe the two live rates plus one nobody uses.
        results = detect_all_tags(
            correction.aligned,
            correction.range_grid_m,
            period,
            [1500.0, 2600.0, 3500.0],
        )
        assert results[1500.0] is not None
        assert results[1500.0].range_m == pytest.approx(2.0, abs=0.1)
        assert results[2600.0] is not None
        assert results[2600.0].range_m == pytest.approx(4.5, abs=0.1)
        # A probe at an unused rate may alias-match another tag's sampled
        # square-wave harmonics (slot-rate aliasing puts lines everywhere),
        # but it must never invent a tag at a NEW location: any hit has to
        # be collocated with a genuinely enrolled tag.
        phantom = results[3500.0]
        if phantom is not None:
            assert any(
                abs(phantom.range_m - d) < 0.2 for d in placements.values()
            )


class TestRadarPhaseNoise:
    def test_phase_noise_spreads_target_energy(self):
        from dataclasses import replace

        from repro.radar.config import XBAND_9GHZ
        from repro.radar.fmcw import FMCWRadar, Scatterer
        from repro.radar.range_processing import range_fft
        from repro.waveform.frame import FrameSchedule

        chirp = XBAND_9GHZ.chirp(80e-6)
        frame = FrameSchedule.from_chirps([chirp], 120e-6)
        target = Scatterer(range_m=3.0, rcs_m2=1e-2, gain_jitter_std=0.0)

        def peak_to_total(config):
            if_frame = FMCWRadar(config).receive_frame(
                frame, [target], rng=0, add_noise=False
            )
            profile = np.abs(range_fft(if_frame.chirp_samples[0])) ** 2
            return profile.max() / profile.sum()

        clean = peak_to_total(XBAND_9GHZ)
        noisy = peak_to_total(replace(XBAND_9GHZ, phase_noise_linewidth_hz=20e3))
        assert noisy < clean  # energy leaks out of the peak bin
