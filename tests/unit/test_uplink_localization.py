"""Radar-side uplink decoding and tag localization."""

import numpy as np
import pytest

from repro.channel.multipath import Clutter
from repro.core.localization import TagLocalizer
from repro.core.uplink import UplinkDecoder
from repro.errors import DecodingError
from repro.radar.config import XBAND_9GHZ
from repro.radar.fmcw import FMCWRadar, Scatterer
from repro.tag.modulator import ModulationScheme, UplinkModulator
from repro.waveform.frame import FrameSchedule


def build_uplink_frame(num_chirps, duration=80e-6, period=120e-6):
    chirp = XBAND_9GHZ.chirp(duration)
    return FrameSchedule.from_chirps([chirp] * num_chirps, period)


def simulate_uplink(bits, modulator, tag_range=3.0, rng=0, clutter=None, tag_rcs=3e-3):
    bits = np.asarray(bits, dtype=np.uint8)
    frame = build_uplink_frame(bits.size * modulator.chirps_per_bit)
    times = np.array([slot.start_time_s for slot in frame.slots])
    states = modulator.states_for_bits(bits, times)
    schedule = np.where(states, 1.0, 0.03)
    scatterers = [
        Scatterer(range_m=tag_range, rcs_m2=tag_rcs, amplitude_schedule=schedule)
    ]
    if clutter:
        scatterers += [
            Scatterer(range_m=r.range_m, rcs_m2=r.rcs_m2) for r in clutter.reflectors
        ]
    radar = FMCWRadar(XBAND_9GHZ)
    return radar.receive_frame(frame, scatterers, rng=rng)


@pytest.fixture(scope="module")
def ook_modulator():
    return UplinkModulator(
        modulation_rate_hz=2000.0, chirp_period_s=120e-6, chirps_per_bit=32
    )


@pytest.fixture(scope="module")
def fsk_modulator():
    return UplinkModulator(
        modulation_rate_hz=2000.0,
        chirp_period_s=120e-6,
        chirps_per_bit=32,
        scheme=ModulationScheme.FSK,
    )


class TestUplinkDecoder:
    def test_ook_roundtrip(self, ook_modulator):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        if_frame = simulate_uplink(bits, ook_modulator, rng=1)
        result = UplinkDecoder(ook_modulator).decode(if_frame, num_bits=bits.size)
        np.testing.assert_array_equal(result.bits, bits)

    def test_fsk_roundtrip(self, fsk_modulator):
        bits = np.array([0, 1, 1, 0, 1, 0], dtype=np.uint8)
        if_frame = simulate_uplink(bits, fsk_modulator, rng=2)
        result = UplinkDecoder(fsk_modulator).decode(if_frame, num_bits=bits.size)
        np.testing.assert_array_equal(result.bits, bits)

    def test_roundtrip_with_clutter(self, fsk_modulator):
        clutter = Clutter.office(rng=0)
        bits = np.array([1, 0, 0, 1], dtype=np.uint8)
        if_frame = simulate_uplink(bits, fsk_modulator, rng=3, clutter=clutter)
        result = UplinkDecoder(fsk_modulator).decode(if_frame, num_bits=bits.size)
        np.testing.assert_array_equal(result.bits, bits)

    def test_detection_range_accurate(self, fsk_modulator):
        bits = np.array([1, 0, 1, 0], dtype=np.uint8)
        if_frame = simulate_uplink(bits, fsk_modulator, tag_range=4.5, rng=4)
        result = UplinkDecoder(fsk_modulator).decode(if_frame, num_bits=bits.size)
        assert result.detection.range_m == pytest.approx(4.5, abs=0.1)

    def test_too_many_bits_requested(self, ook_modulator):
        bits = np.array([1, 0], dtype=np.uint8)
        if_frame = simulate_uplink(bits, ook_modulator, rng=5)
        with pytest.raises(DecodingError):
            UplinkDecoder(ook_modulator).decode(if_frame, num_bits=10)

    def test_correction_reuse(self, ook_modulator):
        from repro.radar.if_correction import align_profiles_to_common_grid

        bits = np.array([1, 0], dtype=np.uint8)
        if_frame = simulate_uplink(bits, ook_modulator, rng=6)
        correction = align_profiles_to_common_grid(if_frame)
        result = UplinkDecoder(ook_modulator).decode(
            if_frame, num_bits=2, correction=correction
        )
        assert result.correction is correction

    def test_measure_snr_positive_at_close_range(self, ook_modulator):
        bits = np.ones(4, dtype=np.uint8)
        if_frame = simulate_uplink(bits, ook_modulator, tag_range=1.0, rng=7)
        snr = UplinkDecoder(ook_modulator).measure_snr_db(if_frame)
        assert snr > 10.0


class TestLocalizer:
    def beacon_frame(self, tag_range, rate=2000.0, num_chirps=128, rng=0, jitter=0.01):
        modulator = UplinkModulator(
            modulation_rate_hz=rate, chirp_period_s=120e-6, chirps_per_bit=num_chirps
        )
        frame = build_uplink_frame(num_chirps)
        times = np.array([slot.start_time_s for slot in frame.slots])
        states = modulator.beacon_states(times)
        schedule = np.where(states, 1.0, 0.03)
        tag = Scatterer(
            range_m=tag_range,
            rcs_m2=3e-3,
            amplitude_schedule=schedule,
            gain_jitter_std=jitter,
        )
        clutterer = Scatterer(range_m=6.0, rcs_m2=0.5)
        radar = FMCWRadar(XBAND_9GHZ)
        return radar.receive_frame(frame, [tag, clutterer], rng=rng)

    def test_centimeter_accuracy(self):
        if_frame = self.beacon_frame(3.217, rng=1)
        localizer = TagLocalizer(2000.0)
        result = localizer.localize(if_frame)
        assert abs(result.range_m - 3.217) < 0.02

    def test_coarse_only_mode(self):
        if_frame = self.beacon_frame(2.5, rng=2)
        localizer = TagLocalizer(2000.0)
        result = localizer.localize(if_frame, refine=False)
        assert result.num_chirps_used == 0
        assert abs(result.range_m - 2.5) < 0.15

    def test_refinement_improves_or_matches_coarse(self):
        if_frame = self.beacon_frame(4.444, rng=3)
        localizer = TagLocalizer(2000.0)
        refined = localizer.localize(if_frame)
        assert abs(refined.range_m - 4.444) <= abs(refined.coarse_range_m - 4.444) + 0.01

    def test_ranging_error_helper(self):
        if_frame = self.beacon_frame(1.8, rng=4)
        localizer = TagLocalizer(2000.0)
        assert localizer.ranging_error_m(if_frame, 1.8) < 0.05

    def test_clutter_does_not_steal_detection(self):
        # Strong static clutter at 6 m must not be mistaken for the tag.
        if_frame = self.beacon_frame(2.0, rng=5)
        result = TagLocalizer(2000.0).localize(if_frame)
        assert abs(result.range_m - 2.0) < 0.1

    def test_max_refine_chirps_respected(self):
        if_frame = self.beacon_frame(3.0, rng=6)
        localizer = TagLocalizer(2000.0, max_refine_chirps=8)
        result = localizer.localize(if_frame)
        assert result.num_chirps_used <= 8
