"""Disk-backed content-addressed cache for Monte-Carlo results.

Layout (all under one root directory)::

    <root>/index.json                 rebuildable summary (never authoritative)
    <root>/objects/<ab>/<fp>.json     one record per fingerprint
    <root>/objects/<ab>/<fp>.npz      optional array payload

The *objects* tree is the source of truth: each entry is a single JSON
record named by its fingerprint (sharded on the first two hex chars),
written atomically and durably (same-directory temp file, ``os.fsync``
before ``os.replace``, best-effort directory fsync after), so concurrent
writers can share a cache directory — two processes racing on the same
fingerprint write byte-identical content, a reader never observes a
half-written file, and a power loss cannot leave a truncated record
behind the rename.  ``*.tmp`` leftovers from a *killed* writer are
harmless orphans: ``stats`` reports them and ``clear`` removes them.  ``index.json`` is a convenience summary refreshed
opportunistically; if it is stale, missing, or corrupt it is rebuilt by
scanning, never trusted.

The read path is **corruption-tolerant by contract**: a record that is
unreadable, fails its payload checksum, references a missing or damaged
array file, or carries a different schema version is reported as a
*miss* (and the caller recomputes), never an exception.  Determinism
(PR 1) makes this safe — a recompute is bit-identical to what the lost
entry held.

:meth:`ExperimentStore.verify` turns that determinism guarantee into a
runtime self-check: it integrity-checks every entry and *recomputes* a
sampled subset from their embedded replay recipes, comparing bit-exactly.
"""

from __future__ import annotations

import base64
import hashlib
import importlib
import io
import json
import os
import pathlib
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import obs
from repro.errors import StoreError
from repro.obs import manifest as _obs_manifest
from repro.obs import runtime as _obs_runtime
from repro.store.fingerprint import SCHEMA_VERSION, canonical_json

_INDEX_NAME = "index.json"
_OBJECTS_DIR = "objects"


def _payload_checksum(payload: "dict[str, Any]") -> str:
    """SHA-256 over the canonical JSON of a record payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _fsync_directory(directory: pathlib.Path) -> None:
    """Best-effort fsync of a directory so a rename survives power loss.

    Directories cannot be opened for fsync on some platforms (notably
    Windows); durability of the rename itself is then up to the OS, which
    matches the pre-existing guarantee.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write_bytes(path: pathlib.Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically *and durably*.

    Same-directory temp + ``os.replace`` gives readers atomicity; the
    explicit ``os.fsync`` of the temp file **before** the rename is what
    makes it durable — without it, a power loss after the rename could
    leave the final name pointing at a truncated or empty record, which
    is exactly the half-written state the rename is supposed to prevent.
    The directory fsync afterwards persists the rename itself (best
    effort; see :func:`_fsync_directory`).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(handle, "wb") as temp:
            temp.write(data)
            temp.flush()
            os.fsync(temp.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)


def atomic_write_bytes(path: "pathlib.Path | str | os.PathLike", data: bytes) -> None:
    """Public fsync'd atomic write (see :func:`_atomic_write_bytes`).

    Exposed for other durable artifacts — notably the run-manifest
    ledger (:mod:`repro.obs.manifest`) — so every on-disk record in the
    repo shares one crash-safety discipline.
    """
    _atomic_write_bytes(pathlib.Path(path), data)


@dataclass(frozen=True)
class ReplayRecipe:
    """How to recompute a cached entry from scratch.

    ``entry`` is a ``"module:function"`` reference resolved at replay
    time; ``payload`` is the picklable work unit handed to it.  The
    function must return the record payload dict that
    :meth:`ExperimentStore.put` originally stored — bit-exact, thanks to
    index-keyed seeding.  Entries without a recipe (e.g. sweeps over
    unpicklable lambdas) are cacheable but not replay-verifiable.
    """

    entry: str
    payload: Any

    def encode(self) -> "dict[str, str]":
        return {
            "entry": self.entry,
            "payload_b64": base64.b64encode(pickle.dumps(self.payload)).decode("ascii"),
        }

    @classmethod
    def decode(cls, data: "dict[str, Any]") -> "ReplayRecipe":
        return cls(
            entry=str(data["entry"]),
            payload=pickle.loads(base64.b64decode(data["payload_b64"])),
        )

    def recompute(self) -> "dict[str, Any]":
        module_name, _, function_name = self.entry.partition(":")
        module = importlib.import_module(module_name)
        function = getattr(module, function_name)
        return function(self.payload)


@dataclass
class StoreStats:
    """What a cache directory holds (``repro cache stats``)."""

    root: str
    entries: int = 0
    array_files: int = 0
    total_bytes: int = 0
    corrupt: int = 0
    tmp_files: int = 0
    kinds: "dict[str, int]" = field(default_factory=dict)
    #: Serve write-ahead journal records under ``<root>/journal/``.
    journal_entries: int = 0
    #: Journal records still marked running whose server pid is dead —
    #: jobs a crashed server never finished (``serve --resume`` replays
    #: them; ``cache clear`` sweeps them like ``*.tmp`` orphans).
    journal_orphans: int = 0

    def as_dict(self) -> "dict[str, Any]":
        return {
            "root": self.root,
            "entries": self.entries,
            "array_files": self.array_files,
            "total_bytes": self.total_bytes,
            "corrupt": self.corrupt,
            "tmp_files": self.tmp_files,
            "kinds": dict(sorted(self.kinds.items())),
            "journal_entries": self.journal_entries,
            "journal_orphans": self.journal_orphans,
        }


@dataclass
class VerifyReport:
    """Outcome of :meth:`ExperimentStore.verify`."""

    total: int = 0
    integrity_checked: int = 0
    corrupt: "list[str]" = field(default_factory=list)
    recomputed: int = 0
    mismatched: "list[str]" = field(default_factory=list)
    unreplayable: int = 0

    def ok(self) -> bool:
        return not self.corrupt and not self.mismatched

    def as_dict(self) -> "dict[str, Any]":
        return {
            "total": self.total,
            "integrity_checked": self.integrity_checked,
            "corrupt": list(self.corrupt),
            "recomputed": self.recomputed,
            "mismatched": list(self.mismatched),
            "unreplayable": self.unreplayable,
            "ok": self.ok(),
        }


class ExperimentStore:
    """Content-addressed experiment cache rooted at one directory.

    ``get``/``put`` are keyed by :func:`repro.store.fingerprint.fingerprint`
    hashes.  Values are JSON records (plus optional numpy arrays in a
    sibling ``.npz``); reads of damaged entries are misses, not errors.
    """

    def __init__(self, root: "str | os.PathLike[str]"):
        self.root = pathlib.Path(root)
        self._hits = 0
        self._misses = 0

    # -- paths ---------------------------------------------------------------

    def _record_path(self, fingerprint: str) -> pathlib.Path:
        self._check_fingerprint(fingerprint)
        return self.root / _OBJECTS_DIR / fingerprint[:2] / f"{fingerprint}.json"

    def _arrays_path(self, fingerprint: str) -> pathlib.Path:
        return self._record_path(fingerprint).with_suffix(".npz")

    @staticmethod
    def _check_fingerprint(fingerprint: str) -> None:
        if not isinstance(fingerprint, str) or len(fingerprint) != 64 or any(
            c not in "0123456789abcdef" for c in fingerprint
        ):
            raise StoreError(f"not a SHA-256 hex fingerprint: {fingerprint!r}")

    # -- write path ----------------------------------------------------------

    def put(
        self,
        fingerprint: str,
        kind: str,
        payload: "dict[str, Any]",
        *,
        arrays: "dict[str, np.ndarray] | None" = None,
        replay: "ReplayRecipe | None" = None,
    ) -> pathlib.Path:
        """Store one result record under ``fingerprint``.

        ``payload`` must be canonically serializable (it is checksummed
        via :func:`canonical_json`).  ``arrays`` land in a sibling
        ``.npz`` whose raw bytes are checksummed into the record, so a
        damaged array file invalidates the whole entry.
        """
        record: "dict[str, Any]" = {
            "schema_version": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "kind": kind,
            "created_unix": time.time(),
            "payload": payload,
            "checksum": _payload_checksum(payload),
        }
        record_path = self._record_path(fingerprint)
        if arrays:
            buffer = io.BytesIO()
            np.savez_compressed(
                buffer, **{name: np.asarray(value) for name, value in arrays.items()}
            )
            blob = buffer.getvalue()
            record["arrays_sha256"] = hashlib.sha256(blob).hexdigest()
            _atomic_write_bytes(self._arrays_path(fingerprint), blob)
        if replay is not None:
            record["replay"] = replay.encode()
        try:
            encoded = json.dumps(record, sort_keys=True).encode("utf-8")
        except (TypeError, ValueError) as error:
            raise StoreError(
                f"record payload for {kind!r} is not JSON-serializable: {error}"
            ) from error
        _atomic_write_bytes(record_path, encoded)
        if _obs_runtime._enabled:
            written = len(encoded) + (len(blob) if arrays else 0)
            obs.log(
                "store.put", kind=kind, fingerprint=fingerprint[:12], bytes=written
            )
            obs.inc("store.puts")
            obs.inc("store.bytes_written", written)
        if _obs_manifest._active is not None:
            _obs_manifest.note_store_put(fingerprint)
        return record_path

    # -- read path -----------------------------------------------------------

    def get(self, fingerprint: str) -> "dict[str, Any] | None":
        """The record stored under ``fingerprint`` — or ``None`` (a miss).

        Misses include: no entry, unparseable JSON, checksum failure,
        schema-version mismatch, fingerprint/filename disagreement, and
        missing or damaged array files.  Never raises for damaged data.
        """
        record, reason = self._read_record(fingerprint)
        if record is None:
            self._misses += 1
            if _obs_runtime._enabled:
                obs.log("store.miss", fingerprint=fingerprint[:12], reason=reason)
                obs.inc("store.misses")
                if reason != "absent":
                    # The entry existed but failed validation — the
                    # corruption-tolerant read path turned damage into a
                    # recompute instead of an exception.
                    obs.inc("store.corrupt_misses")
            if _obs_manifest._active is not None:
                _obs_manifest.note_cache(hit=False, fingerprint=fingerprint)
            return None
        self._hits += 1
        if _obs_manifest._active is not None:
            _obs_manifest.note_cache(hit=True, fingerprint=fingerprint)
        if _obs_runtime._enabled:
            obs.log(
                "store.hit",
                fingerprint=fingerprint[:12],
                kind=str(record.get("kind", "?")),
            )
            obs.inc("store.hits")
        return record

    def load_arrays(self, fingerprint: str) -> "dict[str, np.ndarray] | None":
        """The ``.npz`` arrays attached to an entry (``None`` on any damage)."""
        record = self._load_record(fingerprint)
        if record is None or "arrays_sha256" not in record:
            return None
        try:
            with np.load(self._arrays_path(fingerprint), allow_pickle=False) as data:
                return {name: np.array(data[name]) for name in data.files}
        except Exception:
            return None

    def contains(self, fingerprint: str) -> bool:
        """Whether a *valid* entry exists (does not count as hit/miss)."""
        return self._load_record(fingerprint) is not None

    def _load_record(self, fingerprint: str) -> "dict[str, Any] | None":
        return self._read_record(fingerprint)[0]

    def _read_record(self, fingerprint: str) -> "tuple[dict[str, Any] | None, str]":
        """Load + validate one record, returning ``(record, reason)``.

        ``reason`` is ``"ok"`` on success, ``"absent"`` when no file
        exists, and otherwise names the validation step that failed —
        which is what lets :meth:`get` count *corruption* misses apart
        from plain cold misses.
        """
        record_path = self._record_path(fingerprint)
        try:
            raw = record_path.read_bytes()
        except OSError:
            return None, "absent"
        if _obs_runtime._enabled:
            obs.inc("store.bytes_read", len(raw))
        try:
            record = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None, "undecodable"
        if not isinstance(record, dict):
            return None, "not-a-record"
        if record.get("schema_version") != SCHEMA_VERSION:
            return None, "schema-version"
        if record.get("fingerprint") != fingerprint:
            return None, "fingerprint-mismatch"
        payload = record.get("payload")
        if not isinstance(payload, dict):
            return None, "payload-shape"
        try:
            if record.get("checksum") != _payload_checksum(payload):
                return None, "payload-checksum"
        except StoreError:
            return None, "payload-checksum"
        if "arrays_sha256" in record:
            try:
                blob = self._arrays_path(fingerprint).read_bytes()
            except OSError:
                return None, "arrays-missing"
            if _obs_runtime._enabled:
                obs.inc("store.bytes_read", len(blob))
            if hashlib.sha256(blob).hexdigest() != record["arrays_sha256"]:
                return None, "arrays-checksum"
        return record, "ok"

    # -- maintenance ---------------------------------------------------------

    def fingerprints(self) -> "list[str]":
        """All fingerprints with a record file present (valid or not)."""
        objects = self.root / _OBJECTS_DIR
        if not objects.is_dir():
            return []
        return sorted(
            path.stem
            for path in objects.glob("*/*.json")
            if len(path.stem) == 64
        )

    def _orphan_tmp_paths(self) -> "list[pathlib.Path]":
        """``*.tmp`` leftovers from writers killed mid-``_atomic_write_bytes``.

        Orphans appear next to their target (objects shards for records
        and ``.npz`` sidecars, the root for ``index.json``) and are never
        read by anything — without cleanup they accumulate forever.
        """
        orphans = list(self.root.glob(f"{_INDEX_NAME}.*.tmp"))
        objects = self.root / _OBJECTS_DIR
        if objects.is_dir():
            orphans.extend(objects.glob("*/*.tmp"))
        return sorted(orphans)

    def clear(self) -> int:
        """Delete every entry (and orphaned temp file); returns the record count.

        Orphaned journal records — running jobs whose server pid is dead —
        are swept too, exactly like ``*.tmp`` leftovers.  A *live*
        server's journal is never touched: sweeping keys on the recorded
        pid being gone, not on age.
        """
        from repro.serve.journal import sweep_orphaned_journal

        sweep_orphaned_journal(self.root)
        removed = 0
        objects = self.root / _OBJECTS_DIR
        if objects.is_dir():
            for path in sorted(objects.glob("*/*")):
                if path.suffix == ".json":
                    removed += 1
                try:
                    path.unlink()
                except OSError:
                    pass
        for orphan in self._orphan_tmp_paths():
            try:
                orphan.unlink()
            except OSError:
                pass
        index = self.root / _INDEX_NAME
        try:
            index.unlink()
        except OSError:
            pass
        return removed

    def stats(self) -> StoreStats:
        """Scan the objects tree (authoritative, index not trusted)."""
        # Lazy import: the journal lives in repro.serve but persists under
        # this cache root; importing at module scope would cycle.
        from repro.serve.journal import journal_stats

        stats = StoreStats(root=str(self.root))
        stats.tmp_files = len(self._orphan_tmp_paths())
        journal = journal_stats(self.root)
        stats.journal_entries = journal.entries + journal.unreadable
        stats.journal_orphans = journal.orphaned
        objects = self.root / _OBJECTS_DIR
        if objects.is_dir():
            for path in objects.glob("*/*"):
                try:
                    stats.total_bytes += path.stat().st_size
                except OSError:
                    continue
                if path.suffix == ".npz":
                    stats.array_files += 1
        for fingerprint in self.fingerprints():
            stats.entries += 1
            record = self._load_record(fingerprint)
            if record is None:
                stats.corrupt += 1
            else:
                kind = str(record.get("kind", "?"))
                stats.kinds[kind] = stats.kinds.get(kind, 0) + 1
        return stats

    def _refresh_index(self) -> None:
        """Opportunistically rewrite ``index.json`` (best effort only)."""
        try:
            summary = self.stats().as_dict()
            summary["updated_unix"] = time.time()
            _atomic_write_bytes(
                self.root / _INDEX_NAME,
                json.dumps(summary, sort_keys=True, indent=2).encode("utf-8"),
            )
        except OSError:
            pass

    def index(self) -> "dict[str, Any]":
        """The summary index, rebuilt from the objects tree if untrustworthy."""
        try:
            loaded = json.loads((self.root / _INDEX_NAME).read_text())
            if isinstance(loaded, dict) and loaded.get("entries") == len(
                self.fingerprints()
            ):
                return loaded
        except (OSError, ValueError):
            pass
        self._refresh_index()
        summary = self.stats().as_dict()
        return summary

    # -- self-check ----------------------------------------------------------

    def verify(self, *, sample: int = 8, rng: int = 0) -> VerifyReport:
        """Integrity-check every entry; recompute a sampled subset bit-exactly.

        Every record is reloaded through the full validation path
        (checksums included).  Of the valid entries that carry a
        :class:`ReplayRecipe`, up to ``sample`` are re-run from scratch
        and their payloads compared canonically — PR 1's determinism
        contract turned into a runtime check.  A mismatch means the code
        drifted without a :data:`SCHEMA_VERSION` bump (or the entry was
        forged), and is reported, not raised.
        """
        report = VerifyReport()
        replayable: "list[tuple[str, ReplayRecipe, dict[str, Any]]]" = []
        for fingerprint in self.fingerprints():
            report.total += 1
            record = self._load_record(fingerprint)
            report.integrity_checked += 1
            if record is None:
                report.corrupt.append(fingerprint)
                continue
            if "replay" in record:
                try:
                    recipe = ReplayRecipe.decode(record["replay"])
                except Exception:
                    report.unreplayable += 1
                    continue
                replayable.append((fingerprint, recipe, record["payload"]))
            else:
                report.unreplayable += 1
        if sample > 0 and replayable:
            picks = np.random.default_rng(rng).permutation(len(replayable))[:sample]
            for position in sorted(int(p) for p in picks):
                fingerprint, recipe, stored_payload = replayable[position]
                try:
                    recomputed = recipe.recompute()
                except Exception:
                    report.unreplayable += 1
                    continue
                report.recomputed += 1
                if canonical_json(recomputed) != canonical_json(stored_payload):
                    report.mismatched.append(fingerprint)
        return report

    # -- session accounting --------------------------------------------------

    @property
    def session_hits(self) -> int:
        """Cache hits served by this store object (this process only)."""
        return self._hits

    @property
    def session_misses(self) -> int:
        """Cache misses seen by this store object (this process only)."""
        return self._misses

    def stats_payload(self) -> "dict[str, Any]":
        """Machine-readable store health: :meth:`stats` plus session counters.

        The schema is shared by ``repro cache stats --json`` and the serve
        status endpoint, so scripts can consume either interchangeably.
        """
        payload = self.stats().as_dict()
        payload["session"] = {"hits": self._hits, "misses": self._misses}
        return payload
