"""Parallel Monte-Carlo execution with a bit-exact determinism contract.

Every Monte-Carlo engine in :mod:`repro.sim` iterates RNG-independent
trials, so the work fans out over processes — but reproducibility is a
first-class requirement: the figures in EXPERIMENTS.md are pinned to
seeds.  This layer therefore guarantees

    ``workers=1`` == ``workers=2`` == ``workers=8``, bit for bit,

for any chunking of the trial range.  Two ingredients make that hold:

1. **Index-keyed seeding** — trial ``i``'s generator is derived from
   ``(root SeedSequence, i)`` via :class:`repro.utils.rng.SeedSpec`, so
   it does not matter which worker or chunk runs the trial.
2. **Order-restoring reassembly** — chunks may *complete* in any order,
   but per-trial results are re-assembled by trial index before any
   reduction, so floating-point reductions see one canonical order.

Chunks (not single trials) are the unit of dispatch so process start-up
and per-task pickling are amortised over many trials.  Wall-clock data —
per-chunk timings, backend, worker count — is inherently *not*
deterministic, so it is kept out of result payloads and reported through
:class:`ExecutionReport` / the ``metadata["_execution"]`` side channel;
:func:`strip_execution` removes it for bitwise comparisons.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.utils.rng import SeedSpec

#: Chunk functions are module-level callables so they survive pickling:
#: ``chunk_fn(payload, seed_spec, indices) -> list[per-trial result]``.
ChunkFn = "Callable[[Any, SeedSpec, Sequence[int]], list]"

#: Environment override for the multiprocessing start method.
START_METHOD_ENV = "REPRO_MP_START_METHOD"


@dataclass(frozen=True)
class ChunkTiming:
    """Wall-clock record for one dispatched chunk (progress-hook payload)."""

    chunk_index: int
    start_index: int
    num_trials: int
    seconds: float

    def as_dict(self) -> "dict[str, Any]":
        return {
            "chunk_index": self.chunk_index,
            "start_index": self.start_index,
            "num_trials": self.num_trials,
            "seconds": self.seconds,
        }


@dataclass
class ExecutionReport:
    """How a trial map actually ran: backend, chunking, per-chunk timing."""

    backend: str
    workers: int
    chunk_size: int
    num_trials: int
    chunks: "list[ChunkTiming]" = field(default_factory=list)
    total_seconds: float = 0.0

    def as_metadata(self) -> "dict[str, Any]":
        """Plain-dict form for ``SweepResult.metadata['_execution']``."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "num_trials": self.num_trials,
            "total_seconds": self.total_seconds,
            "chunks": [chunk.as_dict() for chunk in self.chunks],
        }


@dataclass(frozen=True)
class ExecutionPlan:
    """How to run a Monte-Carlo trial map.

    ``workers=1`` (the default) runs serially in-process — no pool, no
    pickling, safe everywhere (Windows spawn semantics, frozen CI
    runners).  ``workers>1`` fans chunks out over a
    ``ProcessPoolExecutor``; results are bit-identical either way.

    ``chunk_size`` balances scheduling granularity against dispatch
    overhead; ``None`` picks ``ceil(n / (4 * workers))`` so each worker
    sees ~4 chunks for decent load balancing.  ``progress`` is called in
    the parent process once per finished chunk with a
    :class:`ChunkTiming` (completion order, not index order).
    """

    workers: int = 1
    chunk_size: "int | None" = None
    progress: "Callable[[ChunkTiming], None] | None" = None
    start_method: "str | None" = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")

    def resolved_chunk_size(self, num_trials: int) -> int:
        """The chunk size in effect for ``num_trials`` trials."""
        if self.chunk_size is not None:
            return self.chunk_size
        if self.workers <= 1:
            return max(1, num_trials)
        return max(1, math.ceil(num_trials / (4 * self.workers)))


def chunk_indices(num_trials: int, chunk_size: int) -> "list[range]":
    """Split ``range(num_trials)`` into contiguous chunks.

    The chunks partition ``0..num_trials-1`` exactly — every index in
    exactly one chunk, in ascending order — which the property suite
    (``tests/property/test_property_executor.py``) holds as an invariant.
    """
    if num_trials < 0:
        raise ValueError(f"num_trials must be non-negative, got {num_trials}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        range(start, min(start + chunk_size, num_trials))
        for start in range(0, num_trials, chunk_size)
    ]


def _timed_chunk(chunk_fn, payload, spec: SeedSpec, indices: "Sequence[int]"):
    """Run one chunk in the worker, returning (results, wall seconds)."""
    start = time.perf_counter()
    results = list(chunk_fn(payload, spec, indices))
    elapsed = time.perf_counter() - start
    if len(results) != len(indices):
        raise RuntimeError(
            f"chunk function returned {len(results)} results for {len(indices)} trials"
        )
    return results, elapsed


def _is_picklable(*objects: Any) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def _run_serial(
    chunk_fn, payload, spec: SeedSpec, chunks: "list[range]", plan: ExecutionPlan
) -> "tuple[list, list[ChunkTiming]]":
    results: "list" = []
    timings: "list[ChunkTiming]" = []
    for chunk_number, indices in enumerate(chunks):
        chunk_results, elapsed = _timed_chunk(chunk_fn, payload, spec, indices)
        timing = ChunkTiming(
            chunk_index=chunk_number,
            start_index=indices[0] if len(indices) else 0,
            num_trials=len(indices),
            seconds=elapsed,
        )
        timings.append(timing)
        if plan.progress is not None:
            plan.progress(timing)
        results.extend(chunk_results)
    return results, timings


def _run_process_pool(
    chunk_fn, payload, spec: SeedSpec, chunks: "list[range]", plan: ExecutionPlan, workers: int
) -> "tuple[list, list[ChunkTiming]]":
    import multiprocessing
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

    method = plan.start_method or os.environ.get(START_METHOD_ENV)
    if method is None:
        available = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in available else "spawn"
    context = multiprocessing.get_context(method)

    per_chunk: "dict[int, list]" = {}
    timings: "list[ChunkTiming]" = []
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        pending = {
            pool.submit(_timed_chunk, chunk_fn, payload, spec, list(indices)): chunk_number
            for chunk_number, indices in enumerate(chunks)
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                chunk_number = pending.pop(future)
                chunk_results, elapsed = future.result()
                per_chunk[chunk_number] = chunk_results
                indices = chunks[chunk_number]
                timing = ChunkTiming(
                    chunk_index=chunk_number,
                    start_index=indices[0] if len(indices) else 0,
                    num_trials=len(indices),
                    seconds=elapsed,
                )
                timings.append(timing)
                if plan.progress is not None:
                    plan.progress(timing)
    # Reassemble in trial-index order regardless of completion order.
    results: "list" = []
    for chunk_number in range(len(chunks)):
        results.extend(per_chunk[chunk_number])
    return results, timings


def map_trials(
    chunk_fn,
    payload: Any,
    num_trials: int,
    rng: "int | SeedSpec | Any" = 0,
    plan: "ExecutionPlan | None" = None,
) -> "tuple[list, ExecutionReport]":
    """Run ``num_trials`` index-keyed trials, possibly across processes.

    ``chunk_fn(payload, seed_spec, indices)`` must be a module-level
    function that derives trial ``i``'s generator as
    ``seed_spec.stream(i)`` and returns one result per index, in order.
    Returns ``(per-trial results in trial order, ExecutionReport)``;
    the result list is identical for every ``workers`` / ``chunk_size``
    choice.

    Falls back to the serial backend (noted in the report) when the
    payload is unpicklable or the platform refuses to give us a pool, so
    callers never have to special-case restricted environments.
    """
    if num_trials < 0:
        raise ValueError(f"num_trials must be non-negative, got {num_trials}")
    plan = plan or ExecutionPlan()
    spec = SeedSpec.from_rng(rng)
    chunk_size = plan.resolved_chunk_size(num_trials)
    chunks = chunk_indices(num_trials, chunk_size)
    workers = min(plan.workers, max(1, len(chunks)))

    started = time.perf_counter()
    backend = "serial"
    if workers > 1:
        if not _is_picklable(chunk_fn, payload, spec):
            backend = "serial-fallback:unpicklable"
        else:
            try:
                results, timings = _run_process_pool(
                    chunk_fn, payload, spec, chunks, plan, workers
                )
                backend = "process"
            except (OSError, ImportError, PermissionError) as error:
                backend = f"serial-fallback:{type(error).__name__}"
    if backend != "process":
        results, timings = _run_serial(chunk_fn, payload, spec, chunks, plan)
    report = ExecutionReport(
        backend=backend,
        workers=workers if backend == "process" else 1,
        chunk_size=chunk_size,
        num_trials=num_trials,
        chunks=timings,
        total_seconds=time.perf_counter() - started,
    )
    return results, report


def strip_execution(metadata: "dict[str, Any]") -> "dict[str, Any]":
    """Metadata minus the volatile ``_execution`` timing side channel.

    Result *values* are bit-identical across worker counts; wall-clock
    records are not and never can be.  Comparisons of sweeps run under
    different plans should compare ``strip_execution(metadata)``.
    """
    return {key: value for key, value in metadata.items() if key != "_execution"}


def sweep_results_equal(a, b) -> bool:
    """Bitwise equality of two ``SweepResult`` objects, timing excluded."""
    return (
        a.label == b.label
        and a.parameters == b.parameters
        and a.values == b.values
        and strip_execution(a.metadata) == strip_execution(b.metadata)
    )
