"""Structured event logging: one line per event, console or JSON-lines.

:func:`log` is the single emission point.  Every event carries the run
id, the emitting pid, a wall-clock timestamp (``ts``, epoch seconds) and
a monotonic timestamp (``mono``, for intra-process ordering), plus the
caller's key/value fields.  Two formats:

``console`` (default)
    ``HH:MM:SS.mmm [run-id] event key=value ...`` — for humans watching
    a terminal.
``json``
    One compact JSON object per line — for machines.  ``REPRO_LOG=json``
    or the CLI's ``--log-json`` selects it.

Destination resolution: ``REPRO_LOG_FILE`` (append-only, shared across
processes — each event is a single ``write`` of one full line, so
parallel writers interleave whole lines and the file is a merged
JSON-lines log for the whole run) > a configured stream > ``sys.stderr``.

Events are telemetry, never data: nothing here feeds back into results,
seeds, or fingerprints, which is what keeps the determinism contract
(``tests/unit/test_executor.py``) intact with logging fully enabled.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any

from repro.obs import runtime

#: Open append-mode descriptor for the current ``log_path`` (lazy).
_log_fd: "tuple[str, int] | None" = None


def _reset() -> None:
    global _log_fd
    if _log_fd is not None:
        try:
            os.close(_log_fd[1])
        except OSError:
            pass
    _log_fd = None


def _file_descriptor(path: str) -> "int | None":
    """The (cached) O_APPEND descriptor for the shared log file."""
    global _log_fd
    if _log_fd is not None and _log_fd[0] == path:
        return _log_fd[1]
    _reset()
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    except OSError:
        return None
    _log_fd = (path, fd)
    return fd


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _render(event: str, fields: "dict[str, Any]") -> str:
    if runtime.log_format() == "json":
        record: "dict[str, Any]" = {
            "ts": round(time.time(), 6),
            "mono": round(time.monotonic(), 6),
            "run": runtime.run_id(),
            "pid": os.getpid(),
            "event": event,
        }
        record.update(fields)
        return json.dumps(record, default=str, separators=(",", ":"))
    clock = time.strftime("%H:%M:%S", time.localtime())
    millis = int((time.time() % 1) * 1000)
    parts = [f"{clock}.{millis:03d}", f"[{runtime.run_id()}]", event]
    parts.extend(f"{key}={_format_value(value)}" for key, value in fields.items())
    return " ".join(parts)


def log(event: str, **fields: Any) -> None:
    """Emit one structured event (no-op while observability is disabled)."""
    if not runtime._enabled:
        return
    line = _render(event, fields) + "\n"
    path = runtime.log_path()
    if path is not None:
        fd = _file_descriptor(path)
        if fd is not None:
            try:
                os.write(fd, line.encode("utf-8"))
                return
            except OSError:
                pass
    stream = runtime.log_stream() or sys.stderr
    try:
        stream.write(line)
        flush = getattr(stream, "flush", None)
        if flush is not None:
            flush()
    except (OSError, ValueError):
        # Telemetry must never take the computation down with it — a
        # closed or broken sink silently drops the event.
        pass
