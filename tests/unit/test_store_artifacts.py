"""Artifact layer: SweepResult round-trips and bench-JSON records."""

import json

import pytest

from repro.errors import StoreError
from repro.sim.results import SweepResult
from repro.store import (
    bench_json_path,
    load_sweep_result,
    read_bench_json,
    save_sweep_result,
    write_bench_json,
)
from repro.store.artifacts import ARTIFACT_VERSION


@pytest.fixture()
def result():
    return SweepResult(
        label="ber vs distance",
        parameters=[1.0, 2.0, 3.0],
        values=[1e-3, 2e-3, 4e-3],
        metadata={
            "trials": 50,
            "_execution": {"backend": "serial", "workers": 1},
        },
    )


class TestSweepResultRoundTrip:
    def test_values_and_parameters_survive(self, tmp_path, result):
        path = tmp_path / "sweep.json"
        save_sweep_result(path, result)
        loaded = load_sweep_result(path)
        assert loaded.label == result.label
        assert loaded.parameters == result.parameters
        assert loaded.values == result.values

    def test_metadata_survives_minus_execution(self, tmp_path, result):
        path = tmp_path / "sweep.json"
        save_sweep_result(path, result)
        loaded = load_sweep_result(path)
        assert loaded.metadata["trials"] == 50
        # Volatile run info (backend, workers, cache hits) must not be
        # baked into artifacts: it describes the run, not the result.
        assert "_execution" not in loaded.metadata

    def test_missing_file_raises_store_error(self, tmp_path):
        with pytest.raises(StoreError):
            load_sweep_result(tmp_path / "nope.json")

    def test_garbage_file_raises_store_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{{{")
        with pytest.raises(StoreError):
            load_sweep_result(path)

    def test_wrong_kind_raises_store_error(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "bench", "artifact_version": 1}))
        with pytest.raises(StoreError):
            load_sweep_result(path)

    def test_unserializable_metadata_raises_store_error(self, tmp_path, result):
        result.metadata["handle"] = object()
        with pytest.raises(StoreError):
            save_sweep_result(tmp_path / "sweep.json", result)


class TestBenchJson:
    def test_path_convention(self, tmp_path):
        path = bench_json_path("fig12", directory=tmp_path)
        assert path == tmp_path / "BENCH_fig12.json"

    def test_env_var_overrides_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JSON_DIR", str(tmp_path))
        assert bench_json_path("x").parent == tmp_path

    def test_write_and_read(self, tmp_path):
        path = write_bench_json(
            "unit",
            elapsed_seconds=1.25,
            results={"points": 4, "ber": [1e-3, 2e-3]},
            workers=2,
            directory=tmp_path,
            extra={"note": "test"},
        )
        record = read_bench_json(path)
        assert record["kind"] == "bench"
        assert record["artifact_version"] == ARTIFACT_VERSION
        assert record["name"] == "unit"
        assert record["elapsed_seconds"] == 1.25
        assert record["workers"] == 2
        assert record["results"]["ber"] == [1e-3, 2e-3]
        assert record["extra"]["note"] == "test"
        assert "repro_version" in record["environment"]

    def test_written_file_is_plain_json(self, tmp_path):
        path = write_bench_json(
            "plain", elapsed_seconds=0.1, results={}, directory=tmp_path
        )
        json.loads(path.read_text())  # must not raise

    def test_unserializable_results_raise_store_error(self, tmp_path):
        with pytest.raises(StoreError):
            write_bench_json(
                "bad", elapsed_seconds=0.1, results={"x": object()}, directory=tmp_path
            )

    def test_repo_bench_artifacts_are_valid(self):
        """Every BENCH_*.json checked into the repo parses and has the shape."""
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        artifacts = sorted(repo_root.glob("BENCH_*.json"))
        for path in artifacts:
            record = read_bench_json(path)
            assert record["kind"] == "bench"
            assert record["elapsed_seconds"] > 0
            assert isinstance(record["results"], dict)
            assert isinstance(record["metrics"], dict)

    def test_metrics_block_round_trips(self, tmp_path):
        import io

        from repro import obs

        obs.configure(stream=io.StringIO(), export_env=False)
        try:
            obs.inc("bench.trials", 7)
            obs.observe("bench.seconds", 0.25)
            path = write_bench_json(
                "metrics", elapsed_seconds=0.5, results={}, directory=tmp_path
            )
        finally:
            obs.reset()
        record = read_bench_json(path)
        assert record["metrics"]["counters"]["bench.trials"] == 7
        assert record["metrics"]["histograms"]["bench.seconds"]["count"] == 1

    def test_explicit_metrics_override(self, tmp_path):
        snapshot = {"counters": {"x": 1}, "gauges": {}, "histograms": {}}
        path = write_bench_json(
            "explicit",
            elapsed_seconds=0.5,
            results={},
            directory=tmp_path,
            metrics=snapshot,
        )
        assert read_bench_json(path)["metrics"] == snapshot

    def test_v1_record_loads_with_empty_metrics(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        path.write_text(
            json.dumps(
                {
                    "kind": "bench",
                    "artifact_version": 1,
                    "name": "old",
                    "elapsed_seconds": 1.0,
                    "results": {},
                }
            )
        )
        record = read_bench_json(path)
        assert record["metrics"] == {}

    def test_newer_version_rejected(self, tmp_path):
        path = tmp_path / "BENCH_future.json"
        path.write_text(
            json.dumps(
                {
                    "kind": "bench",
                    "artifact_version": ARTIFACT_VERSION + 1,
                    "name": "future",
                    "elapsed_seconds": 1.0,
                    "results": {},
                }
            )
        )
        with pytest.raises(StoreError):
            read_bench_json(path)
