"""Observability overhead: the disabled path must be (near) free.

Every Monte-Carlo hot loop now calls into :mod:`repro.obs`
unconditionally — the executor per chunk, the engines per chunk, the
store per access.  The design promise is that while observability is
*disabled* (the default) each such call is one module-attribute load and
a branch, so the telemetry layer costs nothing on the paper's evaluation
sweeps.  This bench holds that promise to a number:

1. run a fig12-style downlink-BER sweep with observability off, then
   with everything on (JSON-lines log to a file + Chrome tracing), and
   check the values are bit-identical (telemetry is one-way);
2. microbench the *disabled* per-call cost of each helper
   (``log`` / ``inc`` / ``observe`` / ``span``);
3. bound the disabled overhead: (calls the sweep actually makes when
   enabled) x (disabled per-call cost) must stay under 2% of the sweep's
   wall-clock.

The call count is taken from the enabled run's own telemetry (events
written + metric updates + spans), so the bound tracks the real
instrumentation density as it grows.
"""

import time

from conftest import emit, emit_bench_json
from repro import obs
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
from repro.sim.executor import ExecutionPlan
from repro.sim.results import format_table
from repro.sim.sweep import sweep

SNRS_DB = [4.0, 6.0, 8.0, 10.0, 12.0]
FRAMES_PER_POINT = 12
SYMBOLS_PER_FRAME = 10
MICROBENCH_CALLS = 200_000
MAX_DISABLED_OVERHEAD = 0.02


def _paper_alphabet():
    return CsskAlphabet.design(
        bandwidth_hz=1e9,
        decoder=DecoderDesign.from_inches(45.0),
        symbol_bits=5,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )


def evaluate_ber_at_snr(snr_db, stream):
    """One sweep point: Monte-Carlo downlink BER at a pinned video SNR."""
    config = DownlinkTrialConfig(
        radar_config=XBAND_9GHZ,
        alphabet=_paper_alphabet(),
        snr_override_db=snr_db,
        num_frames=FRAMES_PER_POINT,
        payload_symbols_per_frame=SYMBOLS_PER_FRAME,
    )
    return run_downlink_trials(config, rng=stream).ber


def _run_sweep():
    started = time.perf_counter()
    result = sweep(
        "ber vs snr", SNRS_DB, evaluate_ber_at_snr,
        rng=7, execution=ExecutionPlan(workers=1),
    )
    return result, time.perf_counter() - started


def _disabled_per_call_ns():
    """Per-call wall-clock of each obs helper while observability is off."""
    assert not obs.enabled()
    costs = {}

    started = time.perf_counter()
    for _ in range(MICROBENCH_CALLS):
        obs.log("bench.site", chunk=1, trials=4)
    costs["log"] = (time.perf_counter() - started) / MICROBENCH_CALLS * 1e9

    started = time.perf_counter()
    for _ in range(MICROBENCH_CALLS):
        obs.inc("bench.counter")
    costs["inc"] = (time.perf_counter() - started) / MICROBENCH_CALLS * 1e9

    started = time.perf_counter()
    for _ in range(MICROBENCH_CALLS):
        obs.observe("bench.hist", 0.5)
    costs["observe"] = (time.perf_counter() - started) / MICROBENCH_CALLS * 1e9

    started = time.perf_counter()
    for _ in range(MICROBENCH_CALLS):
        with obs.span("bench.span", chunk=1):
            pass
    costs["span"] = (time.perf_counter() - started) / MICROBENCH_CALLS * 1e9

    return costs


#: Counter *updates* are not individually observable from a snapshot
#: (only totals are), so the call count below scales the observable
#: telemetry (events, spans, histogram observations) by a generous
#: factor to cover the adjacent counter increments.  The bound has ~100x
#: headroom against the 2% budget, so precision is not the point.
CALL_COUNT_SAFETY_FACTOR = 4


def _enabled_call_count(log_file, trace_dir, snapshot):
    """A conservative count of instrumentation sites fired by the sweep."""
    events = sum(1 for line in log_file.read_text().splitlines() if line.strip())
    histogram_updates = sum(
        histogram["count"] for histogram in snapshot["histograms"].values()
    )
    spans = sum(
        sum(1 for line in path.read_text().splitlines() if line.strip().startswith("{"))
        for path in trace_dir.glob("trace_*.json")
    )
    return CALL_COUNT_SAFETY_FACTOR * (events + histogram_updates + spans)


def test_obs_overhead(benchmark, tmp_path):
    # Baseline: observability fully off (the library default).
    obs.reset()
    (baseline, disabled_seconds) = benchmark.pedantic(
        _run_sweep, rounds=1, iterations=1
    )

    # Everything on: JSON-lines to a shared file + Chrome tracing.
    log_file = tmp_path / "run.log"
    obs.configure(
        log_format="json",
        log_file=str(log_file),
        trace_dir=str(tmp_path),
        export_env=False,
    )
    observed, enabled_seconds = _run_sweep()
    snapshot = obs.snapshot()
    obs.reset()

    per_call_ns = _disabled_per_call_ns()
    calls = _enabled_call_count(log_file, tmp_path, snapshot)
    worst_ns = max(per_call_ns.values())
    disabled_overhead = (calls * worst_ns * 1e-9) / disabled_seconds

    table = format_table(
        ["measurement", "value"],
        [
            ["sweep, obs disabled", f"{disabled_seconds:.3f} s"],
            ["sweep, obs fully enabled", f"{enabled_seconds:.3f} s"],
            ["enabled / disabled", f"{enabled_seconds / disabled_seconds:.3f}x"],
            ["instrumented calls (enabled run)", str(calls)],
            ["disabled log()", f"{per_call_ns['log']:.0f} ns/call"],
            ["disabled inc()", f"{per_call_ns['inc']:.0f} ns/call"],
            ["disabled observe()", f"{per_call_ns['observe']:.0f} ns/call"],
            ["disabled span()", f"{per_call_ns['span']:.0f} ns/call"],
            ["disabled overhead bound", f"{disabled_overhead * 100:.4f} %"],
        ],
    )
    emit("obs_overhead", table)
    emit_bench_json(
        "obs_overhead",
        elapsed_seconds=disabled_seconds + enabled_seconds,
        results={
            "points": len(SNRS_DB),
            "frames_per_point": FRAMES_PER_POINT,
            "disabled_seconds": disabled_seconds,
            "enabled_seconds": enabled_seconds,
            "enabled_ratio": enabled_seconds / disabled_seconds,
            "instrumented_calls": calls,
            "disabled_per_call_ns": per_call_ns,
            "disabled_overhead_fraction": disabled_overhead,
            "max_disabled_overhead_fraction": MAX_DISABLED_OVERHEAD,
        },
        metrics=snapshot,
    )

    # Telemetry is one-way: the observed run is bit-identical.
    assert observed.values == baseline.values

    # The enabled run actually produced telemetry to count.  The sweep's
    # own map counts its points; each point's engine map counts its
    # frames (nested map_trials).
    assert calls > 0
    assert snapshot["counters"]["executor.trials.completed"] == (
        len(SNRS_DB) * (1 + FRAMES_PER_POINT)
    )
    assert snapshot["counters"]["engine.downlink.trials"] == (
        len(SNRS_DB) * FRAMES_PER_POINT
    )

    # The promise: disabled instrumentation stays under 2% of the sweep.
    assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled obs overhead bound {disabled_overhead:.4%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%}"
    )
