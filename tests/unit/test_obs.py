"""Observability layer: runtime switch, events, metrics, tracing."""

import io
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import metrics, runtime, tracing


def enable(**kwargs):
    """Configure obs for a test without touching the real environment."""
    kwargs.setdefault("export_env", False)
    kwargs.setdefault("stream", io.StringIO())
    return obs.configure(**kwargs)


@pytest.fixture()
def obs_off(monkeypatch):
    """Force the disabled-by-default state for tests that assert it.

    The CI obs-determinism job runs the whole suite under
    ``REPRO_LOG=json``, which the session-level isolation fixture
    faithfully re-applies — so "disabled by default" must be staged
    explicitly here.
    """
    for name in (
        runtime.LOG_ENV, runtime.LOG_FILE_ENV,
        runtime.TRACE_DIR_ENV, runtime.RUN_ID_ENV,
    ):
        monkeypatch.delenv(name, raising=False)
    runtime.reset()


class TestRuntime:
    def test_disabled_by_default(self, obs_off):
        assert not obs.enabled()
        assert obs.run_id() is None
        assert obs.worker_config() is None

    def test_configure_enables_and_mints_run_id(self):
        run = enable()
        assert obs.enabled()
        assert obs.run_id() == run
        assert run.startswith("r")

    def test_configure_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            obs.configure(log_format="xml", export_env=False)

    def test_reset_disables(self):
        enable()
        obs.reset()
        assert not obs.enabled()
        assert obs.run_id() is None

    def test_export_env_mirrors_config(self, tmp_path):
        run = obs.configure(
            log_format="json", trace_dir=str(tmp_path), export_env=True
        )
        assert os.environ[runtime.LOG_ENV] == "json"
        assert os.environ[runtime.RUN_ID_ENV] == run
        assert os.environ[runtime.TRACE_DIR_ENV] == str(tmp_path)

    def test_configure_from_env_adopts_run_id(self, tmp_path):
        enabled = runtime.configure_from_env(
            {"REPRO_LOG": "json", "REPRO_RUN_ID": "r-parent"}
        )
        assert enabled
        assert obs.run_id() == "r-parent"
        assert runtime.log_format() == "json"

    def test_configure_from_env_noop_when_unset(self, obs_off):
        assert not runtime.configure_from_env({})
        assert not obs.enabled()

    def test_worker_config_round_trip(self, tmp_path):
        run = enable(log_format="json", trace_dir=str(tmp_path))
        config = obs.worker_config()
        obs.reset()
        obs.apply_worker_config(config)
        assert obs.enabled()
        assert obs.run_id() == run
        assert runtime.trace_dir() == str(tmp_path)

    def test_apply_worker_config_none_is_noop(self, obs_off):
        obs.apply_worker_config(None)
        assert not obs.enabled()


class TestEvents:
    def test_log_noop_while_disabled(self, obs_off, capsys):
        obs.log("nope", x=1)
        assert capsys.readouterr().err == ""

    def test_json_format(self):
        stream = io.StringIO()
        run = enable(log_format="json", stream=stream)
        obs.log("unit.test", alpha=1, beta="two")
        record = json.loads(stream.getvalue())
        assert record["event"] == "unit.test"
        assert record["run"] == run
        assert record["alpha"] == 1
        assert record["beta"] == "two"
        assert record["pid"] == os.getpid()
        assert "ts" in record and "mono" in record

    def test_console_format(self):
        stream = io.StringIO()
        run = enable(log_format="console", stream=stream)
        obs.log("unit.test", value=0.5)
        line = stream.getvalue()
        assert f"[{run}]" in line
        assert "unit.test" in line
        assert "value=0.5" in line

    def test_log_file_appends_whole_lines(self, tmp_path):
        target = tmp_path / "run.log"
        enable(log_format="json", log_file=str(target))
        obs.log("first", n=1)
        obs.log("second", n=2)
        lines = target.read_text().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["first", "second"]

    def test_broken_stream_is_silent(self):
        class Broken:
            def write(self, text):
                raise OSError("sink gone")

        enable(stream=Broken())
        obs.log("dropped")  # must not raise

    def test_non_serializable_field_stringified(self):
        stream = io.StringIO()
        enable(log_format="json", stream=stream)
        obs.log("odd", thing=object())
        assert "object" in json.loads(stream.getvalue())["thing"]


class TestMetrics:
    def test_noop_while_disabled(self, obs_off):
        obs.inc("never")
        obs.set_gauge("never", 1.0)
        obs.observe("never", 0.5)
        snap = obs.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_counters_gauges_histograms(self):
        enable()
        obs.inc("c", 2)
        obs.inc("c")
        obs.set_gauge("g", 4.5)
        obs.observe("h", 0.003)
        obs.observe("h", 2.0)
        snap = obs.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 4.5
        hist = snap["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(2.003)
        assert hist["min"] == pytest.approx(0.003)
        assert hist["max"] == pytest.approx(2.0)
        assert sum(hist["bucket_counts"]) == 2

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            metrics.Histogram((2.0, 1.0))

    def test_diff_snapshots_isolates_a_window(self):
        enable()
        obs.inc("c", 5)
        obs.observe("h", 0.1)
        before = obs.snapshot()
        obs.inc("c", 2)
        obs.observe("h", 0.2)
        delta = metrics.diff_snapshots(before, obs.snapshot())
        assert delta["counters"] == {"c": 2}
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["sum"] == pytest.approx(0.2)

    def test_diff_rejects_changed_edges(self):
        a = {"counters": {}, "gauges": {},
             "histograms": {"h": {"edges": [1.0], "bucket_counts": [1, 0],
                                  "count": 1, "sum": 0.5, "min": 0.5, "max": 0.5}}}
        b = {"counters": {}, "gauges": {},
             "histograms": {"h": {"edges": [2.0], "bucket_counts": [2, 0],
                                  "count": 2, "sum": 1.0, "min": 0.5, "max": 0.5}}}
        with pytest.raises(ValueError):
            metrics.diff_snapshots(a, b)

    def test_merge_is_order_independent(self):
        enable()
        obs.observe("h", 0.1)
        obs.inc("c", 1)
        first = obs.snapshot()
        metrics._reset()
        obs.observe("h", 5.0)
        obs.inc("c", 2)
        second = obs.snapshot()
        ab = metrics.merge_snapshots(first, second)
        ba = metrics.merge_snapshots(second, first)
        assert ab["counters"] == ba["counters"] == {"c": 3}
        assert ab["histograms"]["h"]["count"] == 2
        assert ab["histograms"]["h"] == ba["histograms"]["h"]

    def test_merge_into_registry_folds_worker_delta(self):
        enable()
        obs.inc("c", 1)
        delta = {"counters": {"c": 4}, "gauges": {"g": 9.0},
                 "histograms": {}}
        metrics.merge_into_registry(delta)
        snap = obs.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 9.0


class TestSnapshotAlgebra:
    """Hardening for merge/diff: malformed inputs fail loudly, clean
    inputs obey the algebraic laws the executor's fold relies on."""

    EDGES = (0.1, 1.0, 10.0)

    def _snap(self, values=(), counter=0):
        snap = {"counters": {}, "gauges": {}, "histograms": {}}
        if counter:
            snap["counters"]["c"] = counter
        if values:
            histogram = metrics.Histogram(self.EDGES)
            for value in values:
                histogram.observe(value)
            snap["histograms"]["h"] = histogram.as_dict()
        return snap

    def test_merge_rejects_bucket_count_length_mismatch(self):
        bad = {"counters": {}, "gauges": {},
               "histograms": {"h": {"edges": [1.0, 2.0],
                                    "bucket_counts": [1, 2],  # want 3
                                    "count": 3, "sum": 1.0}}}
        with pytest.raises(ValueError, match="bucket counts"):
            metrics.merge_snapshots(metrics.empty_snapshot(), bad)
        with pytest.raises(ValueError, match="bucket counts"):
            metrics.diff_snapshots(metrics.empty_snapshot(), bad)
        with pytest.raises(ValueError, match="bucket counts"):
            metrics.merge_into_registry(bad)

    def test_merge_rejects_missing_and_unsorted_edges(self):
        for edges in ([], [2.0, 1.0]):
            bad = {"counters": {}, "gauges": {},
                   "histograms": {"h": {"edges": edges,
                                        "bucket_counts": [0] * (len(edges) + 1),
                                        "count": 0, "sum": 0.0}}}
            with pytest.raises(ValueError, match="edges"):
                metrics.merge_snapshots(metrics.empty_snapshot(), bad)

    def test_merge_rejects_mismatched_edges(self):
        a = self._snap(values=[0.5])
        b = self._snap(values=[0.5])
        b["histograms"]["h"]["edges"] = [0.2, 1.0, 10.0]
        with pytest.raises(ValueError, match="mismatched edges"):
            metrics.merge_snapshots(a, b)

    def test_merge_tolerates_missing_min_max(self):
        sparse = {"counters": {}, "gauges": {},
                  "histograms": {"h": {"edges": list(self.EDGES),
                                       "bucket_counts": [0, 1, 0, 0],
                                       "count": 1, "sum": 0.5}}}
        merged = metrics.merge_snapshots(self._snap(values=[5.0]), sparse)
        hist = merged["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["min"] == pytest.approx(5.0)
        assert hist["max"] == pytest.approx(5.0)

    def test_gauge_conflict_takes_extra_value(self):
        a = {"counters": {}, "gauges": {"g": 1.0}, "histograms": {}}
        b = {"counters": {}, "gauges": {"g": 9.0}, "histograms": {}}
        assert metrics.merge_snapshots(a, b)["gauges"]["g"] == 9.0
        assert metrics.merge_snapshots(b, a)["gauges"]["g"] == 1.0

    def test_empty_snapshot_is_merge_identity(self):
        snap = self._snap(values=[0.05, 0.5, 50.0], counter=7)
        empty = metrics.empty_snapshot()
        left = metrics.merge_snapshots(empty, snap)
        right = metrics.merge_snapshots(snap, empty)
        assert left == right
        assert left["counters"] == snap["counters"]
        assert left["histograms"]["h"] == snap["histograms"]["h"]

    def test_diff_of_identical_snapshots_is_empty(self):
        snap = self._snap(values=[0.5, 2.0], counter=3)
        delta = metrics.diff_snapshots(snap, snap)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}

    @given(
        values_a=st.lists(st.integers(0, 100).map(float), max_size=20),
        values_b=st.lists(st.integers(0, 100).map(float), max_size=20),
        count_a=st.integers(0, 1000),
        count_b=st.integers(0, 1000),
    )
    @settings(deadline=None, max_examples=50)
    def test_merge_commutes(self, values_a, values_b, count_a, count_b):
        a = self._snap(values_a, count_a)
        b = self._snap(values_b, count_b)
        assert metrics.merge_snapshots(a, b) == metrics.merge_snapshots(b, a)

    @given(
        values=st.lists(
            st.lists(st.integers(0, 100).map(float), max_size=10),
            min_size=3, max_size=3,
        ),
        counts=st.lists(st.integers(0, 1000), min_size=3, max_size=3),
    )
    @settings(deadline=None, max_examples=50)
    def test_merge_associates(self, values, counts):
        a, b, c = (self._snap(v, n) for v, n in zip(values, counts))
        left = metrics.merge_snapshots(metrics.merge_snapshots(a, b), c)
        right = metrics.merge_snapshots(a, metrics.merge_snapshots(b, c))
        assert left == right

    @given(
        before_values=st.lists(st.integers(0, 100).map(float), max_size=10),
        extra_values=st.lists(st.integers(0, 100).map(float), max_size=10),
        before_count=st.integers(0, 1000),
        extra_count=st.integers(0, 1000),
    )
    @settings(deadline=None, max_examples=50)
    def test_diff_inverts_merge_for_flows(
        self, before_values, extra_values, before_count, extra_count
    ):
        """merge(before, x) then diff(before, .) recovers x's flows."""
        before = self._snap(before_values, before_count)
        extra = self._snap(extra_values, extra_count)
        after = metrics.merge_snapshots(before, extra)
        delta = metrics.diff_snapshots(before, after)
        assert delta["counters"] == extra["counters"]
        if extra_values and "h" in delta["histograms"]:
            hist = delta["histograms"]["h"]
            want = extra["histograms"]["h"]
            assert hist["count"] == want["count"]
            assert hist["bucket_counts"] == want["bucket_counts"]
            assert hist["sum"] == pytest.approx(want["sum"])


class TestTracing:
    def test_span_noop_without_trace_dir(self):
        enable()
        with obs.span("unit.block", x=1):
            pass  # no trace dir -> shared null span, nothing written

    def test_span_writes_complete_event(self, tmp_path):
        enable(trace_dir=str(tmp_path))
        with obs.span("unit.block", chunk=3):
            pass
        [trace_file] = sorted(tmp_path.glob("trace_*.json"))
        [event] = tracing.read_trace_events(trace_file)
        assert event["name"] == "unit.block"
        assert event["ph"] == "X"
        assert event["args"]["chunk"] == 3
        assert event["pid"] == os.getpid()
        assert event["dur"] >= 0

    def test_span_records_error_type(self, tmp_path):
        enable(trace_dir=str(tmp_path))
        with pytest.raises(RuntimeError):
            with obs.span("unit.fail"):
                raise RuntimeError("boom")
        [trace_file] = sorted(tmp_path.glob("trace_*.json"))
        [event] = tracing.read_trace_events(trace_file)
        assert event["args"]["error"] == "RuntimeError"

    def test_instant_event(self, tmp_path):
        enable(trace_dir=str(tmp_path))
        obs.instant("unit.mark", reason="retry")
        [trace_file] = sorted(tmp_path.glob("trace_*.json"))
        [event] = tracing.read_trace_events(trace_file)
        assert event["ph"] == "i"
        assert event["args"]["reason"] == "retry"

    def test_reader_tolerates_torn_line(self, tmp_path):
        enable(trace_dir=str(tmp_path))
        obs.instant("kept")
        [trace_file] = sorted(tmp_path.glob("trace_*.json"))
        with open(trace_file, "a") as handle:
            handle.write('{"name": "torn", "ph"')  # writer killed mid-write
        events_read = tracing.read_trace_events(trace_file)
        assert [e["name"] for e in events_read] == ["kept"]

    def test_export_run_strict_json(self, tmp_path):
        run = enable(trace_dir=str(tmp_path))
        with obs.span("unit.block"):
            pass
        obs.write_metrics_snapshot()
        target = obs.export_run(tmp_path)
        data = json.loads(target.read_text())
        assert data["otherData"]["run"] == run
        assert [e["name"] for e in data["traceEvents"]] == ["unit.block"]
        assert "metrics" in data

    def test_export_run_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            obs.export_run(tmp_path)

    def test_list_runs_orders_by_mtime(self, tmp_path):
        (tmp_path / "trace_r-old.json").write_text("[\n")
        os.utime(tmp_path / "trace_r-old.json", (1, 1))
        (tmp_path / "trace_r-new.json").write_text("[\n")
        assert obs.list_runs(tmp_path) == ["r-old", "r-new"]


class TestDisabledOverheadShape:
    """The disabled path must not evaluate anything expensive."""

    def test_span_returns_shared_null_object(self, obs_off):
        assert obs.span("a") is obs.span("b")

    def test_events_and_metrics_early_return(self, obs_off):
        # A value whose str()/json encoding would raise proves the
        # helpers never touch their arguments while disabled.
        class Explosive:
            def __str__(self):
                raise AssertionError("evaluated while disabled")

        obs.log("event", field=Explosive())
        obs.inc("counter")
        obs.observe("histogram", 1.0)
