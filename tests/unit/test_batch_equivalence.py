"""Differential oracle harness: batched DSP fast path == per-frame reference.

Every batched kernel introduced by the frame-batching fast path is pinned
against its per-frame (or per-slot / per-row) oracle with **bitwise**
equality — ``np.array_equal``, not ``allclose``.  The per-frame
implementations are the reference semantics; the batched paths are pure
reorderings of the same float expressions (stacked matmul with an
explicit trailing column axis, broadcast elementwise arithmetic,
``lfilter`` along the last axis), so any drift — however small — is a
bug, not a tolerance question.

Layer by layer:

* chirp synthesis (``waveform.chirp``): vector ``delay_s`` rows vs
  scalar-delay calls;
* DSP kernels (``utils.dsp``): batched Goertzel / sliding windows /
  envelope LPF vs per-row calls, plus the fast-vs-reference envelope and
  many-vs-looped Goertzel cross-checks (those two are *different
  algorithms*, so they get tolerances; everything else is bit-exact);
* tag frontend (``tag.frontend.capture_batch``) vs sequential
  ``capture`` under matched RNG streams;
* tag decoder (``tag.decoder_dsp``): ``score_slots`` /
  ``classify_slots`` / ``demodulate_data_slots`` /
  ``decode_aligned_batch`` vs their singular forms;
* Monte-Carlo engine: ``_downlink_chunk_batched`` vs ``_downlink_chunk``
  over SNR pins, clutter, impairment severities and full-sync fallback.

Hypothesis drives the input space (symbol sizes, sample rates, SNRs,
severities, batch shapes); the derandomized profile keeps runs
reproducible.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.channel.multipath import Clutter
from repro.core.ber import random_bits
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.core.downlink import DownlinkEncoder
from repro.core.packet import DownlinkPacket
from repro.errors import ConfigurationError, SimulationError
from repro.impair.spec import ImpairmentSpec
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import (
    DownlinkTrialConfig,
    _downlink_chunk,
    _downlink_chunk_batched,
)
from repro.tag.decoder_dsp import TagDecoder
from repro.tag.frontend import AnalyticTagFrontend, TagCapture
from repro.utils.dsp import (
    SlidingWindowSpec,
    envelope_rc_lowpass,
    envelope_rc_lowpass_fast,
    goertzel_power,
    goertzel_power_many,
    sliding_windows,
)
from repro.utils.rng import SeedSpec
from repro.waveform.chirp import (
    chirp_phase,
    instantaneous_frequency,
    sample_chirp_baseband,
    sample_chirp_real,
)
from repro.waveform.parameters import ChirpParameters


def _alphabet(symbol_bits: int, bandwidth_hz: float = 1e9) -> CsskAlphabet:
    return CsskAlphabet.design(
        bandwidth_hz=bandwidth_hz,
        decoder=DecoderDesign.from_inches(45.0),
        symbol_bits=symbol_bits,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )


ALPHABETS = {bits: _alphabet(bits) for bits in (3, 5)}


def _trial_config(symbol_bits: int, **overrides) -> DownlinkTrialConfig:
    kwargs = dict(
        radar_config=XBAND_9GHZ.with_bandwidth(1e9),
        alphabet=ALPHABETS[symbol_bits],
        distance_m=7.0,
        num_frames=4,
        payload_symbols_per_frame=6,
    )
    kwargs.update(overrides)
    return DownlinkTrialConfig(**kwargs)


def _encoded_frames(config: DownlinkTrialConfig, count: int, seed: int = 0):
    """(frames, payloads) encoded exactly like the per-frame engine chunk."""
    encoder = DownlinkEncoder(
        radar_config=config.radar_config, alphabet=config.alphabet
    )
    spec = SeedSpec.from_rng(seed)
    bits_per_frame = (
        config.payload_symbols_per_frame * config.alphabet.symbol_bits
    )
    frames, payloads = [], []
    for index in range(count):
        payload = random_bits(bits_per_frame, rng=spec.stream(index))
        packet = DownlinkPacket.from_bits(
            config.alphabet, payload, fields=config.fields
        )
        frames.append(encoder.encode_packet(packet))
        payloads.append(payload)
    return frames, payloads


class TestChirpBatching:
    """Vector ``delay_s`` rows == scalar-delay calls, bit for bit."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=20e-6, max_value=120e-6),
        st.floats(min_value=250e6, max_value=1e9),
        st.lists(
            st.floats(min_value=-1e-6, max_value=1e-6), min_size=1, max_size=5
        ),
    )
    def test_phase_and_frequency(self, duration_s, bandwidth_hz, delays):
        params = ChirpParameters(
            start_frequency_hz=9e9,
            bandwidth_hz=bandwidth_hz,
            duration_s=duration_s,
        )
        t = np.arange(64) / 1e6
        delays = np.asarray(delays)
        for fn in (chirp_phase, instantaneous_frequency):
            batched = fn(params, t, delay_s=delays)
            assert batched.shape == (delays.size, t.size)
            for row, delay in enumerate(delays):
                assert np.array_equal(
                    batched[row], fn(params, t, delay_s=float(delay))
                )

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=20e-6, max_value=120e-6),
        st.sampled_from([0.5e6, 1e6, 2e6]),
        st.lists(
            st.floats(min_value=0.0, max_value=1e-6), min_size=1, max_size=4
        ),
    )
    def test_sampled_waveforms(self, duration_s, fs, delays):
        params = ChirpParameters(
            start_frequency_hz=9e9, bandwidth_hz=500e6, duration_s=duration_s
        )
        delays = np.asarray(delays)
        real = sample_chirp_real(params, fs, delay_s=delays)
        baseband = sample_chirp_baseband(params, fs, delay_s=delays)
        for row, delay in enumerate(delays):
            assert np.array_equal(
                real[row], sample_chirp_real(params, fs, delay_s=float(delay))
            )
            assert np.array_equal(
                baseband[row],
                sample_chirp_baseband(params, fs, delay_s=float(delay)),
            )


class TestGoertzelBatching:
    @settings(max_examples=25, deadline=None)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 5), st.integers(8, 128)),
            elements=st.floats(-10, 10),
        ),
        st.sampled_from([0.25e6, 1e6, 4e6]),
    )
    def test_batched_rows_match_per_row(self, block, fs):
        freqs = np.array([11e3, 53e3, 97e3])
        batched = goertzel_power_many(block, freqs, fs)
        assert batched.shape == (block.shape[0], freqs.size)
        for row in range(block.shape[0]):
            assert np.array_equal(
                batched[row], goertzel_power_many(block[row], freqs, fs)
            )

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(np.float64, st.integers(16, 256), elements=st.floats(-5, 5)),
        st.lists(
            st.floats(min_value=5e3, max_value=400e3), min_size=1, max_size=4
        ),
    )
    def test_many_matches_looped_single(self, samples, freqs):
        # Different algorithms (matrix DFT vs Goertzel recurrence), so this
        # cross-check is the one tolerance-based assertion in the suite.
        fs = 1e6
        many = goertzel_power_many(samples, np.asarray(freqs), fs)
        looped = np.array([goertzel_power(samples, f, fs) for f in freqs])
        assert np.allclose(many, looped, rtol=1e-9, atol=1e-12)

    def test_three_dim_stacks(self):
        rng = np.random.default_rng(0)
        block = rng.normal(size=(2, 3, 64))
        freqs = np.array([10e3, 20e3])
        batched = goertzel_power_many(block, freqs, 1e6)
        assert batched.shape == (2, 3, 2)
        for i in range(2):
            for j in range(3):
                assert np.array_equal(
                    batched[i, j], goertzel_power_many(block[i, j], freqs, 1e6)
                )

    def test_empty_frame_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            goertzel_power_many(np.empty((0, 8)), np.array([1e3]), 1e6)
        with pytest.raises(ConfigurationError):
            goertzel_power_many(np.empty((3, 0)), np.array([1e3]), 1e6)


class TestSlidingWindowBatching:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 64),
        st.integers(1, 32),
        st.integers(0, 200),
        st.integers(1, 4),
    )
    def test_batched_planes_match_per_row(self, window, hop, total, batch):
        spec = SlidingWindowSpec(window_samples=window, hop_samples=hop)
        block = np.arange(batch * total, dtype=float).reshape(batch, total)
        batched = sliding_windows(block, spec)
        assert batched.shape[0] == batch
        for row in range(batch):
            assert np.array_equal(batched[row], sliding_windows(block[row], spec))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 64), st.integers(1, 32), st.integers(0, 500))
    def test_truncation_contract(self, window, hop, total):
        # Only complete windows; trailing partials dropped, never padded.
        spec = SlidingWindowSpec(window_samples=window, hop_samples=hop)
        starts = spec.starts(total)
        expected = 0 if total < window else 1 + (total - window) // hop
        assert starts.size == expected == spec.num_windows(total)
        if starts.size:
            assert starts[-1] + window <= total
            assert starts[-1] + hop + window > total
        views = sliding_windows(np.arange(total, dtype=float), spec)
        assert views.shape == (expected, window)

    def test_higher_rank_rejected(self):
        spec = SlidingWindowSpec(window_samples=4, hop_samples=2)
        with pytest.raises(ConfigurationError):
            sliding_windows(np.zeros((2, 2, 8)), spec)


class TestEnvelopeBatching:
    @settings(max_examples=25, deadline=None)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 5), st.integers(1, 200)),
            elements=st.floats(-3, 3),
        ),
        st.sampled_from([0.5e6, 1e6]),
        st.floats(min_value=1e3, max_value=100e3),
    )
    def test_batched_rows_match_per_row(self, block, fs, cutoff):
        batched = envelope_rc_lowpass_fast(block, fs, cutoff)
        assert batched.shape == block.shape
        for row in range(block.shape[0]):
            assert np.array_equal(
                batched[row], envelope_rc_lowpass_fast(block[row], fs, cutoff)
            )

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(np.float64, st.integers(1, 300), elements=st.floats(-3, 3)),
        st.floats(min_value=1e3, max_value=100e3),
    )
    def test_fast_matches_reference(self, samples, cutoff):
        fs = 1e6
        fast = envelope_rc_lowpass_fast(samples, fs, cutoff)
        slow = envelope_rc_lowpass(samples, fs, cutoff)
        assert np.allclose(fast, slow, rtol=1e-9, atol=1e-12)

    def test_reference_stays_one_dimensional(self):
        with pytest.raises(ConfigurationError):
            envelope_rc_lowpass(np.zeros((2, 8)), 1e6, 10e3)

    def test_empty_rows_pass_through(self):
        out = envelope_rc_lowpass_fast(np.empty((3, 0)), 1e6, 10e3)
        assert out.shape == (3, 0)


class TestFrontendCaptureBatching:
    @settings(max_examples=10, deadline=None)
    @given(
        st.sampled_from([3, 5]),
        st.floats(min_value=2.0, max_value=9.0),
        st.one_of(st.none(), st.floats(min_value=5.0, max_value=25.0)),
        st.integers(0, 2**16 - 1),
    )
    def test_capture_batch_matches_sequential(
        self, symbol_bits, distance_m, snr_override_db, seed
    ):
        config = _trial_config(symbol_bits)
        frames, _ = _encoded_frames(config, count=3, seed=seed)
        frontend = AnalyticTagFrontend(
            budget=config.resolved_budget(),
            delta_t_s=config.alphabet.decoder.delta_t_s,
        )
        spec = SeedSpec.from_rng(seed)
        batched = frontend.capture_batch(
            frames,
            distance_m,
            rngs=[spec.stream(i) for i in range(len(frames))],
            snr_override_db=snr_override_db,
        )
        for index, frame in enumerate(frames):
            reference = frontend.capture(
                frame,
                distance_m,
                rng=spec.stream(index),
                snr_override_db=snr_override_db,
            )
            assert np.array_equal(batched[index].samples, reference.samples)
            assert batched[index].sample_rate_hz == reference.sample_rate_hz

    def test_absorptive_and_wrap_paths(self):
        config = _trial_config(3)
        frames, _ = _encoded_frames(config, count=2, seed=7)
        frontend = AnalyticTagFrontend(
            budget=config.resolved_budget(),
            delta_t_s=config.alphabet.decoder.delta_t_s,
        )
        num_slots = len(frames[0].slots)
        absorb = np.ones(num_slots, dtype=bool)
        absorb[::3] = False
        wraps = np.zeros(num_slots)
        wraps[1] = 0.4
        spec = SeedSpec.from_rng(11)
        batched = frontend.capture_batch(
            frames,
            4.0,
            rngs=[spec.stream(i) for i in range(len(frames))],
            absorptive_slots=absorb,
            wrap_fractions=wraps,
            off_boresight_deg=15.0,
        )
        for index, frame in enumerate(frames):
            reference = frontend.capture(
                frame,
                4.0,
                rng=spec.stream(index),
                absorptive_slots=absorb,
                wrap_fractions=wraps,
                off_boresight_deg=15.0,
            )
            assert np.array_equal(batched[index].samples, reference.samples)

    def test_empty_and_ragged_batches_rejected(self):
        config = _trial_config(3)
        frontend = AnalyticTagFrontend(
            budget=config.resolved_budget(),
            delta_t_s=config.alphabet.decoder.delta_t_s,
        )
        with pytest.raises(SimulationError):
            frontend.capture_batch([], 3.0, rngs=[])
        frames, _ = _encoded_frames(config, count=2)
        short = _trial_config(3, payload_symbols_per_frame=3)
        ragged, _ = _encoded_frames(short, count=1)
        with pytest.raises(SimulationError):
            frontend.capture_batch(
                [frames[0], ragged[0]], 3.0, rngs=[0, 1]
            )
        with pytest.raises(SimulationError):
            frontend.capture_batch(frames, 3.0, rngs=[0])


class TestDecoderBatching:
    @settings(max_examples=15, deadline=None)
    @given(
        st.sampled_from([3, 5]),
        st.integers(1, 6),
        st.integers(0, 2**16 - 1),
        st.sampled_from([0.5e6, 1e6]),
    )
    def test_slot_scoring_matches_per_slot(self, symbol_bits, batch, seed, fs):
        alphabet = ALPHABETS[symbol_bits]
        decoder = TagDecoder(alphabet)
        n_slot = int(round(alphabet.chirp_period_s * fs))
        rng = np.random.default_rng(seed)
        block = rng.normal(size=(batch, n_slot))
        scores = decoder.score_slots(block, fs)
        classified = decoder.classify_slots(block, fs)
        symbols, beats = decoder.demodulate_data_slots(block, fs)
        for row in range(batch):
            per_slot = decoder.score_slot(block[row], fs)
            assert np.array_equal(
                scores[row], np.array([entry[3] for entry in per_slot])
            )
            assert classified[row] == decoder.classify_slot(block[row], fs)
            symbol, beat = decoder.demodulate_data_slot(block[row], fs)
            assert symbols[row] == symbol
            assert beats[row] == beat

    @settings(max_examples=8, deadline=None)
    @given(
        st.sampled_from([3, 5]),
        st.one_of(st.none(), st.floats(min_value=6.0, max_value=20.0)),
        st.integers(0, 2**16 - 1),
    )
    def test_decode_aligned_batch_matches_oracle(
        self, symbol_bits, snr_override_db, seed
    ):
        config = _trial_config(symbol_bits)
        frames, _ = _encoded_frames(config, count=3, seed=seed)
        frontend = AnalyticTagFrontend(
            budget=config.resolved_budget(),
            delta_t_s=config.alphabet.decoder.delta_t_s,
        )
        decoder = TagDecoder(config.alphabet, fields=config.fields)
        spec = SeedSpec.from_rng(seed)
        captures = frontend.capture_batch(
            frames,
            config.distance_m,
            rngs=[spec.stream(i) for i in range(len(frames))],
            snr_override_db=snr_override_db,
        )
        decoded = decoder.decode_aligned_batch(
            captures, num_payload_symbols=config.payload_symbols_per_frame
        )
        for capture, batched in zip(captures, decoded):
            reference = decoder.decode_aligned(
                capture, num_payload_symbols=config.payload_symbols_per_frame
            )
            assert np.array_equal(batched.bits, reference.bits)
            assert batched.symbols == reference.symbols
            assert np.array_equal(
                batched.measured_beats_hz, reference.measured_beats_hz
            )
            assert batched.payload_start_slot == reference.payload_start_slot
            assert batched.num_sync_slots_seen == reference.num_sync_slots_seen

    def test_ragged_capture_batches_rejected(self):
        config = _trial_config(3)
        decoder = TagDecoder(config.alphabet, fields=config.fields)
        with pytest.raises(ValueError):
            decoder.decode_aligned_batch([], num_payload_symbols=4)
        a = TagCapture(samples=np.zeros(4096), sample_rate_hz=1e6)
        b = TagCapture(samples=np.zeros(2048), sample_rate_hz=1e6)
        with pytest.raises(ValueError):
            decoder.decode_aligned_batch([a, b], num_payload_symbols=4)
        c = TagCapture(samples=np.zeros(4096), sample_rate_hz=0.5e6)
        with pytest.raises(ValueError):
            decoder.decode_aligned_batch([a, c], num_payload_symbols=4)


ENGINE_VARIANTS = {
    "plain": {},
    "near": {"distance_m": 3.0},
    "snr_pinned": {"snr_override_db": 10.0},
    "clutter": {"snr_override_db": 14.0, "clutter": Clutter.office(rng=0)},
    "full_sync": {"full_sync": True},
    "full_sync_snr_pinned": {"full_sync": True, "snr_override_db": 10.0},
    "full_sync_low_snr": {"full_sync": True, "snr_override_db": -22.0},
    "full_sync_impaired_fallback": {
        "full_sync": True,
        "impairments": ImpairmentSpec.parse("interference:0.5,impulse:0.5"),
    },
    "impaired_mild": {
        "impairments": ImpairmentSpec.parse("interference:0.25,impulse:0.25")
    },
    "impaired_harsh": {
        "impairments": ImpairmentSpec.parse(
            "interference:0.75,drift:0.5,clip:0.5,impulse:0.75"
        )
    },
}


class TestEngineChunkEquivalence:
    @pytest.mark.parametrize("variant", sorted(ENGINE_VARIANTS))
    def test_batched_chunk_matches_reference(self, variant):
        config = _trial_config(5, num_frames=6, **ENGINE_VARIANTS[variant])
        spec = SeedSpec.from_rng(0)
        indices = list(range(6))
        assert _downlink_chunk_batched(config, spec, indices) == _downlink_chunk(
            config, spec, indices
        )

    def test_mid_run_chunk_matches_reference(self):
        # A chunk that does not start at trial 0 (mid-run dispatch shape).
        config = _trial_config(5, num_frames=32)
        spec = SeedSpec.from_rng(3)
        indices = list(range(13, 21))
        assert _downlink_chunk_batched(config, spec, indices) == _downlink_chunk(
            config, spec, indices
        )

    def test_full_sync_low_snr_exercises_sync_failures(self):
        # The differential check on the OTA-sync route is only meaningful
        # if the SyncError accounting actually fires; pin that the low-SNR
        # variant trips it, so both paths count identical sync losses.
        config = _trial_config(
            5, num_frames=8, **ENGINE_VARIANTS["full_sync_low_snr"]
        )
        spec = SeedSpec.from_rng(0)
        indices = list(range(8))
        batched = _downlink_chunk_batched(config, spec, indices)
        assert batched == _downlink_chunk(config, spec, indices)
        assert sum(r[2] for r in batched) > 0

    def test_full_sync_mid_run_chunk_matches_reference(self):
        config = _trial_config(3, num_frames=24, full_sync=True)
        spec = SeedSpec.from_rng(7)
        indices = list(range(9, 17))
        assert _downlink_chunk_batched(config, spec, indices) == _downlink_chunk(
            config, spec, indices
        )

    @settings(max_examples=6, deadline=None)
    @given(
        st.sampled_from([3, 5]),
        st.floats(min_value=6.0, max_value=16.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_equivalence_across_snr_and_severity(
        self, symbol_bits, snr_db, severity
    ):
        impair = ImpairmentSpec.parse(
            f"interference:{severity:.3f},impulse:{severity:.3f}"
        )
        config = _trial_config(
            symbol_bits,
            num_frames=3,
            snr_override_db=snr_db,
            impairments=impair,
        )
        spec = SeedSpec.from_rng(1)
        indices = list(range(3))
        assert _downlink_chunk_batched(config, spec, indices) == _downlink_chunk(
            config, spec, indices
        )
