"""Shared benchmark plumbing.

Each bench regenerates one of the paper's tables/figures, prints the
series (bypassing pytest's capture so the rows land in bench logs), saves
it under ``benchmarks/results/``, and asserts the paper's qualitative
shape so a regression in any pipeline stage fails the bench.

Benches additionally write machine-readable ``BENCH_<name>.json``
trajectory records (via :func:`emit_bench_json` ->
:func:`repro.store.artifacts.write_bench_json`) into the repo root, so
the perf trajectory can be scraped without parsing tables.  Override the
destination with ``REPRO_BENCH_JSON_DIR``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Tables emitted during this run, replayed into the terminal summary
#: (pytest captures file descriptors, so a plain print would vanish).
_EMITTED: "list[tuple[str, str]]" = []


def emit(name: str, text: str) -> None:
    """Record a result table: persisted to disk and shown in the summary."""
    _EMITTED.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_bench_json(name, *, elapsed_seconds, results, workers=1, extra=None,
                    metrics=None):
    """Write this bench's standardized ``BENCH_<name>.json`` record."""
    from repro.store.artifacts import BENCH_JSON_DIR_ENV, write_bench_json

    directory = os.environ.get(BENCH_JSON_DIR_ENV) or REPO_ROOT
    return write_bench_json(
        name,
        elapsed_seconds=elapsed_seconds,
        results=results,
        workers=workers,
        directory=directory,
        extra=extra,
        metrics=metrics,
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every emitted table into the run's terminal output."""
    if not _EMITTED:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for name, text in _EMITTED:
        terminalreporter.write_line(f"\n--- {name} ---")
        terminalreporter.write_line(text)


@pytest.fixture(scope="session")
def paper_alphabet():
    from repro.core.cssk import CsskAlphabet, DecoderDesign

    return CsskAlphabet.design(
        bandwidth_hz=1e9,
        decoder=DecoderDesign.from_inches(45.0),
        symbol_bits=5,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )
