"""Unit tests for the durable job journal (repro.serve.journal).

Everything here runs against a throwaway cache directory — no server, no
sockets.  The contracts pinned: write-ahead records are atomic and
re-readable, completion marking is idempotent and tolerant, unknown
schema versions are rejected loudly, and orphan detection keys strictly
on the recording pid being dead.
"""

import json
import os

import pytest

from repro.errors import ServeError
from repro.serve.journal import (
    JOURNAL_SCHEMA_VERSION,
    JobJournal,
    JournalRecord,
    journal_stats,
    sweep_orphaned_journal,
)

#: A pid that provably does not exist: above the default pid_max.
DEAD_PID = 2 ** 22 + 54321

JOB = {"kind": "ber", "frames": 4, "seed": 0}


def make_journal(tmp_path) -> JobJournal:
    return JobJournal(tmp_path / "cache")


class TestJournalRecord:
    def test_encode_decode_round_trip(self):
        record = JournalRecord(
            journal_id="abc-1", kind="ber", job=JOB,
            fingerprints=("f1", "f2", "f3"), completed=(1,),
            point_indices=(0, 2, 4), state="running", pid=123,
            created_unix=42.5,
        )
        assert JournalRecord.decode(record.encode()) == record

    def test_remaining_excludes_completed(self):
        record = JournalRecord(
            journal_id="abc-1", kind="ber", job=JOB,
            fingerprints=("f1", "f2", "f3"), completed=(0, 2),
        )
        assert record.remaining() == (1,)

    def test_unknown_schema_version_rejected_loudly(self):
        encoded = JournalRecord(
            journal_id="abc-1", kind="ber", job=JOB, fingerprints=("f1",),
        ).encode()
        encoded["schema_version"] = JOURNAL_SCHEMA_VERSION + 1
        with pytest.raises(ServeError, match="schema_version"):
            JournalRecord.decode(encoded)

    def test_missing_field_rejected(self):
        encoded = JournalRecord(
            journal_id="abc-1", kind="ber", job=JOB, fingerprints=("f1",),
        ).encode()
        del encoded["fingerprints"]
        with pytest.raises(ServeError, match="missing field"):
            JournalRecord.decode(encoded)

    def test_bad_types_rejected(self):
        base = JournalRecord(
            journal_id="abc-1", kind="ber", job=JOB, fingerprints=("f1",),
        ).encode()
        for key, value in [
            ("job", "not-a-dict"),
            ("fingerprints", [1, 2]),
            ("completed", [True]),  # bools are not point indices
            ("point_indices", ["0"]),
            ("state", "bogus"),
        ]:
            broken = dict(base)
            broken[key] = value
            with pytest.raises(ServeError):
                JournalRecord.decode(broken)


class TestJobJournal:
    def test_record_is_written_ahead_and_readable(self, tmp_path):
        journal = make_journal(tmp_path)
        record = journal.record(kind="ber", job=JOB, fingerprints=["f1", "f2"])
        on_disk = journal.get(record.journal_id)
        assert on_disk == record
        assert on_disk.pid == os.getpid()
        assert on_disk.state == "running"
        assert on_disk.remaining() == (0, 1)

    def test_mark_complete_accumulates_and_is_idempotent(self, tmp_path):
        journal = make_journal(tmp_path)
        record = journal.record(
            kind="ber", job=JOB, fingerprints=["f1", "f2", "f3"]
        )
        journal.mark_complete(record.journal_id, 2)
        journal.mark_complete(record.journal_id, 0)
        journal.mark_complete(record.journal_id, 2)  # repeat: no-op
        assert journal.get(record.journal_id).remaining() == (1,)

    def test_mark_complete_tolerates_missing_record(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.mark_complete("never-existed", 0)  # must not raise

    def test_finish_removes_the_record(self, tmp_path):
        journal = make_journal(tmp_path)
        record = journal.record(kind="ber", job=JOB, fingerprints=["f1"])
        journal.finish(record.journal_id)
        assert journal.get(record.journal_id) is None
        journal.finish(record.journal_id)  # repeat: no-op

    def test_incomplete_is_oldest_first_and_skips_unreadable(self, tmp_path):
        journal = make_journal(tmp_path)
        first = journal.record(kind="ber", job=JOB, fingerprints=["f1"])
        second = journal.record(kind="ber", job=JOB, fingerprints=["f2"])
        (journal.root / "garbage.json").write_bytes(b"{not json")
        ids = [record.journal_id for record in journal.incomplete()]
        assert ids == [first.journal_id, second.journal_id]

    def test_adopt_reowns_under_current_pid(self, tmp_path):
        journal = make_journal(tmp_path)
        record = journal.record(kind="ber", job=JOB, fingerprints=["f1"])
        crashed = JournalRecord.decode(
            {**record.encode(), "pid": DEAD_PID}
        )
        journal._write(crashed)
        assert journal.orphans() != []
        adopted = journal.adopt(crashed)
        assert adopted.pid == os.getpid()
        assert journal.orphans() == []

    def test_invalid_journal_id_rejected(self, tmp_path):
        journal = make_journal(tmp_path)
        for bad in ("", "../escape", ".hidden", "a/b"):
            with pytest.raises(ServeError):
                journal._path(bad)


class TestOrphanHandling:
    def _orphan(self, journal: JobJournal) -> JournalRecord:
        record = journal.record(kind="ber", job=JOB, fingerprints=["f1"])
        dead = JournalRecord.decode({**record.encode(), "pid": DEAD_PID})
        journal._write(dead)
        return dead

    def test_stats_counts_orphans_and_unreadable(self, tmp_path):
        journal = make_journal(tmp_path)
        self._orphan(journal)
        journal.record(kind="ber", job=JOB, fingerprints=["f2"])  # live: ours
        (journal.root / "noise.json").write_bytes(b"\xff\xfe")
        stats = journal_stats(tmp_path / "cache")
        assert stats.entries == 2
        assert stats.orphaned == 1
        assert stats.unreadable == 1

    def test_newer_schema_counts_unreadable_never_raises(self, tmp_path):
        journal = make_journal(tmp_path)
        record = journal.record(kind="ber", job=JOB, fingerprints=["f1"])
        future = {**record.encode(), "schema_version": 999}
        (journal.root / f"{record.journal_id}.json").write_text(
            json.dumps(future)
        )
        stats = journal_stats(tmp_path / "cache")
        assert stats.entries == 0
        assert stats.unreadable == 1

    def test_sweep_removes_only_dead_pid_records(self, tmp_path):
        journal = make_journal(tmp_path)
        dead = self._orphan(journal)
        alive = journal.record(kind="ber", job=JOB, fingerprints=["f2"])
        assert sweep_orphaned_journal(tmp_path / "cache") == 1
        assert journal.get(dead.journal_id) is None
        assert journal.get(alive.journal_id) is not None

    def test_stats_on_missing_directory_is_empty(self, tmp_path):
        stats = journal_stats(tmp_path / "nonexistent")
        assert stats.entries == 0
        assert stats.orphaned == 0
        assert sweep_orphaned_journal(tmp_path / "nonexistent") == 0
