"""Property-based tests: the streaming decoder is chunking-invariant."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.channel.link_budget import DownlinkBudget
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.core.downlink import DownlinkEncoder
from repro.core.packet import DownlinkPacket
from repro.core.ber import random_bits
from repro.radar.config import XBAND_9GHZ
from repro.tag.frontend import AnalyticTagFrontend
from repro.tag.streaming import StreamingTagDecoder


def _alphabet():
    return CsskAlphabet.design(
        bandwidth_hz=1e9,
        decoder=DecoderDesign.from_inches(45.0),
        symbol_bits=5,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )


ALPHABET = _alphabet()


def _reference_stream(seed: int, num_symbols: int = 8):
    encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=ALPHABET)
    budget = DownlinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
    )
    frontend = AnalyticTagFrontend(budget=budget, delta_t_s=ALPHABET.decoder.delta_t_s)
    bits = random_bits(ALPHABET.symbol_bits * num_symbols, rng=seed)
    packet = DownlinkPacket.from_bits(ALPHABET, bits)
    frame = encoder.encode_packet(packet)
    capture = frontend.capture(frame, 2.5, rng=seed + 1)
    rng = np.random.default_rng(seed + 2)
    stream = np.concatenate(
        [rng.normal(0, 1e-7, 650), capture.samples, rng.normal(0, 1e-7, 400)]
    )
    return packet.payload_symbols(), stream


# Precompute a handful of reference streams so hypothesis only varies the
# chunking, which is the property under test.
REFERENCES = {seed: _reference_stream(seed) for seed in (3, 17)}


class TestChunkInvariance:
    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from(sorted(REFERENCES)),
        st.lists(st.integers(16, 4000), min_size=1, max_size=12),
    )
    def test_any_chunking_decodes_identically(self, seed, chunk_sizes):
        truth, stream = REFERENCES[seed]
        decoder = StreamingTagDecoder(ALPHABET, 1e6, payload_symbols=len(truth))
        position = 0
        chunk_index = 0
        while position < stream.size:
            size = chunk_sizes[chunk_index % len(chunk_sizes)]
            decoder.process(stream[position : position + size])
            position += size
            chunk_index += 1
        decoder.finish()
        assert decoder._symbols[: len(truth)] == truth
        assert decoder.stats.packets_completed == 1

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from(sorted(REFERENCES)), st.integers(16, 8000))
    def test_memory_bound_holds_for_any_chunk(self, seed, chunk):
        _, stream = REFERENCES[seed]
        decoder = StreamingTagDecoder(ALPHABET, 1e6, payload_symbols=8)
        for start in range(0, stream.size, chunk):
            decoder.process(stream[start : start + chunk])
        decoder.finish()
        assert decoder.stats.max_buffer_samples <= decoder.buffer_bound_samples + chunk
