"""Hypothesis profile: deterministic example generation.

Derandomized runs keep the suite reproducible (the strategies still cover
the space — examples are derived from the test function, not a global
seed) and avoid flaky one-off failures in CI logs.
"""

from hypothesis import settings

settings.register_profile("repro", derandomize=True, deadline=None)
settings.load_profile("repro")
