"""Chirp parameters (Eqs. 1-5), synthesis, and frame schedules."""

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError, WaveformError
from repro.waveform.chirp import (
    instantaneous_frequency,
    sample_chirp_baseband,
    sample_chirp_real,
)
from repro.waveform.frame import ChirpSlot, FrameSchedule
from repro.waveform.parameters import ChirpParameters


@pytest.fixture
def chirp():
    return ChirpParameters(start_frequency_hz=8.5e9, bandwidth_hz=1e9, duration_s=100e-6)


class TestChirpParameters:
    def test_slope(self, chirp):
        assert chirp.slope_hz_per_s == pytest.approx(1e9 / 100e-6)

    def test_center_and_end_frequency(self, chirp):
        assert chirp.center_frequency_hz == pytest.approx(9.0e9)
        assert chirp.end_frequency_hz == pytest.approx(9.5e9)

    def test_beat_frequency_eq3(self, chirp):
        # f_IF = 2 alpha r / c
        r = 5.0
        expected = 2 * chirp.slope_hz_per_s * r / SPEED_OF_LIGHT
        assert chirp.beat_frequency_for_range(r) == pytest.approx(expected)

    def test_beat_range_roundtrip(self, chirp):
        assert chirp.range_for_beat_frequency(chirp.beat_frequency_for_range(3.3)) == pytest.approx(3.3)

    def test_range_resolution_eq5(self, chirp):
        assert chirp.range_resolution_m == pytest.approx(SPEED_OF_LIGHT / 2e9)

    def test_max_unambiguous_range_eq4(self, chirp):
        fs = 5e6
        expected = fs * SPEED_OF_LIGHT * chirp.duration_s / (2 * chirp.bandwidth_hz)
        assert chirp.max_unambiguous_range(fs) == pytest.approx(expected)

    def test_longer_chirp_larger_max_range(self, chirp):
        longer = chirp.with_duration(200e-6)
        assert longer.max_unambiguous_range(5e6) > chirp.max_unambiguous_range(5e6)

    def test_round_trip_delay(self, chirp):
        assert chirp.round_trip_delay(1.5) == pytest.approx(3.0 / SPEED_OF_LIGHT)

    def test_with_duration_changes_slope_only(self, chirp):
        half = chirp.with_duration(50e-6)
        assert half.slope_hz_per_s == pytest.approx(2 * chirp.slope_hz_per_s)
        assert half.bandwidth_hz == chirp.bandwidth_hz

    def test_rejects_negative_range(self, chirp):
        with pytest.raises(ConfigurationError):
            chirp.beat_frequency_for_range(-1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ChirpParameters(start_frequency_hz=-1, bandwidth_hz=1e9, duration_s=1e-4)
        with pytest.raises(ConfigurationError):
            ChirpParameters(start_frequency_hz=9e9, bandwidth_hz=0, duration_s=1e-4)


class TestChirpSynthesis:
    def test_baseband_sweeps_bandwidth(self):
        chirp = ChirpParameters(start_frequency_hz=1e6, bandwidth_hz=2e6, duration_s=1e-4)
        fs = 20e6
        samples = sample_chirp_baseband(chirp, fs)
        # Instantaneous frequency from phase derivative should span ~B.
        phase = np.unwrap(np.angle(samples))
        inst = np.diff(phase) * fs / (2 * np.pi)
        assert inst[5] == pytest.approx(0.0, abs=chirp.bandwidth_hz * 0.03)
        assert inst[-5] == pytest.approx(chirp.bandwidth_hz, rel=0.03)

    def test_baseband_delay_applies_carrier_rotation(self):
        chirp = ChirpParameters(start_frequency_hz=1e6, bandwidth_hz=1e6, duration_s=1e-4)
        fs = 10e6
        delay = 0.25 / 1e6  # quarter carrier cycle
        reference = sample_chirp_baseband(chirp, fs)
        delayed = sample_chirp_baseband(chirp, fs, delay_s=delay)
        rotation = np.angle(delayed[0] / reference[0])
        assert rotation == pytest.approx(-np.pi / 2, abs=0.05)

    def test_real_matches_envelope_magnitude(self):
        chirp = ChirpParameters(
            start_frequency_hz=2e6, bandwidth_hz=1e6, duration_s=5e-5, amplitude=0.7
        )
        samples = sample_chirp_real(chirp, 50e6)
        assert np.max(np.abs(samples)) == pytest.approx(0.7, rel=0.01)

    def test_instantaneous_frequency_linear(self):
        chirp = ChirpParameters(start_frequency_hz=9e9, bandwidth_hz=1e9, duration_s=1e-4)
        t = np.array([0.0, 5e-5, 1e-4])
        freqs = instantaneous_frequency(chirp, t)
        np.testing.assert_allclose(freqs, [9e9, 9.5e9, 10e9])

    def test_too_few_samples_rejected(self):
        chirp = ChirpParameters(start_frequency_hz=9e9, bandwidth_hz=1e9, duration_s=1e-6)
        with pytest.raises(ConfigurationError):
            sample_chirp_baseband(chirp, 1e5)


class TestChirpSlot:
    def test_inter_chirp_delay(self):
        chirp = ChirpParameters(start_frequency_hz=9e9, bandwidth_hz=1e9, duration_s=80e-6)
        slot = ChirpSlot(chirp=chirp, start_time_s=0.0, period_s=120e-6)
        assert slot.inter_chirp_delay_s == pytest.approx(40e-6)
        assert slot.duty == pytest.approx(80 / 120)

    def test_chirp_longer_than_slot_rejected(self):
        chirp = ChirpParameters(start_frequency_hz=9e9, bandwidth_hz=1e9, duration_s=150e-6)
        with pytest.raises(WaveformError):
            ChirpSlot(chirp=chirp, start_time_s=0.0, period_s=120e-6)


class TestFrameSchedule:
    def chirps(self, durations):
        return [
            ChirpParameters(start_frequency_hz=9e9, bandwidth_hz=1e9, duration_s=d)
            for d in durations
        ]

    def test_from_chirps_uniform_period(self):
        frame = FrameSchedule.from_chirps(self.chirps([80e-6, 60e-6]), 120e-6)
        assert len(frame) == 2
        assert frame.duration_s == pytest.approx(240e-6)
        assert frame.uniform_period_s() == pytest.approx(120e-6)

    def test_duty_limit_enforced(self):
        with pytest.raises(WaveformError):
            FrameSchedule.from_chirps(self.chirps([100e-6]), 120e-6)  # > 80%

    def test_symbols_attached(self):
        frame = FrameSchedule.from_chirps(self.chirps([50e-6, 50e-6]), 120e-6, symbols=[3, None])
        assert frame.symbols == (3, None)

    def test_symbol_length_mismatch(self):
        with pytest.raises(WaveformError):
            FrameSchedule.from_chirps(self.chirps([50e-6]), 120e-6, symbols=[1, 2])

    def test_slopes_array(self):
        frame = FrameSchedule.from_chirps(self.chirps([50e-6, 96e-6]), 120e-6)
        assert frame.slopes_hz_per_s[0] > frame.slopes_hz_per_s[1]

    def test_concatenated_shifts_times(self):
        a = FrameSchedule.from_chirps(self.chirps([50e-6]), 120e-6)
        b = FrameSchedule.from_chirps(self.chirps([50e-6]), 120e-6)
        joined = a.concatenated(b)
        assert len(joined) == 2
        assert joined.slots[1].start_time_s == pytest.approx(120e-6)

    def test_overlapping_slots_rejected(self):
        chirp = self.chirps([50e-6])[0]
        slots = (
            ChirpSlot(chirp=chirp, start_time_s=0.0, period_s=120e-6),
            ChirpSlot(chirp=chirp, start_time_s=60e-6, period_s=120e-6),
        )
        with pytest.raises(WaveformError):
            FrameSchedule(slots=slots)

    def test_empty_frame_period_rejected(self):
        with pytest.raises(WaveformError):
            FrameSchedule().uniform_period_s()

    def test_indexing_and_iteration(self):
        frame = FrameSchedule.from_chirps(self.chirps([50e-6, 60e-6]), 120e-6)
        assert frame[1].chirp.duration_s == pytest.approx(60e-6)
        assert len(list(frame)) == 2
