"""Fig. 16 — tag localization accuracy, sensing-only vs during communication.

The paper localizes the tag under (1) fixed-slope frames (pure sensing /
uplink) and (2) frames whose slopes vary for CSSK downlink, and finds
centimeter-level accuracy in both — the varying slopes are transparent to
localization thanks to the IF correction.  An ablation arm here also shows
what happens WITHOUT the IF correction (interpreting every chirp on the
first chirp's range axis), which is the failure the correction exists to
prevent (ablation A2).
"""

import os
import time

import numpy as np

from conftest import emit, emit_bench_json
from repro.radar.config import XBAND_9GHZ
from repro.radar.fmcw import FMCWRadar, Scatterer
from repro.radar.if_correction import uncorrected_bin_peak_ranges
from repro.sim.engine import run_localization_trials
from repro.sim.executor import ExecutionPlan
from repro.sim.results import format_table
from repro.components.van_atta import VanAttaArray
from repro.tag.modulator import UplinkModulator
from repro.waveform.frame import FrameSchedule
from repro.waveform.parameters import ChirpParameters

DISTANCES_M = [1.0, 3.0, 5.0, 7.0]
FRAMES_PER_POINT = 6
NUM_CHIRPS = 96
# Bit-identical for any worker count; opt into parallelism via env.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def run_study(paper_alphabet):
    modulator = UplinkModulator(
        modulation_rate_hz=2000.0, chirp_period_s=120e-6, chirps_per_bit=NUM_CHIRPS
    )
    van_atta = VanAttaArray()
    from repro.channel.multipath import Clutter

    clutter = Clutter.office(rng=0)
    table_rows = []
    medians = {"fixed": [], "varying": []}
    for distance in DISTANCES_M:
        row = [f"{distance:.1f}"]
        for varying in (False, True):
            errors = run_localization_trials(
                XBAND_9GHZ,
                paper_alphabet,
                modulator,
                van_atta,
                tag_range_m=distance + 0.037,  # off-grid truth
                varying_slopes=varying,
                num_frames=FRAMES_PER_POINT,
                num_chirps=NUM_CHIRPS,
                clutter=clutter,
                rng=int(distance * 13) + int(varying),
                execution=ExecutionPlan(workers=WORKERS),
            )
            key = "varying" if varying else "fixed"
            medians[key].append(float(np.median(errors)))
            row.append(f"{np.median(errors) * 100:.2f}")
            row.append(f"{np.max(errors) * 100:.2f}")
        table_rows.append(row)

    # Ablation A2: skip the IF correction on one varying-slope frame.
    rng = np.random.default_rng(3)
    symbols = rng.integers(0, paper_alphabet.num_data_symbols, NUM_CHIRPS)
    chirps = [
        ChirpParameters(
            start_frequency_hz=XBAND_9GHZ.start_frequency_hz,
            bandwidth_hz=paper_alphabet.bandwidth_hz,
            duration_s=paper_alphabet.data_symbol_duration_s(int(s)),
        )
        for s in symbols
    ]
    frame = FrameSchedule.from_chirps(chirps, paper_alphabet.chirp_period_s)
    target = Scatterer(range_m=3.037, rcs_m2=1e-2, gain_jitter_std=0.0)
    if_frame = FMCWRadar(XBAND_9GHZ).receive_frame(frame, [target], rng=4)
    uncorrected_error = float(
        np.median(np.abs(uncorrected_bin_peak_ranges(if_frame, min_range_m=0.5) - 3.037))
    )
    return table_rows, medians, uncorrected_error


def test_fig16_localization(benchmark, paper_alphabet):
    started = time.perf_counter()
    table_rows, medians, uncorrected_error = benchmark.pedantic(
        run_study, args=(paper_alphabet,), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - started
    table = format_table(
        [
            "distance (m)",
            "fixed median (cm)",
            "fixed max (cm)",
            "varying median (cm)",
            "varying max (cm)",
        ],
        table_rows,
    )
    table += (
        f"\nablation A2 (no IF correction, varying slopes): median error "
        f"{uncorrected_error * 100:.0f} cm"
    )
    emit("fig16_localization", table)
    emit_bench_json(
        "fig16_localization",
        elapsed_seconds=elapsed,
        workers=WORKERS,
        results={
            "distances_m": DISTANCES_M,
            "frames_per_point": FRAMES_PER_POINT,
            "median_error_m": {
                mode: [float(value) for value in values]
                for mode, values in medians.items()
            },
            "uncorrected_median_error_m": float(uncorrected_error),
        },
    )

    # Paper shape: centimeter-level accuracy in BOTH modes at every range.
    assert max(medians["fixed"]) < 0.05
    assert max(medians["varying"]) < 0.05
    # Communication does not meaningfully degrade localization.
    for fixed, varying in zip(medians["fixed"], medians["varying"]):
        assert varying < fixed + 0.03
    # Without the IF correction the varying-slope frame is useless (>1 m off).
    assert uncorrected_error > 0.5
