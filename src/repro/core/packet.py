"""Downlink packet structure (paper Fig. 3).

``[header x H][sync x S][payload symbols...]``

* The *header field* repeats the header slope so the tag can measure the
  chirp period with a large FFT/autocorrelation window.
* The *sync field* repeats the sync slope; its trailing edge marks the
  first payload slot.
* The *payload* carries Gray-coded CSSK data symbols.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.cssk import CsskAlphabet
from repro.errors import PacketError


class FieldType(enum.Enum):
    """Role of a chirp slot within a downlink packet."""

    HEADER = "header"
    SYNC = "sync"
    DATA = "data"


@dataclass(frozen=True)
class PacketFields:
    """Preamble sizing for downlink packets.

    Parameters
    ----------
    header_repeats:
        Number of header-slope chirps; more repeats give the tag a longer
        period-estimation window (>= 4 recommended).
    sync_repeats:
        Number of sync-slope chirps marking the payload boundary.
    """

    header_repeats: int = 8
    sync_repeats: int = 3

    def __post_init__(self) -> None:
        if self.header_repeats < 2:
            raise PacketError(f"header_repeats must be >= 2, got {self.header_repeats}")
        if self.sync_repeats < 1:
            raise PacketError(f"sync_repeats must be >= 1, got {self.sync_repeats}")

    @property
    def preamble_length(self) -> int:
        """Total preamble chirps."""
        return self.header_repeats + self.sync_repeats


@dataclass(frozen=True)
class DownlinkPacket:
    """A fully specified downlink packet: preamble + payload bits.

    Use :meth:`from_bits` to build one; :meth:`roles` /
    :meth:`symbol_sequence` expose the per-slot layout consumed by the
    encoder and by tests.
    """

    alphabet: CsskAlphabet
    fields: PacketFields
    payload_bits: np.ndarray

    def __post_init__(self) -> None:
        bits = np.asarray(self.payload_bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise PacketError(f"payload_bits must be 1-D, got shape {bits.shape}")
        if bits.size == 0:
            raise PacketError("payload must contain at least one bit")
        if bits.size % self.alphabet.symbol_bits:
            raise PacketError(
                f"payload of {bits.size} bits is not a multiple of the "
                f"{self.alphabet.symbol_bits}-bit symbol size"
            )
        if np.any((bits != 0) & (bits != 1)):
            raise PacketError("payload bits must be 0/1")
        object.__setattr__(self, "payload_bits", bits)

    @classmethod
    def from_bits(
        cls,
        alphabet: CsskAlphabet,
        payload_bits: np.ndarray,
        *,
        fields: PacketFields | None = None,
    ) -> "DownlinkPacket":
        """Build a packet carrying ``payload_bits`` (padded is caller's job)."""
        return cls(
            alphabet=alphabet,
            fields=fields or PacketFields(),
            payload_bits=np.asarray(payload_bits, dtype=np.uint8),
        )

    @property
    def num_payload_symbols(self) -> int:
        return self.payload_bits.size // self.alphabet.symbol_bits

    @property
    def num_slots(self) -> int:
        """Total chirps in the packet."""
        return self.fields.preamble_length + self.num_payload_symbols

    def payload_symbols(self) -> list[int]:
        """Payload as Gray-coded data-symbol indices."""
        symbols = []
        bits = self.payload_bits
        width = self.alphabet.symbol_bits
        for start in range(0, bits.size, width):
            symbols.append(self.alphabet.symbol_for_bits(bits[start : start + width]))
        return symbols

    def roles(self) -> list[FieldType]:
        """Per-slot role sequence."""
        return (
            [FieldType.HEADER] * self.fields.header_repeats
            + [FieldType.SYNC] * self.fields.sync_repeats
            + [FieldType.DATA] * self.num_payload_symbols
        )

    def symbol_sequence(self) -> "list[int | None]":
        """Per-slot data-symbol indices (None for preamble slots)."""
        return [None] * self.fields.preamble_length + self.payload_symbols()

    def beat_sequence_hz(self) -> np.ndarray:
        """Per-slot expected beat frequency at the tag decoder."""
        beats = []
        for role, symbol in zip(self.roles(), self.symbol_sequence()):
            if role is FieldType.HEADER:
                beats.append(self.alphabet.header_beat_hz)
            elif role is FieldType.SYNC:
                beats.append(self.alphabet.sync_beat_hz)
            else:
                beats.append(self.alphabet.data_beats_hz[symbol])
        return np.asarray(beats)

    def duration_s(self) -> float:
        """On-air packet duration."""
        return self.num_slots * self.alphabet.chirp_period_s

    def airtime_efficiency(self) -> float:
        """Payload fraction of the packet's airtime."""
        return self.num_payload_symbols / self.num_slots


def pad_bits_to_symbols(bits: np.ndarray, symbol_bits: int) -> np.ndarray:
    """Zero-pad a bit vector up to a whole number of symbols."""
    arr = np.asarray(bits, dtype=np.uint8)
    if symbol_bits < 1:
        raise PacketError(f"symbol_bits must be >= 1, got {symbol_bits}")
    remainder = arr.size % symbol_bits
    if remainder == 0:
        return arr
    return np.concatenate([arr, np.zeros(symbol_bits - remainder, dtype=np.uint8)])
