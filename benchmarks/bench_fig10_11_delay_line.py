"""Figs. 10-11 — PCB meander delay line: S11, insertion loss, group delay.

Regenerates the characterization curves of the paper's 9 GHz PCB delay
line (Rogers 3006; 1.26 ns over 64 mm x 3 mm) from the behavioural model:
S11 vs frequency with resonant dips (Fig. 10), and insertion loss + delay
across the 1 GHz band (Fig. 11).
"""

import numpy as np

from conftest import emit
from repro.components.delay_line import MeanderDelayLine
from repro.sim.results import format_table


def characterize():
    line = MeanderDelayLine()
    freqs = np.linspace(8.5e9, 9.5e9, 21)
    s11 = line.s11_db(freqs)
    loss = line.insertion_loss_db(freqs)
    delay = line.group_delay_s(freqs)
    return line, freqs, s11, loss, delay


def test_fig10_11_delay_line(benchmark):
    line, freqs, s11, loss, delay = benchmark.pedantic(
        characterize, rounds=1, iterations=1
    )
    rows = [
        [f"{f / 1e9:.2f}", f"{s:.1f}", f"{l:.2f}", f"{d * 1e9:.3f}"]
        for f, s, l, d in zip(freqs, s11, loss, delay)
    ]
    table = format_table(
        ["freq (GHz)", "S11 (dB)", "insertion loss (dB)", "group delay (ns)"], rows
    )
    table += (
        f"\ndesign: {line.length_m * 1e3:.0f} mm meander on eps_r={line.dielectric_constant} "
        f"substrate, nominal delay {line.nominal_delay_s * 1e9:.2f} ns"
    )
    emit("fig10_11_delay_line", table)

    # Fig. 10 shape: matched in band (S11 below -10 dB) with deeper dips.
    assert np.all(s11 <= -10.0)
    assert s11.min() < -24.0
    # Fig. 11 shape: ~1.26 ns near-flat delay; loss a few dB rising with f.
    assert np.all(np.abs(delay - 1.26e-9) < 0.03e-9)
    assert loss[-1] > loss[0]
    assert 0.5 < loss.mean() < 4.0
