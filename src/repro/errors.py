"""Exception hierarchy for the BiScatter reproduction.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch domain failures without also
swallowing programming errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError, ValueError):
    """A component or waveform was configured with invalid parameters."""


class WaveformError(ReproError):
    """A chirp/frame specification is unsatisfiable or inconsistent."""


class AlphabetError(ReproError):
    """A CSSK alphabet cannot be constructed from the given constraints."""


class PacketError(ReproError):
    """Packet encoding or decoding failed (framing, sync, length)."""


class SyncError(PacketError):
    """The tag decoder could not find the preamble/sync pattern.

    ``frame_index`` / ``symbol_index`` locate the failure for erasure
    accounting (``None`` = unknown/not applicable), so callers never have
    to parse the message string.
    """

    def __init__(
        self,
        message: str,
        *,
        frame_index: "int | None" = None,
        symbol_index: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.frame_index = frame_index
        self.symbol_index = symbol_index


class DecodingError(ReproError):
    """Demodulation failed in a way that is not a plain bit error.

    Carries the same structured location fields as :class:`SyncError`.
    """

    def __init__(
        self,
        message: str,
        *,
        frame_index: "int | None" = None,
        symbol_index: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.frame_index = frame_index
        self.symbol_index = symbol_index


class ImpairmentError(ReproError):
    """An impairment specification is invalid or cannot be applied."""


class LinkBudgetError(ReproError):
    """A link-budget computation received non-physical inputs."""


class SimulationError(ReproError):
    """The simulation engine was driven into an inconsistent state."""


class DetectionError(ReproError):
    """Radar-side detection could not find the requested target/tag."""


@dataclass(frozen=True)
class ChunkFailure:
    """One chunk's final, post-retry failure record.

    ``kind`` names the failure mode: ``"raise"`` (the chunk function
    raised in a worker), ``"timeout"`` (the chunk exceeded its per-chunk
    deadline), ``"pool-broken"`` (the process pool died and its rebuild
    budget ran out), or ``"serial"`` (the in-parent serial recovery pass
    failed too).  ``indices`` are the trial indices the chunk covered —
    exactly the trials whose results are missing.
    """

    chunk_index: int
    indices: "tuple[int, ...]"
    attempts: int
    kind: str
    error: str

    def as_dict(self) -> "dict[str, Any]":
        return {
            "chunk_index": self.chunk_index,
            "indices": list(self.indices),
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
        }


class ExecutorError(ReproError):
    """A Monte-Carlo chunk failed even after bounded deterministic retry.

    Raised by :func:`repro.sim.executor.map_trials` once a chunk exhausts
    its retry budget (``ExecutionPlan.max_retries``) and any configured
    degradation path.  ``failures`` holds one :class:`ChunkFailure` per
    unrecoverable chunk, so callers can see exactly *which* trials failed
    and why; ``failing_indices`` is the flat sorted union.
    """

    def __init__(self, failures: "Iterable[ChunkFailure]", message: "str | None" = None):
        self.failures: "tuple[ChunkFailure, ...]" = tuple(failures)
        if message is None:
            indices = self.failing_indices
            shown = ", ".join(str(i) for i in indices[:8])
            if len(indices) > 8:
                shown += ", ..."
            message = (
                f"{len(self.failures)} chunk(s) failed after retries "
                f"(trial indices: {shown}): "
                + "; ".join(f"[{f.kind}] {f.error}" for f in self.failures[:3])
            )
        super().__init__(message)

    @property
    def failing_indices(self) -> "list[int]":
        """Sorted union of every trial index covered by a failed chunk."""
        return sorted({index for failure in self.failures for index in failure.indices})


class StoreError(ReproError):
    """The experiment store was asked to do something unsatisfiable.

    Note the store's read path never raises this for damaged *data*:
    unreadable or checksum-failing cache entries are treated as misses
    and recomputed.  ``StoreError`` marks caller mistakes — a work unit
    that cannot be canonically fingerprinted, or writing a record that
    could never round-trip.
    """


class ServeError(ReproError):
    """The serve line protocol was violated or a job cannot be serviced.

    Raised for malformed/oversized frames, invalid job specs, and — on
    the client side — server-reported failures.  Backpressure rejection
    has its own subclass (:class:`repro.serve.protocol.JobRejected`)
    carrying the server's suggested ``retry_after_s``.
    """


class ServeConnectionLost(ServeError):
    """The serve TCP connection died mid-conversation.

    Raised client-side on EOF, a torn (newline-less) trailing line, or a
    server ``shutting_down`` notice while a stream is still open.  It is
    the one serve failure that is *retryable by reconnecting*:
    :meth:`repro.serve.client.ServeClient.run_resilient` catches exactly
    this class, reconnects under its backoff policy, and resubmits only
    the missing points — anything else still propagates.
    """
