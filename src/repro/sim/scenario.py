"""Scenario descriptions: radar + tags + environment geometry.

A :class:`Scenario` bundles everything a bench or example needs to run an
end-to-end experiment, mirroring the paper's evaluation setup: an indoor
office with multipath, a tag at 0.5-7 m, a 120 us chirp period, and the
9 GHz chirp generator (unless the experiment targets 24 GHz).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.channel.multipath import Clutter
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.core.isac import IsacSession
from repro.radar.config import RadarConfig, XBAND_9GHZ
from repro.tag.architecture import BiScatterTag
from repro.tag.modulator import ModulationScheme, UplinkModulator
from repro.utils.validation import ensure_positive

#: The paper's fixed evaluation chirp period ("we fix the chirp period to 120us").
PAPER_CHIRP_PERIOD_S = 120e-6

#: The paper's default delay-line length difference for headline results.
PAPER_DELTA_L_INCHES = 45.0


@dataclass
class Scenario:
    """A complete, runnable experiment setup.

    Parameters
    ----------
    radar_config:
        Radar platform.
    alphabet:
        CSSK configuration shared by radar and tag.
    tag:
        The (single) tag under test.
    tag_range_m:
        Radar-tag distance.
    clutter:
        Static environment.
    """

    radar_config: RadarConfig
    alphabet: CsskAlphabet
    tag: BiScatterTag
    tag_range_m: float = 2.0
    tag_velocity_m_s: float = 0.0
    clutter: Clutter = field(default_factory=Clutter)

    def __post_init__(self) -> None:
        ensure_positive("tag_range_m", self.tag_range_m)

    def session(self, **kwargs) -> IsacSession:
        """Build an ISAC session for this scenario."""
        return IsacSession(
            self.radar_config,
            self.alphabet,
            self.tag,
            tag_range_m=self.tag_range_m,
            tag_velocity_m_s=self.tag_velocity_m_s,
            clutter=self.clutter,
            **kwargs,
        )

    def at_range(self, tag_range_m: float) -> "Scenario":
        """The same scenario with the tag moved."""
        return replace(self, tag_range_m=tag_range_m)


def default_office_scenario(
    *,
    radar_config: RadarConfig = XBAND_9GHZ,
    symbol_bits: int = 5,
    delta_l_inches: float = PAPER_DELTA_L_INCHES,
    chirp_period_s: float = PAPER_CHIRP_PERIOD_S,
    tag_range_m: float = 2.0,
    modulation_rate_hz: float = 2500.0,
    chirps_per_bit: int = 32,
    with_clutter: bool = True,
    clutter_seed: int = 0,
) -> Scenario:
    """The paper's evaluation setup: 9 GHz radar, office clutter, one tag.

    Matches the stated defaults: 120 us chirp period, 45-inch delay-line
    difference, 5-bit symbols at 1 GHz bandwidth.
    """
    decoder = DecoderDesign.from_inches(delta_l_inches)
    alphabet = CsskAlphabet.design(
        bandwidth_hz=radar_config.max_bandwidth_hz,
        decoder=decoder,
        symbol_bits=symbol_bits,
        chirp_period_s=chirp_period_s,
        min_chirp_duration_s=max(20e-6, radar_config.min_chirp_duration_s),
    )
    modulator = UplinkModulator(
        modulation_rate_hz=modulation_rate_hz,
        chirp_period_s=chirp_period_s,
        chirps_per_bit=chirps_per_bit,
        scheme=ModulationScheme.FSK,
    )
    tag = BiScatterTag(decoder_design=decoder, modulator=modulator)
    clutter = Clutter.office(rng=clutter_seed) if with_clutter else Clutter()
    return Scenario(
        radar_config=radar_config,
        alphabet=alphabet,
        tag=tag,
        tag_range_m=tag_range_m,
        clutter=clutter,
    )
