"""Fig. 17 — downlink BER vs SNR at 9 GHz vs 24 GHz (250 MHz bandwidth both).

The tag's decoding chain depends on the chirp's bandwidth and slope, not
its carrier, so the same tag design works against the 24 GHz TinyRad.  The
paper fixes both radars to 250 MHz (the available 24 GHz ISM allocation)
and sweeps SNR via distance: the two curves track each other.
"""


from conftest import emit
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.radar.config import TINYRAD_24GHZ, XBAND_9GHZ
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
from repro.sim.results import format_table

SNRS_DB = [-2.0, 2.0, 6.0, 10.0, 14.0]
SYMBOL_BITS = 3
FRAMES_PER_POINT = 50


def run_sweep():
    decoder = DecoderDesign.from_inches(45.0)
    alphabet = CsskAlphabet.design(
        bandwidth_hz=250e6,
        decoder=decoder,
        symbol_bits=SYMBOL_BITS,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )
    radars = {
        "9 GHz (X-band)": XBAND_9GHZ.with_bandwidth(250e6),
        "24 GHz (TinyRad)": TINYRAD_24GHZ,
    }
    results = {}
    for label, radar in radars.items():
        series = []
        for snr in SNRS_DB:
            config = DownlinkTrialConfig(
                radar_config=radar,
                alphabet=alphabet,
                distance_m=2.0,
                snr_override_db=snr,
                num_frames=FRAMES_PER_POINT,
                payload_symbols_per_frame=16,
            )
            series.append(
                run_downlink_trials(config, rng=int(snr * 7) + 13 + len(label)).ber
            )
        results[label] = series
    return results


def test_fig17_cross_band(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for index, snr in enumerate(SNRS_DB):
        rows.append([f"{snr:.0f}"] + [f"{series[index]:.2e}" for series in results.values()])
    table = format_table(["video SNR (dB)"] + list(results.keys()), rows)
    table += f"\n({SYMBOL_BITS}-bit symbols, 250 MHz bandwidth both bands)"
    emit("fig17_cross_band", table)

    nine, twenty_four = results.values()
    # Paper shape: both bands improve with SNR and track each other closely.
    assert nine[0] >= nine[-1]
    assert twenty_four[0] >= twenty_four[-1]
    for a, b in zip(nine, twenty_four):
        assert abs(a - b) < 0.05
