"""Content-addressed experiment store: cache, fingerprints, artifacts.

The evaluation in EXPERIMENTS.md is hundreds of Monte-Carlo points
re-run on every parameter tweak.  PR 1 made every result a pure function
of ``(work unit, root seed)`` — which is exactly the property that makes
caching *sound*: a cache hit is provably bit-identical to a recompute.
This package builds on that:

* :mod:`repro.store.fingerprint` — canonical SHA-256 keys over work
  units (payload + :class:`~repro.utils.rng.SeedSpec` + trial count +
  schema version).
* :mod:`repro.store.cache` — :class:`ExperimentStore`, a disk-backed
  content-addressed cache (atomic writes, concurrent-writer safe,
  corruption treated as a miss) with a replay-based ``verify``
  self-check.
* :mod:`repro.store.artifacts` — sweep-result save/load round-trips and
  the standardized ``BENCH_*.json`` trajectory writer.

Pass ``store=ExperimentStore(dir)`` to :func:`repro.sim.sweep`,
:func:`repro.sim.sweep_grid`, or the engine entry points to skip
already-computed points; the CLI exposes the same via ``--cache-dir``
and manages directories via ``repro cache {stats,verify,clear}``.
"""

from repro.store.fingerprint import (
    SCHEMA_VERSION,
    canonical_json,
    canonicalize,
    fingerprint,
)
from repro.store.cache import (
    ExperimentStore,
    ReplayRecipe,
    StoreStats,
    VerifyReport,
    atomic_write_bytes,
)
from repro.store.inflight import (
    InFlightRegistry,
    InFlightStats,
)
from repro.store.artifacts import (
    ARTIFACT_VERSION,
    bench_json_path,
    load_sweep_result,
    read_bench_json,
    save_sweep_result,
    write_bench_json,
)

__all__ = [
    "SCHEMA_VERSION",
    "canonical_json",
    "canonicalize",
    "fingerprint",
    "ExperimentStore",
    "ReplayRecipe",
    "StoreStats",
    "VerifyReport",
    "atomic_write_bytes",
    "InFlightRegistry",
    "InFlightStats",
    "ARTIFACT_VERSION",
    "bench_json_path",
    "load_sweep_result",
    "read_bench_json",
    "save_sweep_result",
    "write_bench_json",
]
