"""ARQ reliability layer and the sequential low-power mode."""

import numpy as np
import pytest

from repro.core.arq import CONTROL_BITS, ArqController, CrcFrame, crc8
from repro.core.sequential import (
    SequentialModeController,
    SequentialSchedule,
)
from repro.errors import ConfigurationError, PacketError
from repro.sim.scenario import default_office_scenario
from repro.tag.power import TagPowerModel


class TestCrc8:
    def test_known_vector(self):
        # CRC-8/CCITT of 0x00 byte is 0x00; of 0xFF is a fixed nonzero value.
        assert crc8(np.zeros(8, dtype=np.uint8)) == 0
        assert crc8(np.ones(8, dtype=np.uint8)) != 0

    def test_detects_single_bit_flip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 40).astype(np.uint8)
        baseline = crc8(bits)
        for position in range(bits.size):
            flipped = bits.copy()
            flipped[position] ^= 1
            assert crc8(flipped) != baseline, f"missed flip at {position}"

    def test_rejects_non_binary(self):
        with pytest.raises(PacketError):
            crc8(np.array([2, 0, 1], dtype=np.uint8))


class TestCrcFrame:
    def test_roundtrip(self):
        payload = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        frame = CrcFrame(sequence=1, payload=payload)
        recovered = CrcFrame.from_bits(frame.to_bits())
        assert recovered.sequence == 1
        np.testing.assert_array_equal(recovered.payload, payload)

    def test_corruption_detected(self):
        frame = CrcFrame(sequence=0, payload=np.ones(10, dtype=np.uint8))
        wire = frame.to_bits()
        wire[3] ^= 1
        with pytest.raises(PacketError):
            CrcFrame.from_bits(wire)

    def test_wire_size(self):
        frame = CrcFrame(sequence=0, payload=np.ones(10, dtype=np.uint8))
        assert frame.wire_bits == 10 + 1 + 8
        assert frame.to_bits().size == frame.wire_bits

    def test_validation(self):
        with pytest.raises(PacketError):
            CrcFrame(sequence=2, payload=np.ones(4, dtype=np.uint8))
        with pytest.raises(PacketError):
            CrcFrame(sequence=0, payload=np.array([], dtype=np.uint8))
        with pytest.raises(PacketError):
            CrcFrame.from_bits(np.zeros(5, dtype=np.uint8))


class TestArqController:
    @pytest.fixture(scope="class")
    def good_session(self):
        return default_office_scenario(tag_range_m=2.0).session()

    def test_delivery_on_clean_link(self, good_session):
        controller = ArqController(session=good_session, max_retries=2)
        payload = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1, 1], dtype=np.uint8)
        delivered, stats = controller.send(payload, rng=1)
        assert delivered
        assert stats.rounds == 1
        assert stats.retransmissions == 0
        assert stats.delivered_payload_bits == payload.size

    def test_sequence_alternates(self, good_session):
        controller = ArqController(session=good_session, max_retries=1)
        assert controller._next_sequence == 0
        controller.send(np.ones(8, dtype=np.uint8), rng=2)
        assert controller._next_sequence == 1
        controller.send(np.ones(8, dtype=np.uint8), rng=3)
        assert controller._next_sequence == 0

    def test_retransmission_on_bad_link(self):
        # A 12 m link is beyond the reliable envelope: frames get mangled,
        # the tag NACKs, the controller retries and reports honestly.
        session = default_office_scenario(tag_range_m=12.0).session()
        controller = ArqController(session=session, max_retries=2)
        delivered, stats = controller.send(np.ones(20, dtype=np.uint8), rng=4)
        assert stats.rounds >= 1
        if not delivered:
            assert stats.rounds == 3  # initial + 2 retries
        else:
            assert stats.tag_crc_failures + stats.retransmissions >= 0

    def test_control_bits_constant(self):
        assert CONTROL_BITS == 2


class TestSequentialSchedule:
    def test_duty_and_cycle(self):
        schedule = SequentialSchedule(downlink_window_s=10e-3, uplink_window_s=90e-3)
        assert schedule.cycle_s == pytest.approx(0.1)
        assert schedule.downlink_duty == pytest.approx(0.1)

    def test_average_power_below_continuous(self):
        schedule = SequentialSchedule(downlink_window_s=5e-3, uplink_window_s=95e-3)
        model = TagPowerModel.prototype()
        assert schedule.average_power_w(model) < model.continuous_power_w()

    def test_energy_per_cycle(self):
        schedule = SequentialSchedule(downlink_window_s=10e-3, uplink_window_s=10e-3)
        model = TagPowerModel.prototype()
        expected = 10e-3 * model.downlink_only_power_w() + 10e-3 * model.uplink_only_power_w()
        assert schedule.energy_per_cycle_j(model) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(Exception):
            SequentialSchedule(downlink_window_s=0.0, uplink_window_s=1e-3)


class TestSequentialController:
    @pytest.fixture(scope="class")
    def controller(self):
        session = default_office_scenario(tag_range_m=2.5).session()
        schedule = SequentialSchedule(downlink_window_s=6e-3, uplink_window_s=50e-3)
        return SequentialModeController(session, schedule)

    def test_capacities_positive(self, controller):
        assert controller.downlink_capacity_bits() > 0
        assert controller.uplink_capacity_bits() > 0

    def test_clean_cycle(self, controller):
        result = controller.run_cycle(
            np.ones(20, dtype=np.uint8),
            np.array([1, 0, 1, 0], dtype=np.uint8),
            rng=5,
        )
        assert result.downlink_ber == 0.0
        assert result.uplink_ber == 0.0
        assert result.localization_error_m < 0.05
        model = controller.session.tag.power
        assert result.average_power_w < model.continuous_power_w()

    def test_power_saving_factor(self, controller):
        # Low-duty decode windows should save well over an order of magnitude.
        assert controller.power_saving_factor() > 5.0

    def test_capacity_enforced(self, controller):
        too_many_downlink = np.ones(controller.downlink_capacity_bits() + 1, dtype=np.uint8)
        with pytest.raises(ConfigurationError):
            controller.run_cycle(too_many_downlink, np.array([1], dtype=np.uint8), rng=6)
        too_many_uplink = np.ones(controller.uplink_capacity_bits() + 1, dtype=np.uint8)
        with pytest.raises(ConfigurationError):
            controller.run_cycle(np.ones(5, dtype=np.uint8), too_many_uplink, rng=7)

    def test_window_too_short_rejected(self):
        session = default_office_scenario(tag_range_m=2.0).session()
        schedule = SequentialSchedule(downlink_window_s=1e-3, uplink_window_s=10e-3)
        with pytest.raises(ConfigurationError):
            SequentialModeController(session, schedule)


class TestVelocityEstimation:
    def test_signed_velocity_recovered(self):
        from repro.radar.config import XBAND_9GHZ
        from repro.radar.doppler_processing import estimate_velocity
        from repro.radar.fmcw import FMCWRadar, Scatterer
        from repro.radar.if_correction import align_profiles_to_common_grid
        from repro.waveform.frame import FrameSchedule

        chirp = XBAND_9GHZ.chirp(80e-6)
        # Velocities well above the frame's resolution (~1 m/s at 128
        # chirps); a slow mover gets a longer frame.
        cases = [(2.0, 128), (-3.0, 128), (0.8, 512)]
        for true_v, num_chirps in cases:
            frame = FrameSchedule.from_chirps([chirp] * num_chirps, 120e-6)
            mover = Scatterer(
                range_m=4.0, rcs_m2=1e-2, velocity_m_s=true_v, gain_jitter_std=0.0
            )
            if_frame = FMCWRadar(XBAND_9GHZ).receive_frame(frame, [mover], rng=0)
            correction = align_profiles_to_common_grid(if_frame)
            bin_index = int(np.argmin(np.abs(correction.range_grid_m - 4.0)))
            estimate = estimate_velocity(
                correction.aligned, bin_index, 120e-6, XBAND_9GHZ.center_frequency_hz
            )
            assert estimate == pytest.approx(true_v, abs=0.15)

    def test_range_bin_validated(self):
        from repro.radar.doppler_processing import estimate_velocity

        with pytest.raises(ValueError):
            estimate_velocity(np.ones((32, 8), dtype=complex), 9, 120e-6, 9e9)
