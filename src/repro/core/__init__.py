"""BiScatter's core contribution: CSSK two-way communication + ISAC protocol."""

from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.core.packet import DownlinkPacket, PacketFields
from repro.core.downlink import DownlinkEncoder
from repro.core.uplink import UplinkDecoder, UplinkResult
from repro.core.localization import TagLocalizer, LocalizationResult
from repro.core.isac import IsacSession, IsacFrameResult
from repro.core.ber import bit_error_rate, bits_from_symbols, random_bits, symbol_error_rate
from repro.core.network import MultiTagNetwork, TagEndpoint
from repro.core.arq import ArqController, ArqStats, CrcFrame, crc8
from repro.core.css import CssAlphabet, CssDecoder, build_css_frame
from repro.core.coexistence import CoexistenceSimulator, interference_noise_rise_db
from repro.core.fec import FecConfig, hamming74_decode, hamming74_encode
from repro.core.tracking import (
    AlphaBetaTracker,
    TagMeasurement,
    TrackManager,
    TrackState,
)
from repro.core.sequential import (
    SequentialModeController,
    SequentialSchedule,
    SequentialExchangeResult,
)

__all__ = [
    "CsskAlphabet",
    "DecoderDesign",
    "DownlinkPacket",
    "PacketFields",
    "DownlinkEncoder",
    "UplinkDecoder",
    "UplinkResult",
    "TagLocalizer",
    "LocalizationResult",
    "IsacSession",
    "IsacFrameResult",
    "bit_error_rate",
    "bits_from_symbols",
    "random_bits",
    "symbol_error_rate",
    "MultiTagNetwork",
    "TagEndpoint",
    "ArqController",
    "ArqStats",
    "CrcFrame",
    "crc8",
    "CssAlphabet",
    "CssDecoder",
    "build_css_frame",
    "CoexistenceSimulator",
    "interference_noise_rise_db",
    "FecConfig",
    "hamming74_decode",
    "hamming74_encode",
    "AlphaBetaTracker",
    "TagMeasurement",
    "TrackManager",
    "TrackState",
    "SequentialModeController",
    "SequentialSchedule",
    "SequentialExchangeResult",
]
