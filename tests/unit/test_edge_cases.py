"""Targeted edge-case coverage across layers."""

import numpy as np
import pytest

from repro.core.ber import random_bits
from repro.errors import (
    ConfigurationError,
    SimulationError,
    WaveformError,
)
from repro.sim.scenario import default_office_scenario


class TestIsacEdges:
    def test_single_bit_uplink(self):
        session = default_office_scenario(tag_range_m=2.0).session()
        result = session.run_frame(
            random_bits(5, rng=1), np.array([1], dtype=np.uint8), rng=2
        )
        assert result.uplink_bit_errors == 0

    def test_long_downlink_payload(self):
        session = default_office_scenario(tag_range_m=2.0).session()
        bits = random_bits(100, rng=3)  # 20 symbols x 3 repeats
        result = session.run_frame(bits, random_bits(4, rng=4), rng=5)
        assert result.downlink_bit_errors == 0

    def test_explicit_repeat_override(self):
        from repro.core.isac import IsacSession

        scenario = default_office_scenario(tag_range_m=2.0)
        session = IsacSession(
            scenario.radar_config,
            scenario.alphabet,
            scenario.tag,
            tag_range_m=2.0,
            downlink_repeats=5,
        )
        frame, packet = session.build_frame(
            random_bits(10, rng=6), np.array([1, 0], dtype=np.uint8)
        )
        start = session.fields.preamble_length
        # Each of the 2 symbols occupies 5 consecutive slots.
        assert frame.symbols[start : start + 5] == (packet.payload_symbols()[0],) * 5

    def test_invalid_repeats_rejected(self):
        from repro.core.isac import IsacSession

        scenario = default_office_scenario(tag_range_m=2.0)
        with pytest.raises(SimulationError):
            IsacSession(
                scenario.radar_config,
                scenario.alphabet,
                scenario.tag,
                tag_range_m=2.0,
                downlink_repeats=0,
            )


class TestEngineEdges:
    def test_clutter_penalty_applied_with_snr_override(self, alphabet):
        from repro.channel.multipath import Clutter
        from repro.radar.config import XBAND_9GHZ
        from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials

        base = DownlinkTrialConfig(
            radar_config=XBAND_9GHZ,
            alphabet=alphabet,
            snr_override_db=4.0,
            num_frames=20,
            payload_symbols_per_frame=12,
        )
        with_clutter = DownlinkTrialConfig(
            radar_config=XBAND_9GHZ,
            alphabet=alphabet,
            snr_override_db=4.0,
            num_frames=20,
            payload_symbols_per_frame=12,
            clutter=Clutter.office(rng=0),
        )
        clean = run_downlink_trials(base, rng=1).ber
        smeared = run_downlink_trials(with_clutter, rng=1).ber
        assert smeared >= clean  # the multipath penalty only hurts

    def test_zero_frames_rejected(self, alphabet):
        from repro.radar.config import XBAND_9GHZ
        from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials

        config = DownlinkTrialConfig(
            radar_config=XBAND_9GHZ, alphabet=alphabet, num_frames=0
        )
        with pytest.raises(SimulationError):
            run_downlink_trials(config)


class TestNoiseValidation:
    def test_bad_noise_figure_raises_configuration_error(self):
        from repro.channel.noise import NoiseModel

        with pytest.raises(ConfigurationError):
            NoiseModel(noise_figure_db=-1.0)

    def test_awgn_rejects_empty_and_silent_signals(self):
        from repro.channel.noise import awgn_for_snr

        with pytest.raises(ConfigurationError):
            awgn_for_snr(np.empty(0), 10.0, rng=np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            awgn_for_snr(np.zeros(64), 10.0, rng=np.random.default_rng(0))

    def test_phase_noise_validation(self):
        from repro.channel.noise import phase_noise_samples

        with pytest.raises(ConfigurationError):
            phase_noise_samples(0, 1e6, rng=np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            phase_noise_samples(
                16, 1e6, linewidth_hz=-1.0, rng=np.random.default_rng(0)
            )

    def test_configuration_error_is_still_a_value_error(self):
        """Converted raises stay catchable by legacy except ValueError."""
        from repro.channel.noise import NoiseModel

        with pytest.raises(ValueError):
            NoiseModel(noise_figure_db=-1.0)


class TestStructuredErrors:
    def test_sync_error_carries_frame_and_symbol_index(self):
        from repro.errors import SyncError

        error = SyncError("lost sync", frame_index=4, symbol_index=9)
        assert error.frame_index == 4
        assert error.symbol_index == 9
        assert "lost sync" in str(error)

    def test_decoding_error_defaults_are_none(self):
        from repro.errors import DecodingError

        error = DecodingError("bad symbol")
        assert error.frame_index is None
        assert error.symbol_index is None

    def test_impairment_error_is_a_repro_error(self):
        from repro.errors import ImpairmentError, ReproError

        assert issubclass(ImpairmentError, ReproError)


class TestWaveformEdges:
    def test_frame_boundary_duty_exact(self):
        from repro.waveform.frame import FrameSchedule
        from repro.waveform.parameters import ChirpParameters

        chirp = ChirpParameters(
            start_frequency_hz=9e9, bandwidth_hz=1e9, duration_s=96e-6
        )
        # Exactly 80% duty passes; a hair more fails.
        FrameSchedule.from_chirps([chirp], 120e-6)
        over = ChirpParameters(
            start_frequency_hz=9e9, bandwidth_hz=1e9, duration_s=96.1e-6
        )
        with pytest.raises(WaveformError):
            FrameSchedule.from_chirps([over], 120e-6)

    def test_capture_duration_property(self):
        from repro.tag.frontend import TagCapture

        capture = TagCapture(samples=np.zeros(2500), sample_rate_hz=1e6)
        assert capture.duration_s == pytest.approx(2.5e-3)


class TestAlphabetEdges:
    def test_one_bit_alphabet(self, decoder_design):
        from repro.core.cssk import CsskAlphabet

        tiny = CsskAlphabet.design(
            bandwidth_hz=1e9,
            decoder=decoder_design,
            symbol_bits=1,
            chirp_period_s=120e-6,
        )
        assert tiny.num_data_symbols == 2
        assert tiny.num_slopes == 4

    def test_classify_extremes(self, alphabet):
        # A beat far below/above everything maps to header/sync.
        assert alphabet.classify_beat(1.0)[0] == "header"
        assert alphabet.classify_beat(1e9)[0] == "sync"


class TestArqEdges:
    def test_sequence_bit_in_frame(self):
        from repro.core.arq import CrcFrame

        frame0 = CrcFrame(sequence=0, payload=np.ones(4, dtype=np.uint8))
        frame1 = CrcFrame(sequence=1, payload=np.ones(4, dtype=np.uint8))
        assert frame0.to_bits()[0] == 0
        assert frame1.to_bits()[0] == 1
        assert not np.array_equal(frame0.to_bits(), frame1.to_bits())

    def test_crc_differs_across_sequence(self):
        from repro.core.arq import CrcFrame

        a = CrcFrame(sequence=0, payload=np.zeros(8, dtype=np.uint8)).to_bits()
        b = CrcFrame(sequence=1, payload=np.zeros(8, dtype=np.uint8)).to_bits()
        assert not np.array_equal(a[-8:], b[-8:])


class TestStreamingEdges:
    def test_chunk_larger_than_everything(self, alphabet):
        from repro.tag.streaming import StreamingTagDecoder

        decoder = StreamingTagDecoder(alphabet, 1e6, payload_symbols=4)
        # A single enormous noise chunk: no packet, no crash, bounded buffer.
        decoder.process(np.random.default_rng(0).normal(0, 1e-7, 50_000))
        decoder.finish()
        assert decoder.stats.packets_completed == 0
        assert decoder.stats.max_buffer_samples <= 55_000

    def test_stats_counters_monotone(self, alphabet):
        from repro.tag.streaming import StreamingTagDecoder

        decoder = StreamingTagDecoder(alphabet, 1e6)
        before = decoder.stats.samples_consumed
        decoder.process(np.zeros(100))
        assert decoder.stats.samples_consumed == before + 100
