"""Fig. 13 — downlink BER vs radar-tag distance.

The paper fixes bandwidth at 1 GHz and sweeps the tag from 0.5 m outward,
for several maximum data rates (realized via different delay-line length
differences / symbol sizes).  BiScatter holds a low BER out to 7 m — the
"equivalent of 16 dB SNR" — with higher data rates degrading first.
"""

import os
import time

from conftest import emit, emit_bench_json
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
from repro.sim.executor import ExecutionPlan
from repro.sim.results import format_table

DISTANCES_M = [0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 8.0]
# (symbol bits, delay-line difference in inches) — rate series as in the
# paper: bigger symbols need longer lines to keep beat spacing workable.
SERIES = [(3, 18.0), (5, 45.0), (7, 60.0)]
FRAMES_PER_POINT = 50
SYMBOLS_PER_FRAME = 16
# Bit-identical for any worker count; opt into parallelism via env.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def run_sweep():
    plan = ExecutionPlan(workers=WORKERS)
    results = {}
    for bits, delta_l_in in SERIES:
        alphabet = CsskAlphabet.design(
            bandwidth_hz=1e9,
            decoder=DecoderDesign.from_inches(delta_l_in),
            symbol_bits=bits,
            chirp_period_s=120e-6,
            min_chirp_duration_s=20e-6,
        )
        label = f"{bits} bits ({alphabet.data_rate_bps() / 1e3:.0f} kbps, dL={delta_l_in:.0f}in)"
        series = []
        for distance in DISTANCES_M:
            config = DownlinkTrialConfig(
                radar_config=XBAND_9GHZ,
                alphabet=alphabet,
                distance_m=distance,
                num_frames=FRAMES_PER_POINT,
                payload_symbols_per_frame=SYMBOLS_PER_FRAME,
            )
            point = run_downlink_trials(
                config, rng=int(distance * 10) + bits, execution=plan
            )
            series.append((point.ber, point.extra["video_snr_db"]))
        results[label] = (bits, series)
    return results


def test_fig13_ber_vs_distance(benchmark):
    started = time.perf_counter()
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    elapsed = time.perf_counter() - started
    headers = ["distance (m)", "video SNR (dB)"] + list(results.keys())
    rows = []
    any_series = next(iter(results.values()))[1]
    for index, distance in enumerate(DISTANCES_M):
        row = [f"{distance:.1f}", f"{any_series[index][1]:.1f}"]
        for _, series in results.values():
            row.append(f"{series[index][0]:.2e}")
        rows.append(row)
    table = format_table(headers, rows)
    emit("fig13_ber_vs_distance", table)
    emit_bench_json(
        "fig13_ber_vs_distance",
        elapsed_seconds=elapsed,
        workers=WORKERS,
        results={
            "distances_m": DISTANCES_M,
            "frames_per_point": FRAMES_PER_POINT,
            "series": {
                label: {
                    "symbol_bits": bits,
                    "ber": [float(ber) for ber, _snr in series],
                    "video_snr_db": [float(snr) for _ber, snr in series],
                }
                for label, (bits, series) in results.items()
            },
        },
    )

    five_bit = next(series for bits, series in results.values() if bits == 5)
    seven_bit = next(series for bits, series in results.values() if bits == 7)
    # Headline: low BER out to 7 m at the paper's 5-bit configuration.
    assert five_bit[DISTANCES_M.index(7.0)][0] < 5e-3
    # BER grows with distance (comparing near to far).
    assert five_bit[-1][0] >= five_bit[0][0]
    # Higher data rates degrade earlier.
    assert seven_bit[DISTANCES_M.index(7.0)][0] > five_bit[DISTANCES_M.index(7.0)][0]
