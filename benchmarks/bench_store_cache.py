"""Experiment-store cache: cold vs warm sweep over a real BER engine.

The evaluation sweeps in Figs. 12-17 recompute every Monte-Carlo point
on every invocation.  With ``store=`` the sweep layer fingerprints each
point and serves repeats from the content-addressed cache — and because
PR 1 made every point a pure function of ``(work unit, root seed)``, the
warm run is provably bit-identical to the cold one.  This bench measures
that: a downlink-BER distance sweep run cold (everything computed, cache
populated), then warm (everything served from disk), asserting zero
evaluate calls on the warm pass, bitwise-equal values, and a wall-clock
win, then round-trips the series through the sweep artifact writer.
"""

import os
import time

from conftest import emit, emit_bench_json
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
from repro.sim.executor import ExecutionPlan, sweep_results_equal
from repro.sim.results import format_table
from repro.sim.sweep import sweep
from repro.store import ExperimentStore, load_sweep_result, save_sweep_result

DISTANCES_M = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
FRAMES_PER_POINT = 30
SYMBOLS_PER_FRAME = 12
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Evaluate-call counter, spied on by the warm-run assertion.  Module
#: global (not function state) so it stays out of the point fingerprint.
EVALUATE_CALLS = {"count": 0}


def _paper_alphabet():
    return CsskAlphabet.design(
        bandwidth_hz=1e9,
        decoder=DecoderDesign.from_inches(45.0),
        symbol_bits=5,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )


def evaluate_ber_at_distance(distance_m, stream):
    """One sweep point: Monte-Carlo downlink BER at ``distance_m``."""
    EVALUATE_CALLS["count"] += 1
    config = DownlinkTrialConfig(
        radar_config=XBAND_9GHZ,
        alphabet=_paper_alphabet(),
        distance_m=distance_m,
        num_frames=FRAMES_PER_POINT,
        payload_symbols_per_frame=SYMBOLS_PER_FRAME,
    )
    return run_downlink_trials(config, rng=stream).ber


def run_cold_and_warm(cache_dir):
    store = ExperimentStore(cache_dir)
    plan = ExecutionPlan(workers=WORKERS)

    EVALUATE_CALLS["count"] = 0
    started = time.perf_counter()
    cold = sweep(
        "ber vs distance", DISTANCES_M, evaluate_ber_at_distance,
        rng=42, execution=plan, store=store,
    )
    cold_seconds = time.perf_counter() - started
    cold_calls = EVALUATE_CALLS["count"]

    started = time.perf_counter()
    warm = sweep(
        "ber vs distance", DISTANCES_M, evaluate_ber_at_distance,
        rng=42, execution=plan, store=store,
    )
    warm_seconds = time.perf_counter() - started
    warm_calls = EVALUATE_CALLS["count"] - cold_calls

    return cold, warm, cold_seconds, warm_seconds, cold_calls, warm_calls


def test_store_cache_speedup(benchmark, tmp_path):
    cold, warm, cold_seconds, warm_seconds, cold_calls, warm_calls = (
        benchmark.pedantic(
            run_cold_and_warm, args=(tmp_path / "cache",), rounds=1, iterations=1
        )
    )

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    table = format_table(
        ["run", "seconds", "evaluate calls", "cache"],
        [
            ["cold", f"{cold_seconds:.3f}", str(cold_calls),
             f"{cold.metadata['_execution']['store']['misses']} misses"],
            ["warm", f"{warm_seconds:.3f}", str(warm_calls),
             f"{warm.metadata['_execution']['store']['hits']} hits"],
        ],
    )
    table += f"\nwarm-run speedup: {speedup:.0f}x over {len(DISTANCES_M)} points"
    emit("store_cache", table)
    emit_bench_json(
        "store_cache",
        elapsed_seconds=cold_seconds + warm_seconds,
        workers=WORKERS,
        results={
            "points": len(DISTANCES_M),
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
            "cold_evaluate_calls": cold_calls,
            "warm_evaluate_calls": warm_calls,
            "ber": [float(value) for value in warm.values],
        },
    )

    # The cache contract: warm == cold bitwise, with zero recomputation.
    assert sweep_results_equal(warm, cold)
    assert cold_calls == len(DISTANCES_M)
    assert warm_calls == 0
    # The point of the cache: the warm run skips all Monte-Carlo work.
    # (Wall-clock, but robust: disk reads vs ~seconds of DSP.)
    assert warm_seconds < cold_seconds

    # The artifact layer round-trips the series exactly.
    artifact = tmp_path / "sweep.json"
    save_sweep_result(artifact, warm)
    loaded = load_sweep_result(artifact)
    assert loaded.parameters == warm.parameters
    assert loaded.values == warm.values
