"""Robustness harness: impairment-severity sweeps -> degradation curves.

Runs full integrated ISAC frames (downlink + uplink + localization) at a
ladder of impairment severities and aggregates, per severity point:

* downlink / uplink BER (erased frames scored as bit errors),
* frame-erasure rate (fraction of frames with at least one recorded
  :class:`repro.core.isac.FrameErasure`),
* median absolute ranging error over the frames that localized,
* IF-correction fallback rate (low-confidence chirps substituted).

Determinism follows the executor contract: severity point ``p`` seeds an
independent :class:`~repro.utils.rng.SeedSpec` child, frame ``i`` inside
it draws from ``spec.stream(i)``, and a fresh session is used per frame —
no state crosses frame boundaries, so curves are bit-exact for any worker
count or chunking.  With ``store=`` each severity point is cached under a
fingerprint of (scenario, impairments, severity, frames, seed), so
re-running a sweep with one new severity recomputes only that point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.ber import random_bits
from repro.errors import SimulationError, StoreError
from repro.impair.spec import ImpairmentSpec
from repro.obs import runtime as _obs_runtime
from repro.sim.executor import ExecutionPlan, map_trials
from repro.sim.results import format_table
from repro.sim.scenario import Scenario
from repro.utils.rng import SeedSpec
from repro.utils.validation import ensure_positive


@dataclass
class RobustnessConfig:
    """Configuration for one degradation-curve sweep.

    Parameters
    ----------
    scenario:
        The geometry/link under test (radar, alphabet, tag, clutter).
    impairments:
        The fault bundle; each severity point applies
        ``impairments.at_severity(s)``, so members' configured severities
        act as relative weights.
    severities:
        The sweep ladder (values in [0, 1], typically starting at 0 so
        the curve anchors at the unimpaired baseline).
    num_frames:
        Monte-Carlo frames per severity point.
    downlink_bits / uplink_bits:
        Payload sizing per frame.
    if_confidence_threshold:
        Confidence gate for the last-good IF fallback (None = off).
    """

    scenario: Scenario
    impairments: ImpairmentSpec
    severities: "tuple[float, ...]" = (0.0, 0.25, 0.5, 0.75, 1.0)
    num_frames: int = 10
    downlink_bits: int = 10
    uplink_bits: int = 4
    if_confidence_threshold: float | None = None


@dataclass
class DegradationCurve:
    """One metric bundle per severity point, plus rendering helpers."""

    severities: "list[float]" = field(default_factory=list)
    downlink_ber: "list[float]" = field(default_factory=list)
    uplink_ber: "list[float]" = field(default_factory=list)
    erasure_rate: "list[float]" = field(default_factory=list)
    median_ranging_error_m: "list[float]" = field(default_factory=list)
    if_fallback_rate: "list[float]" = field(default_factory=list)
    localization_rate: "list[float]" = field(default_factory=list)

    def rows(self) -> "list[list[str]]":
        """Table rows for :func:`repro.sim.results.format_table`."""
        out = []
        for i, severity in enumerate(self.severities):
            ranging = self.median_ranging_error_m[i]
            # Curves loaded from pre-localization_rate cache records carry
            # NaN here; render it as unknown rather than 0%.
            localized = (
                self.localization_rate[i]
                if i < len(self.localization_rate)
                else float("nan")
            )
            out.append(
                [
                    f"{severity:.2f}",
                    f"{self.downlink_ber[i]:.3e}",
                    f"{self.uplink_ber[i]:.3e}",
                    f"{self.erasure_rate[i]:.2f}",
                    f"{ranging * 100:.2f}" if np.isfinite(ranging) else "-",
                    f"{localized:.2f}" if np.isfinite(localized) else "-",
                    f"{self.if_fallback_rate[i]:.2f}",
                ]
            )
        return out

    def to_markdown(self) -> str:
        """The degradation table (severity vs every metric)."""
        return format_table(
            [
                "severity",
                "DL BER",
                "UL BER",
                "erasures",
                "rng err (cm)",
                "localized",
                "IF fallback",
            ],
            self.rows(),
        )


def _point_payload_dict(metrics: "dict") -> "dict":
    return {
        key: (dict(value) if isinstance(value, dict) else float(value))
        for key, value in metrics.items()
    }


def _robustness_chunk(payload, spec: SeedSpec, indices) -> "list[tuple]":
    """One chunk of ISAC frames at a fixed severity.

    Returns per-frame tuples of
    ``(dl_errors, dl_bits, ul_errors, ul_bits, erased, ranging_error_m,
    fallback_chirps, total_chirps)``.  A fresh session per frame keeps
    frames independent, which is what makes the sweep bit-exact across
    worker counts.
    """
    (scenario, impairments, severity, downlink_bits, uplink_bits,
     if_confidence_threshold) = payload
    scaled = impairments.at_severity(severity)
    results = []
    for index in indices:
        stream = spec.stream(index)
        session = scenario.session(
            impairments=scaled,
            if_confidence_threshold=if_confidence_threshold,
        )
        downlink = random_bits(downlink_bits, rng=stream)
        uplink = random_bits(uplink_bits, rng=stream)
        result = session.run_frame(downlink, uplink, rng=stream, frame_index=index)
        ranging = (
            abs(result.localization.range_m - scenario.tag_range_m)
            if result.localization is not None
            else float("nan")
        )
        results.append(
            (
                int(result.downlink_bit_errors),
                int(result.downlink_bits_sent.size),
                int(result.uplink_bit_errors),
                int(result.uplink_bits_sent.size),
                int(bool(result.erasures)),
                float(ranging),
                len(result.if_fallback_chirps),
                len(result.frame),
            )
        )
    if _obs_runtime._enabled:
        obs.inc("robustness.frames", len(results))
        obs.inc("impair.frames.erased", sum(r[4] for r in results))
    return results


def _reduce_point(per_frame: "list[tuple]") -> "dict":
    dl_errors = sum(r[0] for r in per_frame)
    dl_bits = sum(r[1] for r in per_frame)
    ul_errors = sum(r[2] for r in per_frame)
    ul_bits = sum(r[3] for r in per_frame)
    erased = sum(r[4] for r in per_frame)
    rangings = [r[5] for r in per_frame if np.isfinite(r[5])]
    fallbacks = sum(r[6] for r in per_frame)
    chirps = sum(r[7] for r in per_frame)
    return {
        "downlink_ber": dl_errors / dl_bits if dl_bits else 0.0,
        "uplink_ber": ul_errors / ul_bits if ul_bits else 0.0,
        "erasure_rate": erased / len(per_frame) if per_frame else 0.0,
        "median_ranging_error_m": (
            float(np.median(rangings)) if rangings else float("nan")
        ),
        "if_fallback_rate": fallbacks / chirps if chirps else 0.0,
        # The median above is taken over localized frames only, so an
        # all-NaN point and a mostly-NaN point would otherwise be
        # indistinguishable — the rate says how much of the sample the
        # median actually covers.
        "localization_rate": (
            len(rangings) / len(per_frame) if per_frame else 0.0
        ),
    }


def run_robustness_sweep(
    config: RobustnessConfig,
    *,
    rng: "int | np.random.Generator | None" = 0,
    execution: ExecutionPlan | None = None,
    store=None,
    on_point=None,
    adaptive=None,
) -> DegradationCurve:
    """Sweep impairment severity and return the degradation curve.

    Severity point ``p`` runs ``config.num_frames`` independent ISAC
    frames under ``config.impairments.at_severity(severities[p])``; each
    point fans out over ``execution`` and caches through ``store``
    independently (incremental sweeps recompute only new points).

    ``on_point`` streams incremental completion: it is called with
    ``(point_index, severity, metrics_dict)`` as each severity point
    finishes (ladder order), exactly once per point, before the next
    point starts.  The returned curve is unchanged by the hook; the serve
    subsystem uses it to push partial degradation curves to subscribers.

    ``adaptive`` (an :class:`repro.sim.adaptive.AdaptiveConfig`) switches
    every severity point to CI-driven sequential stopping on its
    *downlink* BER: ``config.num_frames`` is ignored and each point runs
    index-keyed rounds until the interval is tight enough or
    ``adaptive.max_frames`` frames ran.  Frame seeds are unchanged, and
    the stopping rule joins each point's store fingerprint.
    """
    if config.num_frames < 1:
        raise SimulationError(f"num_frames must be >= 1, got {config.num_frames}")
    if not config.severities:
        raise SimulationError("severities must be non-empty")
    for severity in config.severities:
        if not 0.0 <= severity <= 1.0:
            raise SimulationError(f"severities must be in [0, 1], got {severity}")
    ensure_positive("downlink_bits", config.downlink_bits)
    ensure_positive("uplink_bits", config.uplink_bits)

    root = SeedSpec.from_rng(rng)
    curve = DegradationCurve()
    for point_index, severity in enumerate(config.severities):
        spec = root.child(point_index)
        metrics = _run_point(config, severity, spec, execution, store, adaptive)
        if on_point is not None:
            on_point(point_index, float(severity), dict(metrics))
        curve.severities.append(float(severity))
        curve.downlink_ber.append(metrics["downlink_ber"])
        curve.uplink_ber.append(metrics["uplink_ber"])
        curve.erasure_rate.append(metrics["erasure_rate"])
        curve.median_ranging_error_m.append(metrics["median_ranging_error_m"])
        curve.if_fallback_rate.append(metrics["if_fallback_rate"])
        curve.localization_rate.append(
            metrics.get("localization_rate", float("nan"))
        )
        if _obs_runtime._enabled:
            obs.log(
                "robustness.point.done",
                severity=severity,
                downlink_ber=metrics["downlink_ber"],
                erasure_rate=metrics["erasure_rate"],
            )
    return curve


def _store_lookup_point(store, work_unit):
    if store is None:
        return None, None
    from repro.store.fingerprint import fingerprint

    try:
        work_fingerprint = fingerprint("robustness-point", work_unit)
    except StoreError:
        return None, None
    return work_fingerprint, store.get(work_fingerprint)


def _replay_robustness_point(payload) -> "dict":
    """Recompute a cached severity point (``repro cache verify`` hook)."""
    config, severity, spec = payload
    return _point_payload_dict(_run_point(config, severity, spec, None, None, None))


def _replay_robustness_point_adaptive(payload) -> "dict":
    """Recompute a cached adaptive severity point (``repro cache verify``)."""
    config, severity, spec, adaptive = payload
    return _point_payload_dict(
        _run_point(config, severity, spec, None, None, adaptive)
    )


def robustness_point_work_unit(
    config: RobustnessConfig, severity: float, spec: SeedSpec, adaptive=None
) -> "dict":
    """The canonical work unit one severity point is fingerprinted over.

    Public so other layers (the serve scheduler's in-flight dedup) can
    derive the exact key ``_run_point`` will store the result under.
    The ``adaptive`` stopping rule joins the unit only when set, so every
    pre-existing fixed-budget fingerprint (and the warm caches built on
    them) is untouched.
    """
    work_unit = {
        "scenario": config.scenario,
        "impairments": config.impairments,
        "severity": float(severity),
        "num_frames": int(config.num_frames),
        "downlink_bits": int(config.downlink_bits),
        "uplink_bits": int(config.uplink_bits),
        "if_confidence_threshold": config.if_confidence_threshold,
        "seed": spec,
    }
    if adaptive is not None:
        work_unit["adaptive"] = adaptive
    return work_unit


def run_robustness_point(
    config: RobustnessConfig,
    severity: float,
    spec: SeedSpec,
    *,
    execution: "ExecutionPlan | None" = None,
    store=None,
    adaptive=None,
) -> "dict":
    """Compute one severity point's metrics dict.

    ``run_robustness_sweep`` computes point ``p`` as exactly
    ``run_robustness_point(config, severities[p], root.child(p))`` — this
    public form lets a job server schedule, dedup, and stream severity
    points individually while staying bit-identical to the batch sweep.
    """
    return _run_point(config, severity, spec, execution, store, adaptive)


def _run_point(
    config: RobustnessConfig,
    severity: float,
    spec: SeedSpec,
    execution: "ExecutionPlan | None",
    store,
    adaptive=None,
) -> "dict":
    """One severity point: store probe, Monte-Carlo, store fill."""
    work_unit = robustness_point_work_unit(config, severity, spec, adaptive)
    work_fingerprint, record = _store_lookup_point(store, work_unit)
    if record is not None:
        metrics = dict(record["payload"])
        # Records written before the metric existed stay loadable; NaN
        # marks "not recorded" (vs a real 0.0 = never localized).
        metrics.setdefault("localization_rate", float("nan"))
        return metrics

    payload = (
        config.scenario, config.impairments, severity,
        config.downlink_bits, config.uplink_bits,
        config.if_confidence_threshold,
    )
    if adaptive is not None:
        from repro.sim.adaptive import run_adaptive_trials

        with obs.span(
            "robustness.point",
            severity=severity,
            max_frames=adaptive.max_frames,
            adaptive=True,
        ):
            # The stopping statistic is the downlink BER — the metric the
            # degradation curve resolves error floors on.
            outcome = run_adaptive_trials(
                _robustness_chunk,
                payload,
                adaptive,
                spec,
                execution,
                counts=lambda frame: (frame[0], frame[1]),
            )
        per_frame = outcome.per_trial
        metrics = _reduce_point(per_frame)
        metrics["adaptive"] = outcome.summary()
    else:
        with obs.span(
            "robustness.point", severity=severity, frames=config.num_frames
        ):
            per_frame, _report = map_trials(
                _robustness_chunk, payload, config.num_frames, spec, execution
            )
        metrics = _reduce_point(per_frame)
    if work_fingerprint is not None:
        from repro.sim.engine import _store_put

        if adaptive is None:
            replay_entry = "repro.sim.robustness:_replay_robustness_point"
            replay_payload = (config, severity, spec)
        else:
            replay_entry = "repro.sim.robustness:_replay_robustness_point_adaptive"
            replay_payload = (config, severity, spec, adaptive)
        _store_put(
            store,
            work_fingerprint,
            "robustness-point",
            _point_payload_dict(metrics),
            replay_entry=replay_entry,
            replay_payload=replay_payload,
        )
    return metrics
