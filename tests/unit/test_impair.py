"""Impairment models and specs: the severity-0 contract, determinism,
parsing, and fingerprint identity."""

import numpy as np
import pytest

from repro.core.ber import random_bits
from repro.errors import ImpairmentError
from repro.impair import (
    AdcSaturation,
    ChirpLoss,
    ClockDrift,
    IMPAIRMENT_NAMES,
    ImpairmentSpec,
    ImpulsiveNoise,
    InterferenceBurst,
)
from repro.sim.scenario import default_office_scenario

ALL_MODELS = [AdcSaturation, ChirpLoss, ClockDrift, ImpulsiveNoise, InterferenceBurst]


def rng_state(generator):
    return repr(generator.bit_generator.state)


@pytest.fixture()
def stream():
    return np.random.default_rng(3).normal(0.0, 1.0, 4096)


@pytest.fixture()
def chirps():
    generator = np.random.default_rng(4)
    return [
        (generator.normal(size=256) + 1j * generator.normal(size=256))
        for _ in range(8)
    ]


class TestSeverityZeroContract:
    """Severity 0 must be *free*: same object out, zero RNG draws."""

    @pytest.mark.parametrize("model_type", ALL_MODELS)
    def test_stream_identity_and_no_draws(self, model_type, stream):
        model = model_type(severity=0.0)
        generator = np.random.default_rng(0)
        before = rng_state(generator)
        out = model.apply_stream(stream, 1e6, generator)
        assert out is stream
        assert rng_state(generator) == before

    @pytest.mark.parametrize("model_type", ALL_MODELS)
    def test_chirps_identity_and_no_draws(self, model_type, chirps):
        model = model_type(severity=0.0)
        generator = np.random.default_rng(0)
        before = rng_state(generator)
        out = model.apply_chirps(chirps, 1e6, generator)
        assert out is chirps
        assert rng_state(generator) == before

    def test_inactive_spec_returns_same_capture(self):
        from repro.tag.frontend import TagCapture

        spec = ImpairmentSpec.parse("interference:0,loss:0,impulse:0")
        assert not spec.active
        capture = TagCapture(samples=np.ones(100), sample_rate_hz=1e6)
        generator = np.random.default_rng(0)
        before = rng_state(generator)
        assert spec.apply_to_capture(capture, rng=generator) is capture
        assert rng_state(generator) == before

    def test_severity_zero_session_bit_identical(self):
        """The full-session check: a severity-0 spec on the session is
        bit-identical to no impairments at all (the hooks are free)."""
        scenario = default_office_scenario(tag_range_m=2.0)
        spec = ImpairmentSpec.parse(
            "interference:0.8,drift:0.5,clip:0.6,loss:0.5,impulse:0.5"
        ).at_severity(0.0)
        downlink, uplink = random_bits(10, rng=1), random_bits(4, rng=2)
        clean = scenario.session().run_frame(downlink, uplink, rng=5)
        impaired = scenario.session(impairments=spec).run_frame(
            downlink, uplink, rng=5
        )
        assert np.array_equal(
            clean.downlink_bits_decoded, impaired.downlink_bits_decoded
        )
        assert np.array_equal(clean.uplink.bits, impaired.uplink.bits)
        assert clean.localization.range_m == impaired.localization.range_m
        assert impaired.erasures == ()


class TestDeterminism:
    @pytest.mark.parametrize("model_type", ALL_MODELS)
    def test_same_seed_same_output(self, model_type, stream, chirps):
        model = model_type(severity=0.7)
        out_a = model.apply_stream(stream, 1e6, np.random.default_rng(9))
        out_b = model.apply_stream(stream, 1e6, np.random.default_rng(9))
        assert np.array_equal(out_a, out_b)
        chirps_a = model.apply_chirps(chirps, 1e6, np.random.default_rng(9))
        chirps_b = model.apply_chirps(chirps, 1e6, np.random.default_rng(9))
        for a, b in zip(chirps_a, chirps_b):
            assert np.array_equal(a, b)

    def test_spec_applies_members_in_order(self, stream):
        """Member order changes the RNG consumption order, hence output."""
        a = ImpairmentSpec((InterferenceBurst(severity=0.5), ImpulsiveNoise(severity=0.5)))
        b = ImpairmentSpec((ImpulsiveNoise(severity=0.5), InterferenceBurst(severity=0.5)))
        from repro.tag.frontend import TagCapture

        capture = TagCapture(samples=stream, sample_rate_hz=1e6)
        out_a = a.apply_to_capture(capture, rng=np.random.default_rng(1))
        out_b = b.apply_to_capture(capture, rng=np.random.default_rng(1))
        assert not np.array_equal(out_a.samples, out_b.samples)


class TestModels:
    def test_clock_drift_offset_scales_with_severity(self):
        drift = ClockDrift(severity=0.25, max_offset_ppm=200.0)
        assert drift.offset_ppm == pytest.approx(50.0)
        assert ClockDrift(severity=0.0).offset_ppm == 0.0

    def test_adc_saturation_clips_peak_deterministically(self, stream):
        model = AdcSaturation(severity=1.0, max_backoff_db=20.0)
        out = model.apply_stream(stream, 1e6, np.random.default_rng(0))
        peak = np.max(np.abs(stream))
        # Full scale sits 20 dB under the input peak; allow half an LSB.
        assert np.max(np.abs(out)) <= peak * 10 ** (-20 / 20) * 1.01
        again = model.apply_stream(stream, 1e6, np.random.default_rng(99))
        assert np.array_equal(out, again)  # no RNG dependence at all

    def test_chirp_loss_full_severity_zeroes_all_chirps(self, chirps):
        model = ChirpLoss(severity=1.0, max_loss_fraction=1.0)
        out = model.apply_chirps(chirps, 1e6, np.random.default_rng(0))
        assert all(np.all(chirp == 0) for chirp in out)
        assert [chirp.size for chirp in out] == [chirp.size for chirp in chirps]

    def test_chirp_truncation_keeps_head(self, chirps):
        model = ChirpLoss(
            severity=1.0, max_loss_fraction=1.0, truncate_fraction=0.5
        )
        out = model.apply_chirps(chirps, 1e6, np.random.default_rng(0))
        for original, truncated in zip(chirps, out):
            keep = int(round(0.5 * original.size))
            assert np.array_equal(truncated[:keep], original[:keep])
            assert np.all(truncated[keep:] == 0)

    def test_impulsive_noise_is_sparse_and_heavy(self, stream):
        model = ImpulsiveNoise(
            severity=1.0, impulse_probability=0.01, impulse_power_db=20.0
        )
        out = model.apply_stream(stream, 1e6, np.random.default_rng(0))
        delta = out - stream
        hit = np.count_nonzero(delta)
        assert 0 < hit < 0.05 * stream.size  # sparse
        assert np.max(np.abs(delta)) > 3 * np.std(stream)  # heavy

    def test_interference_burst_raises_stream_power(self, stream):
        model = InterferenceBurst(severity=1.0, power_ratio_db=10.0)
        out = model.apply_stream(stream, 1e6, np.random.default_rng(0))
        assert np.mean(out**2) > np.mean(stream**2)
        assert out.shape == stream.shape

    @pytest.mark.parametrize("model_type", ALL_MODELS)
    def test_severity_out_of_range_rejected(self, model_type):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            model_type(severity=1.5)
        with pytest.raises(ConfigurationError):
            model_type(severity=-0.1)


class TestSpec:
    def test_parse_round_trips_through_describe(self):
        text = "interference:0.5,drift:0.25,clip,loss:0.3,impulse:0.1"
        spec = ImpairmentSpec.parse(text)
        assert spec.describe() == "interference:0.5,drift:0.25,clip:1,loss:0.3,impulse:0.1"
        again = ImpairmentSpec.parse(spec.describe())
        assert again == spec

    def test_parse_none_and_empty(self):
        assert ImpairmentSpec.parse(None) == ImpairmentSpec()
        assert ImpairmentSpec.parse("  ") == ImpairmentSpec()
        assert not ImpairmentSpec().active
        assert ImpairmentSpec().describe() == "(none)"

    def test_parse_unknown_name(self):
        with pytest.raises(ImpairmentError, match="unknown impairment"):
            ImpairmentSpec.parse("jammer")

    def test_parse_bad_severity(self):
        with pytest.raises(ImpairmentError, match="bad severity"):
            ImpairmentSpec.parse("drift:high")
        with pytest.raises(ImpairmentError, match="must be in"):
            ImpairmentSpec.parse("drift:2")

    def test_non_impairment_entry_rejected(self):
        with pytest.raises(ImpairmentError):
            ImpairmentSpec(("drift",))

    def test_at_severity_scales_relative_weights(self):
        spec = ImpairmentSpec.parse("drift:0.8,impulse:0.5")
        scaled = spec.at_severity(0.5)
        assert scaled.impairments[0].severity == pytest.approx(0.4)
        assert scaled.impairments[1].severity == pytest.approx(0.25)
        with pytest.raises(ImpairmentError):
            spec.at_severity(1.5)

    def test_clock_offset_sums_drift_members(self):
        spec = ImpairmentSpec(
            (ClockDrift(severity=0.5, max_offset_ppm=100.0),
             ClockDrift(severity=1.0, max_offset_ppm=20.0),
             ImpulsiveNoise(severity=0.5))
        )
        assert spec.clock_offset_ppm() == pytest.approx(70.0)

    def test_all_cli_names_construct(self):
        for name in IMPAIRMENT_NAMES:
            spec = ImpairmentSpec.parse(name)
            assert len(spec.impairments) == 1
            assert spec.active


class TestFingerprints:
    def test_severity_changes_fingerprint(self):
        assert (
            ImpulsiveNoise(severity=0.5).fingerprint()
            != ImpulsiveNoise(severity=0.6).fingerprint()
        )

    def test_spec_fingerprint_is_order_sensitive(self):
        a = ImpairmentSpec((InterferenceBurst(), ImpulsiveNoise()))
        b = ImpairmentSpec((ImpulsiveNoise(), InterferenceBurst()))
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == ImpairmentSpec(
            (InterferenceBurst(), ImpulsiveNoise())
        ).fingerprint()


class TestInjectionObservability:
    def test_counters_emitted_when_enabled(self, tmp_path):
        from repro import obs
        from repro.tag.frontend import TagCapture

        obs.configure(log_format="console", log_file=str(tmp_path / "log"),
                      export_env=False)
        try:
            spec = ImpairmentSpec.parse("impulse:1")
            capture = TagCapture(
                samples=np.random.default_rng(0).normal(size=1000),
                sample_rate_hz=1e6,
            )
            spec.apply_to_capture(capture, rng=np.random.default_rng(1))
            counters = obs.snapshot()["counters"]
            assert counters.get("impair.applied.impulsivenoise", 0) >= 1
        finally:
            obs.reset()
