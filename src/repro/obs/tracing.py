"""Lightweight spans exported as Chrome ``trace_event`` JSON.

``with span("pool.chunk", chunk=3):`` measures a region and appends one
complete (``ph: "X"``) trace event to the run's trace file; spans nest
naturally — Chrome/Perfetto reconstruct the hierarchy from the ``ts`` /
``dur`` overlap per (pid, tid) track, so worker-process spans land on
their own tracks automatically.  :func:`instant` marks point events
(retries, rebuilds, cache hits) on the same timeline.

The live file (``<REPRO_TRACE_DIR>/trace_<run-id>.json``) uses the
Chrome *JSON Array Format* in streaming form: a ``[`` header, then one
event object per line, each appended with a single ``O_APPEND`` write so
concurrent processes interleave whole events.  Chrome explicitly accepts
a missing closing ``]``, so the live file is loadable as-is in
``about:tracing``; ``repro obs export`` (:func:`export_run`) rewrites it
into strict ``{"traceEvents": [...]}`` JSON with the run's metrics
snapshot attached.

Timestamps are wall-clock microseconds (``time.time() * 1e6``) so events
from different processes share one timeline; durations are measured with
``perf_counter`` in the emitting process.  Wall clock is telemetry only —
nothing here flows into results or fingerprints.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from typing import Any

from repro.obs import runtime

#: Open append-mode descriptor for the current trace file (lazy).
_trace_fd: "tuple[str, int] | None" = None
_trace_lock = threading.Lock()


def _reset() -> None:
    global _trace_fd
    if _trace_fd is not None:
        try:
            os.close(_trace_fd[1])
        except OSError:
            pass
    _trace_fd = None


def trace_path(
    trace_dir: "str | os.PathLike[str] | None" = None,
    run_id: "str | None" = None,
) -> "pathlib.Path | None":
    """Where the current (or named) run's trace file lives."""
    directory = trace_dir if trace_dir is not None else runtime.trace_dir()
    run = run_id if run_id is not None else runtime.run_id()
    if directory is None or run is None:
        return None
    return pathlib.Path(directory) / f"trace_{run}.json"


def ensure_trace_file() -> "pathlib.Path | None":
    """Create the run's trace file (with its ``[`` header) if needed.

    Called by :func:`repro.obs.runtime.configure` callers *before* any
    workers spawn, so the existence check below never races across
    processes in practice; a late double header would still be tolerated
    by :func:`read_trace_events`.
    """
    path = trace_path()
    if path is None:
        return None
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        if not path.exists() or path.stat().st_size == 0:
            with open(path, "a", encoding="utf-8") as handle:
                if handle.tell() == 0:
                    handle.write("[\n")
    except OSError:
        return None
    return path


def _descriptor() -> "int | None":
    global _trace_fd
    path = trace_path()
    if path is None:
        return None
    key = str(path)
    if _trace_fd is not None and _trace_fd[0] == key:
        return _trace_fd[1]
    with _trace_lock:
        if _trace_fd is not None and _trace_fd[0] == key:
            return _trace_fd[1]
        _reset()
        if ensure_trace_file() is None:
            return None
        try:
            fd = os.open(key, os.O_WRONLY | os.O_APPEND)
        except OSError:
            return None
        _trace_fd = (key, fd)
        return fd


def _write_event(event: "dict[str, Any]") -> None:
    fd = _descriptor()
    if fd is None:
        return
    try:
        os.write(fd, (json.dumps(event, default=str) + ",\n").encode("utf-8"))
    except OSError:
        pass


class _Span:
    """One active span; records an ``X`` event when the block exits."""

    __slots__ = ("name", "args", "_wall_us", "_start")

    def __init__(self, name: str, args: "dict[str, Any]"):
        self.name = name
        self.args = args
        self._wall_us = 0.0
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._wall_us = time.time() * 1e6
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration_us = (time.perf_counter() - self._start) * 1e6
        args = dict(self.args)
        if exc_type is not None:
            args["error"] = exc_type.__name__
        _write_event(
            {
                "name": self.name,
                "ph": "X",
                "ts": self._wall_us,
                "dur": duration_us,
                "pid": os.getpid(),
                "tid": threading.get_ident() % 2**31,
                "args": args,
            }
        )


class _NullSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, **args: Any):
    """A context manager timing one region (no-op unless tracing is on)."""
    if not runtime._enabled or runtime.trace_dir() is None:
        return _NULL_SPAN
    return _Span(name, args)


def instant(name: str, **args: Any) -> None:
    """Mark a point event on the trace timeline (no-op unless tracing is on)."""
    if not runtime._enabled or runtime.trace_dir() is None:
        return
    _write_event(
        {
            "name": name,
            "ph": "i",
            "s": "p",
            "ts": time.time() * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident() % 2**31,
            "args": args,
        }
    )


# -- export ------------------------------------------------------------------


def read_trace_events(path: "str | os.PathLike[str]") -> "list[dict[str, Any]]":
    """Parse a live trace file back into a list of event dicts.

    Tolerates the streaming artifacts: header lines, trailing commas,
    and (from a writer killed mid-``write``) a torn final line, which is
    skipped rather than raised.
    """
    events: "list[dict[str, Any]]" = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            text = line.strip().rstrip(",")
            if not text or text in ("[", "]"):
                continue
            try:
                events.append(json.loads(text))
            except ValueError:
                continue
    return events


def metrics_snapshot_path(
    trace_dir: "str | os.PathLike[str]", run_id: str
) -> pathlib.Path:
    """Where a run's end-of-process metrics snapshot lives."""
    return pathlib.Path(trace_dir) / f"metrics_{run_id}.json"


def write_metrics_snapshot(
    trace_dir: "str | os.PathLike[str] | None" = None,
    run_id: "str | None" = None,
    snapshot: "dict[str, Any] | None" = None,
) -> "pathlib.Path | None":
    """Persist the current metrics registry next to the run's trace file."""
    from repro.obs import metrics

    directory = trace_dir if trace_dir is not None else runtime.trace_dir()
    run = run_id if run_id is not None else runtime.run_id()
    if directory is None or run is None:
        return None
    path = metrics_snapshot_path(directory, run)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = snapshot if snapshot is not None else metrics.snapshot()
    path.write_text(json.dumps({"run": run, "metrics": data}, indent=2, sort_keys=True))
    return path


def list_runs(trace_dir: "str | os.PathLike[str]") -> "list[str]":
    """Run ids with a trace file in ``trace_dir``, oldest first by mtime."""
    directory = pathlib.Path(trace_dir)
    if not directory.is_dir():
        return []
    traces = sorted(
        directory.glob("trace_*.json"), key=lambda p: (p.stat().st_mtime, p.name)
    )
    return [p.stem[len("trace_"):] for p in traces]


def export_run(
    trace_dir: "str | os.PathLike[str]",
    run_id: "str | None" = None,
    out: "str | os.PathLike[str] | None" = None,
) -> pathlib.Path:
    """Finalize one run into a strict Chrome-trace JSON export.

    ``run_id=None`` picks the most recent run in ``trace_dir``.  The
    export carries ``traceEvents`` plus the run's metrics snapshot (when
    one was written) under ``metrics``; the result loads directly in
    ``about:tracing`` / Perfetto.
    """
    if run_id is None:
        runs = list_runs(trace_dir)
        if not runs:
            raise FileNotFoundError(f"no trace files under {trace_dir}")
        run_id = runs[-1]
    source = pathlib.Path(trace_dir) / f"trace_{run_id}.json"
    if not source.exists():
        raise FileNotFoundError(f"no trace file for run {run_id!r} under {trace_dir}")
    events = read_trace_events(source)
    export: "dict[str, Any]" = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"run": run_id},
    }
    snapshot_path = metrics_snapshot_path(trace_dir, run_id)
    if snapshot_path.exists():
        try:
            export["metrics"] = json.loads(snapshot_path.read_text())["metrics"]
        except (OSError, ValueError, KeyError):
            pass
    target = (
        pathlib.Path(out)
        if out is not None
        else pathlib.Path(trace_dir) / f"export_{run_id}.json"
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(export, indent=2, sort_keys=True, default=str))
    return target
