"""Shared fixtures: small, fast configurations reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.link_budget import DownlinkBudget
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.core.packet import PacketFields
from repro.radar.config import XBAND_9GHZ, TINYRAD_24GHZ
from repro.sim.scenario import default_office_scenario


@pytest.fixture(scope="session")
def decoder_design() -> DecoderDesign:
    """The paper's 45-inch delay-line difference."""
    return DecoderDesign.from_inches(45.0)


@pytest.fixture(scope="session")
def alphabet(decoder_design) -> CsskAlphabet:
    """Paper-default alphabet: 5-bit symbols, 1 GHz, 120 us period."""
    return CsskAlphabet.design(
        bandwidth_hz=1.0e9,
        decoder=decoder_design,
        symbol_bits=5,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )


@pytest.fixture(scope="session")
def small_alphabet(decoder_design) -> CsskAlphabet:
    """2-bit alphabet for fast end-to-end tests."""
    return CsskAlphabet.design(
        bandwidth_hz=1.0e9,
        decoder=decoder_design,
        symbol_bits=2,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )


@pytest.fixture(scope="session")
def budget() -> DownlinkBudget:
    """Default 9 GHz downlink budget."""
    return DownlinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
    )


@pytest.fixture(scope="session")
def fields() -> PacketFields:
    """Default packet preamble sizing."""
    return PacketFields()


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def office_scenario():
    """One shared paper-default scenario (read-only in tests)."""
    return default_office_scenario(tag_range_m=3.0)


@pytest.fixture(scope="session")
def xband():
    return XBAND_9GHZ


@pytest.fixture(scope="session")
def tinyrad():
    return TINYRAD_24GHZ
