#!/usr/bin/env python3
"""Warehouse drone: the paper's motivating scenario (Fig. 1).

A radar-equipped drone flies down a warehouse aisle at constant speed,
using its FMCW radar for obstacle sensing while simultaneously talking to
a passive asset tag on the shelving: every half second it localizes the
tag, reads its asset report (uplink), and writes an updated check-in epoch
to it (downlink) — all without interrupting sensing.  A shelf briefly
occludes the tag mid-pass; the track coasts through on its fused
range-rate and re-locks on the next hop.

Geometry: the drone passes the tag at 1.5 m lateral offset at 2 m/s, so
the radar-tag range follows ``sqrt(1.5^2 + (2 t)^2)`` — the smooth V-shape
a real fly-by produces.

Run:  python examples/warehouse_drone.py
"""

import numpy as np

from repro.channel.multipath import Clutter, ClutterReflector
from repro.core.ber import bit_error_rate, random_bits
from repro.core.tracking import TagMeasurement, TrackManager
from repro.sim.scenario import default_office_scenario

LATERAL_OFFSET_M = 1.5
DRONE_SPEED_M_S = 2.0
HOP_INTERVAL_S = 0.5
NUM_HOPS = 13  # t = -3 s .. +3 s around the closest approach
OCCLUDED_HOP = 8  # a shelf blocks line of sight on the way out


def shelving_clutter() -> Clutter:
    """Rows of metal shelving: strong static reflectors every ~1.8 m."""
    reflectors = tuple(
        ClutterReflector(range_m=1.8 * k + 0.9, rcs_m2=2.0, angle_deg=(-1) ** k * 18.0)
        for k in range(1, 6)
    )
    return Clutter(reflectors=reflectors, diffuse_rcs_density_m2_per_m=1e-4)


def flyby_range_and_rate(hop: int) -> tuple[float, float]:
    """True range and radial velocity at a hop of the constant-speed pass."""
    t = (hop - (NUM_HOPS - 1) / 2) * HOP_INTERVAL_S
    along_track = DRONE_SPEED_M_S * t
    range_m = float(np.hypot(LATERAL_OFFSET_M, along_track))
    radial = DRONE_SPEED_M_S * along_track / range_m if range_m > 0 else 0.0
    return range_m, float(radial)


def main() -> None:
    print("Warehouse drone fly-by")
    print("======================")
    asset_report = random_bits(8, rng=11)  # what the tag wants to say
    epochs_written = []
    truths = []
    track_errors = []
    tracker = TrackManager(
        tracker_kwargs={"gate_range_m": 1.5, "alpha": 0.8, "beta": 0.5}
    )

    for hop in range(NUM_HOPS):
        t = hop * HOP_INTERVAL_S
        distance, radial = flyby_range_and_rate(hop)
        truths.append(distance)
        if hop == OCCLUDED_HOP:
            state = tracker.observe(0, None, t)
            track_errors.append(abs(state.range_m - distance))
            print(
                f"hop {hop:2d}: true {distance:5.2f} m | OCCLUDED"
                f"{'':21s}| track coasts to {state.range_m:5.2f} m "
                f"(err {abs(state.range_m - distance) * 100:4.0f} cm)"
            )
            continue
        scenario = default_office_scenario(tag_range_m=distance, with_clutter=False)
        scenario = type(scenario)(
            radar_config=scenario.radar_config,
            alphabet=scenario.alphabet,
            tag=scenario.tag,
            tag_range_m=distance,
            tag_velocity_m_s=radial,  # relative motion of the pass
            clutter=shelving_clutter(),
        )
        session = scenario.session()
        epoch_bits = np.array(
            [(hop >> shift) & 1 for shift in range(9, -1, -1)], dtype=np.uint8
        )
        result = session.run_frame(epoch_bits, asset_report, rng=100 + hop)
        downlink_ok = bit_error_rate(epoch_bits, result.downlink_bits_decoded) == 0.0
        uplink_ok = bit_error_rate(asset_report, result.uplink.bits) == 0.0
        state = tracker.observe(
            0,
            TagMeasurement(
                time_s=t,
                range_m=result.localization.range_m,
                radial_velocity_m_s=result.estimated_velocity_m_s,
            ),
            t,
        )
        track_errors.append(abs(state.range_m - distance))
        if downlink_ok:
            epochs_written.append(hop)
        print(
            f"hop {hop:2d}: true {distance:5.2f} m | "
            f"measured {result.localization.range_m:5.2f} m, "
            f"v {result.estimated_velocity_m_s:+5.2f} m/s | "
            f"track {state.range_m:5.2f} m | "
            f"uplink {'ok ' if uplink_ok else 'ERR'} | "
            f"write {'ok' if downlink_ok else 'ERR'}"
        )

    closest_hop = int(np.argmin(truths))
    print(f"\nclosest approach at hop {closest_hop} "
          f"({truths[closest_hop]:.2f} m truth)")
    print(f"epochs written: {epochs_written}")
    print(f"worst track error (incl. the occluded coast): "
          f"{max(track_errors) * 100:.0f} cm")
    expected_writes = [h for h in range(NUM_HOPS) if h != OCCLUDED_HOP]
    assert epochs_written == expected_writes, "every line-of-sight write lands"
    assert max(track_errors) < 0.6, "track holds through the occlusion"
    print("\nOK: asset tracked through an occlusion, read, and reconfigured "
          "during a sensing pass.")


if __name__ == "__main__":
    main()
