"""Table 1 — state-of-the-art radar backscatter system comparison.

Regenerates the paper's capability matrix from the four implemented system
models, and quantifies the structural differences the prose argues:
MilBack's handshake overhead and dual-waveform airtime split versus
BiScatter's handshake-free integrated waveform.
"""

from conftest import emit
from repro.baselines import (
    BiScatterSystem,
    MilBackSystem,
    MillimetroSystem,
    MmTagSystem,
)
from repro.baselines.base import TABLE1_COLUMNS
from repro.sim.results import format_table


def build_comparison(paper_alphabet):
    systems = [
        MillimetroSystem.capabilities(),
        MmTagSystem.capabilities(),
        MilBackSystem.capabilities(),
        BiScatterSystem.capabilities(),
    ]
    matrix = [caps.as_row() for caps in systems]

    milback = MilBackSystem(downlink_rate_bps=paper_alphabet.data_rate_bps())
    biscatter = BiScatterSystem(alphabet=paper_alphabet)
    session_s = 100e-3
    throughput = {
        "MilBack": milback.effective_throughput_bps(session_s),
        "BiScatter": biscatter.effective_throughput_bps(session_s),
    }
    overhead = {
        "MilBack": milback.handshake_overhead_s(),
        "BiScatter": biscatter.handshake_overhead_s(),
    }
    return matrix, throughput, overhead


def test_table1_features(benchmark, paper_alphabet):
    matrix, throughput, overhead = benchmark.pedantic(
        build_comparison, args=(paper_alphabet,), rounds=1, iterations=1
    )
    table = format_table(TABLE1_COLUMNS, matrix)
    table += (
        "\n\nstructural comparison over a 100 ms two-way session "
        "(equal nominal data rate):\n"
    )
    table += format_table(
        ["system", "handshake (ms)", "downlink goodput (kbps)"],
        [
            [name, f"{overhead[name] * 1e3:.1f}", f"{throughput[name] / 1e3:.1f}"]
            for name in ("MilBack", "BiScatter")
        ],
    )
    emit("table1_features", table)

    # The matrix must match the paper's Table 1 exactly.
    expected = {
        "Millimetro": ["no", "no", "yes", "no", "yes"],
        "mmTag": ["yes", "no", "no", "no", "yes"],
        "MilBack": ["yes", "yes", "yes", "no", "no"],
        "BiScatter (this work)": ["yes", "yes", "yes", "yes", "yes"],
    }
    for row in matrix:
        assert row[1:] == expected[row[0]], row[0]
    # And the structural advantages must be measurable.
    assert overhead["BiScatter"] == 0.0
    assert overhead["MilBack"] > 0.0
    assert throughput["BiScatter"] > throughput["MilBack"]
