"""Setup shim for legacy editable installs (offline env without wheel)."""

from setuptools import setup

setup()
