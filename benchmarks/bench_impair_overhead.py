"""Impairment-hook overhead: the inactive path must be (near) free.

The signal-chain fault-injection layer (:mod:`repro.impair`) threads an
optional :class:`~repro.impair.spec.ImpairmentSpec` through every Monte-
Carlo hot loop — the downlink engine per trial, the ISAC session per
frame.  The design promise (DESIGN.md §6) is that an *inactive* spec
(every member at severity 0) costs one ``active`` property check and
returns every stream object unchanged, so unimpaired runs pay nothing
for the hooks' existence.  This bench holds that promise to a number:

1. run a fig12-style downlink-BER sweep with no spec at all, then the
   same sweep with an all-severity-0 spec attached, and check the
   values are bit-identical (severity 0 is the unimpaired baseline);
2. microbench the *inactive* per-call cost of each hook
   (``active`` / ``apply_to_capture`` / ``clock_offset_ppm``);
3. bound the inactive overhead: (hook sites the sweep traverses) x
   (inactive per-call cost) must stay under 2% of the sweep's
   wall-clock.
"""

import time

import numpy as np

from conftest import emit, emit_bench_json
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.impair import ImpairmentSpec
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
from repro.sim.executor import ExecutionPlan
from repro.sim.results import format_table
from repro.sim.sweep import sweep
from repro.tag.frontend import TagCapture

SNRS_DB = [4.0, 6.0, 8.0, 10.0, 12.0]
FRAMES_PER_POINT = 12
SYMBOLS_PER_FRAME = 10
MICROBENCH_CALLS = 200_000
MAX_INACTIVE_OVERHEAD = 0.02

#: The CLI's default fault bundle, scaled to zero: structurally the
#: worst case (all five models present) while contractually inert.
ZERO_SPEC = ImpairmentSpec.parse(
    "interference:0.6,drift:0.4,clip:0.5,loss:0.4,impulse:0.5"
).at_severity(0.0)

#: Hook sites per trial (the ``active`` guard, the clock-offset query,
#: the capture hook) scaled by a generous factor to cover future
#: instrumentation density growth.  The bound has ~100x headroom
#: against the 2% budget, so precision is not the point.
HOOKS_PER_TRIAL_SAFETY = 12


def _paper_alphabet():
    return CsskAlphabet.design(
        bandwidth_hz=1e9,
        decoder=DecoderDesign.from_inches(45.0),
        symbol_bits=5,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )


def evaluate_ber_at_snr(snr_db, stream, impairments=None):
    """One sweep point: Monte-Carlo downlink BER at a pinned video SNR."""
    config = DownlinkTrialConfig(
        radar_config=XBAND_9GHZ,
        alphabet=_paper_alphabet(),
        snr_override_db=snr_db,
        num_frames=FRAMES_PER_POINT,
        payload_symbols_per_frame=SYMBOLS_PER_FRAME,
        impairments=impairments,
    )
    return run_downlink_trials(config, rng=stream).ber


def _run_sweep(impairments=None):
    def point(snr_db, stream):
        return evaluate_ber_at_snr(snr_db, stream, impairments=impairments)

    started = time.perf_counter()
    result = sweep(
        "ber vs snr", SNRS_DB, point,
        rng=7, execution=ExecutionPlan(workers=1),
    )
    return result, time.perf_counter() - started


def _inactive_per_call_ns():
    """Per-call wall-clock of each hook while the spec is inactive."""
    assert not ZERO_SPEC.active
    capture = TagCapture(samples=np.zeros(64), sample_rate_hz=1e6)
    rng = np.random.default_rng(0)
    costs = {}

    started = time.perf_counter()
    for _ in range(MICROBENCH_CALLS):
        ZERO_SPEC.active
    costs["active"] = (time.perf_counter() - started) / MICROBENCH_CALLS * 1e9

    started = time.perf_counter()
    for _ in range(MICROBENCH_CALLS):
        ZERO_SPEC.apply_to_capture(capture, rng=rng)
    costs["apply_to_capture"] = (
        (time.perf_counter() - started) / MICROBENCH_CALLS * 1e9
    )

    started = time.perf_counter()
    for _ in range(MICROBENCH_CALLS):
        ZERO_SPEC.clock_offset_ppm()
    costs["clock_offset_ppm"] = (
        (time.perf_counter() - started) / MICROBENCH_CALLS * 1e9
    )

    return costs


def test_impair_overhead(benchmark):
    # Baseline: no impairment spec anywhere (the library default).
    (baseline, unhooked_seconds) = benchmark.pedantic(
        _run_sweep, rounds=1, iterations=1
    )

    # The same sweep with the all-zero spec riding every trial.
    zeroed, hooked_seconds = _run_sweep(impairments=ZERO_SPEC)

    per_call_ns = _inactive_per_call_ns()
    trials = len(SNRS_DB) * FRAMES_PER_POINT
    calls = HOOKS_PER_TRIAL_SAFETY * trials
    worst_ns = max(per_call_ns.values())
    inactive_overhead = (calls * worst_ns * 1e-9) / unhooked_seconds

    table = format_table(
        ["measurement", "value"],
        [
            ["sweep, no spec", f"{unhooked_seconds:.3f} s"],
            ["sweep, severity-0 spec", f"{hooked_seconds:.3f} s"],
            ["hooked / unhooked", f"{hooked_seconds / unhooked_seconds:.3f}x"],
            ["hook sites bounded", str(calls)],
            ["inactive active", f"{per_call_ns['active']:.0f} ns/call"],
            [
                "inactive apply_to_capture()",
                f"{per_call_ns['apply_to_capture']:.0f} ns/call",
            ],
            [
                "inactive clock_offset_ppm()",
                f"{per_call_ns['clock_offset_ppm']:.0f} ns/call",
            ],
            ["inactive overhead bound", f"{inactive_overhead * 100:.4f} %"],
        ],
    )
    emit("impair_overhead", table)
    emit_bench_json(
        "impair_overhead",
        elapsed_seconds=unhooked_seconds + hooked_seconds,
        results={
            "points": len(SNRS_DB),
            "frames_per_point": FRAMES_PER_POINT,
            "unhooked_seconds": unhooked_seconds,
            "hooked_seconds": hooked_seconds,
            "hooked_ratio": hooked_seconds / unhooked_seconds,
            "hook_sites_bounded": calls,
            "inactive_per_call_ns": per_call_ns,
            "inactive_overhead_fraction": inactive_overhead,
            "max_inactive_overhead_fraction": MAX_INACTIVE_OVERHEAD,
        },
    )

    # Severity 0 is the unimpaired baseline, bit for bit.
    assert zeroed.values == baseline.values

    # The promise: inactive hooks stay under 2% of the sweep.
    assert inactive_overhead < MAX_INACTIVE_OVERHEAD, (
        f"inactive impairment overhead bound {inactive_overhead:.4%} "
        f"exceeds {MAX_INACTIVE_OVERHEAD:.0%}"
    )
