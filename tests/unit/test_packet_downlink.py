"""Packet structure (Fig. 3) and radar-side downlink encoding."""

import numpy as np
import pytest

from repro.core.downlink import DownlinkEncoder
from repro.core.packet import (
    DownlinkPacket,
    FieldType,
    PacketFields,
    pad_bits_to_symbols,
)
from repro.errors import PacketError, WaveformError
from repro.radar.config import TINYRAD_24GHZ, XBAND_9GHZ


class TestPacketFields:
    def test_defaults(self):
        fields = PacketFields()
        assert fields.preamble_length == fields.header_repeats + fields.sync_repeats

    def test_validation(self):
        with pytest.raises(PacketError):
            PacketFields(header_repeats=1)
        with pytest.raises(PacketError):
            PacketFields(sync_repeats=0)


class TestDownlinkPacket:
    def test_roles_layout(self, alphabet):
        packet = DownlinkPacket.from_bits(
            alphabet, np.zeros(10, dtype=np.uint8), fields=PacketFields(header_repeats=4, sync_repeats=2)
        )
        roles = packet.roles()
        assert roles[:4] == [FieldType.HEADER] * 4
        assert roles[4:6] == [FieldType.SYNC] * 2
        assert roles[6:] == [FieldType.DATA] * 2

    def test_symbol_count(self, alphabet):
        packet = DownlinkPacket.from_bits(alphabet, np.zeros(25, dtype=np.uint8))
        assert packet.num_payload_symbols == 5
        assert packet.num_slots == packet.fields.preamble_length + 5

    def test_bits_not_multiple_rejected(self, alphabet):
        with pytest.raises(PacketError):
            DownlinkPacket.from_bits(alphabet, np.zeros(7, dtype=np.uint8))

    def test_empty_payload_rejected(self, alphabet):
        with pytest.raises(PacketError):
            DownlinkPacket.from_bits(alphabet, np.array([], dtype=np.uint8))

    def test_non_binary_rejected(self, alphabet):
        with pytest.raises(PacketError):
            DownlinkPacket.from_bits(alphabet, np.full(5, 2, dtype=np.uint8))

    def test_payload_symbols_gray_mapping(self, alphabet):
        bits = alphabet.bits_for_symbol(13)
        packet = DownlinkPacket.from_bits(alphabet, bits)
        assert packet.payload_symbols() == [13]

    def test_beat_sequence(self, alphabet):
        bits = alphabet.bits_for_symbol(5)
        packet = DownlinkPacket.from_bits(
            alphabet, bits, fields=PacketFields(header_repeats=2, sync_repeats=1)
        )
        beats = packet.beat_sequence_hz()
        assert beats[0] == alphabet.header_beat_hz
        assert beats[2] == alphabet.sync_beat_hz
        assert beats[3] == alphabet.data_beats_hz[5]

    def test_duration_and_efficiency(self, alphabet):
        packet = DownlinkPacket.from_bits(alphabet, np.zeros(5 * 22, dtype=np.uint8))
        assert packet.duration_s() == pytest.approx(packet.num_slots * 120e-6)
        assert packet.airtime_efficiency() == pytest.approx(22 / packet.num_slots)

    def test_pad_bits(self):
        padded = pad_bits_to_symbols(np.ones(7, dtype=np.uint8), 5)
        assert padded.size == 10
        assert padded[7:].sum() == 0
        same = pad_bits_to_symbols(np.ones(10, dtype=np.uint8), 5)
        assert same.size == 10


class TestDownlinkEncoder:
    def test_frame_matches_packet(self, alphabet):
        encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
        bits = np.concatenate([alphabet.bits_for_symbol(s) for s in (0, 17, 31)])
        packet = DownlinkPacket.from_bits(alphabet, bits)
        frame = encoder.encode_packet(packet)
        assert len(frame) == packet.num_slots
        # Slot durations follow the role sequence.
        assert frame.slots[0].chirp.duration_s == pytest.approx(alphabet.header_duration_s)
        sync_slot = packet.fields.header_repeats
        assert frame.slots[sync_slot].chirp.duration_s == pytest.approx(alphabet.sync_duration_s)
        data_slot = packet.fields.preamble_length
        assert frame.slots[data_slot].chirp.duration_s == pytest.approx(
            alphabet.data_symbol_duration_s(0)
        )

    def test_symbols_annotated(self, alphabet):
        encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
        bits = alphabet.bits_for_symbol(9)
        frame = encoder.encode_packet(DownlinkPacket.from_bits(alphabet, bits))
        assert frame.symbols[-1] == 9
        assert frame.symbols[0] is None

    def test_expected_beats(self, alphabet):
        encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
        frame = encoder.sensing_frame(3)
        beats = encoder.expected_beats_hz(frame)
        np.testing.assert_allclose(beats, alphabet.header_beat_hz, rtol=1e-9)

    def test_sensing_frame_custom_duration(self, alphabet):
        encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
        frame = encoder.sensing_frame(2, duration_s=50e-6)
        assert frame.slots[0].chirp.duration_s == pytest.approx(50e-6)

    def test_sensing_frame_needs_chirps(self, alphabet):
        encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
        with pytest.raises(WaveformError):
            encoder.sensing_frame(0)

    def test_platform_bandwidth_enforced(self, alphabet):
        # The 1 GHz alphabet cannot ride on the 250 MHz TinyRad.
        with pytest.raises(WaveformError):
            DownlinkEncoder(radar_config=TINYRAD_24GHZ, alphabet=alphabet)

    def test_platform_min_duration_enforced(self, decoder_design):
        from dataclasses import replace

        from repro.core.cssk import CsskAlphabet

        alphabet = CsskAlphabet.design(
            bandwidth_hz=1e9,
            decoder=decoder_design,
            symbol_bits=2,
            chirp_period_s=120e-6,
            min_chirp_duration_s=12e-6,
        )
        strict = replace(XBAND_9GHZ, min_chirp_duration_s=15e-6)
        with pytest.raises(WaveformError):
            DownlinkEncoder(radar_config=strict, alphabet=alphabet)
