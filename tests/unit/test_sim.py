"""Simulation harness: scenarios, engines, sweeps, result formatting."""

import numpy as np
import pytest

from repro.core.ber import ErrorCounter, bit_error_rate, bits_from_symbols, random_bits, symbol_error_rate
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import (
    DownlinkTrialConfig,
    run_downlink_trials,
    run_localization_trials,
    run_uplink_snr_measurement,
)
from repro.sim.results import BerPoint, SweepResult, format_table
from repro.sim.scenario import default_office_scenario
from repro.sim.sweep import sweep, sweep_grid


class TestBerUtilities:
    def test_bit_error_rate_basic(self):
        assert bit_error_rate(np.array([0, 1, 1, 0]), np.array([0, 1, 0, 0])) == 0.25

    def test_missing_bits_count_as_errors(self):
        assert bit_error_rate(np.array([1, 1, 1, 1]), np.array([1, 1])) == 0.5

    def test_missing_ignored_when_disabled(self):
        assert (
            bit_error_rate(np.array([1, 1, 1, 1]), np.array([1, 1]), missing_as_errors=False)
            == 0.0
        )

    def test_empty_tx_rejected(self):
        with pytest.raises(ValueError):
            bit_error_rate(np.array([]), np.array([1]))

    def test_symbol_error_rate(self):
        assert symbol_error_rate([1, 2, 3], [1, 0, 3]) == pytest.approx(1 / 3)
        assert symbol_error_rate([1, 2, 3], [1]) == pytest.approx(2 / 3)

    def test_bits_from_symbols(self):
        np.testing.assert_array_equal(bits_from_symbols([5], 3), [1, 0, 1])
        with pytest.raises(ValueError):
            bits_from_symbols([8], 3)

    def test_random_bits_deterministic(self):
        np.testing.assert_array_equal(random_bits(16, rng=3), random_bits(16, rng=3))

    def test_error_counter_accumulates(self):
        counter = ErrorCounter()
        counter.update(np.array([1, 0, 1]), np.array([1, 1, 1]))
        counter.update(np.array([0, 0]), np.array([0, 0]))
        assert counter.bits_total == 5
        assert counter.bit_errors == 1
        assert counter.ber == pytest.approx(0.2)

    def test_error_counter_confidence_interval(self):
        counter = ErrorCounter(bit_errors=10, bits_total=1000)
        low, high = counter.confidence_interval_95()
        assert low < 0.01 < high
        assert 0.0 <= low and high <= 1.0


class TestScenario:
    def test_default_matches_paper_config(self, office_scenario):
        assert office_scenario.alphabet.symbol_bits == 5
        assert office_scenario.alphabet.chirp_period_s == pytest.approx(120e-6)
        assert office_scenario.radar_config.name == "xband-9ghz"
        assert office_scenario.tag.modulator is not None

    def test_at_range(self, office_scenario):
        moved = office_scenario.at_range(5.5)
        assert moved.tag_range_m == 5.5
        assert moved.alphabet is office_scenario.alphabet

    def test_session_builds(self, office_scenario):
        session = office_scenario.session()
        assert session.tag_range_m == office_scenario.tag_range_m

    def test_no_clutter_option(self):
        scenario = default_office_scenario(with_clutter=False)
        assert not scenario.clutter.reflectors


class TestEngines:
    def test_downlink_trials_clean_at_close_range(self, office_scenario):
        config = DownlinkTrialConfig(
            radar_config=XBAND_9GHZ,
            alphabet=office_scenario.alphabet,
            distance_m=1.0,
            num_frames=5,
            payload_symbols_per_frame=8,
        )
        point = run_downlink_trials(config, rng=0)
        assert point.ber == 0.0
        assert point.bits_total == 5 * 8 * 5

    def test_downlink_trials_reproducible(self, office_scenario):
        config = DownlinkTrialConfig(
            radar_config=XBAND_9GHZ,
            alphabet=office_scenario.alphabet,
            snr_override_db=5.0,
            num_frames=5,
            payload_symbols_per_frame=8,
        )
        a = run_downlink_trials(config, rng=1)
        b = run_downlink_trials(config, rng=1)
        assert a.ber == b.ber

    def test_downlink_trials_snr_parameter_recorded(self, office_scenario):
        config = DownlinkTrialConfig(
            radar_config=XBAND_9GHZ,
            alphabet=office_scenario.alphabet,
            snr_override_db=8.0,
            num_frames=2,
            payload_symbols_per_frame=4,
        )
        point = run_downlink_trials(config, rng=2)
        assert point.parameter == 8.0
        assert "video_snr_db" in point.extra

    def test_uplink_snr_declines_with_distance(self, office_scenario):
        args = (XBAND_9GHZ, office_scenario.tag.modulator, office_scenario.tag.van_atta)
        near = run_uplink_snr_measurement(*args, tag_range_m=1.0, num_chirps=96, num_trials=2, rng=1)
        far = run_uplink_snr_measurement(*args, tag_range_m=6.0, num_chirps=96, num_trials=2, rng=1)
        assert near >= far - 3.0  # allow noise, but no dramatic inversion

    def test_localization_trials_cm_level(self, office_scenario):
        errors = run_localization_trials(
            XBAND_9GHZ,
            office_scenario.alphabet,
            office_scenario.tag.modulator,
            office_scenario.tag.van_atta,
            tag_range_m=2.75,
            varying_slopes=True,
            num_frames=3,
            num_chirps=96,
            rng=3,
        )
        assert np.median(errors) < 0.05


class TestSweep:
    def test_sweep_evaluates_all_points(self):
        result = sweep("demo", [1.0, 2.0, 3.0], lambda p, rng: p * 2, rng=0)
        assert result.values == [2.0, 4.0, 6.0]

    def test_sweep_reproducible(self):
        def noisy(p, rng):
            return p + rng.normal()

        a = sweep("a", [1.0, 2.0], noisy, rng=5)
        b = sweep("b", [1.0, 2.0], noisy, rng=5)
        assert a.values == b.values

    def test_sweep_empty_rejected(self):
        with pytest.raises(ValueError):
            sweep("x", [], lambda p, rng: p)

    def test_sweep_grid_labels(self):
        results = sweep_grid(
            {"slow": 1.0, "fast": 2.0},
            [1.0, 2.0],
            lambda ctx, p, rng: ctx * p,
            rng=0,
        )
        assert [r.label for r in results] == ["slow", "fast"]
        assert results[1].values == [2.0, 4.0]


class TestResults:
    def test_ber_point_str(self):
        point = BerPoint(parameter=5.0, ber=1e-3, bits_total=1000, bit_errors=1)
        assert "5" in str(point) and "1.00e-03" in str(point)

    def test_sweep_result_length_check(self):
        with pytest.raises(ValueError):
            SweepResult(label="x", parameters=[1.0], values=[1.0, 2.0])

    def test_format_table_alignment(self):
        table = format_table(["a", "long header"], [["1", "2"], ["333", "4"]])
        lines = table.split("\n")
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])
