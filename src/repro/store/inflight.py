"""In-flight work dedup keyed on store fingerprints.

The content-addressed store (:mod:`repro.store.cache`) dedupes *completed*
work: a fingerprint that has been computed once is served from disk forever
after.  This module closes the remaining window — work that is currently
being computed.  When two clients ask a server for the same point at the
same time, the second request must not launch a second computation; it
should subscribe to the one already running and receive the same result.

:class:`InFlightRegistry` is a thread-safe ``fingerprint -> entry`` map
with single-winner claim semantics.  The entry type is caller-defined
(the serve scheduler stores its point-task objects); the registry only
guarantees that exactly one ``claim`` per fingerprint constructs a new
entry while every concurrent claim receives the existing one, and keeps
the created/shared accounting that the dedup tests pin.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

__all__ = ["InFlightRegistry", "InFlightStats"]

T = TypeVar("T")


@dataclass(frozen=True)
class InFlightStats:
    """Lifetime dedup accounting for one registry."""

    created: int
    shared: int
    active: int

    def as_dict(self) -> "dict[str, int]":
        return {
            "created": self.created,
            "shared": self.shared,
            "active": self.active,
        }


class InFlightRegistry:
    """Thread-safe map of fingerprints to in-flight computations.

    ``claim`` is the only mutating entry point used on the hot path: the
    first caller for a fingerprint constructs the entry (the "leader"),
    every overlapping caller gets the leader's entry back (a "share").
    ``discard`` removes a finished or cancelled fingerprint so later
    requests start fresh — typically after the result has landed in the
    durable store, which takes over dedup from there.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: "dict[str, Any]" = {}
        self._created = 0
        self._shared = 0

    def claim(self, fingerprint: str, factory: "Callable[[], T]") -> "tuple[T, bool]":
        """Return ``(entry, created)`` for ``fingerprint``.

        If no computation is in flight, ``factory()`` builds the entry and
        ``created`` is True; otherwise the existing entry is returned with
        ``created`` False.  ``factory`` runs under the registry lock, so it
        must be cheap and must not call back into the registry.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._shared += 1
                return entry, False
            entry = factory()
            self._entries[fingerprint] = entry
            self._created += 1
            return entry, True

    def peek(self, fingerprint: str) -> "Any | None":
        """The in-flight entry for ``fingerprint``, or None."""
        with self._lock:
            return self._entries.get(fingerprint)

    def discard(self, fingerprint: str) -> bool:
        """Drop ``fingerprint`` from the registry (True if it was present)."""
        with self._lock:
            return self._entries.pop(fingerprint, None) is not None

    def fingerprints(self) -> "list[str]":
        with self._lock:
            return sorted(self._entries)

    def stats(self) -> InFlightStats:
        with self._lock:
            return InFlightStats(
                created=self._created,
                shared=self._shared,
                active=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
