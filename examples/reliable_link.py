#!/usr/bin/env python3
"""Reliable, power-aware tag management: ARQ + the sequential low-power mode.

Combines two capabilities the paper motivates:

1. **ARQ** — firmware-parameter updates must arrive intact, so the radar
   wraps them in CRC-8 frames and retransmits on NACK ("on-demand
   retransmissions in case of packet loss").
2. **Sequential mode** — between updates the tag lives in the §4.1
   low-power schedule (MCU asleep during long uplink windows), stretching
   its battery by orders of magnitude vs. continuous operation.

Run:  python examples/reliable_link.py
"""


from repro.core.arq import ArqController
from repro.core.sequential import SequentialModeController, SequentialSchedule
from repro.core.ber import random_bits
from repro.sim.scenario import default_office_scenario
from repro.tag.power import PowerMode


def main() -> None:
    print("Reliable, power-aware tag management")
    print("====================================")

    # --- phase 1: guaranteed delivery of a configuration update ------------
    scenario = default_office_scenario(tag_range_m=5.0)
    session = scenario.session()
    arq = ArqController(session=session, max_retries=3)
    print("\n[ARQ] delivering a 24-bit configuration update at 5 m:")
    config_update = random_bits(24, rng=3)
    delivered, stats = arq.send(config_update, rng=4)
    print(f"  delivered: {delivered}")
    print(f"  rounds: {stats.rounds} (retransmissions {stats.retransmissions}, "
          f"tag CRC failures {stats.tag_crc_failures})")
    assert delivered

    # Same payload over a marginal 9 m link: the ARQ machinery reports
    # honestly even when retries are needed or the transfer fails.
    marginal = default_office_scenario(tag_range_m=9.0).session()
    arq_far = ArqController(session=marginal, max_retries=3)
    print("\n[ARQ] same update over a marginal 9 m link:")
    delivered_far, stats_far = arq_far.send(config_update, rng=5)
    print(f"  delivered: {delivered_far} after {stats_far.rounds} rounds "
          f"({stats_far.tag_crc_failures} CRC failures at the tag)")

    # --- phase 2: drop into the sequential low-power schedule ---------------
    print("\n[sequential] steady-state operation at 2.5 m:")
    steady = default_office_scenario(tag_range_m=2.5).session()
    schedule = SequentialSchedule(downlink_window_s=6e-3, uplink_window_s=200e-3)
    controller = SequentialModeController(steady, schedule)
    result = controller.run_cycle(
        random_bits(20, rng=6),
        random_bits(6, rng=7),
        rng=8,
    )
    power_model = steady.tag.power
    continuous_mw = power_model.continuous_power_w() * 1e3
    print(f"  cycle: {schedule.cycle_s * 1e3:.0f} ms "
          f"({schedule.downlink_duty:.1%} decode duty)")
    print(f"  downlink BER {result.downlink_ber:.0%}, uplink BER {result.uplink_ber:.0%}, "
          f"ranging error {result.localization_error_m * 100:.2f} cm")
    print(f"  average power: {result.average_power_w * 1e3:.3f} mW "
          f"(continuous mode: {continuous_mw:.0f} mW, "
          f"saving {controller.power_saving_factor():.0f}x)")
    battery_mwh = 1000.0
    continuous_h = power_model.battery_life_hours(PowerMode.CONTINUOUS, battery_mwh)
    sequential_h = battery_mwh / (result.average_power_w * 1e3)
    print(f"  1 Wh battery: {continuous_h:.0f} h continuous -> "
          f"{sequential_h / 24:.0f} days sequential")
    assert result.downlink_ber == 0.0 and result.uplink_ber == 0.0
    print("\nOK: guaranteed delivery when it matters, microwatts when it doesn't.")


if __name__ == "__main__":
    main()
