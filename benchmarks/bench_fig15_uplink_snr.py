"""Fig. 15 — uplink SNR vs distance.

The retro-reflective Van Atta tag keeps the backscatter SNR workable
despite the round-trip (R^4) attenuation: the paper reports a monotonic
decline that still clears ~4 dB at 7 m, "a theoretical BER of 1e-2
assuming a simple on-off-keying modulation".

Two columns are reported:
* the analytic radar-equation budget (thermal + residual-clutter floor),
  which carries the headline numbers, and
* a functional measurement from the IF-domain simulator (spectral SNR at
  the detected tag cell), confirming the link decodes at every distance.
The IF simulator's absolute SNR is generous (ideal coherent integration);
DESIGN.md Section 4 discusses the fidelity split.
"""


from conftest import emit
from repro.channel.link_budget import UplinkBudget, ook_ber_from_snr_db
from repro.components.van_atta import VanAttaArray
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import run_uplink_snr_measurement
from repro.sim.results import format_table
from repro.tag.modulator import UplinkModulator

DISTANCES_M = [0.5, 1.0, 2.0, 3.0, 5.0, 7.0]


def run_sweep():
    budget = UplinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
        residual_clutter_dbm=-88.0,
    )
    # Per-chirp (pre slow-time integration) SNR: the quantity the paper
    # plots, which declines with distance but saturates against the
    # self-interference ceiling at close range.
    gain = 0.0
    modulator = UplinkModulator(
        modulation_rate_hz=2000.0, chirp_period_s=120e-6, chirps_per_bit=128
    )
    van_atta = VanAttaArray()
    rows = []
    for distance in DISTANCES_M:
        analytic = budget.snr_db(distance, processing_gain_db=gain)
        measured = run_uplink_snr_measurement(
            XBAND_9GHZ,
            modulator,
            van_atta,
            tag_range_m=distance,
            num_chirps=128,
            num_trials=3,
            rng=int(distance * 10),
        )
        rows.append((distance, analytic, measured))
    return rows


def test_fig15_uplink_snr(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        ["distance (m)", "budget SNR (dB)", "IF-sim cell SNR (dB)", "OOK BER @ budget"],
        [
            [f"{d:.1f}", f"{a:.1f}", f"{m:.1f}", f"{ook_ber_from_snr_db(a):.1e}"]
            for d, a, m in rows
        ],
    )
    emit("fig15_uplink_snr", table)

    budget_series = [a for _, a, _ in rows]
    # Paper shape: monotonic decline with distance...
    assert all(x > y for x, y in zip(budget_series, budget_series[1:]))
    # ...but still above 4 dB at 7 m.
    assert budget_series[-1] > 4.0
    # Functional check: the IF-domain measurement keeps a usable margin too.
    assert min(m for _, _, m in rows) > 4.0
