"""Serve scheduler: priority queue, backpressure, dedup, self-protection.

The scheduler owns the computational heart of the server.  Its contract:

* **Single-threaded control plane.**  All scheduler state is mutated on
  the event loop only.  Computations run in a ``ThreadPoolExecutor``
  (``pool_workers`` slots) and report back via the loop, so no locks are
  needed beyond the :class:`repro.store.InFlightRegistry`'s own.
* **Priority + FIFO.**  Queued points order by ``(priority, sequence)``:
  lower priority number first, submission order within a priority.
* **Bounded backpressure.**  At most ``max_pending`` points may be
  queued or running.  A submit that would exceed the bound is rejected
  *deterministically* — never partially admitted, never queued hidden —
  with a ``retry_after_s`` hint sized to the backlog.  (Journal replay
  on ``--resume`` submits with ``force=True``: recovering previously
  admitted work must never bounce off its own backlog.)
* **In-flight dedup.**  Points are keyed by store fingerprint (the same
  fingerprint the engines cache results under).  A submit whose
  fingerprint is already queued/running subscribes to the existing
  :class:`PointTask` instead of creating work; every subscriber receives
  the one result.  Completed fingerprints leave the registry — from then
  on the durable store dedupes.
* **Cancellation.**  Dropping a job (client request or disconnect)
  unsubscribes it from its tasks.  A queued task with no subscribers
  left is cancelled before it ever claims a pool slot; a *running* task
  finishes (its result still lands in the store, so the work is not
  wasted) but delivers to nobody.
* **Poison-point quarantine.**  A point whose compute raises or stalls
  through its retry budget (``point_retries`` extra attempts) is
  reported to every subscriber as a per-point ``failed`` frame — the
  rest of the job keeps streaming, the pool is never poisoned, and the
  job still reaches ``done`` (with a ``failed`` index list).  The
  fingerprint joins an in-memory quarantine: resubmitting it answers
  instantly with ``failed`` instead of burning pool time again.
* **Pool watchdog.**  With ``point_timeout_s`` set, every attempt runs
  under a deadline.  A stalled worker cannot be killed (threads are not
  processes), but it can be *abandoned*: the deadline fires, the thread
  pool is rebuilt so the stuck thread no longer occupies a slot
  (mirroring the executor's broken-pool recovery), and the point is
  retried on the fresh pool.  If the abandoned thread eventually
  finishes anyway, its result is discarded here but still lands in the
  store — bit-identical, by the determinism contract.
* **Durable journal.**  With a :class:`repro.serve.journal.JobJournal`
  attached, accepted jobs are journaled write-ahead (before their first
  point can reach the pool), points are marked complete as they deliver,
  and the record is removed at ``done``/cancel — the crash-recovery
  story ``repro serve --resume`` is built on.
* **Graceful drain.**  ``drain()`` stops admissions and waits for every
  pending point to resolve, so shutdown never truncates a stream.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
from typing import Any, Optional

from repro import obs
from repro.obs import runtime as _obs_runtime
from repro.sim.executor import ExecutionPlan
from repro.store.inflight import InFlightRegistry

__all__ = ["PointTask", "Job", "JobScheduler"]


class PointTask:
    """One unit of schedulable work: a point spec plus its subscribers."""

    __slots__ = (
        "fingerprint", "spec", "subscribers", "state", "cached", "priority",
        "attempts", "stalls",
    )

    def __init__(self, fingerprint: str, spec, priority: int = 0) -> None:
        self.fingerprint = fingerprint
        self.spec = spec
        self.subscribers: "list[tuple[Job, int]]" = []
        self.state = "queued"  # queued | running | done | cancelled
        self.cached = False
        self.priority = priority
        self.attempts = 0
        self.stalls = 0


class Job:
    """One accepted submission: its session, identity, and progress."""

    def __init__(self, session, client_id: str, job_id: str, kind: str,
                 num_points: int) -> None:
        self.session = session
        self.client_id = client_id
        self.job_id = job_id
        self.kind = kind
        self.num_points = num_points
        self.tasks: "list[PointTask]" = []
        self.remaining = num_points
        self.cancelled = False
        self.failed: "list[int]" = []
        self.journal_id: "str | None" = None
        #: Stream index -> journal-record position (replayed jobs only).
        self.index_map: "tuple[int, ...] | None" = None


class JobScheduler:
    """Shared executor-pool front end for every client session.

    Construct on the event loop (``__init__`` captures the running
    loop); ``submit``/``cancel_job``/``status`` are loop-thread-only.
    """

    def __init__(
        self,
        *,
        execution: "ExecutionPlan | None" = None,
        store=None,
        pool_workers: int = 2,
        max_pending: int = 256,
        retry_after_s: float = 1.0,
        journal=None,
        point_retries: int = 1,
        point_timeout_s: "float | None" = None,
    ) -> None:
        from concurrent.futures import ThreadPoolExecutor

        if pool_workers < 1:
            raise ValueError(f"pool_workers must be >= 1, got {pool_workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if point_retries < 0:
            raise ValueError(f"point_retries must be >= 0, got {point_retries}")
        if point_timeout_s is not None and point_timeout_s <= 0:
            raise ValueError(
                f"point_timeout_s must be positive, got {point_timeout_s}"
            )
        self.execution = execution if execution is not None else ExecutionPlan()
        self.store = store
        self.journal = journal
        self.pool_workers = pool_workers
        self.max_pending = max_pending
        self.retry_after_s = retry_after_s
        self.point_retries = point_retries
        self.point_timeout_s = point_timeout_s
        self.inflight = InFlightRegistry()
        self._quarantined: "dict[str, str]" = {}
        self._loop = asyncio.get_running_loop()
        self._queue: "asyncio.PriorityQueue" = asyncio.PriorityQueue()
        self._sequence = itertools.count()
        self._job_ids = itertools.count(1)
        self._pending = 0  # queued + running, non-cancelled
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._pool = ThreadPoolExecutor(
            max_workers=pool_workers, thread_name_prefix="repro-serve"
        )
        self._workers = [
            asyncio.ensure_future(self._worker()) for _ in range(pool_workers)
        ]
        self._running = 0
        self.counters = {
            "jobs_accepted": 0,
            "jobs_rejected": 0,
            "jobs_cancelled": 0,
            "jobs_completed": 0,
            "points_submitted": 0,
            "points_computed": 0,
            "points_deduped": 0,
            "points_cancelled": 0,
            "points_failed": 0,
            "points_retried": 0,
            "points_stalled": 0,
            "points_quarantined": 0,
            "pool_rebuilds": 0,
            "journal_records": 0,
            "journal_replayed": 0,
        }

    # -- admission -----------------------------------------------------------

    def submit(self, session, client_id: str, parsed, priority: int = 0,
               *, raw_job: "dict[str, Any] | None" = None,
               point_indices: "tuple[int, ...] | None" = None,
               journal_record=None,
               index_map: "tuple[int, ...] | None" = None,
               force: bool = False,
               ) -> "tuple[dict[str, Any], Optional[Job]]":
        """Admit (or reject) a parsed job; returns ``(reply, job|None)``.

        Admission is all-or-nothing: the capacity check counts every
        *new* point the job would enqueue (deduped and quarantined points
        are free), and a rejection leaves the scheduler exactly as it
        was.  ``raw_job`` is the submitted job object for write-ahead
        journaling and ``point_indices`` the submit-time subset that
        produced ``parsed`` (recorded so a replay can re-select it);
        ``journal_record``/``index_map`` re-attach an existing record
        during ``--resume`` replay (``index_map[i]`` is the record
        position of stream index ``i``); ``force`` bypasses the capacity
        check (replay of already-admitted work only).
        """
        if self._draining:
            self.counters["jobs_rejected"] += 1
            return {
                "type": "rejected", "id": client_id,
                "reason": "draining", "retry_after_s": None,
            }, None
        fingerprints = [spec.fingerprint() for spec in parsed.points]
        new_points = sum(
            1 for fingerprint in fingerprints
            if self.inflight.peek(fingerprint) is None
            and fingerprint not in self._quarantined
        )
        if not force and self._pending + new_points > self.max_pending:
            self.counters["jobs_rejected"] += 1
            retry_after = self._retry_after()
            if _obs_runtime._enabled:
                obs.inc("serve.jobs.rejected")
                obs.log(
                    "serve.job.rejected", id=client_id,
                    pending=self._pending, new_points=new_points,
                    retry_after_s=retry_after,
                )
            return {
                "type": "rejected", "id": client_id,
                "reason": (
                    f"queue full ({self._pending} pending, "
                    f"{new_points} new points over the {self.max_pending} cap)"
                ),
                "retry_after_s": retry_after,
            }, None

        job = Job(
            session, client_id, f"job-{next(self._job_ids)}",
            parsed.kind, len(parsed.points),
        )
        # Write-ahead: the journal record must hit disk before any point
        # can reach the pool, or a crash in between loses the job.
        if journal_record is not None:
            job.journal_id = journal_record.journal_id
            job.index_map = index_map
        elif self.journal is not None and raw_job is not None:
            record = self.journal.record(
                kind=parsed.kind, job=raw_job, fingerprints=fingerprints,
                point_indices=point_indices,
            )
            job.journal_id = record.journal_id
            self.counters["journal_records"] += 1
            if _obs_runtime._enabled:
                obs.inc("serve.journal.records")
        prefailed: "list[tuple[int, str, str]]" = []
        for index, (spec, fingerprint) in enumerate(
            zip(parsed.points, fingerprints)
        ):
            quarantine_error = self._quarantined.get(fingerprint)
            if quarantine_error is not None:
                prefailed.append((index, fingerprint, quarantine_error))
                continue
            task, created = self.inflight.claim(
                fingerprint,
                lambda fingerprint=fingerprint, spec=spec: PointTask(
                    fingerprint, spec, priority
                ),
            )
            task.subscribers.append((job, index))
            job.tasks.append(task)
            if created:
                self._pending += 1
                self._idle.clear()
                self.counters["points_submitted"] += 1
                self._queue.put_nowait((priority, next(self._sequence), task))
            else:
                self.counters["points_deduped"] += 1
                if _obs_runtime._enabled:
                    obs.inc("serve.points.deduped")
        if prefailed:
            # Deliver after the caller has sent its `accepted` reply (the
            # session enqueues that synchronously once submit returns).
            self._loop.call_soon(self._deliver_prefailed, job, prefailed)
        self.counters["jobs_accepted"] += 1
        if _obs_runtime._enabled:
            obs.inc("serve.jobs.accepted")
            obs.log(
                "serve.job.accepted", id=client_id, job_id=job.job_id,
                kind=job.kind, points=job.num_points,
            )
        return {
            "type": "accepted", "id": client_id, "job_id": job.job_id,
            "kind": job.kind, "points": job.num_points,
        }, job

    def _retry_after(self) -> float:
        """Deterministic resubmission hint scaled to the backlog."""
        backlog_rounds = self._pending / (self.pool_workers * self.max_pending)
        return round(self.retry_after_s * max(1.0, backlog_rounds), 3)

    # -- cancellation --------------------------------------------------------

    def cancel_job(self, job: Job, reason: str = "client request") -> int:
        """Unsubscribe ``job`` everywhere; returns points actually cancelled.

        Queued tasks nobody else wants are cancelled outright (lazy heap
        removal — the worker skips them on pop).  Running tasks finish to
        keep the pool healthy; their results land in the store.  The
        job's journal record is retired: an explicitly cancelled (or
        disconnected) job must not be replayed at the next restart — a
        reconnecting self-healing client resubmits and re-journals.
        """
        if job.cancelled:
            return 0
        job.cancelled = True
        cancelled = 0
        for task in job.tasks:
            task.subscribers = [
                (subscriber, index) for subscriber, index in task.subscribers
                if subscriber is not job
            ]
            if not task.subscribers and task.state == "queued":
                task.state = "cancelled"
                self.inflight.discard(task.fingerprint)
                self._finish_pending()
                cancelled += 1
        if job.journal_id is not None and self.journal is not None:
            self.journal.finish(job.journal_id)
        self.counters["jobs_cancelled"] += 1
        self.counters["points_cancelled"] += cancelled
        if _obs_runtime._enabled:
            obs.inc("serve.jobs.cancelled")
            obs.inc("serve.points.cancelled", cancelled)
            obs.log(
                "serve.job.cancelled", id=job.client_id, job_id=job.job_id,
                reason=reason, points_cancelled=cancelled,
            )
        return cancelled

    def _finish_pending(self) -> None:
        self._pending -= 1
        if self._pending == 0:
            self._idle.set()

    # -- the worker loop -----------------------------------------------------

    async def _worker(self) -> None:
        while True:
            _priority, _sequence, task = await self._queue.get()
            if task.state == "cancelled":
                continue
            await self._run_task(task)

    async def _run_task(self, task: PointTask) -> None:
        task.state = "running"
        self._running += 1
        store = self.store
        task.cached = store is not None and store.contains(task.fingerprint)
        plan = self._plan_for(task)
        payload = None
        error: "Exception | None" = None
        try:
            for attempt in range(1 + self.point_retries):
                task.attempts = attempt + 1
                if attempt > 0:
                    self.counters["points_retried"] += 1
                    if _obs_runtime._enabled:
                        obs.inc("serve.recovery.point_retries")
                future = self._loop.run_in_executor(
                    self._pool, task.spec.compute, plan, store
                )
                try:
                    # shield(): a deadline must abandon the pool thread,
                    # not cancel the future mid-flight (the thread cannot
                    # be interrupted anyway).
                    payload = await asyncio.wait_for(
                        asyncio.shield(future), timeout=self.point_timeout_s
                    )
                except asyncio.TimeoutError:
                    error = TimeoutError(
                        f"point exceeded its {self.point_timeout_s}s deadline "
                        f"(attempt {attempt + 1})"
                    )
                    task.stalls += 1
                    self.counters["points_stalled"] += 1
                    if _obs_runtime._enabled:
                        obs.inc("serve.recovery.stalled_points")
                        obs.log(
                            "serve.point.stalled",
                            fingerprint=task.fingerprint,
                            attempt=attempt + 1,
                            deadline_s=self.point_timeout_s,
                        )
                    self._abandon(future)
                    self._rebuild_pool()
                except Exception as attempt_error:
                    error = attempt_error
                else:
                    error = None
                    break
        finally:
            task.state = "done"
            self._running -= 1
            self.inflight.discard(task.fingerprint)
        if error is not None:
            self._quarantine(task, error)
        else:
            self.counters["points_computed"] += 1
            if _obs_runtime._enabled:
                obs.inc("serve.points.computed")
            self._deliver(task, payload)
        self._finish_pending()

    @staticmethod
    def _abandon(future: "asyncio.Future") -> None:
        """Detach from a stalled executor future without cancelling it.

        The pool thread keeps running; if it eventually completes, its
        exception (if any) is retrieved here so asyncio never logs a
        "never retrieved" warning, and any result it produced has already
        landed in the store — bit-identical to the retry's.
        """
        future.add_done_callback(
            lambda done: done.cancelled() or done.exception()
        )

    def _rebuild_pool(self) -> None:
        """Replace the thread pool so a stalled worker stops costing a slot.

        Mirrors the executor's broken-pool recovery: the old pool is shut
        down without waiting (its stuck thread is abandoned, not killed —
        threads cannot be killed), and all future work dispatches to a
        fresh pool with the full ``pool_workers`` capacity.
        """
        from concurrent.futures import ThreadPoolExecutor

        old = self._pool
        self._pool = ThreadPoolExecutor(
            max_workers=self.pool_workers, thread_name_prefix="repro-serve"
        )
        old.shutdown(wait=False)
        self.counters["pool_rebuilds"] += 1
        if _obs_runtime._enabled:
            obs.inc("serve.recovery.pool_rebuilds")
            obs.log("serve.pool.rebuilt")

    def _plan_for(self, task: PointTask) -> ExecutionPlan:
        """The shared plan, with a thread-safe progress bridge chained in.

        The executor's parent-side ``on_chunk`` hook fires in the pool
        thread; the bridge trampolines onto the loop so subscribers get
        ``progress`` frames while the point is still computing.
        """
        loop = self._loop
        inner = self.execution.on_chunk

        def hook(timing, chunk_results):
            if inner is not None:
                inner(timing, chunk_results)
            loop.call_soon_threadsafe(
                self._notify_progress, task, timing.num_trials
            )

        return dataclasses.replace(self.execution, on_chunk=hook)

    def _notify_progress(self, task: PointTask, trials: int) -> None:
        for job, index in task.subscribers:
            if job.cancelled:
                continue
            job.session.send({
                "type": "progress", "id": job.client_id, "point": index,
                "trials": trials,
            })

    # -- delivery ------------------------------------------------------------

    def _deliver(self, task: PointTask, payload) -> None:
        shared = len(task.subscribers) > 1
        for job, index in list(task.subscribers):
            if job.cancelled:
                continue
            job.session.send({
                "type": "point", "id": job.client_id, "index": index,
                "kind": task.spec.kind, "payload": payload,
                "fingerprint": task.fingerprint,
                "shared": shared, "cached": task.cached,
            })
            if job.journal_id is not None and self.journal is not None:
                record_index = (
                    job.index_map[index] if job.index_map is not None else index
                )
                self.journal.mark_complete(job.journal_id, record_index)
            self._finish_point(job)

    def _quarantine(self, task: PointTask, error: Exception) -> None:
        """Poison-point containment: fail the point, never the job or pool."""
        message = (
            f"{type(error).__name__}: {error} "
            f"(after {task.attempts} attempt(s))"
        )
        self._quarantined[task.fingerprint] = message
        self.counters["points_failed"] += 1
        self.counters["points_quarantined"] += 1
        if _obs_runtime._enabled:
            obs.inc("serve.points.failed")
            obs.inc("serve.recovery.quarantined")
            obs.log(
                "serve.point.quarantined",
                fingerprint=task.fingerprint,
                attempts=task.attempts,
                error=message,
            )
        for job, index in list(task.subscribers):
            if job.cancelled:
                continue
            self._fail_point(job, index, task.fingerprint, message)

    def _deliver_prefailed(self, job: Job,
                           prefailed: "list[tuple[int, str, str]]") -> None:
        """Answer quarantined points of a fresh submit without pool time."""
        if job.cancelled:
            return
        for index, fingerprint, message in prefailed:
            self._fail_point(job, index, fingerprint, message)

    def _fail_point(self, job: Job, index: int, fingerprint: str,
                    message: str) -> None:
        job.failed.append(index)
        job.session.send({
            "type": "failed", "id": job.client_id, "index": index,
            "fingerprint": fingerprint, "error": message,
        })
        self._finish_point(job)

    def _finish_point(self, job: Job) -> None:
        """Account one resolved (delivered or failed) point of ``job``."""
        job.remaining -= 1
        if job.remaining > 0:
            return
        self.counters["jobs_completed"] += 1
        if _obs_runtime._enabled:
            obs.inc("serve.jobs.completed")
        done: "dict[str, Any]" = {
            "type": "done", "id": job.client_id, "points": job.num_points,
        }
        if job.failed:
            done["failed"] = sorted(job.failed)
        job.session.send(done)
        if job.journal_id is not None and self.journal is not None:
            self.journal.finish(job.journal_id)
        job.session.finish_job(job)

    # -- lifecycle -----------------------------------------------------------

    async def drain(self) -> None:
        """Stop admissions and wait for every pending point to resolve."""
        self._draining = True
        await self._idle.wait()

    async def close(self) -> None:
        """Drain, then tear the worker tasks and thread pool down."""
        await self.drain()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._pool.shutdown(wait=True)

    # -- introspection -------------------------------------------------------

    def status(self) -> "dict[str, Any]":
        payload: "dict[str, Any]" = {
            "pending_points": self._pending,
            "running_points": self._running,
            "max_pending": self.max_pending,
            "pool_workers": self.pool_workers,
            "point_retries": self.point_retries,
            "point_timeout_s": self.point_timeout_s,
            "draining": self._draining,
            "quarantined": sorted(self._quarantined),
            "counters": dict(self.counters),
            "inflight": self.inflight.stats().as_dict(),
        }
        if self.store is not None:
            payload["store"] = self.store.stats_payload()
        return payload
