.PHONY: install test lint bench examples all clean

# Matches the tier-1 verify command: run against src/ directly, no
# editable install required.
PYTHONPATH_SRC = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

install:
	pip install -e . || python setup.py develop

test:
	$(PYTHONPATH_SRC) python -m pytest -x -q

# Config lives in pyproject.toml ([tool.ruff]); CI runs the same check.
lint:
	ruff check .

bench:
	$(PYTHONPATH_SRC) python -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHONPATH_SRC) python $$script > /dev/null && echo "   OK" || exit 1; \
	done

all: test bench examples

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results \
		src/repro.egg-info test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
