"""Synchronous serve client: submit jobs, reassemble streamed results.

:class:`ServeClient` speaks the NDJSON line protocol over a plain
blocking socket — no asyncio required on the client side — and
:class:`JobResult` reassembles the streamed per-point payloads into the
same result objects the batch CLI produces
(:class:`repro.sim.results.BerPoint`,
:class:`repro.sim.robustness.DegradationCurve`), in point-index order
regardless of completion order.  Because the server computes each point
through the exact batch code path under the same store fingerprint, a
reassembled result is bit-identical to a one-shot run of the same spec.
"""

from __future__ import annotations

import collections
import itertools
import socket
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import ServeError
from repro.serve.protocol import JobRejected, decode_line, encode_message

__all__ = ["ServeClient", "JobResult"]


@dataclass
class JobResult:
    """One completed job reassembled from its streamed points."""

    kind: str
    points: "list[dict[str, Any]]"
    #: Per-point delivery metadata: fingerprint / shared / cached flags.
    meta: "list[dict[str, Any]]"
    progress_frames: int = 0
    extra_messages: "list[dict[str, Any]]" = field(default_factory=list)

    def ber_points(self):
        """The points as :class:`repro.sim.results.BerPoint` objects."""
        from repro.sim.engine import _ber_point_from_payload

        if self.kind not in ("ber", "ber_sweep"):
            raise ServeError(f"job kind {self.kind!r} has no BER points")
        return [_ber_point_from_payload(payload) for payload in self.points]

    def ber_point(self):
        """The single point of a ``ber`` job."""
        points = self.ber_points()
        if len(points) != 1:
            raise ServeError(f"expected exactly one point, got {len(points)}")
        return points[0]

    def degradation_curve(self):
        """A ``robustness`` job as the batch sweep's DegradationCurve."""
        from repro.sim.robustness import DegradationCurve

        if self.kind != "robustness":
            raise ServeError(f"job kind {self.kind!r} is not a robustness job")
        curve = DegradationCurve()
        for payload in self.points:
            metrics = payload["metrics"]
            curve.severities.append(float(payload["severity"]))
            curve.downlink_ber.append(metrics["downlink_ber"])
            curve.uplink_ber.append(metrics["uplink_ber"])
            curve.erasure_rate.append(metrics["erasure_rate"])
            curve.median_ranging_error_m.append(
                metrics["median_ranging_error_m"]
            )
            curve.if_fallback_rate.append(metrics["if_fallback_rate"])
            # Older servers predate the metric; NaN = not recorded.
            curve.localization_rate.append(
                metrics.get("localization_rate", float("nan"))
            )
        return curve


class ServeClient:
    """Blocking line-protocol client for one server connection.

    ``run`` is the high-level call: submit, stream, reassemble.
    ``submit`` + ``events`` expose the incremental frames for callers
    that want them live.  Frames for other in-flight jobs that arrive
    while waiting for a specific reply are buffered and re-delivered to
    their own consumers, so several jobs may overlap on one connection
    (streamed frames from an earlier job never corrupt a later submit's
    reply).
    """

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._ids = itertools.count(1)
        self._buffered: "collections.deque[dict[str, Any]]" = collections.deque()

    # -- framing -------------------------------------------------------------

    def _send(self, message: "dict[str, Any]") -> None:
        self._sock.sendall(encode_message(message))

    def _recv(self) -> "dict[str, Any]":
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        return decode_line(line)

    def _take(self, match: "Callable[[dict[str, Any]], bool]"
              ) -> "dict[str, Any]":
        """The next frame satisfying ``match``; buffers everything else."""
        for position, message in enumerate(self._buffered):
            if match(message):
                del self._buffered[position]
                return message
        while True:
            message = self._recv()
            if match(message):
                return message
            self._buffered.append(message)

    # -- requests ------------------------------------------------------------

    def submit(self, job: "dict[str, Any]", *, priority: int = 0,
               job_id: "str | None" = None) -> str:
        """Submit a job; returns its client id once the server accepts.

        Raises :class:`JobRejected` (with ``retry_after_s``) on
        backpressure and :class:`ServeError` on validation failure.
        """
        client_id = job_id if job_id is not None else f"job-{next(self._ids)}"
        self._send({
            "type": "submit", "id": client_id, "job": job, "priority": priority,
        })
        reply = self._take(lambda m: (
            m.get("type") in ("accepted", "rejected") and m.get("id") == client_id
        ) or m.get("type") == "error")
        if reply.get("type") == "accepted":
            return client_id
        if reply.get("type") == "rejected":
            raise JobRejected(
                f"job rejected: {reply.get('reason')}",
                retry_after_s=reply.get("retry_after_s"),
            )
        raise ServeError(f"submit failed: {reply.get('message', reply)}")

    def events(self, client_id: str) -> "Iterator[dict[str, Any]]":
        """Yield this job's frames (point/progress/...) through ``done``."""
        while True:
            message = self._take(lambda m: (
                m.get("id") == client_id
                or m.get("type") in ("error", "shutting_down")
            ))
            yield message
            if message.get("type") == "done" and message.get("id") == client_id:
                return
            if message.get("type") == "error":
                raise ServeError(f"server error: {message.get('message')}")
            if message.get("type") == "shutting_down":
                raise ServeError("server shut down mid-stream")

    def run(self, job: "dict[str, Any]", *, priority: int = 0) -> JobResult:
        """Submit ``job`` and collect its streamed points into a JobResult."""
        client_id = self.submit(job, priority=priority)
        points: "dict[int, dict[str, Any]]" = {}
        meta: "dict[int, dict[str, Any]]" = {}
        progress = 0
        extra: "list[dict[str, Any]]" = []
        for message in self.events(client_id):
            message_type = message.get("type")
            if message_type == "point":
                index = int(message["index"])
                points[index] = message["payload"]
                meta[index] = {
                    "fingerprint": message.get("fingerprint"),
                    "shared": message.get("shared"),
                    "cached": message.get("cached"),
                }
            elif message_type == "progress":
                progress += 1
            elif message_type != "done":
                extra.append(message)
        expected = sorted(points)
        if expected != list(range(len(points))):
            raise ServeError(f"incomplete stream: got point indices {expected}")
        return JobResult(
            kind=str(job.get("kind", "")),
            points=[points[index] for index in expected],
            meta=[meta[index] for index in expected],
            progress_frames=progress,
            extra_messages=extra,
        )

    def _request(self, request: "dict[str, Any]", reply_type: str
                 ) -> "dict[str, Any]":
        """Send a control frame and wait for its (or an error) reply."""
        self._send(request)
        message = self._take(
            lambda m: m.get("type") in (reply_type, "error")
        )
        if message.get("type") != reply_type:
            raise ServeError(
                f"{request['type']} failed: {message.get('message', message)}"
            )
        return message

    def cancel(self, client_id: str) -> "dict[str, Any]":
        """Cancel an in-flight job; returns the ``cancelled`` frame."""
        return self._request({"type": "cancel", "id": client_id}, "cancelled")

    def status(self) -> "dict[str, Any]":
        return self._request({"type": "status"}, "status_ok")

    def metrics(self) -> "dict[str, Any]":
        return self._request({"type": "metrics"}, "metrics_ok")

    def ping(self) -> None:
        self._request({"type": "ping"}, "pong")

    def shutdown_server(self) -> None:
        """Ask the server to drain and stop (acknowledged before it does)."""
        self._request({"type": "shutdown"}, "shutting_down")

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
