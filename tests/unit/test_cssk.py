"""CSSK alphabet design (Eqs. 10-14) and Gray-coded symbol mapping."""

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.core.cssk import (
    CsskAlphabet,
    DecoderDesign,
    beat_frequency,
    chirp_duration_for_beat,
    delay_difference_from_length,
    gray_code,
    gray_decode,
)
from repro.errors import AlphabetError


class TestEquations:
    def test_eq10_delay_difference(self):
        # dT = dL / (k c)
        assert delay_difference_from_length(1.143, velocity_factor=0.7) == pytest.approx(
            1.143 / (0.7 * SPEED_OF_LIGHT)
        )

    def test_eq11_beat_frequency(self):
        # paper example: B = 1 GHz, dL = 18 in, k = 0.7, T = 20..200 us
        # -> df ~ 11 kHz .. 110 kHz.
        delta_t = delay_difference_from_length(18 * 0.0254, velocity_factor=0.7)
        low = beat_frequency(1e9, delta_t, 200e-6)
        high = beat_frequency(1e9, delta_t, 20e-6)
        assert low == pytest.approx(11e3, rel=0.05)
        assert high == pytest.approx(110e3, rel=0.05)

    def test_eq11_inverse(self):
        delta_t = 5e-9
        duration = chirp_duration_for_beat(1e9, delta_t, 50e3)
        assert beat_frequency(1e9, delta_t, duration) == pytest.approx(50e3)

    def test_beat_scales_linearly_with_bandwidth(self):
        delta_t = 5e-9
        assert beat_frequency(500e6, delta_t, 1e-4) == pytest.approx(
            0.5 * beat_frequency(1e9, delta_t, 1e-4)
        )


class TestGray:
    def test_adjacent_codes_differ_one_bit(self):
        for index in range(63):
            diff = gray_code(index) ^ gray_code(index + 1)
            assert bin(diff).count("1") == 1

    def test_roundtrip(self):
        for index in range(256):
            assert gray_decode(gray_code(index)) == index

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gray_code(-1)
        with pytest.raises(ValueError):
            gray_decode(-1)


class TestDecoderDesign:
    def test_from_inches(self):
        design = DecoderDesign.from_inches(45.0)
        assert design.delta_length_m == pytest.approx(1.143)

    def test_paper_45in_delay(self):
        design = DecoderDesign.from_inches(45.0)
        assert design.delta_t_s == pytest.approx(5.44e-9, rel=0.01)

    def test_beat_for_duration(self):
        design = DecoderDesign.from_inches(45.0)
        beat = design.beat_for_duration(1e9, 100e-6)
        assert beat == pytest.approx(1e9 * design.delta_t_s / 100e-6)


class TestAlphabetDesign:
    def test_slope_count_eq13(self, alphabet):
        # 5-bit symbols -> 2^5 data + 2 preamble slopes.
        assert alphabet.num_data_symbols == 32
        assert alphabet.num_slopes == 34

    def test_beats_ascending_and_uniform(self, alphabet):
        beats = alphabet.all_beats_hz()
        spacings = np.diff(beats)
        assert np.all(spacings > 0)
        np.testing.assert_allclose(spacings, spacings[0], rtol=1e-9)

    def test_duration_window_respected(self, alphabet):
        # 80% duty of 120 us = 96 us max; 20 us configured min.
        assert alphabet.header_duration_s == pytest.approx(96e-6)
        assert alphabet.sync_duration_s == pytest.approx(20e-6)
        for symbol in range(alphabet.num_data_symbols):
            duration = alphabet.data_symbol_duration_s(symbol)
            assert 20e-6 < duration < 96e-6

    def test_data_rate_eq14(self, alphabet):
        assert alphabet.data_rate_bps() == pytest.approx(5 / 120e-6)

    def test_paper_01mbps_example(self, decoder_design):
        # "with a symbol size of 10 bits ... and a chirp period of 100us,
        # we can achieve .1Mbps downlink data rate"
        alphabet = CsskAlphabet.design(
            bandwidth_hz=1e9,
            decoder=decoder_design,
            symbol_bits=10,
            chirp_period_s=100e-6,
            min_chirp_duration_s=20e-6,
        )
        assert alphabet.data_rate_bps() == pytest.approx(0.1e6)

    def test_min_spacing_enforced(self, decoder_design):
        with pytest.raises(AlphabetError):
            CsskAlphabet.design(
                bandwidth_hz=1e9,
                decoder=decoder_design,
                symbol_bits=10,
                chirp_period_s=120e-6,
                min_chirp_duration_s=20e-6,
                min_beat_spacing_hz=10e3,
            )

    def test_empty_duration_window_rejected(self, decoder_design):
        with pytest.raises(AlphabetError):
            CsskAlphabet.design(
                bandwidth_hz=1e9,
                decoder=decoder_design,
                symbol_bits=2,
                chirp_period_s=20e-6,
                min_chirp_duration_s=20e-6,
            )

    def test_larger_delta_l_larger_spacing(self, decoder_design):
        short = CsskAlphabet.design(
            bandwidth_hz=1e9,
            decoder=DecoderDesign.from_inches(18.0),
            symbol_bits=5,
            chirp_period_s=120e-6,
        )
        long = CsskAlphabet.design(
            bandwidth_hz=1e9,
            decoder=DecoderDesign.from_inches(45.0),
            symbol_bits=5,
            chirp_period_s=120e-6,
        )
        assert long.beat_spacing_hz > short.beat_spacing_hz

    def test_larger_bandwidth_larger_spacing(self, decoder_design):
        def spacing(bw):
            return CsskAlphabet.design(
                bandwidth_hz=bw,
                decoder=decoder_design,
                symbol_bits=5,
                chirp_period_s=120e-6,
            ).beat_spacing_hz

        assert spacing(1e9) > spacing(500e6) > spacing(250e6)


class TestSymbolMapping:
    def test_bits_roundtrip(self, alphabet):
        for symbol in range(alphabet.num_data_symbols):
            bits = alphabet.bits_for_symbol(symbol)
            assert bits.size == 5
            assert alphabet.symbol_for_bits(bits) == symbol

    def test_adjacent_symbols_one_bit_apart(self, alphabet):
        for symbol in range(alphabet.num_data_symbols - 1):
            a = alphabet.bits_for_symbol(symbol)
            b = alphabet.bits_for_symbol(symbol + 1)
            assert int(np.sum(a != b)) == 1

    def test_symbol_out_of_range(self, alphabet):
        with pytest.raises(AlphabetError):
            alphabet.bits_for_symbol(32)
        with pytest.raises(AlphabetError):
            alphabet.data_symbol_duration_s(-1)

    def test_bad_bit_vector(self, alphabet):
        with pytest.raises(AlphabetError):
            alphabet.symbol_for_bits(np.array([1, 0]))
        with pytest.raises(AlphabetError):
            alphabet.symbol_for_bits(np.array([2, 0, 0, 0, 0]))

    def test_nearest_symbol_decoding(self, alphabet):
        for symbol in (0, 7, 31):
            beat = alphabet.data_beats_hz[symbol]
            assert alphabet.nearest_data_symbol(beat + 0.3 * alphabet.beat_spacing_hz) == symbol

    def test_classify_beat_roles(self, alphabet):
        assert alphabet.classify_beat(alphabet.header_beat_hz) == ("header", None)
        assert alphabet.classify_beat(alphabet.sync_beat_hz) == ("sync", None)
        kind, symbol = alphabet.classify_beat(alphabet.data_beats_hz[4])
        assert kind == "data" and symbol == 4
