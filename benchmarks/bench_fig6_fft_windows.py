"""Fig. 6 — FFT window sizing/alignment constraints at the tag decoder.

The paper illustrates three analysis-window regimes for extracting the
beat frequency from the envelope stream: (c) a window larger than a chirp
period picks up the chirp repetition structure and biases the estimate,
(d) a chirp-long window misaligned with the chirp straddles the inter-chirp
gap, (e) a chirp-aligned window no larger than the chirp is correct.  This
bench measures the beat-estimate error in each regime and confirms the
ranking that motivates BiScatter's period-estimation + sync procedure.
"""

import numpy as np

from conftest import emit
from repro.channel.link_budget import DownlinkBudget
from repro.core.downlink import DownlinkEncoder
from repro.core.packet import DownlinkPacket
from repro.radar.config import XBAND_9GHZ
from repro.sim.results import format_table
from repro.tag.frontend import AnalyticTagFrontend
from repro.utils.dsp import dominant_frequency


def run_window_study(paper_alphabet):
    alphabet = paper_alphabet
    encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
    budget = DownlinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
    )
    frontend = AnalyticTagFrontend(budget=budget, delta_t_s=alphabet.decoder.delta_t_s)

    # A payload of identical mid-alphabet symbols: every chirp carries the
    # same beat, so any estimate error is the window's fault.
    symbol = 16
    bits = np.concatenate([alphabet.bits_for_symbol(symbol)] * 12)
    packet = DownlinkPacket.from_bits(alphabet, bits)
    frame = encoder.encode_packet(packet)
    capture = frontend.capture(frame, 1.0, rng=0, snr_override_db=40.0)
    fs = capture.sample_rate_hz
    true_beat = alphabet.data_beats_hz[symbol]
    duration = alphabet.data_symbol_duration_s(symbol)
    period_n = int(round(alphabet.chirp_period_s * fs))
    chirp_n = int(round(duration * fs))
    payload_start = packet.fields.preamble_length * period_n

    def estimate(start, length):
        window = capture.samples[start : start + length]
        return dominant_frequency(window, fs, min_frequency_hz=5e3)

    scenarios = {
        # (c) window spans several chirps including gaps and preamble edges.
        "oversized (3 periods)": estimate(payload_start, 3 * period_n),
        # (d) chirp-length window straddling the inter-chirp gap.
        "misaligned (half-chirp offset)": estimate(
            payload_start + chirp_n // 2, chirp_n
        ),
        # (e) aligned, within-chirp window.
        "aligned (chirp-long)": estimate(payload_start, chirp_n),
    }
    return true_beat, scenarios


def test_fig6_window_alignment(benchmark, paper_alphabet):
    true_beat, scenarios = benchmark.pedantic(
        run_window_study, args=(paper_alphabet,), rounds=1, iterations=1
    )
    rows = [
        [name, f"{est / 1e3:.2f}", f"{abs(est - true_beat) / 1e3:.3f}"]
        for name, est in scenarios.items()
    ]
    table = format_table(
        ["window regime", "estimated beat (kHz)", "abs error (kHz)"], rows
    )
    table += f"\ntrue beat: {true_beat / 1e3:.2f} kHz"
    emit("fig6_fft_windows", table)

    error = {name: abs(est - true_beat) for name, est in scenarios.items()}
    # Paper shape: only the aligned window recovers the right beat.
    assert error["aligned (chirp-long)"] < 0.05 * true_beat
    assert error["misaligned (half-chirp offset)"] > error["aligned (chirp-long)"]
    assert error["oversized (3 periods)"] > error["aligned (chirp-long)"]
