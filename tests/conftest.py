"""Shared fixtures: small, fast configurations reused across the suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.channel.link_budget import DownlinkBudget
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.core.packet import PacketFields
from repro.radar.config import XBAND_9GHZ, TINYRAD_24GHZ
from repro.sim.scenario import default_office_scenario


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Restore observability state after any test that enables it.

    A test (or the CLI under test) may call ``obs.configure``, which also
    exports config into ``os.environ``.  After the test, drop everything
    and re-apply whatever the *session's* environment originally asked
    for — so running the suite under ``REPRO_LOG=json`` (the CI
    obs-enabled determinism job) keeps observability on throughout.
    """
    from repro.obs import runtime

    env_names = (
        runtime.LOG_ENV, runtime.LOG_FILE_ENV,
        runtime.TRACE_DIR_ENV, runtime.RUN_ID_ENV,
    )
    backup = {name: os.environ.get(name) for name in env_names}
    yield
    runtime.reset()
    for name, value in backup.items():
        if value is not None:
            os.environ[name] = value
    runtime.configure_from_env()


@pytest.fixture(scope="session")
def decoder_design() -> DecoderDesign:
    """The paper's 45-inch delay-line difference."""
    return DecoderDesign.from_inches(45.0)


@pytest.fixture(scope="session")
def alphabet(decoder_design) -> CsskAlphabet:
    """Paper-default alphabet: 5-bit symbols, 1 GHz, 120 us period."""
    return CsskAlphabet.design(
        bandwidth_hz=1.0e9,
        decoder=decoder_design,
        symbol_bits=5,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )


@pytest.fixture(scope="session")
def small_alphabet(decoder_design) -> CsskAlphabet:
    """2-bit alphabet for fast end-to-end tests."""
    return CsskAlphabet.design(
        bandwidth_hz=1.0e9,
        decoder=decoder_design,
        symbol_bits=2,
        chirp_period_s=120e-6,
        min_chirp_duration_s=20e-6,
    )


@pytest.fixture(scope="session")
def budget() -> DownlinkBudget:
    """Default 9 GHz downlink budget."""
    return DownlinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
    )


@pytest.fixture(scope="session")
def fields() -> PacketFields:
    """Default packet preamble sizing."""
    return PacketFields()


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def office_scenario():
    """One shared paper-default scenario (read-only in tests)."""
    return default_office_scenario(tag_range_m=3.0)


@pytest.fixture(scope="session")
def xband():
    return XBAND_9GHZ


@pytest.fixture(scope="session")
def tinyrad():
    return TINYRAD_24GHZ
