"""Behavioural models of the RF/analog components used by the BiScatter tag.

Each model captures the terms that matter for link budgets and signal
shapes — insertion loss, isolation, delay, responsivity, bandwidth,
quantization — rather than full electromagnetic behaviour.  The meander
delay line additionally exposes frequency-dependent S-parameters so the
Fig. 10/11 benches can be regenerated.
"""

from repro.components.base import TwoPortComponent, cascade_loss_db
from repro.components.splitter import SplitterCombiner
from repro.components.delay_line import CoaxialDelayLine, MeanderDelayLine
from repro.components.envelope_detector import EnvelopeDetector
from repro.components.rf_switch import SpdtSwitch, SwitchState
from repro.components.adc import ADC
from repro.components.antenna import Antenna
from repro.components.amplifier import Amplifier
from repro.components.van_atta import VanAttaArray

__all__ = [
    "TwoPortComponent",
    "cascade_loss_db",
    "SplitterCombiner",
    "CoaxialDelayLine",
    "MeanderDelayLine",
    "EnvelopeDetector",
    "SpdtSwitch",
    "SwitchState",
    "ADC",
    "Antenna",
    "Amplifier",
    "VanAttaArray",
]
