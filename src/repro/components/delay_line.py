"""Delay-line models: coaxial cable and PCB meander line.

The differential decoder derives its beat frequency from the *difference*
in delay between two lines (Eq. 10: ``dT = dL / (k c)``).  Two models are
provided:

* :class:`CoaxialDelayLine` — the paper's bench configuration (coax with
  velocity factor k ~ 0.7), frequency-flat.
* :class:`MeanderDelayLine` — the PCB-integrated microstrip meander line of
  Figs. 9-11 (Rogers 3006 substrate; 1.26 ns over 64 mm x 3 mm), with
  frequency-dependent delay ripple, insertion loss, and an S11 model so the
  Fig. 10/11 benches can regenerate those curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import COAX_VELOCITY_FACTOR, SPEED_OF_LIGHT
from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class CoaxialDelayLine:
    """A length of coaxial cable acting as a fixed delay.

    Parameters
    ----------
    length_m:
        Physical length of the cable.
    velocity_factor:
        Signal speed relative to c (``k`` in Eq. 10; ~0.7 for common coax).
    loss_db_per_m_at_1ghz:
        Attenuation scale; coax loss grows roughly with sqrt(frequency).
    """

    length_m: float
    velocity_factor: float = COAX_VELOCITY_FACTOR
    loss_db_per_m_at_1ghz: float = 0.4

    def __post_init__(self) -> None:
        ensure_positive("length_m", self.length_m)
        ensure_in_range("velocity_factor", self.velocity_factor, 0.1, 1.0)
        ensure_in_range("loss_db_per_m_at_1ghz", self.loss_db_per_m_at_1ghz, 0.0, 100.0)

    def group_delay_s(self, frequency_hz: float = 0.0) -> float:
        """Propagation delay ``L / (k c)``; frequency-flat for coax."""
        return self.length_m / (self.velocity_factor * SPEED_OF_LIGHT)

    def insertion_loss_db(self, frequency_hz: float) -> float:
        """Skin-effect-dominated loss, scaling with sqrt(f)."""
        ensure_positive("frequency_hz", frequency_hz)
        return self.loss_db_per_m_at_1ghz * self.length_m * np.sqrt(frequency_hz / 1e9)


@dataclass(frozen=True)
class MeanderDelayLine:
    """PCB microstrip meander delay line (paper Figs. 9-11).

    The behavioural model captures what the decoder cares about: nominal
    group delay, small delay ripple across the band (dielectric dispersion),
    insertion loss rising with frequency, and return loss (S11) with
    periodic resonant dips from the meander sections.

    Defaults reproduce the paper's 9 GHz design: 1.26 ns delay across a
    1 GHz bandwidth on Rogers 3006 (dielectric constant 6.15), 64 mm long.
    """

    nominal_delay_s: float = 1.26e-9
    center_frequency_hz: float = 9.0e9
    bandwidth_hz: float = 1.0e9
    dielectric_constant: float = 6.15
    length_m: float = 0.064
    base_insertion_loss_db: float = 1.5
    loss_slope_db_per_ghz: float = 0.35
    delay_ripple_fraction: float = 0.01
    s11_floor_db: float = -18.0
    num_meander_sections: int = 8

    def __post_init__(self) -> None:
        ensure_positive("nominal_delay_s", self.nominal_delay_s)
        ensure_positive("center_frequency_hz", self.center_frequency_hz)
        ensure_positive("bandwidth_hz", self.bandwidth_hz)
        ensure_in_range("dielectric_constant", self.dielectric_constant, 1.0, 100.0)
        ensure_positive("length_m", self.length_m)
        ensure_in_range("delay_ripple_fraction", self.delay_ripple_fraction, 0.0, 0.5)
        ensure_in_range("s11_floor_db", self.s11_floor_db, -60.0, 0.0)
        if self.num_meander_sections < 1:
            raise ValueError(
                f"num_meander_sections must be >= 1, got {self.num_meander_sections}"
            )

    @property
    def effective_velocity_factor(self) -> float:
        """Equivalent ``k`` for Eq. 10 given the achieved delay and length.

        The meander extends the electrical length, so the *effective* k
        (physical length over delay, normalized by c) is much smaller than
        the substrate's intrinsic 1/sqrt(eps_eff).
        """
        return self.length_m / (self.nominal_delay_s * SPEED_OF_LIGHT)

    def _band_offset(self, frequency_hz: float) -> float:
        """Frequency offset from band center, normalized to half-bandwidth."""
        return (frequency_hz - self.center_frequency_hz) / (self.bandwidth_hz / 2.0)

    def group_delay_s(self, frequency_hz: float | np.ndarray) -> float | np.ndarray:
        """Group delay with a gentle dispersion ripple across the band.

        The ripple is modelled as a slow cosine over the band, bounded by
        ``delay_ripple_fraction`` of the nominal delay — consistent with the
        measured near-flat delay in Fig. 11.
        """
        offset = self._band_offset(np.asarray(frequency_hz, dtype=float))
        ripple = self.delay_ripple_fraction * np.cos(np.pi * offset)
        out = self.nominal_delay_s * (1.0 + ripple)
        return float(out) if np.isscalar(frequency_hz) else out

    def insertion_loss_db(self, frequency_hz: float | np.ndarray) -> float | np.ndarray:
        """Insertion loss rising linearly with frequency offset (Fig. 11)."""
        freq = np.asarray(frequency_hz, dtype=float)
        loss = (
            self.base_insertion_loss_db
            + self.loss_slope_db_per_ghz * (freq - self.center_frequency_hz + self.bandwidth_hz / 2) / 1e9
        )
        out = np.maximum(loss, 0.0)
        return float(out) if np.isscalar(frequency_hz) else out

    def s11_db(self, frequency_hz: float | np.ndarray) -> float | np.ndarray:
        """Return loss with periodic resonant dips from meander sections.

        Matches the qualitative Fig. 10 shape: S11 stays below about
        -15 dB in band with several deeper nulls where section reflections
        cancel.
        """
        freq = np.asarray(frequency_hz, dtype=float)
        offset = self._band_offset(freq)
        ripple = np.cos(np.pi * self.num_meander_sections * offset) ** 2
        # Dips go 12 dB below the floor; edges of band degrade slightly.
        edge_penalty = 3.0 * np.clip(np.abs(offset) - 1.0, 0.0, None)
        out = self.s11_floor_db - 12.0 * ripple + edge_penalty
        out = np.minimum(out, -3.0)
        return float(out) if np.isscalar(frequency_hz) else out


def delay_difference_s(line_long: CoaxialDelayLine, line_short: CoaxialDelayLine) -> float:
    """``dT`` between two coax lines (Eq. 10), the decoder design quantity."""
    return line_long.group_delay_s() - line_short.group_delay_s()
