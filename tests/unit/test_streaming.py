"""Firmware-style streaming decoder: state machine, memory bound, accuracy."""

import numpy as np
import pytest

from repro.channel.link_budget import DownlinkBudget
from repro.core.downlink import DownlinkEncoder
from repro.core.packet import DownlinkPacket
from repro.core.ber import bit_error_rate, random_bits
from repro.errors import ConfigurationError
from repro.radar.config import XBAND_9GHZ
from repro.tag.frontend import AnalyticTagFrontend
from repro.tag.streaming import DecoderState, StreamingTagDecoder


@pytest.fixture(scope="module")
def link(alphabet):
    encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
    budget = DownlinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
    )
    frontend = AnalyticTagFrontend(budget=budget, delta_t_s=alphabet.decoder.delta_t_s)
    return encoder, frontend


def packet_stream(link, alphabet, seed, num_symbols=16, distance=3.0, pad=700):
    encoder, frontend = link
    bits = random_bits(alphabet.symbol_bits * num_symbols, rng=seed)
    packet = DownlinkPacket.from_bits(alphabet, bits)
    frame = encoder.encode_packet(packet)
    capture = frontend.capture(frame, distance, rng=seed + 1)
    rng = np.random.default_rng(seed + 2)
    stream = np.concatenate(
        [
            rng.normal(0, 1e-7, pad),
            capture.samples,
            rng.normal(0, 1e-7, pad),
        ]
    )
    return bits, packet, stream


def run_stream(decoder, stream, chunk=256):
    for start in range(0, stream.size, chunk):
        decoder.process(stream[start : start + chunk])
    return decoder.finish()


class TestStateMachine:
    def test_idle_until_energy(self, alphabet):
        decoder = StreamingTagDecoder(alphabet, 1e6)
        decoder.process(np.random.default_rng(0).normal(0, 1e-7, 2000))
        assert decoder.state is DecoderState.IDLE
        assert decoder.stats.packets_started == 0

    def test_full_packet_roundtrip(self, link, alphabet):
        bits, packet, stream = packet_stream(link, alphabet, seed=10)
        decoder = StreamingTagDecoder(alphabet, 1e6, payload_symbols=16)
        symbols = run_stream(decoder, stream)
        assert symbols[:16] == packet.payload_symbols()
        assert decoder.stats.packets_completed == 1
        assert decoder.state is DecoderState.IDLE
        assert bit_error_rate(bits, decoder.decoded_bits()[: bits.size]) == 0.0

    def test_chunk_size_independence(self, link, alphabet):
        _, packet, stream = packet_stream(link, alphabet, seed=20)
        results = []
        for chunk in (64, 500, 10_000):
            decoder = StreamingTagDecoder(alphabet, 1e6, payload_symbols=16)
            results.append(run_stream(decoder, stream, chunk=chunk)[:16])
        assert results[0] == results[1] == results[2] == packet.payload_symbols()

    def test_memory_bound_respected(self, link, alphabet):
        _, _, stream = packet_stream(link, alphabet, seed=30)
        decoder = StreamingTagDecoder(alphabet, 1e6, payload_symbols=16)
        run_stream(decoder, stream, chunk=128)
        assert decoder.stats.max_buffer_samples <= decoder.buffer_bound_samples

    def test_two_packets_back_to_back(self, link, alphabet):
        bits_a, packet_a, stream_a = packet_stream(link, alphabet, seed=40)
        bits_b, packet_b, stream_b = packet_stream(link, alphabet, seed=50)
        decoder = StreamingTagDecoder(alphabet, 1e6, payload_symbols=16)
        run_stream(decoder, np.concatenate([stream_a, stream_b]))
        assert decoder.stats.packets_completed == 2
        symbols = decoder._symbols
        assert symbols[:16] == packet_a.payload_symbols()
        assert symbols[16:32] == packet_b.payload_symbols()

    def test_symbol_callback(self, link, alphabet):
        _, packet, stream = packet_stream(link, alphabet, seed=60)
        seen = []
        decoder = StreamingTagDecoder(
            alphabet, 1e6, payload_symbols=16, on_symbol=seen.append
        )
        run_stream(decoder, stream)
        assert seen[:16] == packet.payload_symbols()

    def test_noise_only_never_completes(self, alphabet):
        decoder = StreamingTagDecoder(alphabet, 1e6, payload_symbols=8)
        rng = np.random.default_rng(1)
        for _ in range(20):
            decoder.process(rng.normal(0, 1e-7, 1000))
        decoder.finish()
        assert decoder.stats.packets_completed == 0

    def test_validation(self, alphabet):
        with pytest.raises(ConfigurationError):
            StreamingTagDecoder(alphabet, 1e6, payload_symbols=0)
        decoder = StreamingTagDecoder(alphabet, 1e6)
        with pytest.raises(ConfigurationError):
            decoder.process(np.zeros((4, 4)))
