"""Observability runtime state: one switch, one run id, one configuration.

Everything in :mod:`repro.obs` funnels through this module's process-global
state.  The design constraint is the *disabled* path: Monte-Carlo hot loops
call into observability helpers unconditionally, so every public helper
starts with a check of the module-level :data:`_enabled` flag and returns
before touching kwargs, clocks, or streams.  Enabling costs a real run
telemetry; staying disabled costs one attribute load and a branch.

Configuration sources, in precedence order:

1. :func:`configure` — programmatic (the CLI's ``--log-json`` /
   ``--profile`` / ``--trace-dir`` flags end up here).
2. Environment, read at import and by :func:`configure_from_env`:

   ``REPRO_LOG``
       ``json`` or ``console`` — enables event logging in that format.
   ``REPRO_LOG_FILE``
       Append events to this file instead of stderr.  Appends are single
       ``write`` calls, so several processes sharing the file interleave
       whole lines — one merged JSON-lines log per run.
   ``REPRO_TRACE_DIR``
       Enables span tracing; the per-run Chrome trace file lands here.
   ``REPRO_RUN_ID``
       Adopt an existing run id instead of minting one (set automatically
       in ``os.environ`` by :func:`configure` so child processes join the
       parent's run).

Worker processes of a pool are configured explicitly through
:func:`worker_config` / :func:`apply_worker_config` (the executor passes
them through the pool initializer), which is robust even when the
``forkserver`` was started before the parent enabled observability and
therefore holds a stale environment snapshot.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any

LOG_ENV = "REPRO_LOG"
LOG_FILE_ENV = "REPRO_LOG_FILE"
TRACE_DIR_ENV = "REPRO_TRACE_DIR"
RUN_ID_ENV = "REPRO_RUN_ID"

LOG_FORMATS = ("console", "json")

#: Fast-path switch.  Never written directly — use :func:`configure` /
#: :func:`reset` so dependent state stays coherent.
_enabled = False

_lock = threading.Lock()
_run_counter = itertools.count(1)


class _State:
    """The mutable configuration behind the module-level accessors."""

    __slots__ = ("log_format", "log_stream", "log_path", "trace_dir", "run_id")

    def __init__(self) -> None:
        self.log_format = "console"
        self.log_stream = None  # None -> sys.stderr, resolved at emit time
        self.log_path: "str | None" = None
        self.trace_dir: "str | None" = None
        self.run_id: "str | None" = None


_state = _State()


def _mint_run_id() -> str:
    """A short, per-process-unique run id (not a result input — wall clock is fine)."""
    return f"r{int(time.time() * 1000):011x}-{os.getpid()}-{next(_run_counter)}"


def enabled() -> bool:
    """Whether observability is on at all (the one fast-path check)."""
    return _enabled


def tracing_enabled() -> bool:
    """Whether span tracing has somewhere to write."""
    return _enabled and _state.trace_dir is not None


def run_id() -> "str | None":
    """The current run id (``None`` while disabled)."""
    return _state.run_id


def log_format() -> str:
    return _state.log_format


def log_stream():
    return _state.log_stream


def log_path() -> "str | None":
    return _state.log_path


def trace_dir() -> "str | None":
    return _state.trace_dir


def configure(
    *,
    log_format: "str | None" = None,
    stream: Any = None,
    log_file: "str | None" = None,
    trace_dir: "str | None" = None,
    run_id: "str | None" = None,
    export_env: bool = True,
) -> str:
    """Enable observability and return the run id in effect.

    ``log_format`` defaults to ``console``; ``stream`` overrides the
    output stream (tests), ``log_file`` routes events to an append-only
    file shared across processes.  ``trace_dir`` switches span tracing
    on.  With ``export_env`` (default) the choices are mirrored into
    ``os.environ`` so child processes spawned later inherit them.
    """
    global _enabled
    if log_format is not None and log_format not in LOG_FORMATS:
        raise ValueError(
            f"log_format must be one of {LOG_FORMATS}, got {log_format!r}"
        )
    with _lock:
        if log_format is not None:
            _state.log_format = log_format
        if stream is not None:
            _state.log_stream = stream
        if log_file is not None:
            _state.log_path = str(log_file)
        if trace_dir is not None:
            _state.trace_dir = str(trace_dir)
        if run_id is not None:
            _state.run_id = str(run_id)
        elif _state.run_id is None:
            _state.run_id = _mint_run_id()
        _enabled = True
        if export_env:
            os.environ[LOG_ENV] = _state.log_format
            os.environ[RUN_ID_ENV] = _state.run_id
            if _state.log_path is not None:
                os.environ[LOG_FILE_ENV] = _state.log_path
            if _state.trace_dir is not None:
                os.environ[TRACE_DIR_ENV] = _state.trace_dir
        if _state.trace_dir is not None and export_env:
            # A deliberate (parent-side) configure: create the trace file
            # and its header before any worker can, so concurrent first
            # writes never race on the header.  Env-driven configuration
            # (workers, preloaded forkserver) stays lazy — those processes
            # adopt the parent's file on their first span instead of
            # minting one of their own.
            from repro.obs import tracing

            tracing.ensure_trace_file()
        return _state.run_id


def configure_from_env(environ: "dict[str, str] | None" = None) -> bool:
    """Enable observability if the environment asks for it.

    Returns whether observability ended up enabled.  Called once at
    import, and explicitly by worker entry points that may have been
    handed a fresh environment.
    """
    env = os.environ if environ is None else environ
    log_setting = env.get(LOG_ENV, "").strip().lower()
    trace_setting = env.get(TRACE_DIR_ENV, "").strip()
    if not log_setting and not trace_setting:
        return _enabled
    configure(
        log_format=log_setting if log_setting in LOG_FORMATS else "console",
        log_file=env.get(LOG_FILE_ENV) or None,
        trace_dir=trace_setting or None,
        run_id=env.get(RUN_ID_ENV) or None,
        export_env=False,
    )
    return True


def reset() -> None:
    """Disable observability and drop all state (test isolation hook)."""
    global _enabled, _state
    from repro.obs import events, manifest, metrics, tracing

    with _lock:
        _enabled = False
        _state = _State()
    events._reset()
    metrics._reset()
    tracing._reset()
    manifest.discard()
    for name in (LOG_ENV, LOG_FILE_ENV, TRACE_DIR_ENV, RUN_ID_ENV):
        os.environ.pop(name, None)


def worker_config() -> "dict[str, Any] | None":
    """The picklable configuration a pool worker needs to join this run.

    ``None`` while disabled, so the worker initializer stays a no-op.
    """
    if not _enabled:
        return None
    return {
        "log_format": _state.log_format,
        "log_file": _state.log_path,
        "trace_dir": _state.trace_dir,
        "run_id": _state.run_id,
    }


def apply_worker_config(config: "dict[str, Any] | None") -> None:
    """Adopt a parent's :func:`worker_config` inside a worker process."""
    if config is None:
        return
    configure(
        log_format=config.get("log_format"),
        log_file=config.get("log_file"),
        trace_dir=config.get("trace_dir"),
        run_id=config.get("run_id"),
        export_env=False,
    )


configure_from_env()
