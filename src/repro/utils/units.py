"""Unit conversions used throughout the radar / RF stack.

Conventions: powers are in watts, levels in dBm, gains/losses in dB.
Losses are expressed as *positive* dB numbers wherever a parameter name
says ``loss``; gains may be negative.
"""

from __future__ import annotations

import numpy as np

from repro.constants import METERS_PER_INCH, SPEED_OF_LIGHT


def db_to_power_ratio(db: float | np.ndarray) -> float | np.ndarray:
    """Convert a dB gain to a linear power ratio: ``10 ** (db / 10)``."""
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0) if isinstance(db, np.ndarray) else 10.0 ** (db / 10.0)


def power_ratio_to_db(ratio: float | np.ndarray) -> float | np.ndarray:
    """Convert a linear power ratio to dB.  Ratio must be positive."""
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0):
        raise ValueError(f"power ratio must be positive, got {ratio!r}")
    out = 10.0 * np.log10(arr)
    return out if isinstance(ratio, np.ndarray) else float(out)


def db_to_voltage_ratio(db: float) -> float:
    """Convert a dB gain to a linear amplitude (voltage) ratio."""
    return 10.0 ** (db / 20.0)


def voltage_ratio_to_db(ratio: float) -> float:
    """Convert a linear amplitude ratio to dB.  Ratio must be positive."""
    if ratio <= 0:
        raise ValueError(f"voltage ratio must be positive, got {ratio!r}")
    return 20.0 * float(np.log10(ratio))


def dbm_to_watts(dbm: float | np.ndarray) -> float | np.ndarray:
    """Convert a power level in dBm to watts."""
    arr = np.asarray(dbm, dtype=float)
    out = 10.0 ** ((arr - 30.0) / 10.0)
    return out if isinstance(dbm, np.ndarray) else float(out)


def watts_to_dbm(watts: float | np.ndarray) -> float | np.ndarray:
    """Convert a power in watts to dBm.  Power must be positive."""
    arr = np.asarray(watts, dtype=float)
    if np.any(arr <= 0):
        raise ValueError(f"power must be positive, got {watts!r}")
    out = 10.0 * np.log10(arr) + 30.0
    return out if isinstance(watts, np.ndarray) else float(out)


def wavelength(frequency_hz: float) -> float:
    """Free-space wavelength (m) of a carrier at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return SPEED_OF_LIGHT / frequency_hz


def inches_to_meters(inches: float) -> float:
    """Convert inches to meters (delay-line lengths are quoted in inches)."""
    return inches * METERS_PER_INCH
