"""Baseline systems the paper compares against (Table 1)."""

from repro.baselines.base import SystemCapabilities
from repro.baselines.millimetro import MillimetroSystem
from repro.baselines.mmtag import MmTagSystem
from repro.baselines.milback import MilBackSystem
from repro.baselines.biscatter_entry import BiScatterSystem

__all__ = [
    "SystemCapabilities",
    "MillimetroSystem",
    "MmTagSystem",
    "MilBackSystem",
    "BiScatterSystem",
]
