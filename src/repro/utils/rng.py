"""Random-number plumbing.

All stochastic code in this package accepts a ``rng`` argument that may be
``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  Monte-Carlo sweeps use
:func:`spawn_streams` to derive independent, reproducible child streams.

Child derivation is **index-keyed**: trial ``i``'s stream is a pure
function of ``(root SeedSequence, i)`` and nothing else.  NumPy's
``SeedSequence.spawn`` derives child ``i`` as
``SeedSequence(entropy, spawn_key=spawn_key + (i,))`` and only uses a
mutable counter to pick the next ``i``, so deriving children directly by
index reproduces ``Generator.spawn`` bit for bit while staying independent
of how trials are later chunked across workers.  :class:`SeedSpec` is the
picklable capsule that carries the root across process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

RngLike = "int | np.random.Generator | None"


def resolve_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted rng spec."""
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, an int seed, or a Generator, got {type(rng).__name__}")


def seed_sequence_of(rng: int | np.random.Generator | None) -> np.random.SeedSequence:
    """The root :class:`numpy.random.SeedSequence` behind an rng spec."""
    if rng is None:
        return np.random.SeedSequence()
    if isinstance(rng, (int, np.integer)):
        return np.random.SeedSequence(int(rng))
    if isinstance(rng, np.random.Generator):
        seed_seq = getattr(rng.bit_generator, "seed_seq", None)
        if not isinstance(seed_seq, np.random.SeedSequence):
            raise TypeError(
                "Generator's bit generator does not expose a SeedSequence; "
                "construct it via numpy.random.default_rng to use index-keyed spawning"
            )
        return seed_seq
    raise TypeError(f"rng must be None, an int seed, or a Generator, got {type(rng).__name__}")


@dataclass(frozen=True)
class SeedSpec:
    """Picklable recipe for index-keyed child streams.

    Captures the root :class:`~numpy.random.SeedSequence` (entropy +
    spawn key) plus the bit-generator class, so any process can derive
    trial ``i``'s generator without coordinating with other workers:
    ``spec.stream(i)`` equals the ``i``-th element of
    ``Generator.spawn(n)`` on the root, for every chunking of ``0..n-1``.
    """

    entropy: "int | tuple[int, ...]"
    spawn_key: "tuple[int, ...]" = ()
    pool_size: int = 4
    bit_generator: str = "PCG64"

    @classmethod
    def from_rng(cls, rng: "int | np.random.Generator | SeedSpec | None") -> "SeedSpec":
        """Build a spec from any rng spec (specs pass through unchanged)."""
        if isinstance(rng, SeedSpec):
            return rng
        seed_seq = seed_sequence_of(rng)
        bit_name = "PCG64"
        if isinstance(rng, np.random.Generator):
            bit_name = type(rng.bit_generator).__name__
        entropy = seed_seq.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = tuple(int(e) for e in entropy)
        elif entropy is not None:
            entropy = int(entropy)
        return cls(
            entropy=entropy,
            spawn_key=tuple(int(k) for k in seed_seq.spawn_key),
            pool_size=int(seed_seq.pool_size),
            bit_generator=bit_name,
        )

    def child(self, index: int) -> "SeedSpec":
        """The spec for child ``index`` (nested derivation, e.g. sweep point)."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        return SeedSpec(
            entropy=self.entropy,
            spawn_key=self.spawn_key + (int(index),),
            pool_size=self.pool_size,
            bit_generator=self.bit_generator,
        )

    def seed_sequence(self) -> np.random.SeedSequence:
        """Materialise the spec as a :class:`numpy.random.SeedSequence`."""
        return np.random.SeedSequence(
            entropy=self.entropy, spawn_key=self.spawn_key, pool_size=self.pool_size
        )

    def generator(self) -> np.random.Generator:
        """A generator seeded from this spec's own seed sequence."""
        bit_cls = getattr(np.random, self.bit_generator, None)
        if bit_cls is None:
            raise ValueError(f"unknown bit generator {self.bit_generator!r}")
        return np.random.Generator(bit_cls(self.seed_sequence()))

    def stream(self, index: int) -> np.random.Generator:
        """Trial ``index``'s generator — bit-identical to serial ``spawn``."""
        return self.child(index).generator()


def spawn_streams(rng: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are index-keyed off the root seed sequence (see module
    docstring), which reproduces ``Generator.spawn`` for a fresh parent
    while making child ``i`` independent of chunk boundaries — the
    property the parallel executor's determinism contract rests on.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    spec = SeedSpec.from_rng(rng)
    return [spec.stream(index) for index in range(count)]
