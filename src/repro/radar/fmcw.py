"""IF-domain FMCW radar simulation.

Rather than synthesizing passband samples at tens of GHz, the receiver is
simulated directly in the dechirped (IF) domain — the standard approach for
FMCW simulators.  After mixing the received echo with the transmitted
chirp, a scatterer at range ``r`` contributes::

    x[n] = A * exp(j 2 pi (f_b n / f_s + f0 tau))        (per chirp)

with beat frequency ``f_b = 2 alpha r / c`` (Eq. 3), round-trip delay
``tau = 2 r / c``, and amplitude ``A = sqrt(P_received)`` from the radar
equation.  Slow-time effects (tag OOK modulation, Doppler) multiply ``A``
per chirp.

Convention: IF sample power is ``|x|^2`` in watts (no envelope 1/2), so
noise is complex AWGN of total power ``kTB_fs * NF``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.noise import phase_noise_samples
from repro.channel.propagation import radar_received_power_dbm
from repro.constants import SPEED_OF_LIGHT
from repro.errors import SimulationError
from repro.radar.config import RadarConfig
from repro.utils.rng import resolve_rng
from repro.utils.units import dbm_to_watts
from repro.utils.validation import ensure_positive
from repro.waveform.frame import FrameSchedule


@dataclass
class Scatterer:
    """A point reflector seen by the radar.

    Parameters
    ----------
    range_m:
        Distance from the radar at frame start.
    rcs_m2:
        Radar cross-section; for a modulating tag this is the *reflective*
        state RCS and ``amplitude_schedule`` scales it per chirp.
    velocity_m_s:
        Radial velocity (positive = receding).
    angle_deg:
        Azimuth off the radar boresight (affects antenna gain).
    amplitude_schedule:
        Optional per-chirp multiplicative amplitude (length = number of
        chirps in the frame); models tag OOK/ASK switching in slow time.
        Values are amplitude (voltage) factors in [0, 1].
    gain_jitter_std:
        Std of a per-chirp complex gain perturbation ``1 + sigma (g_r +
        j g_i) / sqrt(2)`` modelling residual oscillator phase noise and
        micro-vibration.  This is what keeps "static" clutter from being
        perfectly cancellable — the effect that bounds real-world
        backscatter SNR.  Default 1%.
    """

    range_m: float
    rcs_m2: float
    velocity_m_s: float = 0.0
    angle_deg: float = 0.0
    amplitude_schedule: np.ndarray | None = None
    gain_jitter_std: float = 0.01

    def __post_init__(self) -> None:
        ensure_positive("range_m", self.range_m)
        ensure_positive("rcs_m2", self.rcs_m2)
        if self.amplitude_schedule is not None:
            self.amplitude_schedule = np.asarray(self.amplitude_schedule, dtype=float)
            if np.any(self.amplitude_schedule < 0):
                raise SimulationError("amplitude_schedule entries must be >= 0")
        if self.gain_jitter_std < 0:
            raise SimulationError(
                f"gain_jitter_std must be >= 0, got {self.gain_jitter_std!r}"
            )

    def amplitude_at_chirp(self, chirp_index: int) -> float:
        """Slow-time amplitude factor for chirp ``chirp_index``."""
        if self.amplitude_schedule is None:
            return 1.0
        if chirp_index >= self.amplitude_schedule.size:
            raise SimulationError(
                f"amplitude_schedule has {self.amplitude_schedule.size} entries but "
                f"chirp {chirp_index} was requested"
            )
        return float(self.amplitude_schedule[chirp_index])

    def range_at_time(self, t_s: float) -> float:
        """Range at an absolute frame time, following constant velocity."""
        return self.range_m + self.velocity_m_s * t_s


@dataclass
class IFFrame:
    """Dechirped receiver output for one frame.

    ``chirp_samples`` is a list (one entry per slot) of complex IF sample
    arrays; lengths differ across slots when chirp durations differ (the
    radar samples only while the chirp is sweeping).
    """

    frame: FrameSchedule
    sample_rate_hz: float
    chirp_samples: list[np.ndarray] = field(default_factory=list)

    @property
    def num_chirps(self) -> int:
        return len(self.chirp_samples)

    def samples_per_chirp(self) -> list[int]:
        """Sample count of each slot."""
        return [samples.size for samples in self.chirp_samples]

    def chirp_start_times_s(self) -> np.ndarray:
        """Slot start times (slow-time axis for Doppler processing)."""
        return np.array([slot.start_time_s for slot in self.frame.slots])


class FMCWRadar:
    """An FMCW radar transceiver simulated at IF.

    Parameters
    ----------
    config:
        Platform description (band, power, sampling, noise).
    """

    def __init__(self, config: RadarConfig) -> None:
        self.config = config

    def received_amplitude(self, scatterer: Scatterer, range_m: float | None = None) -> float:
        """Voltage amplitude (sqrt watts) of a scatterer's IF tone."""
        distance = scatterer.range_m if range_m is None else range_m
        gain = self.config.antenna.gain_db_at(scatterer.angle_deg)
        power_dbm = radar_received_power_dbm(
            self.config.tx_power_dbm,
            gain,
            gain,
            distance,
            self.config.center_frequency_hz,
            scatterer.rcs_m2,
        )
        return float(np.sqrt(dbm_to_watts(power_dbm)))

    def noise_power_w(self) -> float:
        """Total complex-noise power in the IF sample stream."""
        return float(
            dbm_to_watts(self.config.noise.noise_power_dbm(self.config.if_sample_rate_hz))
        )

    def receive_frame(
        self,
        frame: FrameSchedule,
        scatterers: "list[Scatterer]",
        *,
        rng: int | np.random.Generator | None = None,
        add_noise: bool = True,
    ) -> IFFrame:
        """Simulate the dechirped IF data for a full frame.

        Each slot yields ``round(T_chirp * f_s)`` complex samples containing
        every scatterer's beat tone (with slow-time amplitude schedules and
        Doppler applied) plus receiver noise.
        """
        return self.receive_frame_multi_rx(
            frame, scatterers, rx_offsets_wavelengths=[0.0], rng=rng, add_noise=add_noise
        )[0]

    def receive_frame_multi_rx(
        self,
        frame: FrameSchedule,
        scatterers: "list[Scatterer]",
        *,
        rx_offsets_wavelengths: "list[float]",
        rng: int | np.random.Generator | None = None,
        add_noise: bool = True,
    ) -> "list[IFFrame]":
        """Simulate a multi-antenna receive: one IFFrame per RX element.

        ``rx_offsets_wavelengths`` are the element positions along the
        array axis in carrier wavelengths (e.g. ``[0.0, 0.5]`` for a
        half-wavelength pair).  A scatterer at azimuth ``theta`` arrives at
        element ``m`` with steering phase ``2 pi x_m sin(theta)``.  The
        per-chirp gain jitter of each scatterer is drawn ONCE and shared
        across elements (it is the scatterer's physics, not the
        receiver's); thermal noise is independent per element.
        """
        if not rx_offsets_wavelengths:
            raise SimulationError("need at least one RX element")
        generator = resolve_rng(rng)
        fs = self.config.if_sample_rate_hz
        noise_power = self.noise_power_w() if add_noise else 0.0
        num_rx = len(rx_offsets_wavelengths)
        per_rx_samples: "list[list[np.ndarray]]" = [[] for _ in range(num_rx)]
        steering = [
            np.array(
                [
                    np.exp(
                        2j
                        * np.pi
                        * offset
                        * np.sin(np.radians(scatterer.angle_deg))
                    )
                    for scatterer in scatterers
                ]
            )
            for offset in rx_offsets_wavelengths
        ]
        for chirp_index, slot in enumerate(frame.slots):
            chirp = slot.chirp
            num_samples = int(round(chirp.duration_s * fs))
            if num_samples < 2:
                raise SimulationError(
                    f"chirp {chirp_index} of {chirp.duration_s}s yields {num_samples} IF "
                    f"samples at {fs}Hz"
                )
            t_fast = np.arange(num_samples) / fs
            contributions: "list[tuple[int, np.ndarray]]" = []
            for scatterer_index, scatterer in enumerate(scatterers):
                slow_amplitude = scatterer.amplitude_at_chirp(chirp_index)
                if slow_amplitude == 0.0:
                    continue
                range_now = scatterer.range_at_time(slot.start_time_s)
                if range_now <= 0:
                    raise SimulationError(
                        f"scatterer crossed the radar (range {range_now} m) at chirp {chirp_index}"
                    )
                tau = 2.0 * range_now / SPEED_OF_LIGHT
                beat_hz = chirp.slope_hz_per_s * tau
                if beat_hz > fs / 2.0:
                    # Beyond the receiver's unambiguous IF band: the
                    # anti-aliasing filter removes it.
                    continue
                amplitude = self.received_amplitude(scatterer, range_now) * slow_amplitude
                gain = 1.0 + 0j
                if scatterer.gain_jitter_std > 0:
                    scale = scatterer.gain_jitter_std / np.sqrt(2.0)
                    gain += scale * (
                        generator.standard_normal() + 1j * generator.standard_normal()
                    )
                phase = 2.0 * np.pi * (beat_hz * t_fast + chirp.start_frequency_hz * tau)
                contributions.append(
                    (scatterer_index, amplitude * gain * np.exp(1j * phase))
                )
            if self.config.phase_noise_linewidth_hz > 0:
                lo_noise = phase_noise_samples(
                    num_samples,
                    fs,
                    linewidth_hz=self.config.phase_noise_linewidth_hz,
                    rng=generator,
                )
            else:
                lo_noise = None
            for rx_index in range(num_rx):
                samples = np.zeros(num_samples, dtype=complex)
                for scatterer_index, tone in contributions:
                    samples += steering[rx_index][scatterer_index] * tone
                if lo_noise is not None:
                    samples = samples * lo_noise
                if add_noise and noise_power > 0:
                    scale = np.sqrt(noise_power / 2.0)
                    samples = samples + scale * (
                        generator.standard_normal(num_samples)
                        + 1j * generator.standard_normal(num_samples)
                    )
                per_rx_samples[rx_index].append(samples)
        return [
            IFFrame(frame=frame, sample_rate_hz=fs, chirp_samples=chirp_list)
            for chirp_list in per_rx_samples
        ]
