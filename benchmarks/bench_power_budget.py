"""Section 4.1 — tag power consumption.

Regenerates the paper's power accounting: ~48 mW in continuous
communication-and-sensing mode (40 mW MCU + 8 mW envelope detector +
2.86 uW switch), sub-10 uW while only backscattering (PWM-driven switch,
MCU asleep), the duty-cycled sequential mode in between, and the projected
~4 mW custom-IC budget.
"""

from conftest import emit
from repro.sim.results import format_table
from repro.tag.power import PowerMode, TagPowerModel


def build_power_table():
    prototype = TagPowerModel.prototype()
    projected = TagPowerModel.projected_ic()
    rows = []
    for label, model in (("COTS prototype", prototype), ("projected IC", projected)):
        rows.append(
            [
                label,
                f"{model.continuous_power_w() * 1e3:.2f}",
                f"{model.downlink_only_power_w() * 1e3:.2f}",
                f"{model.uplink_only_power_w() * 1e6:.2f}",
                f"{model.sequential_power_w(0.1) * 1e3:.3f}",
                f"{model.sequential_power_w(0.5) * 1e3:.3f}",
            ]
        )
    return prototype, projected, rows


def test_power_budget(benchmark):
    prototype, projected, rows = benchmark.pedantic(
        build_power_table, rounds=1, iterations=1
    )
    table = format_table(
        [
            "design",
            "continuous (mW)",
            "downlink-only (mW)",
            "uplink-only (uW)",
            "sequential 10% DL (mW)",
            "sequential 50% DL (mW)",
        ],
        rows,
    )
    table += (
        "\ncomponents (prototype): switch 2.86 uW, envelope detector 8 mW, "
        "MCU @1 MHz 40 mW (paper Section 4.1)"
    )
    emit("power_budget", table)

    # Paper numbers: ~48 mW continuous; < 6 uW uplink-only; ~4 mW IC.
    assert abs(prototype.continuous_power_w() - 48e-3) < 1.5e-3
    assert prototype.uplink_only_power_w() < 6e-6
    assert abs(projected.continuous_power_w() - 4e-3) < 1e-3
    # Sequential mode interpolates monotonically with downlink duty.
    assert (
        prototype.uplink_only_power_w()
        < prototype.sequential_power_w(0.1)
        < prototype.sequential_power_w(0.5)
        < prototype.downlink_only_power_w()
    )
    # Battery sanity: a 1 Wh coin-cell-class source runs the continuous
    # mode for ~a day, the sequential low-duty mode for much longer.
    continuous_h = prototype.battery_life_hours(PowerMode.CONTINUOUS, 1000.0)
    sequential_h = prototype.battery_life_hours(
        PowerMode.SEQUENTIAL, 1000.0, downlink_duty=0.01
    )
    assert 15 < continuous_h < 30
    assert sequential_h > 10 * continuous_h
