"""BiScatter's own entry in the Table-1 comparison.

A thin descriptor + throughput model mirroring the baselines' interfaces so
the Table 1 bench can treat all four systems uniformly.  The functional
BiScatter implementation lives in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import SystemCapabilities
from repro.core.cssk import CsskAlphabet
from repro.utils.validation import ensure_positive


@dataclass
class BiScatterSystem:
    """Capability/throughput descriptor for BiScatter itself."""

    alphabet: CsskAlphabet | None = None

    @staticmethod
    def capabilities() -> SystemCapabilities:
        """Table 1 row."""
        return SystemCapabilities(
            name="BiScatter (this work)",
            uplink_comm=True,
            downlink_comm=True,
            tag_localization=True,
            integrated_sensing_and_comms=True,
            commercial_radar_compatible=True,
        )

    def handshake_overhead_s(self) -> float:
        """BiScatter needs no orientation handshake (retro-reflective tag)."""
        return 0.0

    def effective_throughput_bps(
        self, session_duration_s: float, *, preamble_slots: int = 11
    ) -> float:
        """Downlink goodput: full airtime minus only the packet preamble.

        Sensing is concurrent (integrated waveform), so no waveform split
        is charged — the structural advantage over MilBack.
        """
        ensure_positive("session_duration_s", session_duration_s)
        if self.alphabet is None:
            raise ValueError("attach an alphabet to compute throughput")
        period = self.alphabet.chirp_period_s
        total_slots = int(session_duration_s / period)
        payload_slots = max(total_slots - preamble_slots, 0)
        bits = payload_slots * self.alphabet.symbol_bits
        return bits / session_duration_s
