"""End-to-end serve integration: a real TCP server, the synchronous client.

Each test stands up a live :class:`repro.serve.server.ServerThread` on an
ephemeral port and talks to it through :class:`repro.serve.client.ServeClient`
— the full wire path: NDJSON framing, session dispatch, scheduler,
executor pool, store, and the streamed reassembly on the client side.

The determinism pins here are the PR's acceptance criteria:

* streamed results are **bit-identical** to the one-shot batch path for
  the same job spec (golden-anchored, so a silent engine change that
  shifts the numbers fails loudly);
* two concurrent identical submissions share **one** computation
  (asserted via the scheduler's dedup counters);
* a mid-stream client disconnect cancels that client's queued work
  without poisoning the shared pool for other clients;
* a saturated queue rejects deterministically with a retry hint.

Timing discipline: the single-worker servers pin determinism by keeping a
gate job occupying the only pool slot; everything submitted behind it is
provably still queued, so dedup/cancel assertions never race.
"""

import threading
import time

import pytest

from repro.serve.client import ServeClient
from repro.serve.protocol import JobRejected, parse_job
from repro.serve.server import ServeConfig, ServerThread
from repro.sim.engine import run_downlink_trials
from repro.sim.robustness import RobustnessConfig, run_robustness_sweep
from repro.impair import ImpairmentSpec
from repro.sim.scenario import default_office_scenario

#: Small enough to stream in seconds, large enough to produce errors at 9 m.
BER_JOB = {"kind": "ber", "frames": 40, "seed": 0, "distance_m": 9.0}

#: Golden anchor for BER_JOB (pins the engine output, not just equality).
BER_GOLDEN = {"bit_errors": 23, "bits_total": 3200}


def serve_client(handle, **kwargs):
    return ServeClient(handle.host, handle.port, **kwargs)


class TestStreamedBitIdentity:
    def test_ber_job_matches_batch_path_and_golden(self):
        with ServerThread(ServeConfig(pool_workers=2)) as handle:
            with serve_client(handle) as client:
                result = client.run(BER_JOB)
        streamed = result.ber_point()
        # Golden anchor first: catches engine drift even if both paths
        # drift together at the API level.
        assert streamed.bit_errors == BER_GOLDEN["bit_errors"]
        assert streamed.bits_total == BER_GOLDEN["bits_total"]
        # Then full bit-identity against the direct batch computation.
        spec = parse_job(BER_JOB).points[0]
        batch = run_downlink_trials(spec.trial_config(), rng=BER_JOB["seed"])
        assert streamed == batch

    def test_ber_sweep_matches_per_point_batch_runs(self):
        job = {
            "kind": "ber_sweep", "frames": 20, "seed": 1,
            "sweep": {"field": "symbol_bits", "values": [3, 5]},
        }
        with ServerThread(ServeConfig(pool_workers=2)) as handle:
            with serve_client(handle) as client:
                result = client.run(job)
        streamed = result.ber_points()
        assert len(streamed) == 2
        for spec, point in zip(parse_job(job).points, streamed):
            assert point == run_downlink_trials(spec.trial_config(), rng=1)

    def test_robustness_curve_matches_batch_sweep(self):
        job = {
            "kind": "robustness", "range_m": 2.0, "impair": "interference:0.5",
            "severities": [0.0, 1.0], "frames": 4, "downlink_bits": 10,
            "uplink_bits": 4, "seed": 0,
        }
        with ServerThread(ServeConfig(pool_workers=2)) as handle:
            with serve_client(handle) as client:
                curve = client.run(job).degradation_curve()
        batch = run_robustness_sweep(
            RobustnessConfig(
                scenario=default_office_scenario(tag_range_m=2.0),
                impairments=ImpairmentSpec.parse("interference:0.5"),
                severities=(0.0, 1.0),
                num_frames=4,
                downlink_bits=10,
                uplink_bits=4,
            ),
            rng=0,
        )
        assert curve.to_markdown() == batch.to_markdown()

    def test_serve_and_batch_share_store_entries(self, tmp_path):
        # Warm the cache through the serve path, then confirm a direct
        # batch run of the same spec is a pure store hit.
        cache_dir = str(tmp_path / "cache")
        job = {"kind": "ber", "frames": 8, "seed": 2}
        with ServerThread(ServeConfig(pool_workers=1,
                                      cache_dir=cache_dir)) as handle:
            with serve_client(handle) as client:
                streamed = client.run(job).ber_point()
        from repro.store import ExperimentStore

        store = ExperimentStore(cache_dir)
        spec = parse_job(job).points[0]
        assert store.contains(spec.fingerprint())
        warm = run_downlink_trials(spec.trial_config(), rng=2, store=store)
        assert warm == streamed
        assert store.session_hits == 1


class TestConcurrencyContracts:
    def test_concurrent_identical_submissions_share_one_computation(self):
        # One pool worker + a long blocker occupying the only slot: both
        # identical submissions land while their point is provably still
        # queued, so the second must subscribe instead of recompute.
        blocker = {"kind": "ber", "frames": 400, "seed": 7}
        dup = {"kind": "ber", "frames": 8, "seed": 3}
        with ServerThread(ServeConfig(pool_workers=1)) as handle:
            with serve_client(handle) as blocker_client, \
                    serve_client(handle) as first, \
                    serve_client(handle) as second:
                blocker_id = blocker_client.submit(blocker)
                first_id = first.submit(dup, job_id="dup-1")
                second_id = second.submit(dup, job_id="dup-2")

                results = {}

                def drain(client, client_id, key):
                    results[key] = [
                        m for m in client.events(client_id)
                        if m.get("type") == "point"
                    ]

                collectors = [
                    threading.Thread(target=drain, args=(first, first_id, "first")),
                    threading.Thread(target=drain, args=(second, second_id, "second")),
                ]
                for collector in collectors:
                    collector.start()
                drain(blocker_client, blocker_id, "blocker")
                for collector in collectors:
                    collector.join(timeout=60.0)
                    assert not collector.is_alive()
                status = second.status()

        (point_1,) = results["first"]
        (point_2,) = results["second"]
        assert point_1["payload"] == point_2["payload"]
        assert point_1["shared"] is True and point_2["shared"] is True
        counters = status["counters"]
        # blocker + dup computed once each; the duplicate subscribed.
        assert counters["points_computed"] == 2
        assert counters["points_deduped"] == 1
        assert counters["jobs_completed"] == 3
        assert status["inflight"]["shared"] == 1

    def test_disconnect_cancels_queued_work_without_poisoning_pool(self):
        blocker = {"kind": "ber", "frames": 400, "seed": 11}
        doomed = {
            "kind": "ber_sweep", "frames": 8, "seed": 12,
            "sweep": {"field": "distance_m", "values": [2.0, 4.0, 6.0]},
        }
        follow_up = {"kind": "ber", "frames": 8, "seed": 2}
        with ServerThread(ServeConfig(pool_workers=1)) as handle:
            victim = serve_client(handle)
            victim.submit(blocker, job_id="blocker")
            victim.submit(doomed, job_id="doomed")
            # Drop the socket mid-stream: the blocker point may be
            # running (it finishes into the pool), but every sweep point
            # is still queued behind it and must be cancelled.
            victim.close()
            with serve_client(handle) as watcher:
                deadline = 60.0
                start = time.monotonic()
                while True:
                    counters = watcher.status()["counters"]
                    if counters["points_cancelled"] >= 3:
                        break
                    assert time.monotonic() - start < deadline, counters
                    time.sleep(0.05)
                assert counters["jobs_cancelled"] == 2
                # The pool still serves other clients, bit-identically.
                streamed = watcher.run(follow_up).ber_point()
        spec = parse_job(follow_up).points[0]
        assert streamed == run_downlink_trials(spec.trial_config(), rng=2)

    def test_saturated_queue_rejects_with_retry_hint(self):
        blocker = {"kind": "ber", "frames": 400, "seed": 21}
        overflow = {"kind": "ber", "frames": 8, "seed": 22}
        config = ServeConfig(pool_workers=1, max_pending=1, retry_after_s=1.5)
        with ServerThread(config) as handle:
            with serve_client(handle) as client:
                blocker_id = client.submit(blocker)
                with pytest.raises(JobRejected) as rejected:
                    client.submit(overflow)
                assert rejected.value.retry_after_s == pytest.approx(1.5)
                # The admitted job still completes after the rejection.
                points = [
                    m for m in client.events(blocker_id)
                    if m.get("type") == "point"
                ]
                assert len(points) == 1


class TestControlPlane:
    def test_status_metrics_ping_and_error_frames(self):
        with ServerThread(ServeConfig(pool_workers=1)) as handle:
            with serve_client(handle) as client:
                client.ping()
                status = client.status()
                assert status["protocol"] == 1
                assert status["sessions"] == 1
                assert status["pending_points"] == 0
                metrics = client.metrics()
                assert "enabled" in metrics
            # Protocol violations answer with an error frame, not a drop.
            with serve_client(handle) as client:
                client._send({"type": "no-such-type"})
                reply = client._recv()
                assert reply["type"] == "error"
                assert "unknown message type" in reply["message"]
                client.ping()  # session still alive afterwards

    def test_status_store_block_matches_cache_stats_schema(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with ServerThread(ServeConfig(pool_workers=1,
                                      cache_dir=cache_dir)) as handle:
            with serve_client(handle) as client:
                client.run({"kind": "ber", "frames": 8, "seed": 2})
                store_stats = client.status()["store"]
        # Same document the CLI prints for `repro cache stats --json`.
        assert set(store_stats) == {
            "root", "entries", "kinds", "total_bytes", "array_files",
            "tmp_files", "corrupt", "session", "journal_entries",
            "journal_orphans",
        }
        assert store_stats["entries"] == 1
        assert store_stats["session"]["misses"] == 1

    def test_status_identity_fields(self):
        from repro import __version__

        with ServerThread(ServeConfig(pool_workers=1)) as handle:
            with serve_client(handle) as client:
                status = client.status()
        assert status["version"] == __version__
        assert status["uptime_s"] >= 0.0
        assert "run_id" in status
        assert status["running_points"] == 0

    def test_http_status_mirrors_ndjson_status(self):
        """`GET /status` and the NDJSON status frame expose the same
        document (modulo each transport's own envelope key)."""
        import json
        import urllib.request

        config = ServeConfig(pool_workers=1, metrics_port=0)
        with ServerThread(config) as handle:
            exporter = handle.server.exporter
            assert exporter is not None
            url = f"http://{exporter.host}:{exporter.port}"
            with urllib.request.urlopen(f"{url}/healthz", timeout=10) as reply:
                assert reply.read() == b"ok\n"
            with serve_client(handle) as client:
                client.run({"kind": "ber", "frames": 8, "seed": 2})
                ndjson_status = client.status()
                with urllib.request.urlopen(
                    f"{url}/status", timeout=10
                ) as reply:
                    http_status = json.loads(reply.read())
                with urllib.request.urlopen(
                    f"{url}/metrics", timeout=10
                ) as reply:
                    exposition = reply.read().decode()
        assert set(http_status) - {"pid"} == set(ndjson_status) - {"type"}
        assert http_status["version"] == ndjson_status["version"]
        assert http_status["counters"]["points_computed"] == 1
        from repro.obs.exporter import validate_exposition

        validate_exposition(exposition)

    def test_client_shutdown_frame_stops_server(self):
        with ServerThread(ServeConfig(pool_workers=1)) as handle:
            with serve_client(handle) as client:
                client.run({"kind": "ber", "frames": 8, "seed": 2})
                client.shutdown_server()
            handle._thread.join(timeout=30.0)
            assert not handle._thread.is_alive()
