"""Decoder robustness: impairments the analytic model doesn't bake in.

The GLRT demodulator must tolerate the dirt a real envelope-detector
output carries: DC drift, clipping, narrowband interference, missing
samples, and cross-radar chirp sweeps.
"""

import numpy as np
import pytest

from repro.channel.link_budget import DownlinkBudget
from repro.core.downlink import DownlinkEncoder
from repro.core.packet import DownlinkPacket
from repro.core.ber import bit_error_rate, random_bits
from repro.radar.config import XBAND_9GHZ
from repro.tag.decoder_dsp import TagDecoder
from repro.tag.frontend import AnalyticTagFrontend, TagCapture


@pytest.fixture(scope="module")
def clean_link(alphabet):
    encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
    budget = DownlinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
    )
    frontend = AnalyticTagFrontend(budget=budget, delta_t_s=alphabet.decoder.delta_t_s)
    decoder = TagDecoder(alphabet)
    return encoder, frontend, decoder


def make_capture(clean_link, alphabet, seed=0, num_symbols=12, distance=2.0):
    encoder, frontend, _ = clean_link
    bits = random_bits(alphabet.symbol_bits * num_symbols, rng=seed)
    packet = DownlinkPacket.from_bits(alphabet, bits)
    frame = encoder.encode_packet(packet)
    capture = frontend.capture(frame, distance, rng=seed + 1)
    return bits, capture


def decode_ber(decoder, alphabet, bits, capture, num_symbols=12):
    decoded = decoder.decode_aligned(capture, num_payload_symbols=num_symbols)
    return bit_error_rate(bits, decoded.bits)


class TestDcDrift:
    def test_slow_baseline_wander(self, clean_link, alphabet):
        """A thermal baseline ramp across the capture (common in video
        amplifiers) must not cost bits — the per-slot DC basis absorbs it."""
        _, _, decoder = clean_link
        bits, capture = make_capture(clean_link, alphabet, seed=10)
        peak = np.max(np.abs(capture.samples))
        drift = np.linspace(0.0, 3.0 * peak, capture.samples.size)
        drifted = TagCapture(
            samples=capture.samples + drift,
            sample_rate_hz=capture.sample_rate_hz,
            frame=capture.frame,
        )
        assert decode_ber(decoder, alphabet, bits, drifted) == 0.0

    def test_large_constant_offset(self, clean_link, alphabet):
        _, _, decoder = clean_link
        bits, capture = make_capture(clean_link, alphabet, seed=11)
        offset = TagCapture(
            samples=capture.samples + 50.0 * np.max(np.abs(capture.samples)),
            sample_rate_hz=capture.sample_rate_hz,
            frame=capture.frame,
        )
        assert decode_ber(decoder, alphabet, bits, offset) == 0.0


class TestClipping:
    def test_mild_clipping_tolerated(self, clean_link, alphabet):
        """An overdriven video amplifier clips the tone tops; odd-harmonic
        distortion lands far from the beat grid, so decode survives."""
        _, _, decoder = clean_link
        bits, capture = make_capture(clean_link, alphabet, seed=12)
        level = 0.8 * np.max(np.abs(capture.samples))
        clipped = TagCapture(
            samples=np.clip(capture.samples, -level, level),
            sample_rate_hz=capture.sample_rate_hz,
            frame=capture.frame,
        )
        assert decode_ber(decoder, alphabet, bits, clipped) < 0.05


class TestInterference:
    def test_single_cw_interferer_off_grid(self, clean_link, alphabet):
        """A CW tone (e.g. switching-regulator spur) between two beats."""
        _, _, decoder = clean_link
        bits, capture = make_capture(clean_link, alphabet, seed=13)
        fs = capture.sample_rate_hz
        t = np.arange(capture.samples.size) / fs
        spur_hz = (alphabet.data_beats_hz[7] + alphabet.data_beats_hz[8]) / 2
        spur = 0.3 * np.max(np.abs(capture.samples)) * np.cos(2 * np.pi * spur_hz * t)
        corrupted = TagCapture(
            samples=capture.samples + spur,
            sample_rate_hz=fs,
            frame=capture.frame,
        )
        assert decode_ber(decoder, alphabet, bits, corrupted) < 0.1

    def test_cross_radar_sweep_burst(self, clean_link, alphabet):
        """A second radar's chirp sweeping through the video band appears
        as a fast swept tone over a few slots; errors must stay confined
        to those slots, not desync the packet."""
        _, _, decoder = clean_link
        bits, capture = make_capture(clean_link, alphabet, seed=14, num_symbols=16)
        fs = capture.sample_rate_hz
        samples = capture.samples.copy()
        burst_start = int(1.5e-3 * fs)  # mid-payload
        burst_len = int(0.3e-3 * fs)  # ~2.5 slots
        t = np.arange(burst_len) / fs
        sweep = np.cos(2 * np.pi * (50e3 * t + 0.5 * 5e8 * t**2))
        samples[burst_start : burst_start + burst_len] += (
            1.0 * np.max(np.abs(samples)) * sweep
        )
        corrupted = TagCapture(samples=samples, sample_rate_hz=fs, frame=capture.frame)
        ber = decode_ber(decoder, alphabet, bits, corrupted, num_symbols=16)
        # At most the ~3 burst-hit symbols' bits can be wrong.
        assert ber <= (3 * alphabet.symbol_bits) / bits.size + 1e-9


class TestSaturation:
    def test_fully_clipped_capture_yields_finite_ber(self, clean_link, alphabet):
        """An ADC driven to the rails everywhere (constant +/- full scale)
        carries no beat information: decode must return a finite BER — a
        typed error or garbage bits, never NaN."""
        _, _, decoder = clean_link
        bits, capture = make_capture(clean_link, alphabet, seed=20)
        railed = TagCapture(
            samples=np.sign(capture.samples) * np.max(np.abs(capture.samples)),
            sample_rate_hz=capture.sample_rate_hz,
            frame=capture.frame,
        )
        ber = decode_ber(decoder, alphabet, bits, railed)
        assert np.isfinite(ber)
        assert 0.0 <= ber <= 1.0

    def test_hard_saturation_model_end_to_end(self, clean_link, alphabet):
        """AdcSaturation at full severity (deep backoff) still decodes to
        a finite BER through the impairment pipeline."""
        from repro.impair import AdcSaturation

        _, _, decoder = clean_link
        bits, capture = make_capture(clean_link, alphabet, seed=21)
        model = AdcSaturation(severity=1.0, max_backoff_db=40.0, bits=2)
        crushed = TagCapture(
            samples=model.apply_stream(
                capture.samples, capture.sample_rate_hz,
                np.random.default_rng(0),
            ),
            sample_rate_hz=capture.sample_rate_hz,
            frame=capture.frame,
        )
        ber = decode_ber(decoder, alphabet, bits, crushed)
        assert np.isfinite(ber)


class TestClockOffset:
    def test_matched_offset_recovers_drifted_capture(self, clean_link, alphabet):
        """A decoder told the tag's ppm error must do no worse than the
        nominal decoder on a nominal capture — the hypothesis-grid skew
        compensates the drift it was told about."""
        bits, capture = make_capture(clean_link, alphabet, seed=22)
        matched = TagDecoder(alphabet, clock_offset_ppm=0.0)
        assert decode_ber(matched, alphabet, bits, capture) == 0.0

    def test_zero_offset_is_bit_identical_to_default(self, clean_link, alphabet):
        bits, capture = make_capture(clean_link, alphabet, seed=23)
        default = TagDecoder(alphabet)
        explicit = TagDecoder(alphabet, clock_offset_ppm=0.0)
        a = default.decode_aligned(capture, num_payload_symbols=12)
        b = explicit.decode_aligned(capture, num_payload_symbols=12)
        assert np.array_equal(a.bits, b.bits)

    def test_cfo_beyond_one_bin_degrades_not_crashes(self, clean_link, alphabet):
        """A wildly wrong hypothesis grid (offset far beyond one beat bin)
        must produce a finite BER, not a NaN or an unhandled exception."""
        bits, capture = make_capture(clean_link, alphabet, seed=24)
        # Enough ppm to skew the fastest beat by more than one bin spacing.
        bin_ppm = alphabet.beat_spacing_hz / alphabet.sync_beat_hz * 1e6
        wild = TagDecoder(alphabet, clock_offset_ppm=5.0 * bin_ppm)
        ber = decode_ber(wild, alphabet, bits, capture)
        assert np.isfinite(ber)
        assert 0.0 <= ber <= 1.0

    def test_invalid_offset_rejected(self, alphabet):
        with pytest.raises(ValueError):
            TagDecoder(alphabet, clock_offset_ppm=float("nan"))
        with pytest.raises(ValueError):
            TagDecoder(alphabet, clock_offset_ppm=-1e6)


class TestZeroedSegments:
    def test_zero_length_chirp_segment_is_benign(self, clean_link, alphabet):
        """ChirpLoss on an empty chirp list / zero-size arrays must pass
        through without touching the RNG or crashing."""
        from repro.impair import ChirpLoss

        model = ChirpLoss(severity=1.0, max_loss_fraction=1.0)
        generator = np.random.default_rng(0)
        state = repr(generator.bit_generator.state)
        assert model.apply_chirps([], 1e6, generator) == []
        empty = np.empty(0)
        assert model.apply_stream(empty, 1e6, generator) is empty
        assert repr(generator.bit_generator.state) == state

    def test_blanked_slots_decode_to_finite_ber(self, clean_link, alphabet):
        """Zeroing a third of the capture (receiver blanking) costs bits
        in the blanked slots only — and never produces NaN."""
        _, _, decoder = clean_link
        bits, capture = make_capture(clean_link, alphabet, seed=25)
        samples = capture.samples.copy()
        samples[: samples.size // 3] = 0.0
        blanked = TagCapture(
            samples=samples,
            sample_rate_hz=capture.sample_rate_hz,
            frame=capture.frame,
        )
        ber = decode_ber(decoder, alphabet, bits, blanked)
        assert np.isfinite(ber)


class TestTruncation:
    def test_truncated_capture_degrades_gracefully(self, clean_link, alphabet):
        """Losing the tail (ADC DMA overrun) loses tail symbols only."""
        _, _, decoder = clean_link
        bits, capture = make_capture(clean_link, alphabet, seed=15, num_symbols=12)
        cut = TagCapture(
            samples=capture.samples[: capture.samples.size * 3 // 4],
            sample_rate_hz=capture.sample_rate_hz,
            frame=capture.frame,
        )
        decoded = decoder.decode_aligned(cut, num_payload_symbols=12)
        # Leading symbols intact.
        lead = alphabet.symbol_bits * 4
        assert bit_error_rate(bits[:lead], decoded.bits[:lead]) == 0.0

    def test_empty_slot_scores_zero(self, clean_link, alphabet):
        _, _, decoder = clean_link
        scores = decoder.score_slot(np.zeros(120), 1e6)
        assert all(score == 0.0 for *_, score in scores)
