"""Common two-port component behaviour.

A two-port component is characterized (behaviourally) by an insertion loss
and a group delay, both possibly frequency dependent.  Components compose
by cascading: losses add in dB, delays add in seconds.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class TwoPortComponent(Protocol):
    """Protocol for behavioural two-port RF components."""

    def insertion_loss_db(self, frequency_hz: float) -> float:
        """Insertion loss in dB (positive number) at ``frequency_hz``."""
        ...

    def group_delay_s(self, frequency_hz: float) -> float:
        """Group delay in seconds at ``frequency_hz``."""
        ...


def cascade_loss_db(components: Iterable[TwoPortComponent], frequency_hz: float) -> float:
    """Total insertion loss (dB) of a cascade at one frequency."""
    return float(sum(c.insertion_loss_db(frequency_hz) for c in components))


def cascade_delay_s(components: Iterable[TwoPortComponent], frequency_hz: float) -> float:
    """Total group delay (s) of a cascade at one frequency."""
    return float(sum(c.group_delay_s(frequency_hz) for c in components))


def apply_loss(amplitude: np.ndarray | float, loss_db: float) -> np.ndarray | float:
    """Attenuate an amplitude (voltage) quantity by ``loss_db`` dB."""
    return amplitude * 10.0 ** (-loss_db / 20.0)
