"""Integrated-system endurance — the headline claim, soaked.

BiScatter's thesis is that downlink, uplink, localization, and sensing run
SIMULTANEOUSLY and sustainably.  This bench soaks the integrated session
at several distances — a batch of consecutive frames per point — and
reports the aggregate health a deployment would see (the same summary
`python -m repro.cli soak` prints).
"""


from conftest import emit
from repro.core.ber import random_bits
from repro.sim.report import build_report
from repro.sim.results import format_table
from repro.sim.scenario import default_office_scenario

DISTANCES_M = [1.0, 3.0, 5.0, 7.0]
FRAMES_PER_POINT = 8


def run_soak():
    rows = []
    aggregates = {}
    for distance in DISTANCES_M:
        scenario = default_office_scenario(tag_range_m=distance)
        session = scenario.session()
        results = [
            session.run_frame(
                random_bits(20, rng=int(distance * 100) + k),
                random_bits(4, rng=int(distance * 100) + 500 + k),
                rng=int(distance * 100) + 900 + k,
            )
            for k in range(FRAMES_PER_POINT)
        ]
        report = build_report(results, true_range_m=distance)
        aggregates[distance] = report
        rows.append(
            [
                f"{distance:.0f}",
                f"{report.downlink_ber:.2e}",
                f"{report.uplink_ber:.2e}",
                f"{report.median_ranging_error_m() * 100:.2f}",
                f"{report.worst_ranging_error_m() * 100:.2f}",
                "yes" if report.healthy() else "NO",
            ]
        )
    return rows, aggregates


def test_isac_endurance(benchmark):
    rows, aggregates = benchmark.pedantic(run_soak, rounds=1, iterations=1)
    table = format_table(
        [
            "distance (m)",
            "downlink BER",
            "uplink BER",
            "median rng err (cm)",
            "worst rng err (cm)",
            "healthy",
        ],
        rows,
    )
    table += f"\n({FRAMES_PER_POINT} consecutive integrated frames per distance)"
    emit("isac_endurance", table)

    # The integrated system must be healthy across the paper's whole
    # operating envelope — every function, every distance, every frame.
    for distance, report in aggregates.items():
        assert report.healthy(), f"unhealthy at {distance} m"
        assert report.downlink_ber == 0.0
        assert report.uplink_ber == 0.0
