"""Canonical fingerprinting of Monte-Carlo work units.

A cache is only sound if the key captures *everything* the result
depends on.  For this package a work unit is fully determined by

* the **work-unit kind** (which engine / sweep path runs it),
* the **payload** — scenario parameters, configs, the evaluate
  callable's identity,
* the **seed derivation** — the :class:`~repro.utils.rng.SeedSpec`
  (entropy + spawn key), since PR 1 made every trial a pure function of
  ``(root SeedSequence, trial index)``,
* the **trial count**, and
* a **schema version** bumped whenever result semantics change, so
  stale entries invalidate cleanly instead of being served wrong.

:func:`canonicalize` maps a work unit onto a JSON-compatible tree with a
*single* representation per value (sorted dict keys, tagged floats via
``float.hex``, tagged dataclasses / enums / arrays / callables), and
:func:`fingerprint` hashes its compact JSON encoding with SHA-256.  Two
work units collide iff they are semantically identical; anything the
canonicalizer cannot pin down raises
:class:`~repro.errors.StoreError` rather than fingerprinting ambiguously.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import time
from typing import Any

import numpy as np

from repro.errors import StoreError
from repro.obs import metrics as _obs_metrics
from repro.obs import runtime as _obs_runtime

#: Bump whenever the meaning of cached results changes (engine physics,
#: seeding discipline, record layout).  Old entries then miss cleanly.
SCHEMA_VERSION = 1


def _canonical_float(value: float) -> Any:
    """A float as an exact, hashable token (NaN/±inf included)."""
    if value != value:  # NaN compares unequal to itself
        return {"__float__": "nan"}
    if value in (float("inf"), float("-inf")):
        return {"__float__": "inf" if value > 0 else "-inf"}
    return {"__float__": float(value).hex()}


def _callable_identity(obj: Any) -> "dict[str, Any]":
    """A callable's stable identity: qualified name + captured state.

    Module-level functions hash by ``module.qualname``.  Callable
    *objects* (e.g. the sweep grid's series adapter) additionally hash
    their instance state, so two adapters binding different contexts get
    different fingerprints.  Lambdas and locally-defined closures have no
    stable cross-process name — refuse rather than guess.
    """
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if qualname is None:
        qualname = type(obj).__qualname__
        module = type(obj).__module__
    if module is None or "<lambda>" in qualname or "<locals>" in qualname:
        raise StoreError(
            f"cannot fingerprint callable {obj!r}: lambdas and local closures "
            "have no stable identity — use a module-level function or a "
            "picklable callable class"
        )
    identity: "dict[str, Any]" = {"__callable__": f"{module}.{qualname}"}
    state = getattr(obj, "__dict__", None)
    if state and not isinstance(obj, type):
        identity["state"] = canonicalize(state)
    return identity


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-compatible tree.

    The mapping is injective over the types the simulator uses: ``None``,
    bools, ints, strings, floats (tagged exact hex), enums, dataclasses
    (tagged with their qualified name — renaming a config class is a
    semantic change), numpy scalars and arrays, dicts (sorted string
    keys) and sequences.  Callables reduce to their qualified name plus
    instance state.  Anything else raises :class:`StoreError`.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return _canonical_float(obj)
    if isinstance(obj, enum.Enum):
        return {"__enum__": f"{type(obj).__module__}.{type(obj).__qualname__}",
                "name": obj.name}
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return _canonical_float(float(obj))
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": str(obj.dtype),
            "shape": list(obj.shape),
            "sha256": hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest(),
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            field.name: canonicalize(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        return {
            "__dataclass__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "fields": fields,
        }
    if isinstance(obj, dict):
        items = {}
        for key in obj:
            if not isinstance(key, str):
                raise StoreError(
                    f"cannot fingerprint dict with non-string key {key!r}"
                )
            items[key] = canonicalize(obj[key])
        return {"__dict__": {key: items[key] for key in sorted(items)}}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if callable(obj):
        return _callable_identity(obj)
    raise StoreError(
        f"cannot fingerprint object of type {type(obj).__qualname__}: no "
        "canonical serialization (add dataclass/enum support or pass plain data)"
    )


def canonical_json(obj: Any) -> str:
    """The compact, key-sorted JSON encoding of :func:`canonicalize`."""
    return json.dumps(
        canonicalize(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint(kind: str, payload: Any, *, schema_version: int = SCHEMA_VERSION) -> str:
    """SHA-256 hex fingerprint of one work unit.

    ``kind`` names the work-unit type (``"sweep-point"``,
    ``"downlink-trials"``, ...) so structurally-identical payloads of
    different engines never collide; ``schema_version`` folds code
    generation into the key.
    """
    if not _obs_runtime._enabled:
        body = canonical_json(
            {"kind": kind, "schema_version": schema_version, "payload": payload}
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()
    started = time.perf_counter()
    body = canonical_json(
        {"kind": kind, "schema_version": schema_version, "payload": payload}
    )
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    _obs_metrics.observe("store.fingerprint_seconds", time.perf_counter() - started)
    return digest
