"""Deterministic unit tests for the serve scheduler.

These drive :class:`repro.serve.scheduler.JobScheduler` directly on a
private event loop with synthetic point specs (anything with ``kind``,
``fingerprint()`` and ``compute(execution, store)`` schedules), so the
dedup / backpressure / cancellation / drain contracts are pinned without
TCP or real simulations.  Gated specs (a ``threading.Event`` the pool
thread blocks on) make the interleavings deterministic: with one pool
worker, everything submitted behind the gate is provably queued.
"""

import asyncio
import threading
import time

from repro.serve.protocol import ParsedJob
from repro.serve.scheduler import JobScheduler


class FakeSpec:
    """A synthetic schedulable point; fingerprint is keyed by name."""

    kind = "fake"

    def __init__(self, name, *, gate=None, fail=False, computed=None):
        self.name = name
        self.gate = gate
        self.fail = fail
        self.computed = computed

    def fingerprint(self):
        return f"fp-{self.name}"

    def compute(self, execution, store):
        if self.gate is not None:
            assert self.gate.wait(timeout=10.0), "test gate never released"
        if self.fail:
            raise RuntimeError("synthetic point failure")
        if self.computed is not None:
            self.computed.append(self.name)
        return {"name": self.name}


class FakeSession:
    """Collects scheduler deliveries in order."""

    def __init__(self):
        self.messages = []
        self.finished = []

    def send(self, message):
        self.messages.append(message)

    def finish_job(self, job):
        self.finished.append(job.client_id)

    def of_type(self, message_type):
        return [m for m in self.messages if m["type"] == message_type]


class FakeStore:
    """Just enough store surface for the scheduler's ``cached`` flag."""

    def __init__(self):
        self.known = set()

    def contains(self, fingerprint):
        return fingerprint in self.known


def job_of(*specs, kind="fake"):
    return ParsedJob(kind=kind, points=tuple(specs))


async def eventually(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition not met in time"
        await asyncio.sleep(0.005)


async def settled(scheduler):
    await eventually(lambda: scheduler._pending == 0)


class TestScheduler:
    def test_single_point_streams_point_then_done(self):
        async def scenario():
            scheduler = JobScheduler(pool_workers=1, max_pending=8)
            session = FakeSession()
            reply, job = scheduler.submit(session, "job-1", job_of(FakeSpec("a")))
            assert reply["type"] == "accepted"
            assert reply["points"] == 1
            await settled(scheduler)
            (point,) = session.of_type("point")
            assert point["index"] == 0
            assert point["payload"] == {"name": "a"}
            assert point["fingerprint"] == "fp-a"
            assert point["shared"] is False
            assert point["cached"] is False
            assert session.of_type("done") == [
                {"type": "done", "id": "job-1", "points": 1},
            ]
            assert session.finished == ["job-1"]
            assert scheduler.counters["jobs_completed"] == 1
            assert scheduler.counters["points_computed"] == 1
            assert len(scheduler.inflight) == 0
            await scheduler.close()

        asyncio.run(scenario())

    def test_concurrent_duplicates_share_one_computation(self):
        async def scenario():
            # One pool worker pinned on a gate guarantees the duplicate
            # submissions overlap while the point is still in flight.
            gate = threading.Event()
            computed = []
            scheduler = JobScheduler(pool_workers=1, max_pending=8)
            session_a, session_b = FakeSession(), FakeSession()
            scheduler.submit(
                session_a, "block", job_of(FakeSpec("block", gate=gate))
            )
            scheduler.submit(
                session_a, "dup-a", job_of(FakeSpec("dup", computed=computed))
            )
            scheduler.submit(
                session_b, "dup-b", job_of(FakeSpec("dup", computed=computed))
            )
            assert scheduler.counters["points_submitted"] == 2
            assert scheduler.counters["points_deduped"] == 1
            gate.set()
            await settled(scheduler)
            # Exactly one computation, delivered to both subscribers.
            assert computed == ["dup"]
            for session, client_id in ((session_a, "dup-a"), (session_b, "dup-b")):
                points = [
                    m for m in session.of_type("point") if m["id"] == client_id
                ]
                assert len(points) == 1
                assert points[0]["payload"] == {"name": "dup"}
                assert points[0]["shared"] is True
            assert scheduler.counters["points_computed"] == 2  # block + dup
            assert scheduler.counters["jobs_completed"] == 3
            await scheduler.close()

        asyncio.run(scenario())

    def test_saturated_queue_rejects_deterministically(self):
        async def scenario():
            gate = threading.Event()
            scheduler = JobScheduler(
                pool_workers=1, max_pending=2, retry_after_s=2.0
            )
            session = FakeSession()
            scheduler.submit(session, "j1", job_of(FakeSpec("a", gate=gate)))
            scheduler.submit(session, "j2", job_of(FakeSpec("b", gate=gate)))
            reply, job = scheduler.submit(session, "j3", job_of(FakeSpec("c")))
            assert job is None
            assert reply["type"] == "rejected"
            assert "queue full" in reply["reason"]
            # backlog = pending / (pool_workers * max_pending) = 1 round.
            assert reply["retry_after_s"] == 2.0
            assert scheduler.counters["jobs_rejected"] == 1
            # The rejected point left no trace.
            assert scheduler.inflight.peek("fp-c") is None
            assert scheduler._pending == 2
            gate.set()
            await settled(scheduler)
            await scheduler.close()

        asyncio.run(scenario())

    def test_admission_is_all_or_nothing_and_dedup_is_free(self):
        async def scenario():
            gate = threading.Event()
            scheduler = JobScheduler(pool_workers=1, max_pending=2)
            session = FakeSession()
            scheduler.submit(session, "j1", job_of(FakeSpec("a", gate=gate)))
            # Two new points would overflow: the whole job bounces, not half.
            reply, _ = scheduler.submit(
                session, "j2", job_of(FakeSpec("b"), FakeSpec("c"))
            )
            assert reply["type"] == "rejected"
            assert scheduler._pending == 1
            assert scheduler.inflight.fingerprints() == ["fp-a"]
            # A duplicate of the in-flight point costs no capacity, so a
            # (dup + one new) job fits where (two new) did not.
            reply, _ = scheduler.submit(
                session, "j3", job_of(FakeSpec("a", gate=gate), FakeSpec("d"))
            )
            assert reply["type"] == "accepted"
            assert scheduler._pending == 2
            gate.set()
            await settled(scheduler)
            await scheduler.close()

        asyncio.run(scenario())

    def test_cancel_drops_queued_points_before_they_run(self):
        async def scenario():
            gate = threading.Event()
            computed = []
            scheduler = JobScheduler(pool_workers=1, max_pending=8)
            session = FakeSession()
            scheduler.submit(
                session, "block", job_of(FakeSpec("block", gate=gate,
                                                  computed=computed))
            )
            _, job = scheduler.submit(
                session, "victim",
                job_of(FakeSpec("v1", computed=computed),
                       FakeSpec("v2", computed=computed)),
            )
            assert scheduler.cancel_job(job) == 2
            assert scheduler.counters["points_cancelled"] == 2
            assert scheduler._pending == 1
            gate.set()
            await settled(scheduler)
            # The cancelled points never reached the pool.
            assert computed == ["block"]
            # No frame ever went out for the cancelled job (the accepted
            # reply is returned to the session layer, not delivered here).
            assert [m for m in session.messages if m.get("id") == "victim"] == []
            assert scheduler.counters["jobs_completed"] == 1
            await scheduler.close()

        asyncio.run(scenario())

    def test_cancel_one_subscriber_keeps_shared_task_alive(self):
        async def scenario():
            gate = threading.Event()
            computed = []
            scheduler = JobScheduler(pool_workers=1, max_pending=8)
            session_a, session_b = FakeSession(), FakeSession()
            scheduler.submit(
                session_a, "block", job_of(FakeSpec("block", gate=gate))
            )
            scheduler.submit(
                session_a, "keep", job_of(FakeSpec("dup", computed=computed))
            )
            _, job_b = scheduler.submit(
                session_b, "drop", job_of(FakeSpec("dup", computed=computed))
            )
            # The deduped subscriber leaves; the task must survive for A.
            assert scheduler.cancel_job(job_b) == 0
            assert scheduler.counters["points_cancelled"] == 0
            gate.set()
            await settled(scheduler)
            assert computed == ["dup"]
            keep_points = [
                m for m in session_a.of_type("point") if m["id"] == "keep"
            ]
            assert len(keep_points) == 1
            assert session_b.of_type("point") == []
            await scheduler.close()

        asyncio.run(scenario())

    def test_running_point_finishes_after_cancel(self):
        async def scenario():
            gate = threading.Event()
            computed = []
            scheduler = JobScheduler(pool_workers=1, max_pending=8)
            session = FakeSession()
            _, job = scheduler.submit(
                session, "j1", job_of(FakeSpec("a", gate=gate,
                                               computed=computed))
            )
            await eventually(lambda: job.tasks[0].state == "running")
            # Running work is never yanked out of the pool: cancel just
            # unsubscribes, the result still lands (and would hit the store).
            assert scheduler.cancel_job(job) == 0
            gate.set()
            await settled(scheduler)
            assert computed == ["a"]
            assert session.of_type("point") == []
            assert session.of_type("done") == []
            assert scheduler.counters["points_computed"] == 1
            assert scheduler.counters["jobs_completed"] == 0
            await scheduler.close()

        asyncio.run(scenario())

    def test_point_failure_quarantines_point_and_job_completes(self):
        async def scenario():
            gate = threading.Event()
            scheduler = JobScheduler(
                pool_workers=1, max_pending=8, point_retries=1
            )
            session = FakeSession()
            scheduler.submit(
                session, "bad",
                job_of(FakeSpec("boom", gate=gate, fail=True), FakeSpec("tail")),
            )
            gate.set()
            await settled(scheduler)
            # The poisoned point is reported per-point, not as a job kill.
            (failed,) = session.of_type("failed")
            assert failed["index"] == 0
            assert "synthetic point failure" in failed["error"]
            assert "2 attempt(s)" in failed["error"]  # 1 + point_retries
            assert scheduler.counters["points_failed"] == 1
            assert scheduler.counters["points_retried"] == 1
            assert scheduler.counters["points_quarantined"] == 1
            assert "fp-boom" in scheduler.status()["quarantined"]
            # The rest of the job still streamed, and done names the loss.
            (tail,) = session.of_type("point")
            assert tail["payload"] == {"name": "tail"}
            (done,) = session.of_type("done")
            assert done["failed"] == [0]
            assert scheduler.counters["jobs_completed"] == 1
            # The pool still serves fresh work afterwards...
            fresh = FakeSession()
            reply, _ = scheduler.submit(fresh, "good", job_of(FakeSpec("ok")))
            assert reply["type"] == "accepted"
            await settled(scheduler)
            assert fresh.of_type("point")[0]["payload"] == {"name": "ok"}
            assert fresh.of_type("done") != []
            # ...and resubmitting the quarantined point answers instantly
            # from quarantine instead of burning pool time again.
            again = FakeSession()
            reply, _ = scheduler.submit(
                again, "again", job_of(FakeSpec("boom", fail=True))
            )
            assert reply["type"] == "accepted"
            await eventually(lambda: again.of_type("done") != [])
            (refailed,) = again.of_type("failed")
            assert refailed["index"] == 0
            assert scheduler.counters["points_quarantined"] == 1  # unchanged
            await scheduler.close()

        asyncio.run(scenario())

    def test_stalled_point_is_abandoned_and_pool_rebuilt(self):
        async def scenario():
            release = threading.Event()
            scheduler = JobScheduler(
                pool_workers=1, max_pending=8,
                point_retries=0, point_timeout_s=0.1,
            )
            session = FakeSession()
            scheduler.submit(
                session, "stuck", job_of(FakeSpec("wedge", gate=release))
            )
            await settled(scheduler)
            # The deadline fired: stalled counter, pool rebuild, and the
            # point quarantined as failed (retry budget exhausted).
            assert scheduler.counters["points_stalled"] == 1
            assert scheduler.counters["pool_rebuilds"] == 1
            (failed,) = session.of_type("failed")
            assert "deadline" in failed["error"]
            # The fresh pool computes new work while the abandoned thread
            # is still wedged on its gate.
            fresh = FakeSession()
            scheduler.submit(fresh, "after", job_of(FakeSpec("alive")))
            await settled(scheduler)
            assert fresh.of_type("point")[0]["payload"] == {"name": "alive"}
            release.set()  # unwedge the abandoned thread before teardown
            await scheduler.close()

        asyncio.run(scenario())

    def test_priority_orders_queued_points(self):
        async def scenario():
            gate = threading.Event()
            computed = []
            scheduler = JobScheduler(pool_workers=1, max_pending=8)
            session = FakeSession()
            scheduler.submit(
                session, "block", job_of(FakeSpec("block", gate=gate,
                                                  computed=computed))
            )
            scheduler.submit(
                session, "late", job_of(FakeSpec("low", computed=computed)),
                priority=5,
            )
            scheduler.submit(
                session, "soon", job_of(FakeSpec("high", computed=computed)),
                priority=0,
            )
            gate.set()
            await settled(scheduler)
            # Lower priority number first, despite later submission.
            assert computed == ["block", "high", "low"]
            await scheduler.close()

        asyncio.run(scenario())

    def test_drain_rejects_new_work_and_waits_for_pending(self):
        async def scenario():
            gate = threading.Event()
            scheduler = JobScheduler(pool_workers=1, max_pending=8)
            session = FakeSession()
            scheduler.submit(session, "j1", job_of(FakeSpec("a", gate=gate)))
            drain = asyncio.ensure_future(scheduler.drain())
            await asyncio.sleep(0)  # let drain() flip the flag
            reply, job = scheduler.submit(session, "j2", job_of(FakeSpec("b")))
            assert job is None
            assert reply["type"] == "rejected"
            assert reply["reason"] == "draining"
            assert not drain.done()
            gate.set()
            await drain
            # The admitted point still streamed out before drain returned.
            assert len(session.of_type("point")) == 1
            await scheduler.close()

        asyncio.run(scenario())

    def test_store_hit_marks_point_cached(self):
        async def scenario():
            store = FakeStore()
            store.known.add("fp-warm")
            scheduler = JobScheduler(pool_workers=1, max_pending=8, store=store)
            session = FakeSession()
            scheduler.submit(session, "j1", job_of(FakeSpec("warm")))
            scheduler.submit(session, "j2", job_of(FakeSpec("cold")))
            await settled(scheduler)
            by_fp = {m["fingerprint"]: m for m in session.of_type("point")}
            assert by_fp["fp-warm"]["cached"] is True
            assert by_fp["fp-cold"]["cached"] is False
            await scheduler.close()

        asyncio.run(scenario())

    def test_status_shape(self):
        async def scenario():
            scheduler = JobScheduler(pool_workers=3, max_pending=7)
            status = scheduler.status()
            assert status["pending_points"] == 0
            assert status["max_pending"] == 7
            assert status["pool_workers"] == 3
            assert status["draining"] is False
            assert status["point_retries"] == 1
            assert status["point_timeout_s"] is None
            assert status["quarantined"] == []
            assert set(status["counters"]) == {
                "jobs_accepted", "jobs_rejected", "jobs_cancelled",
                "jobs_completed", "points_submitted", "points_computed",
                "points_deduped", "points_cancelled", "points_failed",
                "points_retried", "points_stalled", "points_quarantined",
                "pool_rebuilds", "journal_records", "journal_replayed",
            }
            assert status["inflight"] == {"created": 0, "shared": 0, "active": 0}
            await scheduler.close()

        asyncio.run(scenario())
