"""FMCW radar: configuration presets, IF-domain simulation, and processing."""

from repro.radar.config import (
    AUTOMOTIVE_77GHZ,
    RadarConfig,
    TINYRAD_24GHZ,
    XBAND_9GHZ,
)
from repro.radar.fmcw import FMCWRadar, IFFrame, Scatterer
from repro.radar.range_processing import (
    bin_ranges_m,
    range_fft,
    range_profile_power_db,
    find_peak_range,
)
from repro.radar.if_correction import align_profiles_to_common_grid, IFCorrectionResult
from repro.radar.doppler_processing import (
    slow_time_spectrum,
    range_doppler_map,
    modulation_signature_score,
    estimate_velocity,
)
from repro.radar.detection import (
    cfar_detect,
    detect_all_tags,
    detect_modulated_tag,
    TagDetection,
)
from repro.radar.angle import AngleEstimate, estimate_tag_angle, unambiguous_fov_deg
from repro.radar.programming import (
    ChirpEngine,
    ChirpProfile,
    EngineLimits,
    compile_frame,
)

__all__ = [
    "RadarConfig",
    "XBAND_9GHZ",
    "TINYRAD_24GHZ",
    "AUTOMOTIVE_77GHZ",
    "FMCWRadar",
    "IFFrame",
    "Scatterer",
    "bin_ranges_m",
    "range_fft",
    "range_profile_power_db",
    "find_peak_range",
    "align_profiles_to_common_grid",
    "IFCorrectionResult",
    "slow_time_spectrum",
    "range_doppler_map",
    "modulation_signature_score",
    "estimate_velocity",
    "cfar_detect",
    "detect_all_tags",
    "detect_modulated_tag",
    "TagDetection",
    "AngleEstimate",
    "estimate_tag_angle",
    "unambiguous_fov_deg",
    "ChirpEngine",
    "ChirpProfile",
    "EngineLimits",
    "compile_frame",
]
