"""Fig. 14 — downlink BER vs SNR for different delay-line differences.

Fixing the symbol size at 5 bits and the bandwidth at 1 GHz, the paper
sweeps SNR for tags built with different delay-line length differences:
longer lines separate the beat frequencies further and hold a lower BER at
the same SNR (at the cost of form factor and insertion loss).
"""


from conftest import emit
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
from repro.sim.results import format_table

SNRS_DB = [-4.0, 0.0, 4.0, 8.0, 12.0, 16.0]
DELTA_LS_IN = [18.0, 30.0, 45.0]
SYMBOL_BITS = 5
FRAMES_PER_POINT = 50


def run_sweep():
    results = {}
    for delta_l in DELTA_LS_IN:
        alphabet = CsskAlphabet.design(
            bandwidth_hz=1e9,
            decoder=DecoderDesign.from_inches(delta_l),
            symbol_bits=SYMBOL_BITS,
            chirp_period_s=120e-6,
            min_chirp_duration_s=20e-6,
        )
        series = []
        for snr in SNRS_DB:
            config = DownlinkTrialConfig(
                radar_config=XBAND_9GHZ,
                alphabet=alphabet,
                distance_m=3.0,
                snr_override_db=snr,
                num_frames=FRAMES_PER_POINT,
                payload_symbols_per_frame=16,
            )
            series.append(run_downlink_trials(config, rng=int(delta_l) + int(snr * 3)).ber)
        results[delta_l] = series
    return results


def test_fig14_ber_vs_snr_delta_l(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for index, snr in enumerate(SNRS_DB):
        rows.append(
            [f"{snr:.0f}"] + [f"{results[dl][index]:.2e}" for dl in DELTA_LS_IN]
        )
    table = format_table(
        ["video SNR (dB)"] + [f'dL = {dl:.0f}"' for dl in DELTA_LS_IN], rows
    )
    table += f"\n(5-bit symbols, 1 GHz bandwidth, {FRAMES_PER_POINT} frames/point)"
    emit("fig14_ber_vs_snr_delta_l", table)

    # Paper shape: BER falls with SNR for every line length...
    for delta_l in DELTA_LS_IN:
        assert results[delta_l][0] > results[delta_l][-1]
    # ...and the shortest line is the worst at low SNR.
    low_snr = 1  # 0 dB column
    assert results[18.0][low_snr] > results[45.0][low_snr]
