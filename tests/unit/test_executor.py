"""Executor determinism contract: parallel == serial, bit for bit.

These tests are the enforcement arm of the parallel execution layer —
every engine entry point and the sweep helpers must return bit-identical
results (payloads and ``extra``/``metadata`` included) for ``workers=1``,
``workers=2``, and ``workers=4`` under a fixed seed, regardless of chunk
size.  Any future engine refactor that breaks chunk-independent seeding
or order-restoring reassembly fails here first.
"""

import numpy as np
import pytest

from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import (
    DownlinkTrialConfig,
    run_downlink_trials,
    run_localization_trials,
    run_uplink_snr_measurement,
)
from repro.sim.executor import (
    ChunkTiming,
    ExecutionPlan,
    chunk_indices,
    map_trials,
    strip_execution,
    sweep_results_equal,
)
from repro.sim.sweep import sweep, sweep_grid
from repro.utils.rng import SeedSpec

PLANS = [
    ExecutionPlan(workers=1),
    ExecutionPlan(workers=2),
    ExecutionPlan(workers=4),
    ExecutionPlan(workers=2, chunk_size=1),
    ExecutionPlan(workers=4, chunk_size=3),
]


def _echo_chunk(payload, spec, indices):
    """Module-level chunk fn: one uniform draw per trial (picklable)."""
    return [float(spec.stream(index).uniform()) for index in indices]


class TestMapTrials:
    def test_results_independent_of_plan(self):
        serial, _ = map_trials(_echo_chunk, None, 17, rng=9)
        for plan in PLANS:
            values, report = map_trials(_echo_chunk, None, 17, rng=9, plan=plan)
            assert values == serial
            assert report.num_trials == 17
            assert sum(c.num_trials for c in report.chunks) == 17

    def test_process_backend_used_when_requested(self):
        _, report = map_trials(
            _echo_chunk, None, 8, rng=0, plan=ExecutionPlan(workers=2)
        )
        assert report.backend == "process"
        assert report.workers == 2

    def test_unpicklable_payload_falls_back_to_serial(self):
        serial, _ = map_trials(_echo_chunk, None, 6, rng=1)
        values, report = map_trials(
            _echo_chunk, lambda: None, 6, rng=1, plan=ExecutionPlan(workers=2)
        )
        assert values == serial
        assert report.backend.startswith("serial-fallback")

    def test_progress_hook_called_per_chunk(self):
        seen = []
        plan = ExecutionPlan(workers=2, chunk_size=4, progress=seen.append)
        map_trials(_echo_chunk, None, 10, rng=0, plan=plan)
        assert len(seen) == 3  # 4 + 4 + 2
        assert all(isinstance(t, ChunkTiming) for t in seen)
        assert sorted(t.start_index for t in seen) == [0, 4, 8]
        assert sum(t.num_trials for t in seen) == 10

    def test_zero_trials(self):
        values, report = map_trials(_echo_chunk, None, 0, rng=0)
        assert values == []
        assert report.num_trials == 0

    def test_rejects_negative_trials(self):
        with pytest.raises(ValueError):
            map_trials(_echo_chunk, None, -1, rng=0)

    def test_report_metadata_round_trip(self):
        _, report = map_trials(
            _echo_chunk, None, 5, rng=0, plan=ExecutionPlan(workers=1, chunk_size=2)
        )
        meta = report.as_metadata()
        assert meta["backend"] == "serial"
        assert meta["chunk_size"] == 2
        assert [c["num_trials"] for c in meta["chunks"]] == [2, 2, 1]


class TestExecutionPlanValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ExecutionPlan(workers=0)

    def test_rejects_zero_chunk_size(self):
        with pytest.raises(ValueError):
            ExecutionPlan(chunk_size=0)

    def test_auto_chunk_size_targets_four_chunks_per_worker(self):
        assert ExecutionPlan(workers=2).resolved_chunk_size(80) == 10
        assert ExecutionPlan(workers=1).resolved_chunk_size(80) == 80
        assert ExecutionPlan(workers=8).resolved_chunk_size(3) == 1

    def test_rejects_negative_max_retries(self):
        with pytest.raises(ValueError):
            ExecutionPlan(max_retries=-1)

    def test_rejects_nonpositive_chunk_timeout(self):
        with pytest.raises(ValueError):
            ExecutionPlan(chunk_timeout_s=0.0)
        with pytest.raises(ValueError):
            ExecutionPlan(chunk_timeout_s=-1.0)

    def test_rejects_unknown_on_failure(self):
        with pytest.raises(ValueError):
            ExecutionPlan(on_failure="ignore")


class TestChunkTimingValidation:
    def test_accepts_valid_timing(self):
        timing = ChunkTiming(chunk_index=0, start_index=0, num_trials=1, seconds=0.0)
        assert timing.num_trials == 1

    def test_rejects_empty_chunk(self):
        with pytest.raises(ValueError):
            ChunkTiming(chunk_index=0, start_index=0, num_trials=0, seconds=0.1)

    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            ChunkTiming(chunk_index=-1, start_index=0, num_trials=1, seconds=0.1)
        with pytest.raises(ValueError):
            ChunkTiming(chunk_index=0, start_index=-1, num_trials=1, seconds=0.1)
        with pytest.raises(ValueError):
            ChunkTiming(chunk_index=0, start_index=0, num_trials=1, seconds=-0.1)


class TestDownlinkDeterminism:
    @pytest.fixture(scope="class")
    def config(self, small_alphabet):
        return DownlinkTrialConfig(
            radar_config=XBAND_9GHZ,
            alphabet=small_alphabet,
            distance_m=6.0,
            num_frames=10,
            payload_symbols_per_frame=6,
        )

    def test_bit_identical_across_plans(self, config):
        serial = run_downlink_trials(config, rng=3)
        for plan in PLANS:
            point = run_downlink_trials(config, rng=3, execution=plan)
            # BerPoint is frozen+eq: compares parameter, ber, counts, extra.
            assert point == serial

    def test_extra_payload_identical(self, config):
        serial = run_downlink_trials(config, rng=3)
        parallel = run_downlink_trials(
            config, rng=3, execution=ExecutionPlan(workers=4, chunk_size=2)
        )
        assert parallel.extra == serial.extra


class TestUplinkDeterminism:
    def test_bit_identical_across_plans(self, office_scenario):
        args = (XBAND_9GHZ, office_scenario.tag.modulator, office_scenario.tag.van_atta)
        kwargs = dict(tag_range_m=2.0, num_chirps=96, num_trials=4, rng=1)
        serial = run_uplink_snr_measurement(*args, **kwargs)
        for plan in (ExecutionPlan(workers=2), ExecutionPlan(workers=4, chunk_size=1)):
            assert run_uplink_snr_measurement(*args, **kwargs, execution=plan) == serial


class TestLocalizationDeterminism:
    def test_bit_identical_across_plans(self, office_scenario):
        kwargs = dict(
            tag_range_m=2.75,
            varying_slopes=True,
            num_frames=4,
            num_chirps=64,
            rng=3,
        )
        args = (
            XBAND_9GHZ,
            office_scenario.alphabet,
            office_scenario.tag.modulator,
            office_scenario.tag.van_atta,
        )
        serial = run_localization_trials(*args, **kwargs)
        for plan in (ExecutionPlan(workers=2), ExecutionPlan(workers=4, chunk_size=1)):
            parallel = run_localization_trials(*args, **kwargs, execution=plan)
            np.testing.assert_array_equal(parallel, serial)


def _noisy_eval(parameter, stream):
    """Module-level sweep evaluate (picklable for the process backend)."""
    return parameter + stream.normal()


def _grid_eval(context, parameter, stream):
    return context * parameter + stream.normal()


class TestSweepDeterminism:
    def test_sweep_bit_identical_across_plans(self):
        serial = sweep("s", [1.0, 2.0, 3.0, 4.0, 5.0], _noisy_eval, rng=11)
        for plan in PLANS:
            parallel = sweep(
                "s", [1.0, 2.0, 3.0, 4.0, 5.0], _noisy_eval, rng=11, execution=plan
            )
            assert sweep_results_equal(parallel, serial)
            assert parallel.values == serial.values

    def test_sweep_metadata_payload_identical(self):
        a = sweep("s", [1.0, 2.0], _noisy_eval, rng=0, metadata={"note": "x"})
        b = sweep(
            "s", [1.0, 2.0], _noisy_eval, rng=0, metadata={"note": "x"},
            execution=ExecutionPlan(workers=2),
        )
        assert strip_execution(a.metadata) == strip_execution(b.metadata) == {"note": "x"}

    def test_sweep_records_execution_metadata(self):
        result = sweep(
            "s", [1.0, 2.0, 3.0], _noisy_eval, rng=0,
            execution=ExecutionPlan(workers=2, chunk_size=1),
        )
        execution = result.metadata["_execution"]
        assert execution["backend"] == "process"
        assert sum(c["num_trials"] for c in execution["chunks"]) == 3

    def test_sweep_grid_bit_identical_across_plans(self):
        series = {"slow": 0.5, "fast": 2.0}
        serial = sweep_grid(series, [1.0, 2.0, 3.0], _grid_eval, rng=7)
        for plan in (ExecutionPlan(workers=2), ExecutionPlan(workers=4, chunk_size=1)):
            parallel = sweep_grid(series, [1.0, 2.0, 3.0], _grid_eval, rng=7, execution=plan)
            assert len(parallel) == len(serial)
            for a, b in zip(parallel, serial):
                assert sweep_results_equal(a, b)

    def test_sweep_lambda_falls_back_serially_with_same_values(self):
        serial = sweep("s", [1.0, 2.0], lambda p, rng: p + rng.normal(), rng=4)
        parallel = sweep(
            "s", [1.0, 2.0], lambda p, rng: p + rng.normal(), rng=4,
            execution=ExecutionPlan(workers=2),
        )
        assert parallel.values == serial.values
        assert parallel.metadata["_execution"]["backend"].startswith("serial-fallback")


class TestChunkIndices:
    def test_exact_partition(self):
        chunks = chunk_indices(10, 3)
        assert [list(c) for c in chunks] == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_empty(self):
        assert chunk_indices(0, 4) == []

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            chunk_indices(-1, 2)
        with pytest.raises(ValueError):
            chunk_indices(5, 0)


class TestSeedSpec:
    def test_stream_matches_generator_spawn(self):
        spawned = np.random.default_rng(123).spawn(6)
        spec = SeedSpec.from_rng(123)
        for index, child in enumerate(spawned):
            np.testing.assert_array_equal(
                spec.stream(index).integers(0, 1 << 16, 8),
                child.integers(0, 1 << 16, 8),
            )

    def test_spec_passthrough(self):
        spec = SeedSpec.from_rng(5)
        assert SeedSpec.from_rng(spec) is spec

    def test_nested_children_match_nested_spawn(self):
        grandchild = np.random.default_rng(9).spawn(3)[2].spawn(2)[1]
        spec = SeedSpec.from_rng(9).child(2).child(1)
        np.testing.assert_array_equal(
            spec.generator().integers(0, 1000, 5),
            grandchild.integers(0, 1000, 5),
        )

    def test_rejects_negative_child(self):
        with pytest.raises(ValueError):
            SeedSpec.from_rng(0).child(-1)
