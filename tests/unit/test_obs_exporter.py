"""HTTP metrics exporter: exposition format, in-tree validator, server.

The exposition tests validate the wire format line-by-line with the
in-tree parser (no third-party Prometheus dependency), and the
concurrent-scrape test proves the one-way telemetry contract: hammering
``/metrics`` during a sweep cannot perturb its results.
"""

import io
import json
import math
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs import exporter, metrics, runtime
from repro.obs.exporter import (
    MetricsExporter,
    diff_against_snapshot,
    parse_exposition,
    render_exposition,
    validate_exposition,
)


def enable(**kwargs):
    kwargs.setdefault("export_env", False)
    kwargs.setdefault("stream", io.StringIO())
    return obs.configure(**kwargs)


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read()


class TestRenderExposition:
    def test_counter_rendering(self):
        text = render_exposition(
            {"counters": {"store.hits": 3}, "gauges": {}, "histograms": {}}
        )
        assert "# TYPE repro_store_hits_total counter" in text
        assert "repro_store_hits_total 3" in text.splitlines()

    def test_gauge_rendering(self):
        text = render_exposition(
            {"counters": {}, "gauges": {"pool.workers": 4.0}, "histograms": {}}
        )
        assert "# TYPE repro_pool_workers gauge" in text
        assert "repro_pool_workers 4" in text.splitlines()

    def test_histogram_buckets_are_cumulative_and_closed(self):
        histogram = metrics.Histogram((0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        text = render_exposition(
            {"counters": {}, "gauges": {},
             "histograms": {"t": histogram.as_dict()}}
        )
        lines = text.splitlines()
        assert 'repro_t_bucket{le="0.1"} 1' in lines
        assert 'repro_t_bucket{le="1"} 3' in lines
        assert 'repro_t_bucket{le="+Inf"} 4' in lines
        assert "repro_t_count 4" in lines
        assert "repro_t_sum 6.05" in lines

    def test_name_sanitization(self):
        text = render_exposition(
            {"counters": {"a.b-c d": 1}, "gauges": {}, "histograms": {}}
        )
        assert "repro_a_b_c_d_total 1" in text.splitlines()

    def test_sanitization_collision_raises(self):
        with pytest.raises(ValueError, match="both export"):
            render_exposition({
                "counters": {"a.b": 1, "a_b": 2},
                "gauges": {}, "histograms": {},
            })

    def test_every_rendered_document_validates(self):
        histogram = metrics.Histogram((0.001, 0.1, 10.0))
        for value in (0.0001, 0.05, 3.0, 100.0):
            histogram.observe(value)
        snapshot = {
            "counters": {"store.hits": 12, "x.y": 0},
            "gauges": {"level": -3.5},
            "histograms": {"lat.secs": histogram.as_dict()},
        }
        text = render_exposition(snapshot)
        validate_exposition(text)
        assert diff_against_snapshot(text, snapshot) == []

    def test_agreement_with_live_registry_snapshot(self, tmp_path):
        enable()
        metrics.inc("store.hits", 7)
        metrics.set_gauge("queue.depth", 3)
        metrics.observe("chunk.seconds", 0.02)
        metrics.observe("chunk.seconds", 2.5)
        snapshot = metrics.snapshot()
        assert diff_against_snapshot(render_exposition(snapshot), snapshot) == []

    def test_diff_reports_mismatch(self):
        snapshot = {"counters": {"n": 2}, "gauges": {}, "histograms": {}}
        text = render_exposition(
            {"counters": {"n": 3}, "gauges": {}, "histograms": {}}
        )
        problems = diff_against_snapshot(text, snapshot)
        assert problems and "repro_n_total" in problems[0]


class TestParseExposition:
    def test_label_escape_round_trip(self):
        parsed = parse_exposition(
            '# TYPE m_total counter\nm_total{path="a\\\\b\\"c\\nd"} 1\n'
        )
        ((name, labels, value),) = parsed["samples"]
        assert labels == {"path": 'a\\b"c\nd'}

    def test_rejects_bad_metric_name(self):
        with pytest.raises(ValueError, match="bad metric name"):
            parse_exposition("9bad_name 1\n")

    def test_rejects_bad_escape(self):
        with pytest.raises(ValueError, match="bad escape"):
            parse_exposition('m{l="a\\qb"} 1\n')

    def test_rejects_unterminated_label(self):
        with pytest.raises(ValueError):
            parse_exposition('m{l="open 1\n')

    def test_rejects_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_exposition("# TYPE m counter\n# TYPE m counter\n")

    def test_rejects_type_after_samples(self):
        with pytest.raises(ValueError, match="after its samples"):
            parse_exposition("m_total 1\n# TYPE m_total counter\n")

    def test_accepts_inf_and_nan_values(self):
        parsed = parse_exposition("m_a +Inf\nm_b -Inf\nm_c NaN\n")
        values = [value for _, _, value in parsed["samples"]]
        assert values[0] == math.inf and values[1] == -math.inf
        assert math.isnan(values[2])

    def test_accepts_optional_timestamp(self):
        parsed = parse_exposition("m 1.5 1700000000000\n")
        assert parsed["samples"] == [("m", {}, 1.5)]


class TestValidateExposition:
    def test_rejects_undeclared_sample(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            validate_exposition("mystery 1\n")

    def test_rejects_counter_without_total_suffix(self):
        with pytest.raises(ValueError, match="_total"):
            validate_exposition("# TYPE m counter\nm 1\n")

    def test_rejects_duplicate_series(self):
        with pytest.raises(ValueError, match="duplicate series"):
            validate_exposition("# TYPE m gauge\nm 1\nm 2\n")

    def test_rejects_non_cumulative_histogram(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\nh_count 5\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            validate_exposition(text)

    def test_rejects_histogram_without_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            "h_sum 1\nh_count 5\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_exposition(text)

    def test_rejects_inf_bucket_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 1\nh_count 5\n"
        )
        with pytest.raises(ValueError, match="!= _count"):
            validate_exposition(text)


class TestMetricsExporterHTTP:
    def test_metrics_endpoint_agrees_with_snapshot(self):
        enable()
        metrics.inc("serve.scrapes", 2)
        metrics.observe("lat.seconds", 0.3)
        with MetricsExporter(port=0) as exp:
            body = _get(f"http://127.0.0.1:{exp.port}/metrics").decode()
        snapshot = metrics.snapshot()
        assert diff_against_snapshot(body, snapshot) == []

    def test_healthz(self):
        with MetricsExporter(port=0) as exp:
            assert _get(f"http://127.0.0.1:{exp.port}/healthz") == b"ok\n"

    def test_status_payload_fields(self):
        enable()
        with MetricsExporter(
            port=0, status_provider=lambda: {"custom": 7}
        ) as exp:
            payload = json.loads(_get(f"http://127.0.0.1:{exp.port}/status"))
        assert payload["run_id"] == runtime.run_id()
        assert payload["custom"] == 7
        assert payload["uptime_s"] >= 0.0
        from repro import __version__

        assert payload["version"] == __version__

    def test_unknown_route_404(self):
        with MetricsExporter(port=0) as exp:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"http://127.0.0.1:{exp.port}/nope")
            assert excinfo.value.code == 404

    def test_broken_status_provider_returns_500_not_crash(self):
        def boom():
            raise RuntimeError("provider broke")

        with MetricsExporter(port=0, status_provider=boom) as exp:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"http://127.0.0.1:{exp.port}/status")
            assert excinfo.value.code == 500
            # Exporter still serves other routes after the failure.
            assert _get(f"http://127.0.0.1:{exp.port}/healthz") == b"ok\n"

    def test_double_start_rejected(self):
        exp = MetricsExporter(port=0)
        exp.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                exp.start()
        finally:
            exp.stop()

    def test_stop_is_idempotent(self):
        exp = MetricsExporter(port=0)
        exp.start()
        exp.stop()
        exp.stop()


class TestScrapeNeverPerturbs:
    def test_concurrent_scrapes_during_sweep_are_bit_exact(self, tmp_path):
        """Hammering /metrics mid-sweep must not change a single bit."""
        from repro.sim.sweep import sweep

        def evaluate(parameter, rng):
            return float(parameter + rng.standard_normal())

        params = [float(p) for p in range(12)]
        baseline = sweep("scrape-base", params, evaluate, rng=0)

        enable()
        stop = threading.Event()
        scrapes = []
        errors = []

        with MetricsExporter(port=0) as exp:
            url = f"http://127.0.0.1:{exp.port}/metrics"

            def scrape_loop():
                while not stop.is_set():
                    try:
                        scrapes.append(_get(url).decode())
                    except Exception as error:  # pragma: no cover
                        errors.append(error)

            threads = [threading.Thread(target=scrape_loop) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                result = sweep("scrape-live", params, evaluate, rng=0)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)

        assert not errors
        assert scrapes, "scraper threads never completed a scrape"
        for document in scrapes[-3:]:
            validate_exposition(document)
        assert result.values == baseline.values
        assert result.parameters == baseline.parameters
