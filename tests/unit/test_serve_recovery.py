"""Unit tests for crash recovery: scheduler journaling + server resume.

The scheduler half runs on synthetic point specs with a real
:class:`JobJournal` in a tmp dir, pinning the write-ahead discipline
(record before compute, per-point completion marks, removal at done /
cancel).  The server half stands up a real :class:`ServerThread` over a
pre-seeded journal and pins the ``--resume`` replay contract: incomplete
jobs resubmit, completed points are never re-scheduled, records whose
fingerprints drifted are dropped loudly, and the journal ends empty.
"""

import asyncio
import threading
import time

from repro.serve.journal import JobJournal, JournalRecord
from repro.serve.protocol import ParsedJob, parse_job
from repro.serve.scheduler import JobScheduler
from repro.serve.server import ServeConfig, ServerThread
from repro.sim.executor import ExecutionPlan
from repro.store import ExperimentStore


class FakeSpec:
    kind = "fake"

    def __init__(self, name, *, gate=None):
        self.name = name
        self.gate = gate

    def fingerprint(self):
        return f"fp-{self.name}"

    def compute(self, execution, store):
        if self.gate is not None:
            assert self.gate.wait(timeout=10.0), "test gate never released"
        return {"name": self.name}


class FakeSession:
    def __init__(self):
        self.messages = []

    def send(self, message):
        self.messages.append(message)

    def finish_job(self, job):
        pass


def job_of(*specs):
    return ParsedJob(kind="fake", points=tuple(specs))


async def eventually(predicate, timeout=15.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition not met in time"
        await asyncio.sleep(0.005)


class TestSchedulerJournaling:
    def test_submit_journals_write_ahead_and_done_retires(self, tmp_path):
        async def scenario():
            journal = JobJournal(tmp_path)
            gate = threading.Event()
            scheduler = JobScheduler(
                pool_workers=1, max_pending=8, journal=journal
            )
            session = FakeSession()
            raw = {"kind": "fake", "what": "ever"}
            _, job = scheduler.submit(
                session, "j1", job_of(FakeSpec("a", gate=gate), FakeSpec("b")),
                raw_job=raw,
            )
            # Write-ahead: the record is on disk while nothing computed.
            record = journal.get(job.journal_id)
            assert record is not None
            assert record.job == raw
            assert record.fingerprints == ("fp-a", "fp-b")
            assert record.remaining() == (0, 1)
            assert scheduler.counters["journal_records"] == 1
            gate.set()
            await eventually(lambda: scheduler._pending == 0)
            # Fully delivered: the record is gone.
            await eventually(lambda: journal.get(job.journal_id) is None)
            await scheduler.close()

        asyncio.run(scenario())

    def test_points_marked_complete_as_delivered(self, tmp_path):
        async def scenario():
            journal = JobJournal(tmp_path)
            gate = threading.Event()
            scheduler = JobScheduler(
                pool_workers=1, max_pending=8, journal=journal
            )
            session = FakeSession()
            # First point free, second gated: after the first delivers,
            # the record must show exactly index 0 complete.
            _, job = scheduler.submit(
                session, "j1",
                job_of(FakeSpec("fast"), FakeSpec("slow", gate=gate)),
                raw_job={"kind": "fake"},
            )
            await eventually(
                lambda: (journal.get(job.journal_id) or
                         JournalRecord("x", "k", {}, ())).completed == (0,)
            )
            assert journal.get(job.journal_id).remaining() == (1,)
            gate.set()
            await eventually(lambda: scheduler._pending == 0)
            await scheduler.close()

        asyncio.run(scenario())

    def test_cancel_retires_the_record(self, tmp_path):
        async def scenario():
            journal = JobJournal(tmp_path)
            gate = threading.Event()
            scheduler = JobScheduler(
                pool_workers=1, max_pending=8, journal=journal
            )
            session = FakeSession()
            scheduler.submit(
                session, "block", job_of(FakeSpec("block", gate=gate)),
                raw_job={"kind": "fake"},
            )
            _, victim = scheduler.submit(
                session, "victim", job_of(FakeSpec("v")),
                raw_job={"kind": "fake"},
            )
            assert journal.get(victim.journal_id) is not None
            scheduler.cancel_job(victim)
            # An explicitly cancelled job must not replay at next restart:
            # a reconnecting client resubmits (and re-journals) itself.
            assert journal.get(victim.journal_id) is None
            gate.set()
            await eventually(lambda: scheduler._pending == 0)
            await scheduler.close()

        asyncio.run(scenario())

    def test_no_journal_without_raw_job(self, tmp_path):
        async def scenario():
            journal = JobJournal(tmp_path)
            scheduler = JobScheduler(
                pool_workers=1, max_pending=8, journal=journal
            )
            _, job = scheduler.submit(
                FakeSession(), "j1", job_of(FakeSpec("a"))
            )
            assert job.journal_id is None
            assert not journal.incomplete()
            await eventually(lambda: scheduler._pending == 0)
            await scheduler.close()

        asyncio.run(scenario())


#: Two fast points; distinct seeds keep the fingerprints distinct.
SWEEP_JOB = {
    "kind": "ber_sweep", "frames": 2, "distance_m": 3.0,
    "sweep": {"field": "seed", "values": [11, 12]},
}


def wait_for(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition not met in time"
        time.sleep(0.02)


class TestServerResume:
    def _seed_journal(self, cache_dir, job, completed=()):
        """Plant the record a crashed server would have left behind."""
        parsed = parse_job(job)
        fingerprints = [spec.fingerprint() for spec in parsed.points]
        journal = JobJournal(cache_dir)
        record = journal.record(
            kind=parsed.kind, job=job, fingerprints=fingerprints,
        )
        for index in completed:
            journal.mark_complete(record.journal_id, index)
        return journal, record, parsed, fingerprints

    def test_resume_replays_incomplete_job_into_store(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        journal, record, _parsed, fingerprints = self._seed_journal(
            cache_dir, SWEEP_JOB
        )
        with ServerThread(ServeConfig(
            pool_workers=1, cache_dir=cache_dir, resume=True,
        )) as handle:
            assert handle.server.replayed_jobs == 1
            assert handle.server.scheduler.counters["journal_replayed"] == 1
            # Replay finishes: record retired, every point in the store.
            wait_for(lambda: journal.get(record.journal_id) is None)
            store = ExperimentStore(cache_dir)
            for fingerprint in fingerprints:
                assert store.contains(fingerprint)

    def test_resume_skips_completed_points(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        # Point 0 landed in the store before the "crash"...
        parsed = parse_job(SWEEP_JOB)
        store = ExperimentStore(cache_dir)
        parsed.points[0].compute(ExecutionPlan(), store)
        # ...and the journal knows it was delivered.
        journal, record, _parsed, fingerprints = self._seed_journal(
            cache_dir, SWEEP_JOB, completed=(0,)
        )
        with ServerThread(ServeConfig(
            pool_workers=1, cache_dir=cache_dir, resume=True,
        )) as handle:
            wait_for(lambda: journal.get(record.journal_id) is None)
            counters = handle.server.scheduler.counters
            # Only the missing point was ever scheduled.
            assert counters["points_submitted"] == 1
            assert counters["journal_replayed"] == 1
            store = ExperimentStore(cache_dir)
            for fingerprint in fingerprints:
                assert store.contains(fingerprint)

    def test_resume_drops_record_with_drifted_fingerprints(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        parsed = parse_job(SWEEP_JOB)
        journal = JobJournal(cache_dir)
        record = journal.record(
            kind=parsed.kind, job=SWEEP_JOB,
            fingerprints=["0" * 64 for _ in parsed.points],  # drifted
        )
        with ServerThread(ServeConfig(
            pool_workers=1, cache_dir=cache_dir, resume=True,
        )) as handle:
            assert handle.server.replayed_jobs == 0
            assert handle.server.scheduler.counters["points_submitted"] == 0
        # Dropped loudly, not left to replay wrong forever.
        assert journal.get(record.journal_id) is None

    def test_start_without_resume_leaves_journal_alone(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        journal, record, _parsed, _fps = self._seed_journal(
            cache_dir, SWEEP_JOB
        )
        with ServerThread(ServeConfig(
            pool_workers=1, cache_dir=cache_dir, resume=False,
        )) as handle:
            assert handle.server.replayed_jobs == 0
        assert journal.get(record.journal_id) is not None
