"""End-to-end integration: full frames through radar, channel, tag, and back."""

import numpy as np

from repro.core.ber import bit_error_rate, random_bits
from repro.core.downlink import DownlinkEncoder
from repro.core.packet import DownlinkPacket
from repro.channel.link_budget import DownlinkBudget
from repro.radar.config import TINYRAD_24GHZ, XBAND_9GHZ
from repro.sim.scenario import default_office_scenario
from repro.tag.decoder_dsp import TagDecoder
from repro.tag.frontend import AnalyticTagFrontend


class TestDownlinkEndToEnd:
    """Radar encodes -> channel attenuates -> tag syncs and decodes."""

    def test_full_stack_at_operating_ranges(self, alphabet):
        encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
        budget = DownlinkBudget(
            tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
            radar_antenna=XBAND_9GHZ.antenna,
            frequency_hz=XBAND_9GHZ.center_frequency_hz,
        )
        frontend = AnalyticTagFrontend(budget=budget, delta_t_s=alphabet.decoder.delta_t_s)
        decoder = TagDecoder(alphabet)
        for distance in (0.5, 2.0, 5.0):
            bits = random_bits(40, rng=int(distance * 10))
            packet = DownlinkPacket.from_bits(alphabet, bits)
            frame = encoder.encode_packet(packet)
            capture = frontend.capture(frame, distance, rng=int(distance * 7))
            decoded = decoder.decode(capture, num_payload_symbols=8)
            assert bit_error_rate(bits, decoded.bits) == 0.0, f"errors at {distance} m"

    def test_paper_headline_seven_meters(self, alphabet):
        """BER < 1e-3 at 7 m with 5-bit symbols (paper Figs. 13/17 claim)."""
        from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials

        config = DownlinkTrialConfig(
            radar_config=XBAND_9GHZ,
            alphabet=alphabet,
            distance_m=7.0,
            num_frames=60,
            payload_symbols_per_frame=16,
        )
        point = run_downlink_trials(config, rng=0)
        assert point.ber < 5e-3  # 1e-3 nominal; margin for Monte-Carlo noise

    def test_smaller_symbols_more_robust(self, alphabet, small_alphabet):
        from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials

        results = {}
        for label, alpha in (("5bit", alphabet), ("2bit", small_alphabet)):
            config = DownlinkTrialConfig(
                radar_config=XBAND_9GHZ,
                alphabet=alpha,
                snr_override_db=2.0,
                num_frames=30,
                payload_symbols_per_frame=12,
            )
            results[label] = run_downlink_trials(config, rng=1).ber
        assert results["2bit"] < results["5bit"]


class TestIsacEndToEnd:
    def test_simultaneous_three_functions(self):
        """One frame: downlink + uplink + localization + sensing all work."""
        scenario = default_office_scenario(tag_range_m=4.0)
        session = scenario.session()
        downlink = random_bits(30, rng=1)
        uplink = random_bits(5, rng=2)
        result = session.run_frame(downlink, uplink, rng=3)
        assert result.downlink_bit_errors == 0
        assert result.uplink_bit_errors == 0
        assert abs(result.localization.range_m - 4.0) < 0.05
        grid, profile = session.sensing_range_profile(result.if_frame)
        assert profile.max() > 0

    def test_sensing_transparent_to_communication(self):
        """Clutter peaks agree between sensing-only and comm-heavy frames."""
        scenario = default_office_scenario(tag_range_m=3.0)
        session = scenario.session()
        comm = session.run_frame(random_bits(40, rng=4), random_bits(4, rng=5), rng=6)
        quiet = session.run_frame(random_bits(5, rng=7), random_bits(4, rng=8), rng=9)
        grid_a, profile_a = session.sensing_range_profile(comm.if_frame)
        grid_b, profile_b = session.sensing_range_profile(quiet.if_frame)
        strongest = max(
            (r for r in scenario.clutter.reflectors if r.range_m < min(grid_a[-1], grid_b[-1])),
            key=lambda r: r.rcs_m2 / r.range_m**4,
        )

        def peak_near(grid, profile, target, window_m=0.5):
            mask = np.abs(grid - target) < window_m
            return grid[mask][np.argmax(profile[mask])]

        peak_a = peak_near(grid_a, profile_a, strongest.range_m)
        peak_b = peak_near(grid_b, profile_b, strongest.range_m)
        assert abs(peak_a - peak_b) < 0.1

    def test_multiple_ranges(self):
        for distance in (1.0, 3.5, 6.0):
            scenario = default_office_scenario(tag_range_m=distance)
            session = scenario.session()
            result = session.run_frame(random_bits(10, rng=1), random_bits(4, rng=2), rng=3)
            assert result.downlink_bit_errors == 0
            assert abs(result.localization.range_m - distance) < 0.1


class TestCrossBand:
    """The tag structure works at 24 GHz with 250 MHz bandwidth (Fig. 17)."""

    def test_24ghz_link_decodes(self):
        scenario = default_office_scenario(
            radar_config=TINYRAD_24GHZ,
            symbol_bits=3,
            tag_range_m=1.0,
            modulation_rate_hz=2500.0,
        )
        from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials

        config = DownlinkTrialConfig(
            radar_config=TINYRAD_24GHZ,
            alphabet=scenario.alphabet,
            distance_m=1.0,
            num_frames=10,
            payload_symbols_per_frame=8,
        )
        point = run_downlink_trials(config, rng=0)
        assert point.ber < 0.05

    def test_comparable_ber_at_equal_snr(self, decoder_design):
        """9 vs 24 GHz at 250 MHz bandwidth and pinned SNR (Fig. 17 shape)."""
        from repro.core.cssk import CsskAlphabet
        from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials

        bers = {}
        for config_radar in (XBAND_9GHZ.with_bandwidth(250e6), TINYRAD_24GHZ):
            alphabet = CsskAlphabet.design(
                bandwidth_hz=250e6,
                decoder=decoder_design,
                symbol_bits=3,
                chirp_period_s=120e-6,
            )
            config = DownlinkTrialConfig(
                radar_config=config_radar,
                alphabet=alphabet,
                snr_override_db=10.0,
                num_frames=40,
                payload_symbols_per_frame=12,
            )
            bers[config_radar.name] = run_downlink_trials(config, rng=2).ber
        values = list(bers.values())
        # Same SNR, same bandwidth: BERs within a small factor of each other.
        assert abs(values[0] - values[1]) < 0.05


class TestMultiTagNetwork:
    def test_addressed_downlink_selectivity(self, alphabet):
        from repro.core.network import MultiTagNetwork
        from repro.tag.architecture import BiScatterTag

        network = MultiTagNetwork(alphabet=alphabet)
        tag_a = network.enroll(BiScatterTag(decoder_design=alphabet.decoder), range_m=2.0)
        tag_b = network.enroll(BiScatterTag(decoder_design=alphabet.decoder), range_m=4.0)
        payload = random_bits(12, rng=0)
        packet = network.build_addressed_packet(tag_a.address, payload)

        encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
        frame = encoder.encode_packet(packet)
        budget = DownlinkBudget(
            tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
            radar_antenna=XBAND_9GHZ.antenna,
            frequency_hz=XBAND_9GHZ.center_frequency_hz,
        )
        # Both tags hear the broadcast; only A should act on it.
        for endpoint in (tag_a, tag_b):
            frontend = endpoint.tag.frontend(budget)
            capture = frontend.capture(frame, endpoint.range_m, rng=1)
            decoder = endpoint.tag.decoder(alphabet)
            decoded = decoder.decode(capture, num_payload_symbols=packet.num_payload_symbols)
            address, recovered = MultiTagNetwork.parse_address(decoded.bits)
            assert address == tag_a.address
            acts = endpoint in network.tags_accepting(address)
            assert acts == (endpoint is tag_a)
            np.testing.assert_array_equal(recovered[: payload.size], payload)

    def test_two_tags_separable_uplink(self, alphabet):
        """Two tags modulating simultaneously at different rates are both
        localizable from one frame."""
        from repro.core.localization import TagLocalizer
        from repro.radar.fmcw import FMCWRadar, Scatterer
        from repro.waveform.frame import FrameSchedule

        period = 120e-6
        chirp = XBAND_9GHZ.chirp(80e-6)
        frame = FrameSchedule.from_chirps([chirp] * 256, period)
        times = np.array([slot.start_time_s for slot in frame.slots])
        scatterers = []
        placements = {1500.0: 2.0, 2600.0: 5.0}
        for rate, distance in placements.items():
            states = ((times * rate) % 1.0) < 0.5
            scatterers.append(
                Scatterer(
                    range_m=distance,
                    rcs_m2=3e-3,
                    amplitude_schedule=np.where(states, 1.0, 0.03),
                )
            )
        if_frame = FMCWRadar(XBAND_9GHZ).receive_frame(frame, scatterers, rng=0)
        for rate, distance in placements.items():
            result = TagLocalizer(rate).localize(if_frame)
            assert abs(result.range_m - distance) < 0.1, f"tag at rate {rate}"
