"""MCU compute-cost accounting and multi-radar coexistence."""

import pytest

from repro.core.coexistence import CoexistenceSimulator, interference_noise_rise_db
from repro.errors import ConfigurationError
from repro.tag.compute_cost import (
    ComputeReport,
    McuModel,
    analyze_strategies,
    macs_per_chirp,
)


class TestMcuModel:
    def test_time_and_energy(self):
        mcu = McuModel(clock_hz=1e6, cycles_per_mac=4.0, active_power_w=40e-3)
        assert mcu.time_for_macs_s(1000) == pytest.approx(4e-3)
        assert mcu.energy_for_macs_j(1000) == pytest.approx(4e-3 * 40e-3)

    def test_rejects_negative_macs(self):
        with pytest.raises(ConfigurationError):
            McuModel().time_for_macs_s(-1)


class TestMacCounts:
    def test_goertzel_scales_with_candidates(self, alphabet, small_alphabet):
        big = macs_per_chirp(alphabet, 1e6, "goertzel")
        small = macs_per_chirp(small_alphabet, 1e6, "goertzel")
        assert big / small == pytest.approx(
            alphabet.num_slopes / small_alphabet.num_slopes, rel=1e-6
        )

    def test_glrt_three_x_goertzel(self, alphabet):
        assert macs_per_chirp(alphabet, 1e6, "glrt") == pytest.approx(
            3 * macs_per_chirp(alphabet, 1e6, "goertzel")
        )

    def test_goertzel_cheaper_than_fft_for_small_alphabets(self, small_alphabet):
        # The paper's claim: with few candidate beats, point evaluation
        # beats computing the whole spectrum.
        assert macs_per_chirp(small_alphabet, 1e6, "goertzel") < macs_per_chirp(
            small_alphabet, 1e6, "fft"
        )

    def test_unknown_strategy(self, alphabet):
        with pytest.raises(ConfigurationError):
            macs_per_chirp(alphabet, 1e6, "quantum")


class TestAnalyzeStrategies:
    def test_reports_all_strategies(self, alphabet):
        reports = analyze_strategies(alphabet)
        assert sorted(r.strategy for r in reports) == ["fft", "glrt", "goertzel"]
        for report in reports:
            assert isinstance(report, ComputeReport)
            assert report.macs_per_chirp > 0
            assert report.energy_per_chirp_j > 0

    def test_duty_feasibility_flag(self, small_alphabet):
        fast = McuModel(clock_hz=48e6, cycles_per_mac=1.0)
        reports = analyze_strategies(small_alphabet, mcu=fast)
        assert all(r.feasible() for r in reports)

    def test_energy_ranking_small_alphabet(self, small_alphabet):
        reports = {r.strategy: r for r in analyze_strategies(small_alphabet)}
        assert reports["goertzel"].energy_per_chirp_j < reports["fft"].energy_per_chirp_j


class TestInterference:
    def test_dwell_dilution(self):
        # Interferer 40 dB above the floor, sweeping 1 GHz past a 1 MHz IF:
        # dilution 1e-3 -> rise ~ 10log10(1 + 1e4*1e-3) = 10.4 dB.
        rise = interference_noise_rise_db(-60.0, -100.0, 1e6, 1e9)
        assert rise == pytest.approx(10.4, abs=0.2)

    def test_narrow_sweep_full_power(self):
        rise_narrow = interference_noise_rise_db(-60.0, -100.0, 1e6, 1e6)
        rise_wide = interference_noise_rise_db(-60.0, -100.0, 1e6, 1e9)
        assert rise_narrow > rise_wide

    def test_zero_interferer_below_floor(self):
        rise = interference_noise_rise_db(-200.0, -100.0, 1e6, 1e9)
        assert rise == pytest.approx(0.0, abs=1e-6)


class TestCoexistence:
    def test_single_radar_never_collides(self):
        simulator = CoexistenceSimulator(num_radars=1)
        assert simulator.unslotted_symbol_survival(rng=0) == 1.0

    def test_full_duty_two_radars_all_collide(self):
        simulator = CoexistenceSimulator(num_radars=2)
        assert simulator.unslotted_symbol_survival(duty_cycle=1.0, rng=0) == 0.0

    def test_half_duty_partial_survival(self):
        simulator = CoexistenceSimulator(num_radars=2)
        survival = simulator.unslotted_symbol_survival(duty_cycle=0.5, rng=0)
        assert 0.4 < survival < 0.6  # ~ (1 - 0.5)

    def test_more_radars_worse(self):
        two = CoexistenceSimulator(num_radars=2).unslotted_symbol_survival(
            duty_cycle=0.5, rng=1
        )
        four = CoexistenceSimulator(num_radars=4).unslotted_symbol_survival(
            duty_cycle=0.5, rng=1
        )
        assert four < two

    def test_slotted_always_survives(self):
        simulator = CoexistenceSimulator(num_radars=3)
        assert simulator.slotted_symbol_survival() == 1.0
        assert simulator.slotted_per_radar_throughput_fraction() == pytest.approx(1 / 3)

    def test_compare_shows_slotted_advantage_at_scale(self):
        # With 3+ radars at half duty, time division beats contention.
        simulator = CoexistenceSimulator(num_radars=4)
        summary = simulator.compare(duty_cycle=0.5, rng=2)
        assert summary["slotted_goodput"] > summary["unslotted_goodput"]
        assert summary["slotted_survival"] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoexistenceSimulator(num_radars=0)
        with pytest.raises(ConfigurationError):
            CoexistenceSimulator().unslotted_symbol_survival(duty_cycle=0.0)
