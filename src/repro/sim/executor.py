"""Parallel Monte-Carlo execution with a bit-exact determinism contract.

Every Monte-Carlo engine in :mod:`repro.sim` iterates RNG-independent
trials, so the work fans out over processes — but reproducibility is a
first-class requirement: the figures in EXPERIMENTS.md are pinned to
seeds.  This layer therefore guarantees

    ``workers=1`` == ``workers=2`` == ``workers=8``, bit for bit,

for any chunking of the trial range.  Two ingredients make that hold:

1. **Index-keyed seeding** — trial ``i``'s generator is derived from
   ``(root SeedSequence, i)`` via :class:`repro.utils.rng.SeedSpec`, so
   it does not matter which worker or chunk runs the trial.
2. **Order-restoring reassembly** — chunks may *complete* in any order,
   but per-trial results are re-assembled by trial index before any
   reduction, so floating-point reductions see one canonical order.

Chunks (not single trials) are the unit of dispatch so process start-up
and per-task pickling are amortised over many trials.  Wall-clock data —
per-chunk timings, backend, worker count — is inherently *not*
deterministic, so it is kept out of result payloads and reported through
:class:`ExecutionReport` / the ``metadata["_execution"]`` side channel;
:func:`strip_execution` removes it for bitwise comparisons.

**Fault tolerance.**  Long seed-pinned sweeps die ugly when a single
worker is OOM-killed mid-campaign, so the process backend survives the
three failure modes a pool can exhibit:

* a chunk *raises* in its worker — the chunk is resubmitted, up to
  ``ExecutionPlan.max_retries`` times; determinism makes the re-run
  bit-identical to what the failed attempt would have produced;
* a worker *dies* (OOM kill, ``os._exit``) — the broken pool is torn
  down and rebuilt, completed chunk results are kept, and only the
  unfinished chunks are resubmitted (rebuilds are bounded too);
* a chunk *hangs* past ``ExecutionPlan.chunk_timeout_s`` — the pool is
  killed to reclaim the stuck worker and the chunk retries under an
  exponentially backed-off deadline.

When a chunk exhausts every retry, ``ExecutionPlan.on_failure`` picks the
ending: ``"raise"`` (default) aborts with
:class:`repro.errors.ExecutorError` naming the failed trial indices,
``"serial"`` re-runs the leftovers in the parent process — the graceful
degradation path for pools that keep breaking.  Every retry, rebuild,
timeout, and serial recovery is counted on the :class:`ExecutionReport`
(and thus lands in ``metadata["_execution"]["faults"]``).
"""

from __future__ import annotations

import math
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro import obs
from repro.errors import ChunkFailure, ExecutorError
from repro.obs import manifest as _obs_manifest
from repro.obs import runtime as _obs_runtime
from repro.utils.rng import SeedSpec

#: Chunk functions are module-level callables so they survive pickling:
#: ``chunk_fn(payload, seed_spec, indices) -> list[per-trial result]``.
ChunkFn = "Callable[[Any, SeedSpec, Sequence[int]], list]"

#: Environment override for the multiprocessing start method.
START_METHOD_ENV = "REPRO_MP_START_METHOD"

#: Per-attempt growth factor for ``chunk_timeout_s`` deadlines, so a
#: slow-but-correct chunk eventually gets enough time to finish.
TIMEOUT_BACKOFF = 2.0

#: Modules imported into the forkserver before the first fork, so workers
#: inherit the heavy imports (numpy, the engine stack) instead of paying
#: them per process.  Import failures are silently ignored by the server.
_FORKSERVER_PRELOAD = ("repro.sim.executor", "repro.sim.engine")


def default_start_method() -> str:
    """The start method used when neither the plan nor the env names one.

    ``fork`` is fast but deprecated in multi-threaded parents on Python
    3.12+ (and no longer the Linux default on 3.14), so the default is the
    warning-free ``forkserver`` where available (POSIX), else ``spawn``.
    Results are bit-identical under *any* start method — trial seeding is
    index-keyed, never inherited — and ``forkserver``/``spawn`` workers
    start from a clean import state, so parent-process global mutations
    cannot leak into trials the way ``fork`` snapshots allow.  Set
    :data:`START_METHOD_ENV` (``REPRO_MP_START_METHOD``) to override.
    """
    import multiprocessing

    if "forkserver" in multiprocessing.get_all_start_methods():
        return "forkserver"
    return "spawn"


@dataclass(frozen=True)
class ChunkTiming:
    """Wall-clock record for one dispatched chunk (progress-hook payload).

    A chunk always covers at least one trial — :func:`chunk_indices`
    cannot produce an empty chunk — so construction rejects
    ``num_trials < 1`` rather than ever carrying a fabricated
    ``start_index`` sentinel for a chunk that ran nothing.
    """

    chunk_index: int
    start_index: int
    num_trials: int
    seconds: float

    def __post_init__(self) -> None:
        if self.chunk_index < 0:
            raise ValueError(f"chunk_index must be >= 0, got {self.chunk_index}")
        if self.start_index < 0:
            raise ValueError(f"start_index must be >= 0, got {self.start_index}")
        if self.num_trials < 1:
            raise ValueError(
                f"a chunk covers at least one trial, got num_trials={self.num_trials}"
            )
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    def as_dict(self) -> "dict[str, Any]":
        return {
            "chunk_index": self.chunk_index,
            "start_index": self.start_index,
            "num_trials": self.num_trials,
            "seconds": self.seconds,
        }


@dataclass
class ExecutionReport:
    """How a trial map actually ran: backend, chunking, timing, faults.

    The fault counters record *recovered* trouble — retries that
    succeeded, pools that were rebuilt, chunks salvaged by the serial
    degradation path.  Unrecoverable failures never produce a report;
    they raise :class:`repro.errors.ExecutorError` instead.
    """

    backend: str
    workers: int
    chunk_size: int
    num_trials: int
    chunks: "list[ChunkTiming]" = field(default_factory=list)
    total_seconds: float = 0.0
    retries: int = 0
    pool_rebuilds: int = 0
    timeouts: int = 0
    serial_recovered_chunks: int = 0
    fault_events: "list[dict[str, Any]]" = field(default_factory=list)

    def as_metadata(self) -> "dict[str, Any]":
        """Plain-dict form for ``SweepResult.metadata['_execution']``."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "num_trials": self.num_trials,
            "total_seconds": self.total_seconds,
            "chunks": [chunk.as_dict() for chunk in self.chunks],
            "faults": {
                "retries": self.retries,
                "pool_rebuilds": self.pool_rebuilds,
                "timeouts": self.timeouts,
                "serial_recovered_chunks": self.serial_recovered_chunks,
                "events": [dict(event) for event in self.fault_events],
            },
        }


@dataclass(frozen=True)
class ExecutionPlan:
    """How to run a Monte-Carlo trial map.

    ``workers=1`` (the default) runs serially in-process — no pool, no
    pickling, safe everywhere (Windows spawn semantics, frozen CI
    runners).  ``workers>1`` fans chunks out over a
    ``ProcessPoolExecutor``; results are bit-identical either way.

    ``chunk_size`` balances scheduling granularity against dispatch
    overhead; ``None`` picks ``ceil(n / (4 * workers))`` so each worker
    sees ~4 chunks for decent load balancing.  ``progress`` is called in
    the parent process once per finished chunk with a
    :class:`ChunkTiming` (completion order, not index order).

    ``on_chunk`` is the incremental-results sibling of ``progress``: it
    is called in the parent process once per finished chunk with
    ``(timing, chunk_results)``, where ``chunk_results`` is that chunk's
    slice of the eventual result list (trials ``timing.start_index ..
    start_index + num_trials - 1``, already in index order within the
    chunk).  Chunks arrive in completion order; :func:`map_trials` still
    returns the fully reassembled, index-ordered list, so the hook is a
    pure streaming side channel — the serve subsystem uses it to push
    partial results to subscribers while a point is still running.  Both
    callbacks run under every backend, including serial recovery after
    pool faults, and a retried chunk reports only its final successful
    attempt (exactly once per chunk).

    The fault knobs govern the process backend only (the failure modes
    they guard — worker kills, broken pools, stuck workers — do not
    exist in-process):

    ``max_retries``
        How many times a failed chunk is resubmitted before it counts as
        exhausted.  A chunk is a pure function of
        ``(payload, spec, indices)``, so a successful retry is
        bit-identical to what the failed attempt would have returned.
        The same budget bounds pool rebuilds after a worker death.
    ``chunk_timeout_s``
        Optional per-chunk deadline (measured from dispatch).  A chunk
        past its deadline is treated as failed: the pool is killed to
        reclaim the stuck worker and the chunk retries with the deadline
        scaled by :data:`TIMEOUT_BACKOFF` per prior attempt.
    ``on_failure``
        ``"raise"`` (default) aborts with
        :class:`repro.errors.ExecutorError` naming the failing trial
        indices once any chunk exhausts its retries; ``"serial"``
        degrades gracefully instead, re-running every unfinished chunk
        serially in the parent process (bit-identical, pool-proof).
    ``batch_frames``
        Run each chunk through the *batched* signal-chain fast path where
        the engine supports it (currently the downlink BER engine): the
        chunk's frames are synthesized, scored, and decoded as stacked
        ``(frames, samples)`` array ops instead of a per-frame Python
        loop.  Results are **bit-identical** to the per-frame path — the
        per-frame implementation stays the reference oracle, enforced by
        ``tests/unit/test_batch_equivalence.py`` — so the flag is purely
        a throughput knob and composes freely with workers, chunking,
        retries, and the experiment store (cache fingerprints exclude the
        execution plan on purpose: both modes share entries).  Engines
        without a batched path ignore the flag.
    """

    workers: int = 1
    chunk_size: "int | None" = None
    progress: "Callable[[ChunkTiming], None] | None" = None
    on_chunk: "Callable[[ChunkTiming, list], None] | None" = None
    start_method: "str | None" = None
    max_retries: int = 2
    chunk_timeout_s: "float | None" = None
    on_failure: str = "raise"
    batch_frames: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.chunk_timeout_s is not None and not self.chunk_timeout_s > 0:
            raise ValueError(
                f"chunk_timeout_s must be positive, got {self.chunk_timeout_s}"
            )
        if self.on_failure not in ("raise", "serial"):
            raise ValueError(
                f"on_failure must be 'raise' or 'serial', got {self.on_failure!r}"
            )

    def resolved_chunk_size(self, num_trials: int) -> int:
        """The chunk size in effect for ``num_trials`` trials."""
        if self.chunk_size is not None:
            return self.chunk_size
        if self.workers <= 1:
            return max(1, num_trials)
        return max(1, math.ceil(num_trials / (4 * self.workers)))


def chunk_indices(num_trials: int, chunk_size: int, start: int = 0) -> "list[range]":
    """Split ``range(start, start + num_trials)`` into contiguous chunks.

    The chunks partition ``start..start+num_trials-1`` exactly — every
    index in exactly one chunk, in ascending order — which the property
    suite (``tests/property/test_property_executor.py``) holds as an
    invariant.  ``start`` offsets the whole window without changing any
    trial's identity: trial ``i`` is always seeded from ``(root, i)``, so
    the adaptive driver can dispatch round ``r`` as the window
    ``[r*batch, (r+1)*batch)`` and stay bit-identical to one flat run.
    """
    if num_trials < 0:
        raise ValueError(f"num_trials must be non-negative, got {num_trials}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if start < 0:
        raise ValueError(f"start must be non-negative, got {start}")
    stop = start + num_trials
    return [
        range(lo, min(lo + chunk_size, stop))
        for lo in range(start, stop, chunk_size)
    ]


def _obs_worker_init(config) -> None:
    """Pool-worker initializer: join the parent's observability run.

    Explicit hand-off (rather than environment inheritance) because a
    ``forkserver`` started before the parent enabled observability holds
    a stale environment snapshot.  ``config`` is ``None`` while
    observability is disabled, making this a no-op.
    """
    obs.apply_worker_config(config)


def _timed_chunk(
    chunk_fn,
    payload,
    spec: SeedSpec,
    indices: "Sequence[int]",
    chunk_number: "int | None" = None,
    collect_metrics: bool = False,
):
    """Run one chunk, returning (results, wall seconds, metrics delta).

    The span and the metrics delta attribute the chunk's telemetry to
    ``chunk_number`` / its trial indices.  ``collect_metrics`` is set
    only when the chunk runs in a *worker* process: the delta of the
    worker's registry around the chunk is shipped back with the results
    so the parent can fold it in (in-process chunks mutate the parent's
    registry directly, so shipping a delta would double count).
    """
    before = (
        obs.snapshot() if (collect_metrics and _obs_runtime._enabled) else None
    )
    start = time.perf_counter()
    with obs.span(
        "pool.chunk",
        chunk=chunk_number,
        start_index=indices[0] if len(indices) else None,
        trials=len(indices),
    ):
        results = list(chunk_fn(payload, spec, indices))
    elapsed = time.perf_counter() - start
    if len(results) != len(indices):
        raise RuntimeError(
            f"chunk function returned {len(results)} results for {len(indices)} trials"
        )
    delta = None
    if before is not None:
        delta = obs.diff_snapshots(before, obs.snapshot())
    return results, elapsed, delta


def _is_picklable(*objects: Any) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def _run_serial(
    chunk_fn,
    payload,
    spec: SeedSpec,
    chunks: "list[range]",
    plan: ExecutionPlan,
    observer: "_ExecutionObserver",
) -> "tuple[list, list[ChunkTiming]]":
    results: "list" = []
    timings: "list[ChunkTiming]" = []
    for chunk_number, indices in enumerate(chunks):
        observer.chunk_dispatched(chunk_number, indices, attempt=0, backend="serial")
        chunk_results, elapsed, _delta = _timed_chunk(
            chunk_fn, payload, spec, indices, chunk_number=chunk_number
        )
        observer.chunk_completed(chunk_number, indices, elapsed)
        timing = ChunkTiming(
            chunk_index=chunk_number,
            start_index=indices[0],
            num_trials=len(indices),
            seconds=elapsed,
        )
        timings.append(timing)
        if plan.progress is not None:
            plan.progress(timing)
        if plan.on_chunk is not None:
            plan.on_chunk(timing, list(chunk_results))
        results.extend(chunk_results)
    return results, timings


class _ExecutionObserver:
    """The single funnel for execution telemetry.

    Every chunk-lifecycle transition — dispatch, completion, failure,
    timeout, pool rebuild, serial recovery — is reported here exactly
    once.  The observer forwards it to :mod:`repro.obs` (structured
    event + metric + trace marker, all no-ops while observability is
    disabled) *and* accumulates the counters that
    :meth:`ExecutionReport.as_metadata` later exposes, so the report is
    derived from the same stream the logs show rather than being
    plumbed in parallel.
    """

    __slots__ = ("retries", "pool_rebuilds", "timeouts", "serial_recovered_chunks", "events")

    def __init__(self) -> None:
        self.retries = 0
        self.pool_rebuilds = 0
        self.timeouts = 0
        self.serial_recovered_chunks = 0
        self.events: "list[dict[str, Any]]" = []

    def chunk_dispatched(
        self, number: int, indices: "Sequence[int]", *, attempt: int, backend: str
    ) -> None:
        if not _obs_runtime._enabled:
            return
        obs.log(
            "executor.chunk.dispatch",
            chunk=number,
            start_index=indices[0] if len(indices) else None,
            trials=len(indices),
            attempt=attempt,
            backend=backend,
        )
        obs.inc("executor.chunks.dispatched")

    def chunk_completed(
        self, number: int, indices: "Sequence[int]", seconds: float
    ) -> None:
        if not _obs_runtime._enabled:
            return
        obs.log(
            "executor.chunk.complete",
            chunk=number,
            start_index=indices[0] if len(indices) else None,
            trials=len(indices),
            seconds=round(seconds, 6),
        )
        obs.inc("executor.chunks.completed")
        obs.inc("executor.trials.completed", len(indices))
        obs.observe("executor.chunk_seconds", seconds)

    def chunk_failed(
        self,
        number: int,
        *,
        kind: str,
        attempt: int,
        error: str,
        will_retry: bool,
    ) -> None:
        """One failed attempt of one chunk (raise / timeout / serial)."""
        self.events.append(
            {"chunk_index": number, "kind": kind, "attempt": attempt, "error": error}
        )
        if kind == "timeout":
            self.timeouts += 1
        if will_retry:
            self.retries += 1
        if not _obs_runtime._enabled:
            return
        obs.log(
            "executor.chunk.retry" if will_retry else "executor.chunk.exhausted",
            chunk=number,
            kind=kind,
            attempt=attempt,
            error=error,
        )
        obs.inc("executor.retries" if will_retry else "executor.chunks.exhausted")
        if kind == "timeout":
            obs.inc("executor.timeouts")
        obs.instant("executor.chunk.retry", chunk=number, kind=kind, attempt=attempt)

    def pool_rebuilt(self, *, broken: bool) -> None:
        self.pool_rebuilds += 1
        if not _obs_runtime._enabled:
            return
        obs.log("executor.pool.rebuild", broken=broken)
        obs.inc("executor.pool_rebuilds")
        obs.instant("executor.pool.rebuild", broken=broken)

    def serial_recovery(self, number: int) -> None:
        self.serial_recovered_chunks += 1
        if not _obs_runtime._enabled:
            return
        obs.log("executor.chunk.serial_recovered", chunk=number)
        obs.inc("executor.serial_recovered_chunks")


def _describe_error(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}"


def _resolve_context(plan: ExecutionPlan):
    """The multiprocessing context for this plan (plan > env > default)."""
    import multiprocessing

    method = plan.start_method or os.environ.get(START_METHOD_ENV) or default_start_method()
    context = multiprocessing.get_context(method)
    if method == "forkserver":
        try:
            # Only effective before the (shared) forkserver starts; later
            # calls are harmless no-ops, import failures server-side too.
            context.set_forkserver_preload(list(_FORKSERVER_PRELOAD))
        except Exception:
            pass
    return context


class _PoolRunner:
    """One fault-tolerant trial map over a process pool.

    Owns the retry/rebuild/timeout state machine described in the module
    docstring.  ``run()`` returns ``(per-trial results, timings)`` or
    raises :class:`ExecutorError`; completed chunks are never recomputed
    across retries, rebuilds, or the serial degradation pass.
    """

    def __init__(
        self, chunk_fn, payload, spec, chunks, plan, workers, observer: _ExecutionObserver
    ):
        self.chunk_fn = chunk_fn
        self.payload = payload
        self.spec = spec
        self.chunks = chunks
        self.plan = plan
        self.workers = workers
        self.observer = observer
        self.attempts = [0] * len(chunks)  # failed attempts charged per chunk
        self.completed: "dict[int, list]" = {}
        self.timings: "list[ChunkTiming]" = []
        self.exhausted: "dict[int, ChunkFailure]" = {}
        self.pool_breaks = 0
        self.pool = None
        self.pending: "dict[Any, int]" = {}  # future -> chunk number
        self.deadlines: "dict[Any, float]" = {}  # future -> monotonic deadline

    # -- pool lifecycle ------------------------------------------------------

    def _make_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=_resolve_context(self.plan),
            initializer=_obs_worker_init,
            initargs=(obs.worker_config(),),
        )

    def _kill_pool(self) -> None:
        """Tear the pool down hard — stuck or dead workers included."""
        if self.pool is None:
            return
        for process in list((getattr(self.pool, "_processes", None) or {}).values()):
            try:
                process.terminate()
            except Exception:
                pass
        try:
            self.pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        self.pool = None

    # -- bookkeeping ---------------------------------------------------------

    def _failure(self, number: int, kind: str, error: BaseException) -> ChunkFailure:
        return ChunkFailure(
            chunk_index=number,
            indices=tuple(self.chunks[number]),
            attempts=self.attempts[number],
            kind=kind,
            error=_describe_error(error),
        )

    def _charge(self, number: int, kind: str, error: BaseException, retry: "list[int]") -> None:
        """Record a chunk-level failure; queue a retry or mark it exhausted."""
        self.attempts[number] += 1
        will_retry = self.attempts[number] <= self.plan.max_retries
        self.observer.chunk_failed(
            number,
            kind=kind,
            attempt=self.attempts[number],
            error=_describe_error(error),
            will_retry=will_retry,
        )
        if will_retry:
            retry.append(number)
        else:
            self.exhausted[number] = self._failure(number, kind, error)

    def _complete(
        self, number: int, chunk_results: list, elapsed: float, delta=None
    ) -> None:
        if delta is not None:
            # Fold the worker's per-chunk metrics back into this process.
            obs.merge_into_registry(delta)
        self.observer.chunk_completed(number, self.chunks[number], elapsed)
        self.completed[number] = chunk_results
        indices = self.chunks[number]
        timing = ChunkTiming(
            chunk_index=number,
            start_index=indices[0],
            num_trials=len(indices),
            seconds=elapsed,
        )
        self.timings.append(timing)
        if self.plan.progress is not None:
            self.plan.progress(timing)
        if self.plan.on_chunk is not None:
            self.plan.on_chunk(timing, list(chunk_results))

    def _submit(self, number: int) -> None:
        self.observer.chunk_dispatched(
            number, self.chunks[number], attempt=self.attempts[number], backend="process"
        )
        future = self.pool.submit(
            _timed_chunk,
            self.chunk_fn,
            self.payload,
            self.spec,
            list(self.chunks[number]),
            number,
            True,
        )
        self.pending[future] = number
        if self.plan.chunk_timeout_s is not None:
            deadline_s = self.plan.chunk_timeout_s * (TIMEOUT_BACKOFF ** self.attempts[number])
            self.deadlines[future] = time.monotonic() + deadline_s

    # -- the drain loop ------------------------------------------------------

    def _drain_once(self) -> None:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        wait_timeout = None
        if self.deadlines:
            wait_timeout = max(0.0, min(self.deadlines.values()) - time.monotonic())
        done, _ = wait(set(self.pending), timeout=wait_timeout, return_when=FIRST_COMPLETED)

        retry: "list[int]" = []
        pool_broken: "BaseException | None" = None
        for future in done:
            number = self.pending.pop(future)
            self.deadlines.pop(future, None)
            try:
                chunk_results, elapsed, delta = future.result()
            except BrokenProcessPool as error:
                # The pool died under this chunk (or a neighbour); the
                # culprit is unknowable, so nobody's retry budget is
                # charged — the *rebuild* budget bounds this path.
                pool_broken = error
                retry.append(number)
            except Exception as error:
                self._charge(number, "raise", error, retry)
            else:
                self._complete(number, chunk_results, elapsed, delta)

        timed_out = False
        if self.deadlines:
            now = time.monotonic()
            for future in [f for f, d in list(self.deadlines.items()) if d <= now]:
                number = self.pending.pop(future)
                del self.deadlines[future]
                timed_out = True
                limit_s = self.plan.chunk_timeout_s * (TIMEOUT_BACKOFF ** self.attempts[number])
                self._charge(
                    number,
                    "timeout",
                    TimeoutError(f"chunk {number} exceeded its {limit_s:.3g} s deadline"),
                    retry,
                )

        if pool_broken is not None or timed_out:
            # The pool is unusable (broken) or hosts a stuck worker
            # (timeout): every in-flight chunk is lost either way.
            # Resubmit them uncharged on a fresh pool.
            retry.extend(self.pending.values())
            self.pending.clear()
            self.deadlines.clear()
            self._kill_pool()
            if pool_broken is not None:
                self.pool_breaks += 1
                if self.pool_breaks > max(1, self.plan.max_retries):
                    # Rebuild budget exhausted: everything unfinished
                    # fails as pool-broken (the serial path may still
                    # recover it, per on_failure).
                    for number in retry:
                        self.exhausted.setdefault(
                            number, self._failure(number, "pool-broken", pool_broken)
                        )
                    return
            self.observer.pool_rebuilt(broken=pool_broken is not None)
            self.pool = self._make_pool()

        for number in retry:
            if number not in self.exhausted:
                self._submit(number)

    def _recover_serially(self) -> "list[ChunkFailure]":
        """Run every unfinished chunk in the parent (the degradation path)."""
        failures: "list[ChunkFailure]" = []
        for number in sorted(set(range(len(self.chunks))) - set(self.completed)):
            self.observer.chunk_dispatched(
                number, self.chunks[number], attempt=self.attempts[number], backend="serial-recovery"
            )
            try:
                chunk_results, elapsed, _delta = _timed_chunk(
                    self.chunk_fn, self.payload, self.spec, self.chunks[number],
                    chunk_number=number,
                )
            except Exception as error:
                self.attempts[number] += 1
                self.observer.chunk_failed(
                    number,
                    kind="serial",
                    attempt=self.attempts[number],
                    error=_describe_error(error),
                    will_retry=False,
                )
                failures.append(self._failure(number, "serial", error))
                continue
            self.observer.serial_recovery(number)
            self._complete(number, chunk_results, elapsed)
        return failures

    def run(self) -> "tuple[list, list[ChunkTiming]]":
        self.pool = self._make_pool()
        try:
            for number in range(len(self.chunks)):
                self._submit(number)
            while self.pending:
                self._drain_once()
                if self.exhausted and self.plan.on_failure == "raise":
                    failures = [self.exhausted[k] for k in sorted(self.exhausted)]
                    raise ExecutorError(failures)
        finally:
            self._kill_pool()
        if len(self.completed) < len(self.chunks):
            # Only reachable with on_failure="serial": exhausted chunks
            # (and anything stranded by a dead pool) get one in-parent
            # serial pass — bit-identical when it works, ExecutorError
            # naming the survivors when it doesn't.
            failures = self._recover_serially()
            if failures:
                raise ExecutorError(failures)
        results: "list" = []
        for number in range(len(self.chunks)):
            results.extend(self.completed[number])
        return results, self.timings


def _run_process_pool(
    chunk_fn,
    payload,
    spec: SeedSpec,
    chunks: "list[range]",
    plan: ExecutionPlan,
    workers: int,
    observer: _ExecutionObserver,
) -> "tuple[list, list[ChunkTiming]]":
    runner = _PoolRunner(chunk_fn, payload, spec, chunks, plan, workers, observer)
    return runner.run()


def map_trials(
    chunk_fn,
    payload: Any,
    num_trials: int,
    rng: "int | SeedSpec | Any" = 0,
    plan: "ExecutionPlan | None" = None,
    *,
    start_trial: int = 0,
) -> "tuple[list, ExecutionReport]":
    """Run ``num_trials`` index-keyed trials, possibly across processes.

    ``chunk_fn(payload, seed_spec, indices)`` must be a module-level
    function that derives trial ``i``'s generator as
    ``seed_spec.stream(i)`` and returns one result per index, in order.
    Returns ``(per-trial results in trial order, ExecutionReport)``;
    the result list is identical for every ``workers`` / ``chunk_size``
    choice.

    ``start_trial`` shifts the dispatched window to trials
    ``[start_trial, start_trial + num_trials)`` without changing any
    trial's seed — trial ``i`` is always ``(root, i)``-keyed, so running
    the same index range in one call or across several (the adaptive
    driver's incremental rounds) produces bit-identical per-trial
    results.

    Falls back to the serial backend (noted in the report) when the
    payload is unpicklable or the platform refuses to give us a pool, so
    callers never have to special-case restricted environments.  Worker
    crashes, chunk exceptions, and timeouts are retried per the plan's
    fault knobs (see :class:`ExecutionPlan`); only retry exhaustion
    raises :class:`repro.errors.ExecutorError`, which names the failing
    trial indices.
    """
    if num_trials < 0:
        raise ValueError(f"num_trials must be non-negative, got {num_trials}")
    if start_trial < 0:
        raise ValueError(f"start_trial must be non-negative, got {start_trial}")
    plan = plan or ExecutionPlan()
    spec = SeedSpec.from_rng(rng)
    chunk_size = plan.resolved_chunk_size(num_trials)
    chunks = chunk_indices(num_trials, chunk_size, start_trial)
    workers = min(plan.workers, max(1, len(chunks)))

    started = time.perf_counter()
    backend = "serial"
    observer = _ExecutionObserver()
    obs.log(
        "executor.map.start",
        trials=num_trials,
        chunks=len(chunks),
        workers=workers,
        chunk_size=chunk_size,
    )
    if workers > 1:
        if not _is_picklable(chunk_fn, payload, spec):
            backend = "serial-fallback:unpicklable"
        else:
            try:
                results, timings = _run_process_pool(
                    chunk_fn, payload, spec, chunks, plan, workers, observer
                )
                backend = "process"
            except (OSError, ImportError, PermissionError) as error:
                # Pool creation refused (sandbox, missing semaphores):
                # recompute everything serially.  The observer keeps any
                # events from a partial pool run for transparency.
                backend = f"serial-fallback:{type(error).__name__}"
    if backend != "process":
        results, timings = _run_serial(chunk_fn, payload, spec, chunks, plan, observer)
    total_seconds = time.perf_counter() - started
    obs.log(
        "executor.map.done",
        trials=num_trials,
        backend=backend,
        seconds=round(total_seconds, 6),
        retries=observer.retries,
        pool_rebuilds=observer.pool_rebuilds,
        timeouts=observer.timeouts,
    )
    report = ExecutionReport(
        backend=backend,
        workers=workers if backend == "process" else 1,
        chunk_size=chunk_size,
        num_trials=num_trials,
        chunks=timings,
        total_seconds=total_seconds,
        retries=observer.retries,
        pool_rebuilds=observer.pool_rebuilds,
        timeouts=observer.timeouts,
        serial_recovered_chunks=observer.serial_recovered_chunks,
        fault_events=observer.events,
    )
    _obs_manifest.note_execution(report)
    return results, report


def strip_execution(metadata: "dict[str, Any]") -> "dict[str, Any]":
    """Metadata minus the volatile ``_execution`` timing side channel.

    Result *values* are bit-identical across worker counts; wall-clock
    records are not and never can be.  Comparisons of sweeps run under
    different plans should compare ``strip_execution(metadata)``.
    """
    return {key: value for key, value in metadata.items() if key != "_execution"}


def sweep_results_equal(a, b) -> bool:
    """Bitwise equality of two ``SweepResult`` objects, timing excluded."""
    return (
        a.label == b.label
        and a.parameters == b.parameters
        and a.values == b.values
        and strip_execution(a.metadata) == strip_execution(b.metadata)
    )
