"""Fault-tolerance overhead — recovery is bit-exact and its cost is bounded.

Runs the same Monte-Carlo workload twice through the process backend:
once clean, once with an injected worker crash (a chunk function that
hard-exits its worker the first time a chosen trial index is
dispatched).  Asserts the recovered values are bit-identical to the
clean run — the fault-tolerance layer must not perturb the determinism
contract — and emits the wall-clock cost of the pool rebuild so the
recovery overhead is tracked across the perf trajectory.
"""

import os
import time

from conftest import emit, emit_bench_json
from repro.sim.executor import ExecutionPlan, map_trials

NUM_TRIALS = 64
CHUNK_SIZE = 8
WORKERS = 2
CRASH_INDEX = 19


def _bench_chunk(payload, spec, indices):
    """Module-level chunk fn: a small deterministic per-trial workload."""
    values = []
    for index in indices:
        stream = spec.stream(index)
        values.append(float(stream.standard_normal(2048).sum()))
    return values


def _crash_once_chunk(payload, spec, indices):
    """Hard-exit the worker the first time the chosen index is dispatched."""
    flag_path, crash_index = payload
    if crash_index in indices and not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("tripped")
            handle.flush()
            os.fsync(handle.fileno())
        os._exit(17)
    return _bench_chunk(payload, spec, indices)


def run_study(tmp_path):
    plan = ExecutionPlan(workers=WORKERS, chunk_size=CHUNK_SIZE)
    runs = {}
    start = time.perf_counter()
    clean_values, clean_report = map_trials(
        _bench_chunk, None, NUM_TRIALS, rng=0, plan=plan
    )
    runs["clean"] = (clean_values, clean_report, time.perf_counter() - start)

    flag = tmp_path / "bench-crash.flag"
    start = time.perf_counter()
    faulty_values, faulty_report = map_trials(
        _crash_once_chunk, (str(flag), CRASH_INDEX), NUM_TRIALS, rng=0, plan=plan
    )
    runs["worker crash"] = (faulty_values, faulty_report, time.perf_counter() - start)
    return runs


def test_executor_fault_overhead(benchmark, tmp_path):
    runs = benchmark.pedantic(run_study, args=(tmp_path,), rounds=1, iterations=1)
    clean_values, clean_report, clean_seconds = runs["clean"]
    faulty_values, faulty_report, faulty_seconds = runs["worker crash"]

    rows = []
    for label, (_, report, seconds) in runs.items():
        rows.append(
            f"{label:>13}: {seconds:6.2f} s  retries={report.retries} "
            f"rebuilds={report.pool_rebuilds} timeouts={report.timeouts}"
        )
    table = "\n".join(rows)
    table += (
        f"\n{NUM_TRIALS} trials x {CHUNK_SIZE}-trial chunks on {WORKERS} workers; "
        f"recovery overhead {faulty_seconds - clean_seconds:+.2f} s"
    )
    emit("executor_faults", table)
    emit_bench_json(
        "executor_faults",
        elapsed_seconds=faulty_seconds,
        results={
            "clean_seconds": clean_seconds,
            "faulty_seconds": faulty_seconds,
            "pool_rebuilds": faulty_report.pool_rebuilds,
        },
        workers=WORKERS,
        extra={"num_trials": NUM_TRIALS, "crash_index": CRASH_INDEX},
    )

    # The fault-tolerance contract: a killed worker costs time, never results.
    assert faulty_values == clean_values
    assert clean_report.pool_rebuilds == 0
    assert faulty_report.pool_rebuilds >= 1
