"""Golden regression pin for the seed-0 degradation curve.

The robustness harness promises two things worth anchoring bit-exactly:
impairment injection is deterministic (per-frame index-keyed streams, so
any worker count reproduces the same faults), and degradation is graceful
(max severity fills the curve with erasures instead of crashing).  This
pins the exact seed-0 curve of the CLI's default fault bundle at a reduced
frame count — small enough for tier-1, sensitive enough that any change to
impairment RNG consumption order, session erasure handling, or sweep
seeding flips a pin.

If a pin moves, either injection determinism broke or an intentional
impairment-model change needs this golden re-baselined in the same commit.
"""

import pytest

from repro.impair import ImpairmentSpec
from repro.sim.executor import ExecutionPlan
from repro.sim.robustness import RobustnessConfig, run_robustness_sweep
from repro.sim.scenario import default_office_scenario

SEED = 0
NUM_FRAMES = 4
SEVERITIES = (0.0, 0.5, 1.0)
IMPAIR = "interference:0.6,drift:0.4,clip:0.5,loss:0.4,impulse:0.5"

GOLDEN = {
    "severities": [0.0, 0.5, 1.0],
    "downlink_ber": [0.0, 0.075, 0.075],
    "uplink_ber": [0.0, 0.3125, 0.75],
    "erasure_rate": [0.0, 0.25, 0.75],
    "median_ranging_error_m": [
        1.3723870741166877e-05,
        0.014094690750936945,
        0.02651334661372262,
    ],
}


def _run_curve(execution=None):
    config = RobustnessConfig(
        scenario=default_office_scenario(tag_range_m=3.0),
        impairments=ImpairmentSpec.parse(IMPAIR),
        severities=SEVERITIES,
        num_frames=NUM_FRAMES,
    )
    return run_robustness_sweep(config, rng=SEED, execution=execution)


@pytest.fixture(scope="module")
def curve():
    return _run_curve()


class TestGoldenCurve:
    def test_pins_exact(self, curve):
        for name, expected in GOLDEN.items():
            assert getattr(curve, name) == expected, name

    def test_severity_zero_is_clean(self, curve):
        """The curve anchors at the unimpaired baseline."""
        assert curve.downlink_ber[0] == 0.0
        assert curve.uplink_ber[0] == 0.0
        assert curve.erasure_rate[0] == 0.0

    def test_degradation_is_monotone_plausible(self, curve):
        """Every aggregate at max severity is no better than at zero —
        the smoke-level sanity the harness exists to measure."""
        assert curve.downlink_ber[-1] >= curve.downlink_ber[0]
        assert curve.uplink_ber[-1] >= curve.uplink_ber[0]
        assert curve.erasure_rate[-1] >= curve.erasure_rate[0]
        assert (
            curve.median_ranging_error_m[-1] >= curve.median_ranging_error_m[0]
        )

    def test_max_severity_completes_with_erasures(self, curve):
        """Graceful degradation end-to-end: severe faults surface as
        recorded erasures and inflated BER, never as an exception."""
        assert curve.erasure_rate[-1] > 0.0
        assert curve.uplink_ber[-1] > 0.0

    def test_parallel_matches_pins(self):
        pooled = _run_curve(execution=ExecutionPlan(workers=2, chunk_size=1))
        for name, expected in GOLDEN.items():
            assert getattr(pooled, name) == expected, name

    def test_batched_plan_matches_pins(self):
        """``batch_frames=True`` reproduces the same seed-0 curve.

        The robustness harness runs impairment-laden frames, so where the
        downlink engine takes the batched path it uses the hybrid
        per-frame-synthesize / batched-decode route, and engines without a
        batched path ignore the knob entirely — either way the pinned
        curve must not move."""
        batched = _run_curve(execution=ExecutionPlan(batch_frames=True))
        for name, expected in GOLDEN.items():
            assert getattr(batched, name) == expected, name


class TestGoldenLocalizationRate:
    """Seed-0 pin for the localization success fraction (PR 8)."""

    LOCALIZATION_RATE = [1.0, 0.75, 0.25]

    def test_pins_exact(self, curve):
        assert curve.localization_rate == self.LOCALIZATION_RATE

    def test_parallel_matches_pins(self):
        pooled = _run_curve(execution=ExecutionPlan(workers=2, chunk_size=1))
        assert pooled.localization_rate == self.LOCALIZATION_RATE

    def test_rate_degrades_with_severity(self, curve):
        assert curve.localization_rate[0] == 1.0
        assert (
            curve.localization_rate[-1] <= curve.localization_rate[0]
        )
