"""Fast-time (range) processing of dechirped IF samples.

The range profile of one chirp is the FFT of its IF samples; bin ``n``
maps to range via the chirp's slope (Eq. 3 inverted, Eq. 15):
``range[n] = (n / N_FFT) * f_s * c / (2 alpha)``.
"""

from __future__ import annotations

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import DetectionError
from repro.utils.dsp import next_pow2, parabolic_peak_offset, _make_window
from repro.utils.validation import ensure_positive
from repro.waveform.parameters import ChirpParameters


def range_fft(
    samples: np.ndarray,
    *,
    n_fft: int | None = None,
    window: str = "hann",
) -> np.ndarray:
    """Complex range profile of one chirp's IF samples.

    Zero-pads to ``n_fft`` (default: next power of two >= sample count) and
    normalizes by the window's coherent gain so tone amplitudes are
    comparable across different chirp lengths — essential when mixing CSSK
    slopes in one frame.
    """
    x = np.asarray(samples)
    if x.size < 2:
        raise ValueError(f"need at least 2 samples, got {x.size}")
    size = next_pow2(x.size) if n_fft is None else int(n_fft)
    if size < x.size:
        raise ValueError(f"n_fft {size} smaller than sample count {x.size}")
    win = _make_window(window, x.size)
    coherent_gain = win.sum()
    return np.fft.fft(x * win, n=size) / coherent_gain


def bin_ranges_m(
    chirp: ChirpParameters, sample_rate_hz: float, n_fft: int
) -> np.ndarray:
    """Range of each FFT bin for a given chirp and IF sample rate (Eq. 15).

    Only the first half of the FFT (positive beat frequencies) corresponds
    to physical ranges for a complex receiver; callers typically slice to
    ``n_fft // 2``.
    """
    ensure_positive("sample_rate_hz", sample_rate_hz)
    if n_fft < 2:
        raise ValueError(f"n_fft must be >= 2, got {n_fft}")
    beat_frequencies = np.arange(n_fft) * sample_rate_hz / n_fft
    return beat_frequencies * SPEED_OF_LIGHT / (2.0 * chirp.slope_hz_per_s)


def range_profile_power_db(profile: np.ndarray, *, floor_db: float = -200.0) -> np.ndarray:
    """Power of a complex range profile in dB (floored to avoid -inf)."""
    power = np.abs(np.asarray(profile)) ** 2
    with np.errstate(divide="ignore"):
        out = 10.0 * np.log10(power)
    return np.maximum(out, floor_db)


def find_peak_range(
    profile: np.ndarray,
    ranges_m: np.ndarray,
    *,
    min_range_m: float = 0.0,
    max_range_m: float | None = None,
) -> tuple[float, float]:
    """Locate the strongest return within a range window.

    Returns ``(range_m, power)`` with sub-bin range refinement by parabolic
    interpolation of the power profile.
    """
    power = np.abs(np.asarray(profile)) ** 2
    ranges = np.asarray(ranges_m, dtype=float)
    if power.shape != ranges.shape:
        raise ValueError(f"profile shape {power.shape} != ranges shape {ranges.shape}")
    mask = ranges >= min_range_m
    if max_range_m is not None:
        mask &= ranges <= max_range_m
    if not np.any(mask):
        raise DetectionError(
            f"no bins in range window [{min_range_m}, {max_range_m}]"
        )
    candidates = np.where(mask)[0]
    peak = candidates[int(np.argmax(power[candidates]))]
    if 0 < peak < power.size - 1:
        offset = parabolic_peak_offset(power[peak - 1], power[peak], power[peak + 1])
        bin_width = ranges[1] - ranges[0] if ranges.size > 1 else 0.0
        return float(ranges[peak] + offset * bin_width), float(power[peak])
    return float(ranges[peak]), float(power[peak])


def estimate_range_zoom(
    samples: np.ndarray,
    chirp: ChirpParameters,
    sample_rate_hz: float,
    *,
    coarse_range_m: float,
    zoom_width_m: float = 0.5,
    zoom_points: int = 256,
    window: str = "hann",
) -> float:
    """Refine a range estimate with a zoom DFT around a coarse peak.

    Evaluates the DTFT on a fine frequency grid spanning
    ``coarse_range_m +/- zoom_width_m`` — the super-resolution step that
    gives BiScatter its centimeter-level localization on top of coarse FFT
    bins.
    """
    ensure_positive("sample_rate_hz", sample_rate_hz)
    ensure_positive("zoom_width_m", zoom_width_m)
    if zoom_points < 8:
        raise ValueError(f"zoom_points must be >= 8, got {zoom_points}")
    x = np.asarray(samples)
    win = _make_window(window, x.size)
    xw = x * win
    low = max(coarse_range_m - zoom_width_m, 1e-3)
    high = coarse_range_m + zoom_width_m
    candidate_ranges = np.linspace(low, high, zoom_points)
    candidate_beats = 2.0 * chirp.slope_hz_per_s * candidate_ranges / SPEED_OF_LIGHT
    n = np.arange(x.size)
    basis = np.exp(-2j * np.pi * np.outer(candidate_beats, n) / sample_rate_hz)
    response = np.abs(basis @ xw)
    best = int(np.argmax(response))
    if 0 < best < zoom_points - 1:
        offset = parabolic_peak_offset(
            response[best - 1] ** 2, response[best] ** 2, response[best + 1] ** 2
        )
        step = candidate_ranges[1] - candidate_ranges[0]
        return float(candidate_ranges[best] + offset * step)
    return float(candidate_ranges[best])
