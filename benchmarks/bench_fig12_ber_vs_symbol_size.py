"""Fig. 12 — downlink BER vs symbol size for three radar bandwidths.

The paper encodes 1-7 bits per chirp slope at 250 MHz / 500 MHz / 1 GHz and
reports BER: larger bandwidth separates the beat frequencies further, so it
sustains bigger symbols; at 1 GHz and 5-bit symbols BER stays below ~1e-3,
degrading for smaller bandwidths or larger symbol sizes.
"""

import os
import time

from conftest import emit, emit_bench_json
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.errors import AlphabetError
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
from repro.sim.executor import ExecutionPlan
from repro.sim.results import format_table

BANDWIDTHS_HZ = [250e6, 500e6, 1e9]
SYMBOL_SIZES = [1, 2, 3, 4, 5, 6, 7]
DISTANCE_M = 4.0
FRAMES_PER_POINT = 60
SYMBOLS_PER_FRAME = 16
# Fan Monte-Carlo frames out over processes; results are bit-identical
# for any worker count, so the emitted table never depends on this.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def run_sweep():
    decoder = DecoderDesign.from_inches(45.0)
    plan = ExecutionPlan(workers=WORKERS)
    results: "dict[float, list[float | None]]" = {}
    for bandwidth in BANDWIDTHS_HZ:
        series: "list[float | None]" = []
        for bits in SYMBOL_SIZES:
            try:
                alphabet = CsskAlphabet.design(
                    bandwidth_hz=bandwidth,
                    decoder=decoder,
                    symbol_bits=bits,
                    chirp_period_s=120e-6,
                    min_chirp_duration_s=20e-6,
                )
            except AlphabetError:
                series.append(None)
                continue
            config = DownlinkTrialConfig(
                radar_config=XBAND_9GHZ.with_bandwidth(bandwidth),
                alphabet=alphabet,
                distance_m=DISTANCE_M,
                num_frames=FRAMES_PER_POINT,
                payload_symbols_per_frame=SYMBOLS_PER_FRAME,
            )
            series.append(
                run_downlink_trials(config, rng=bits * 101, execution=plan).ber
            )
        results[bandwidth] = series
    return results


def test_fig12_ber_vs_symbol_size(benchmark):
    started = time.perf_counter()
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    elapsed = time.perf_counter() - started
    rows = []
    for bits_index, bits in enumerate(SYMBOL_SIZES):
        row = [str(bits)]
        for bandwidth in BANDWIDTHS_HZ:
            ber = results[bandwidth][bits_index]
            row.append("n/a" if ber is None else f"{ber:.2e}")
        rows.append(row)
    table = format_table(
        ["symbol bits"] + [f"B = {b / 1e6:.0f} MHz" for b in BANDWIDTHS_HZ], rows
    )
    table += f"\n(tag at {DISTANCE_M} m, {FRAMES_PER_POINT}x{SYMBOLS_PER_FRAME} symbols/point)"
    emit("fig12_ber_vs_symbol_size", table)
    emit_bench_json(
        "fig12_ber_vs_symbol_size",
        elapsed_seconds=elapsed,
        workers=WORKERS,
        results={
            "distance_m": DISTANCE_M,
            "frames_per_point": FRAMES_PER_POINT,
            "symbol_sizes": SYMBOL_SIZES,
            "ber_by_bandwidth_hz": {
                f"{bandwidth:.0f}": [
                    None if ber is None else float(ber)
                    for ber in results[bandwidth]
                ]
                for bandwidth in BANDWIDTHS_HZ
            },
        },
    )

    one_ghz = results[1e9]
    quarter_ghz = results[250e6]
    # Headline: 1 GHz carries 5-bit symbols below 1e-3.
    assert one_ghz[SYMBOL_SIZES.index(5)] is not None
    assert one_ghz[SYMBOL_SIZES.index(5)] < 1e-3
    # Larger symbols degrade BER at fixed bandwidth.
    assert one_ghz[SYMBOL_SIZES.index(7)] > one_ghz[SYMBOL_SIZES.index(5)]
    # Smaller bandwidth degrades BER at fixed symbol size (5 bits).
    five = SYMBOL_SIZES.index(5)
    assert quarter_ghz[five] is None or quarter_ghz[five] > one_ghz[five]
