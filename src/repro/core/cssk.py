"""Chirp-Slope-Shift-Keying alphabet design (paper Sections 3.1-3.2).

A CSSK alphabet is a set of chirp slopes — equivalently, chirp durations at
fixed bandwidth — each of which the tag's differential decoder maps to a
distinct beat frequency ``df = B dT / T_chirp`` (Eq. 11, with
``dT = dL / (k c)``, Eq. 10).  Two slopes are reserved for the packet
preamble (header and sync fields); ``2 ** symbol_bits`` more carry data
(Eqs. 12-13).  Data symbols are Gray-coded so that confusing two adjacent
beat frequencies costs one bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import COAX_VELOCITY_FACTOR, SPEED_OF_LIGHT
from repro.errors import AlphabetError
from repro.utils.units import inches_to_meters
from repro.utils.validation import ensure_positive


def delay_difference_from_length(
    delta_length_m: float, *, velocity_factor: float = COAX_VELOCITY_FACTOR
) -> float:
    """Eq. 10: ``dT = dL / (k c)`` for a line-length difference ``dL``."""
    ensure_positive("delta_length_m", delta_length_m)
    ensure_positive("velocity_factor", velocity_factor)
    return delta_length_m / (velocity_factor * SPEED_OF_LIGHT)


def beat_frequency(bandwidth_hz: float, delta_t_s: float, chirp_duration_s: float) -> float:
    """Eq. 11: ``df = B dT / T_chirp`` — the decoder's beat tone."""
    ensure_positive("bandwidth_hz", bandwidth_hz)
    ensure_positive("delta_t_s", delta_t_s)
    ensure_positive("chirp_duration_s", chirp_duration_s)
    return bandwidth_hz * delta_t_s / chirp_duration_s


def chirp_duration_for_beat(bandwidth_hz: float, delta_t_s: float, beat_hz: float) -> float:
    """Invert Eq. 11: the chirp duration that produces ``beat_hz``."""
    ensure_positive("beat_hz", beat_hz)
    return bandwidth_hz * delta_t_s / beat_hz


def gray_code(index: int) -> int:
    """Binary-reflected Gray code of ``index``."""
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    return index ^ (index >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_code`."""
    if code < 0:
        raise ValueError(f"code must be >= 0, got {code}")
    index = 0
    while code:
        index ^= code
        code >>= 1
    return index


@dataclass(frozen=True)
class DecoderDesign:
    """The tag-side hardware parameters that fix the beat-frequency map.

    Parameters
    ----------
    delta_length_m:
        Physical length difference between the two delay lines (``dL``).
    velocity_factor:
        Propagation speed in the lines relative to c (``k``).
    """

    delta_length_m: float
    velocity_factor: float = COAX_VELOCITY_FACTOR

    def __post_init__(self) -> None:
        ensure_positive("delta_length_m", self.delta_length_m)
        ensure_positive("velocity_factor", self.velocity_factor)

    @classmethod
    def from_inches(
        cls, delta_length_in: float, *, velocity_factor: float = COAX_VELOCITY_FACTOR
    ) -> "DecoderDesign":
        """Build from a length difference in inches (the paper's unit)."""
        return cls(
            delta_length_m=inches_to_meters(delta_length_in),
            velocity_factor=velocity_factor,
        )

    @property
    def delta_t_s(self) -> float:
        """The differential delay ``dT`` (Eq. 10)."""
        return delay_difference_from_length(
            self.delta_length_m, velocity_factor=self.velocity_factor
        )

    def beat_for_duration(self, bandwidth_hz: float, chirp_duration_s: float) -> float:
        """Beat frequency this decoder produces for a given chirp."""
        return beat_frequency(bandwidth_hz, self.delta_t_s, chirp_duration_s)


@dataclass(frozen=True)
class CsskAlphabet:
    """A complete CSSK symbol set.

    Construction is via :meth:`design`.  Index layout:

    * ``header_beat_hz`` / ``sync_beat_hz`` — the two reserved preamble
      slopes (the extreme beats, maximizing their distance from each other).
    * ``data_beats_hz[i]`` — beat of data symbol ``i`` (ascending).  Symbol
      index ``i`` carries the bit pattern ``gray_code(i)``.

    Attributes mirror the paper's Eqs. 11-14 notation.
    """

    bandwidth_hz: float
    decoder: DecoderDesign
    symbol_bits: int
    data_beats_hz: tuple[float, ...]
    header_beat_hz: float
    sync_beat_hz: float
    chirp_period_s: float

    def __post_init__(self) -> None:
        ensure_positive("bandwidth_hz", self.bandwidth_hz)
        ensure_positive("chirp_period_s", self.chirp_period_s)
        if self.symbol_bits < 1:
            raise AlphabetError(f"symbol_bits must be >= 1, got {self.symbol_bits}")
        if len(self.data_beats_hz) != 2**self.symbol_bits:
            raise AlphabetError(
                f"expected {2 ** self.symbol_bits} data beats, got {len(self.data_beats_hz)}"
            )

    @classmethod
    def design(
        cls,
        *,
        bandwidth_hz: float,
        decoder: DecoderDesign,
        symbol_bits: int,
        chirp_period_s: float,
        min_chirp_duration_s: float = 20e-6,
        max_duty: float = 0.80,
        min_beat_spacing_hz: float | None = None,
    ) -> "CsskAlphabet":
        """Design an alphabet from radar and tag constraints.

        The usable chirp-duration window is
        ``[min_chirp_duration_s, max_duty * chirp_period_s]``; it maps to the
        beat window ``[df_min, df_max]`` via Eq. 11.  ``2**symbol_bits + 2``
        beats are placed uniformly across that window (Eq. 13 with the
        spacing maximized); the two extremes become header and sync.

        Raises
        ------
        AlphabetError
            If the duration window is empty or the resulting beat spacing
            falls below ``min_beat_spacing_hz`` (the tag-noise-floor
            constraint ``df_int``).
        """
        ensure_positive("min_chirp_duration_s", min_chirp_duration_s)
        if not 0 < max_duty <= 1:
            raise AlphabetError(f"max_duty must be in (0, 1], got {max_duty}")
        max_duration = max_duty * chirp_period_s
        if max_duration <= min_chirp_duration_s:
            raise AlphabetError(
                f"duration window empty: min {min_chirp_duration_s}s >= max {max_duration}s "
                f"({max_duty:.0%} of period {chirp_period_s}s)"
            )
        delta_t = decoder.delta_t_s
        beat_min = beat_frequency(bandwidth_hz, delta_t, max_duration)
        beat_max = beat_frequency(bandwidth_hz, delta_t, min_chirp_duration_s)
        total_slopes = 2**symbol_bits + 2
        beats = np.linspace(beat_min, beat_max, total_slopes)
        spacing = float(beats[1] - beats[0])
        if min_beat_spacing_hz is not None and spacing < min_beat_spacing_hz:
            raise AlphabetError(
                f"beat spacing {spacing:.1f}Hz below the tag noise-floor requirement "
                f"{min_beat_spacing_hz}Hz; reduce symbol_bits, widen the duration window, "
                f"increase bandwidth, or lengthen the delay line"
            )
        header = float(beats[0])
        sync = float(beats[-1])
        data = tuple(float(b) for b in beats[1:-1])
        return cls(
            bandwidth_hz=bandwidth_hz,
            decoder=decoder,
            symbol_bits=symbol_bits,
            data_beats_hz=data,
            header_beat_hz=header,
            sync_beat_hz=sync,
            chirp_period_s=chirp_period_s,
        )

    # ---- Eq. 12-14 bookkeeping -------------------------------------------------

    @property
    def num_data_symbols(self) -> int:
        """``N_slope`` restricted to the data portion, = 2**N_symbol."""
        return len(self.data_beats_hz)

    @property
    def num_slopes(self) -> int:
        """Total distinct slopes including header and sync."""
        return self.num_data_symbols + 2

    @property
    def beat_spacing_hz(self) -> float:
        """``df_int`` — the realized spacing between adjacent beats."""
        all_beats = self.all_beats_hz()
        return float(all_beats[1] - all_beats[0])

    def data_rate_bps(self) -> float:
        """Eq. 14: ``N_symbol / T_period``."""
        return self.symbol_bits / self.chirp_period_s

    def all_beats_hz(self) -> np.ndarray:
        """Every beat in ascending order (header, data..., sync)."""
        return np.array([self.header_beat_hz, *self.data_beats_hz, self.sync_beat_hz])

    # ---- symbol <-> waveform maps ----------------------------------------------

    def duration_for_beat(self, beat_hz: float) -> float:
        """Chirp duration producing ``beat_hz`` on this tag's decoder."""
        return chirp_duration_for_beat(self.bandwidth_hz, self.decoder.delta_t_s, beat_hz)

    def data_symbol_duration_s(self, symbol: int) -> float:
        """Chirp duration of data symbol ``symbol``."""
        self._check_symbol(symbol)
        return self.duration_for_beat(self.data_beats_hz[symbol])

    @property
    def header_duration_s(self) -> float:
        """Chirp duration of the header slope (the longest chirp)."""
        return self.duration_for_beat(self.header_beat_hz)

    @property
    def sync_duration_s(self) -> float:
        """Chirp duration of the sync slope (the shortest chirp)."""
        return self.duration_for_beat(self.sync_beat_hz)

    def _check_symbol(self, symbol: int) -> None:
        if not 0 <= symbol < self.num_data_symbols:
            raise AlphabetError(
                f"symbol {symbol} out of range [0, {self.num_data_symbols})"
            )

    # ---- bits <-> symbols (Gray mapping) ----------------------------------------

    def bits_for_symbol(self, symbol: int) -> np.ndarray:
        """Bit pattern (MSB first) carried by data symbol ``symbol``."""
        self._check_symbol(symbol)
        code = gray_code(symbol)
        return np.array(
            [(code >> shift) & 1 for shift in range(self.symbol_bits - 1, -1, -1)],
            dtype=np.uint8,
        )

    def symbol_for_bits(self, bits: np.ndarray) -> int:
        """Data symbol whose Gray code equals the bit pattern (MSB first)."""
        pattern = np.asarray(bits, dtype=int)
        if pattern.size != self.symbol_bits:
            raise AlphabetError(
                f"expected {self.symbol_bits} bits per symbol, got {pattern.size}"
            )
        if np.any((pattern != 0) & (pattern != 1)):
            raise AlphabetError("bits must be 0/1")
        code = 0
        for bit in pattern:
            code = (code << 1) | int(bit)
        return gray_decode(code)

    # ---- decoding ----------------------------------------------------------------

    def nearest_data_symbol(self, measured_beat_hz: float) -> int:
        """Maximum-likelihood (nearest-beat) data symbol for a measurement."""
        beats = np.asarray(self.data_beats_hz)
        return int(np.argmin(np.abs(beats - measured_beat_hz)))

    def classify_beat(self, measured_beat_hz: float) -> tuple[str, int | None]:
        """Classify a measured beat as ('header', None), ('sync', None), or
        ('data', symbol)."""
        all_beats = self.all_beats_hz()
        index = int(np.argmin(np.abs(all_beats - measured_beat_hz)))
        if index == 0:
            return "header", None
        if index == all_beats.size - 1:
            return "sync", None
        return "data", index - 1
