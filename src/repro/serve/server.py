"""The serve front door: asyncio TCP server, lifecycle, status endpoint.

:class:`JobServer` binds a socket, hands each connection to a
:class:`repro.serve.session.ClientSession`, and owns one shared
:class:`repro.serve.scheduler.JobScheduler` (executor pool + store +
in-flight dedup) for every client.  Shutdown is graceful by default:
``shutdown()`` stops accepting connections, drains the scheduler (every
admitted point resolves and streams out), notifies connected sessions,
then closes.

Two embeddings are provided besides the ``repro serve`` CLI loop:

* :func:`run_server` — blocking convenience that runs until SIGINT or a
  client ``shutdown`` frame, printing the bound address first (useful
  with ``--port 0``).
* :class:`ServerThread` — context manager running the server on a
  private event loop in a daemon thread; tests and notebooks use it to
  stand a real TCP server up in-process and talk to it with the
  synchronous client.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro import obs
from repro.obs import runtime as _obs_runtime
from repro.serve.protocol import MAX_LINE_BYTES, PROTOCOL_VERSION
from repro.serve.scheduler import JobScheduler
from repro.serve.session import ClientSession
from repro.sim.executor import ExecutionPlan

__all__ = ["ServeConfig", "JobServer", "run_server", "ServerThread"]


class _ReplaySession:
    """The session stand-in behind journal replay: nobody is listening.

    Replayed points deliver into the content-addressed store (that is
    the durable artifact a resuming client reads back); the frames
    themselves have no socket to go to and are discarded.
    """

    def send(self, message) -> None:  # pragma: no cover - trivial
        pass

    def finish_job(self, job) -> None:  # pragma: no cover - trivial
        pass


@dataclass(frozen=True)
class ServeConfig:
    """Everything a server needs; mirrors the ``repro serve`` CLI flags."""

    host: str = "127.0.0.1"
    port: int = 0
    pool_workers: int = 2
    max_pending: int = 256
    retry_after_s: float = 1.0
    cache_dir: "str | None" = None
    execution: ExecutionPlan = field(default_factory=ExecutionPlan)
    session_queue_limit: int = 1024
    #: Bind an HTTP :class:`repro.obs.exporter.MetricsExporter` beside
    #: the line protocol (``0`` = any free port, ``None`` = disabled).
    metrics_port: "int | None" = None
    #: Keep a write-ahead :class:`repro.serve.journal.JobJournal` of
    #: accepted jobs in the cache dir (requires ``cache_dir``; on by
    #: default because it is what makes ``--resume`` possible at all).
    journal: bool = True
    #: Replay incomplete journal records from a previous (crashed) server
    #: on startup, before accepting connections.
    resume: bool = False
    #: Extra compute attempts per point before quarantining it.
    point_retries: int = 1
    #: Per-attempt deadline; a stalled worker past it is abandoned and
    #: the thread pool rebuilt (``None`` = no deadline).
    point_timeout_s: "float | None" = None


class JobServer:
    """One serve instance: socket, sessions, shared scheduler."""

    def __init__(self, config: "ServeConfig | None" = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.store = None
        if self.config.cache_dir is not None:
            from repro.store import ExperimentStore

            self.store = ExperimentStore(self.config.cache_dir)
        self.scheduler: "JobScheduler | None" = None
        self.sessions: "set[ClientSession]" = set()
        self.exporter = None
        self._server: "asyncio.AbstractServer | None" = None
        self._session_ids = 0
        self._shutdown_requested: "asyncio.Event | None" = None
        self._started_monotonic: "float | None" = None
        self.replayed_jobs = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the scheduler (call on the loop).

        With ``resume`` set, incomplete journal records from a crashed
        predecessor are replayed *before* the socket binds, so a client
        reconnecting the instant the port answers already shares the
        in-flight points instead of racing the replay.
        """
        journal = None
        if self.config.journal and self.config.cache_dir is not None:
            from repro.serve.journal import JobJournal

            journal = JobJournal(self.config.cache_dir)
        self.scheduler = JobScheduler(
            execution=self.config.execution,
            store=self.store,
            pool_workers=self.config.pool_workers,
            max_pending=self.config.max_pending,
            retry_after_s=self.config.retry_after_s,
            journal=journal,
            point_retries=self.config.point_retries,
            point_timeout_s=self.config.point_timeout_s,
        )
        if self.config.resume and journal is not None:
            self.replayed_jobs = self._replay_journal(journal)
        self._shutdown_requested = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES + 2,
        )
        self._started_monotonic = time.monotonic()
        if self.config.metrics_port is not None:
            from repro.obs.exporter import MetricsExporter

            # The exporter thread only ever *reads* (registry snapshot,
            # status counters) — scrapes cannot perturb the event loop.
            self.exporter = MetricsExporter(
                port=self.config.metrics_port,
                status_provider=self.status_payload,
            )
            self.exporter.start()
        if _obs_runtime._enabled:
            obs.log("serve.started", host=self.host, port=self.port)

    def _replay_journal(self, journal) -> int:
        """Resubmit a crashed predecessor's incomplete jobs; jobs replayed.

        Each record is re-validated from its *raw job object* through
        ``parse_job``, and the recomputed fingerprints must equal the ones
        journaled on admission — a mismatch means the code drifted across
        the restart, and the record is dropped loudly rather than replayed
        wrong.  Only the record's not-yet-completed points are scheduled;
        their computes route through the store, so anything that landed
        before the crash is a cache hit, not a recompute.
        """
        from repro.errors import ServeError
        from repro.serve.protocol import parse_job, select_points

        try:
            records = journal.incomplete()
        except ServeError as error:
            # A record from a different build must not brick startup;
            # leave the journal untouched and keep serving.
            if _obs_runtime._enabled:
                obs.log("serve.journal.unreadable", error=str(error))
            return 0
        replayed = 0
        for record in records:
            remaining = record.remaining()
            if not remaining:
                journal.finish(record.journal_id)
                continue
            dropped_reason = None
            try:
                parsed = parse_job(record.job)
                if record.point_indices is not None:
                    parsed = select_points(parsed, list(record.point_indices))
                fingerprints = tuple(
                    spec.fingerprint() for spec in parsed.points
                )
            except ServeError as error:
                dropped_reason = str(error)
            else:
                if fingerprints != record.fingerprints:
                    dropped_reason = (
                        "per-point fingerprints changed across the restart"
                    )
            if dropped_reason is not None:
                journal.finish(record.journal_id)
                if _obs_runtime._enabled:
                    obs.inc("serve.journal.dropped")
                    obs.log(
                        "serve.journal.dropped",
                        journal_id=record.journal_id, error=dropped_reason,
                    )
                continue
            adopted = journal.adopt(record)
            subset = (
                parsed if len(remaining) == len(parsed.points)
                else select_points(parsed, list(remaining))
            )
            self.scheduler.submit(
                _ReplaySession(), f"replay-{adopted.journal_id}", subset,
                journal_record=adopted, index_map=remaining, force=True,
            )
            self.scheduler.counters["journal_replayed"] += 1
            replayed += 1
            if _obs_runtime._enabled:
                obs.inc("serve.journal.replayed")
                obs.log(
                    "serve.journal.replayed",
                    journal_id=adopted.journal_id, kind=adopted.kind,
                    points=len(remaining), completed=len(adopted.completed),
                )
        return replayed

    @property
    def host(self) -> str:
        return self._server.sockets[0].getsockname()[0]

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0``)."""
        return self._server.sockets[0].getsockname()[1]

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._session_ids += 1
        session = ClientSession(
            self, reader, writer, self._session_ids,
            queue_limit=self.config.session_queue_limit,
        )
        self.sessions.add(session)
        await session.run()

    def forget_session(self, session: ClientSession) -> None:
        self.sessions.discard(session)

    def request_shutdown(self) -> None:
        """Ask the serve loop to begin a graceful shutdown (idempotent)."""
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def serve_until_shutdown(self) -> None:
        """Run until :meth:`request_shutdown`, then drain and close."""
        await self._shutdown_requested.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful stop: refuse new connections, drain, notify, close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.exporter is not None:
            self.exporter.stop()
            self.exporter = None
        if self.scheduler is not None:
            await self.scheduler.close()
        for session in list(self.sessions):
            session.send({"type": "shutting_down"})
        # Give session writer tasks a beat to flush the notice, then drop.
        await asyncio.sleep(0.05)
        for session in list(self.sessions):
            try:
                session.writer.close()
            except RuntimeError:
                pass
        if _obs_runtime._enabled:
            obs.log("serve.stopped")

    # -- introspection -------------------------------------------------------

    def status_payload(self) -> "dict[str, Any]":
        """The scrape/status document.

        Served identically to the NDJSON ``status`` verb, the HTTP
        ``GET /status`` route (via the exporter's ``status_provider``),
        and :meth:`repro.serve.client.ServeClient.status` — one payload,
        three transports.
        """
        from repro import __version__

        uptime = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None else 0.0
        )
        payload: "dict[str, Any]" = {
            "protocol": PROTOCOL_VERSION,
            "sessions": len(self.sessions),
            "uptime_s": round(uptime, 3),
            "version": __version__,
            "run_id": _obs_runtime.run_id(),
            **self.scheduler.status(),
        }
        payload["metrics"] = obs.snapshot() if obs.enabled() else None
        return payload


def run_server(config: "ServeConfig | None" = None, out=None) -> int:
    """Blocking serve loop for the CLI: bind, announce, run, drain.

    Prints ``serving on HOST:PORT`` (flushed, so scripts started with
    ``--port 0`` can scrape the bound port) and runs until SIGINT or a
    client-initiated ``shutdown`` frame.  Returns a process exit code.
    """
    import sys

    stream = out if out is not None else sys.stdout

    def announce(text: str) -> None:
        stream.write(text + "\n")
        stream.flush()

    async def main() -> None:
        server = JobServer(config)
        await server.start()
        if server.replayed_jobs:
            announce(f"resumed {server.replayed_jobs} job(s) from journal")
        announce(f"serving on {server.host}:{server.port}")
        if server.exporter is not None:
            announce(
                f"metrics on {server.exporter.host}:{server.exporter.port}"
            )
        try:
            await server.serve_until_shutdown()
        except asyncio.CancelledError:
            await server.shutdown()
            raise

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        announce("interrupted; drained and stopped")
    return 0


class ServerThread:
    """A live server on a background thread (tests, notebooks, smokes).

    ::

        with ServerThread(ServeConfig(pool_workers=2)) as handle:
            client = ServeClient(handle.host, handle.port)
            ...

    The context exit performs the same graceful drain as SIGINT.
    """

    def __init__(self, config: "ServeConfig | None" = None) -> None:
        self.config = config
        self.server: "JobServer | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._started = threading.Event()
        self.host: "str | None" = None
        self.port: "int | None" = None

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("serve thread failed to start")
        return self

    def _run(self) -> None:
        async def main() -> None:
            self.server = JobServer(self.config)
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self.host = self.server.host
            self.port = self.server.port
            self._started.set()
            await self.server.serve_until_shutdown()

        asyncio.run(main())

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=30.0)
