"""Unit tests for the client's deterministic backoff policy.

Pure-function tests — no sockets.  The live retry/reconnect/resume
behavior of ``run_resilient`` is exercised end-to-end by
``tests/integration/test_serve_chaos.py``; here the schedule itself is
pinned: determinism, the cap, and the ``retry_after_s`` contract.
"""

import pytest

from repro.serve.client import BackoffPolicy


class TestBackoffPolicy:
    def test_same_seed_same_schedule(self):
        a = BackoffPolicy(seed=7).schedule()
        b = BackoffPolicy(seed=7).schedule()
        assert a == b

    def test_different_seed_different_jitter(self):
        a = BackoffPolicy(seed=1).schedule()
        b = BackoffPolicy(seed=2).schedule()
        assert a != b

    def test_exponential_ramp_with_cap(self):
        policy = BackoffPolicy(
            base_s=1.0, factor=2.0, cap_s=5.0, jitter=0.0, max_attempts=5,
        )
        assert policy.schedule() == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_cap_is_respected_with_jitter(self):
        policy = BackoffPolicy(base_s=1.0, cap_s=3.0, jitter=1.0)
        for attempt in range(16):
            assert policy.delay(attempt) <= 3.0

    def test_retry_after_raises_the_floor(self):
        policy = BackoffPolicy(base_s=0.1, cap_s=30.0, jitter=0.0)
        assert policy.delay(0, retry_after_s=2.5) == 2.5
        # ...but never above the client's own cap.
        assert policy.delay(0, retry_after_s=99.0) == 30.0

    def test_jitter_never_lowers_the_ramp(self):
        plain = BackoffPolicy(jitter=0.0)
        jittered = BackoffPolicy(jitter=0.25)
        for attempt in range(8):
            assert jittered.delay(attempt) >= plain.delay(attempt) or (
                jittered.delay(attempt) == jittered.cap_s
            )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(cap_s=0.01, base_s=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            BackoffPolicy(max_attempts=-1)
        with pytest.raises(ValueError):
            BackoffPolicy().delay(-1)

    def test_schedule_length_defaults_to_max_attempts(self):
        policy = BackoffPolicy(max_attempts=3)
        assert len(policy.schedule()) == 3
        assert len(policy.schedule(5)) == 5
