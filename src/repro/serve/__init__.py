"""Service mode: a streaming job server over the executor + store.

Everything else in this repo is a one-shot batch entry point; this
package is the serving front door the ROADMAP's north star calls for.
``repro serve`` runs an asyncio TCP server speaking a newline-delimited
JSON protocol (:mod:`repro.serve.protocol`): clients submit simulation /
sweep / robustness jobs, a shared :class:`JobScheduler` admits them
through a bounded priority queue (deterministic reject-with-retry-after
on saturation), dedupes in-flight points by store fingerprint — two
clients asking for the same point share one computation — and streams
per-point results plus progress frames back incrementally.  Client
disconnects cancel their queued work; shutdown drains gracefully; the
PR-4 obs metrics registry and store health are exposed via the
``status`` / ``metrics`` frames.

The determinism contract carries through unchanged: every point is
computed by the same engine entry points the batch CLI calls, under the
same fingerprint, so streamed results reassembled by
:class:`repro.serve.client.ServeClient` are bit-identical to one-shot
runs (pinned by ``tests/integration/test_serve_end_to_end.py`` and the
CI serve smoke).
"""

from repro.errors import ServeError
from repro.serve.client import JobResult, ServeClient
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    JobRejected,
    ParsedJob,
    decode_line,
    encode_message,
    parse_job,
)
from repro.serve.scheduler import JobScheduler
from repro.serve.server import JobServer, ServeConfig, ServerThread, run_server

__all__ = [
    "ServeError",
    "JobRejected",
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ParsedJob",
    "parse_job",
    "encode_message",
    "decode_line",
    "JobScheduler",
    "JobServer",
    "ServeConfig",
    "ServerThread",
    "run_server",
    "ServeClient",
    "JobResult",
]
