"""DSP kernels shared by the radar and the tag.

The tag side deliberately uses *low-power-friendly* primitives: the Goertzel
algorithm (a point-by-point DFT evaluator the paper proposes for the MCU),
short real FFTs, and simple peak interpolation.  The radar side uses full
FFT-based range/Doppler processing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def goertzel_power(samples: np.ndarray, frequency_hz: float, sample_rate_hz: float) -> float:
    """Power of ``samples`` at a single frequency via the Goertzel algorithm.

    This is the low-power, point-by-point DFT evaluator the paper suggests
    for the tag MCU (ref. [15]): it needs one multiply-accumulate per sample
    per probed frequency instead of a full FFT.

    Returns the squared DFT magnitude normalized by ``len(samples) ** 2`` so
    that a full-scale tone of amplitude ``A`` yields approximately
    ``(A / 2) ** 2`` regardless of window length.
    """
    x = np.asarray(samples, dtype=float)
    n = x.size
    if n == 0:
        raise ConfigurationError("goertzel_power requires at least one sample")
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample_rate_hz must be positive, got {sample_rate_hz!r}")
    omega = 2.0 * np.pi * frequency_hz / sample_rate_hz
    coeff = 2.0 * np.cos(omega)
    s_prev = 0.0
    s_prev2 = 0.0
    for sample in x:
        s = sample + coeff * s_prev - s_prev2
        s_prev2 = s_prev
        s_prev = s
    power = s_prev2 * s_prev2 + s_prev * s_prev - coeff * s_prev * s_prev2
    return float(power) / float(n * n)


def goertzel_power_many(
    samples: np.ndarray, frequencies_hz: np.ndarray, sample_rate_hz: float
) -> np.ndarray:
    """Vectorized Goertzel: power at each probe frequency.

    Implemented as a direct single-bin DFT (mathematically identical to the
    Goertzel recursion) so that probing many candidate beat frequencies stays
    a cheap matrix product in the simulator while modelling the same
    per-frequency evaluation the tag MCU would run.

    ``samples`` may carry leading batch axes: a ``(..., n)`` input yields a
    ``(..., num_freqs)`` output whose every row is bit-identical to calling
    this function on that row alone.  The batched product keeps an explicit
    trailing column axis (``matmul(phases, x[..., :, None])``) so BLAS runs
    the *same* per-row matrix-vector kernel as the 1-D path — a plain GEMM
    over the batch would reorder the accumulations and break the bit-exact
    oracle contract ``tests/unit/test_batch_equivalence.py`` enforces.
    """
    x = np.asarray(samples, dtype=float)
    freqs = np.atleast_1d(np.asarray(frequencies_hz, dtype=float))
    if x.ndim >= 2 and 0 in x.shape[:-1]:
        raise ConfigurationError("goertzel_power_many requires a non-empty frame batch")
    if x.size == 0:
        raise ConfigurationError("goertzel_power_many requires at least one sample")
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample_rate_hz must be positive, got {sample_rate_hz!r}")
    n = x.shape[-1] if x.ndim else x.size
    t = np.arange(n) / sample_rate_hz
    phases = np.exp(-2j * np.pi * np.outer(freqs, t))
    if x.ndim == 1:
        bins = phases @ x
    else:
        bins = np.matmul(phases, x[..., :, None].astype(complex))[..., 0]
    return np.abs(bins) ** 2 / float(n * n)


def real_tone_power_spectrum(
    samples: np.ndarray, sample_rate_hz: float, *, window: str = "hann"
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided power spectrum of a real signal.

    Returns ``(frequencies_hz, power)`` where ``power`` is scaled so a
    full-scale real tone of amplitude ``A`` integrates to roughly
    ``(A / 2) ** 2`` at its bin (coherent gain corrected).
    """
    x = np.asarray(samples, dtype=float)
    n = x.size
    if n < 2:
        raise ConfigurationError("need at least two samples for a spectrum")
    win = _make_window(window, n)
    coherent_gain = win.sum() / n
    spectrum = np.fft.rfft(x * win) / (n * coherent_gain)
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate_hz)
    return freqs, np.abs(spectrum) ** 2


def _make_window(window: str, n: int) -> np.ndarray:
    """Build a named analysis window of length ``n``."""
    if window == "hann":
        return np.hanning(n)
    if window == "hamming":
        return np.hamming(n)
    if window == "blackman":
        return np.blackman(n)
    if window in ("rect", "boxcar", "none"):
        return np.ones(n)
    raise ConfigurationError(f"unknown window {window!r}")


def dominant_frequency(
    samples: np.ndarray,
    sample_rate_hz: float,
    *,
    min_frequency_hz: float = 0.0,
    window: str = "hann",
    interpolate: bool = True,
) -> float:
    """Estimate the dominant tone frequency of a real signal.

    Searches the one-sided spectrum above ``min_frequency_hz`` (to skip the
    DC term the envelope detector leaves behind) and optionally refines the
    peak with parabolic interpolation for sub-bin resolution.  The mean is
    removed first so a large DC pedestal's leakage skirt cannot outvote a
    genuine tone near the bottom of the band.
    """
    x = np.asarray(samples, dtype=float)
    x = x - x.mean()
    freqs, power = real_tone_power_spectrum(x, sample_rate_hz, window=window)
    mask = freqs >= min_frequency_hz
    if not np.any(mask):
        raise ConfigurationError(
            f"min_frequency_hz={min_frequency_hz!r} excludes the whole spectrum"
        )
    offset = int(np.argmax(mask))
    local = power[mask]
    peak = int(np.argmax(local)) + offset
    if not interpolate or peak <= 0 or peak >= power.size - 1:
        return float(freqs[peak])
    delta = parabolic_peak_offset(power[peak - 1], power[peak], power[peak + 1])
    bin_width = freqs[1] - freqs[0]
    return float(freqs[peak] + delta * bin_width)


def fine_tone_frequency(
    samples: np.ndarray,
    sample_rate_hz: float,
    coarse_hz: float,
    *,
    span_fraction: float = 0.1,
    points: int = 201,
) -> float:
    """Refine a real-tone frequency estimate with a DC-orthogonal LS scan.

    For every candidate frequency around ``coarse_hz`` the samples are fit
    by the model ``{1, cos, sin}`` (joint DC + tone least squares); the
    candidate explaining the most energy wins, with a final parabolic
    refinement.  Unlike a windowed FFT peak, this estimator has no
    DC-leakage or scalloping bias — important for the few-cycle tones the
    tag calibrates on.
    """
    x = np.asarray(samples, dtype=float)
    n = x.size
    if n < 8:
        raise ConfigurationError(f"need at least 8 samples, got {n}")
    if coarse_hz <= 0 or sample_rate_hz <= 0:
        raise ConfigurationError("coarse_hz and sample_rate_hz must be positive")
    if points < 16:
        raise ConfigurationError(f"points must be >= 16, got {points}")
    candidates = coarse_hz * np.linspace(1 - span_fraction, 1 + span_fraction, points)
    indices = np.arange(n)
    scores = np.empty(points)
    ones = np.ones(n)
    for i, freq in enumerate(candidates):
        omega = 2.0 * np.pi * freq / sample_rate_hz
        basis = np.column_stack([ones, np.cos(omega * indices), np.sin(omega * indices)])
        q, _ = np.linalg.qr(basis)
        projection = q.T @ x
        # Explained energy beyond DC (first column spans the constant).
        scores[i] = float(np.sum(projection[1:] ** 2))
    best = int(np.argmax(scores))
    estimate = candidates[best]
    if 0 < best < points - 1:
        step = candidates[1] - candidates[0]
        estimate += step * parabolic_peak_offset(
            scores[best - 1], scores[best], scores[best + 1]
        )
    return float(estimate)


def parabolic_peak_offset(left: float, center: float, right: float) -> float:
    """Sub-bin offset of a spectral peak via 3-point parabolic interpolation.

    Returns a value in (-0.5, 0.5) to add to the integer peak bin.  Falls
    back to 0 when the three points are degenerate (flat peak).
    """
    denominator = left - 2.0 * center + right
    if denominator == 0.0:
        return 0.0
    offset = 0.5 * (left - right) / denominator
    return float(np.clip(offset, -0.5, 0.5))


@dataclass(frozen=True)
class SlidingWindowSpec:
    """Specification for a sliding analysis window over a sample stream."""

    window_samples: int
    hop_samples: int

    def __post_init__(self) -> None:
        if self.window_samples < 1:
            raise ConfigurationError(f"window_samples must be >= 1, got {self.window_samples}")
        if self.hop_samples < 1:
            raise ConfigurationError(f"hop_samples must be >= 1, got {self.hop_samples}")

    def starts(self, total_samples: int) -> np.ndarray:
        """Start indices of every full window within ``total_samples``.

        **Truncation contract**: only *complete* windows are produced.  The
        number of windows is ``1 + (total - window) // hop`` for
        ``total >= window`` and 0 otherwise; when ``total - window`` is not
        a multiple of ``hop`` the trailing samples past the last full window
        are dropped (never zero-padded, never emitted as a short window).
        """
        if total_samples < self.window_samples:
            return np.empty(0, dtype=int)
        return np.arange(0, total_samples - self.window_samples + 1, self.hop_samples)

    def num_windows(self, total_samples: int) -> int:
        """How many full windows :meth:`starts` yields (truncation contract)."""
        if total_samples < self.window_samples:
            return 0
        return 1 + (total_samples - self.window_samples) // self.hop_samples


def sliding_windows(samples: np.ndarray, spec: SlidingWindowSpec) -> np.ndarray:
    """Strided view of every full analysis window in ``samples``.

    A 1-D ``(n,)`` input yields ``(num_windows, window_samples)``; a batched
    2-D ``(batch, n)`` input yields ``(batch, num_windows, window_samples)``
    where every ``[b]`` plane equals the 1-D result for row ``b`` (the views
    alias the same memory, so equality is trivially bitwise).  Samples past
    the last full window are dropped per the
    :meth:`SlidingWindowSpec.starts` truncation contract.
    """
    x = np.ascontiguousarray(np.asarray(samples, dtype=float))
    if x.ndim > 2:
        raise ConfigurationError(
            f"sliding_windows supports 1-D or batched 2-D input, got shape {x.shape}"
        )
    if x.ndim == 2:
        starts = spec.starts(x.shape[1])
        if starts.size == 0:
            return np.empty((x.shape[0], 0, spec.window_samples))
        shape = (x.shape[0], starts.size, spec.window_samples)
        strides = (x.strides[0], x.strides[1] * spec.hop_samples, x.strides[1])
        return np.lib.stride_tricks.as_strided(
            x, shape=shape, strides=strides, writeable=False
        )
    starts = spec.starts(x.size)
    if starts.size == 0:
        return np.empty((0, spec.window_samples))
    shape = (starts.size, spec.window_samples)
    strides = (x.strides[0] * spec.hop_samples, x.strides[0])
    return np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides, writeable=False)


def envelope_rc_lowpass(
    samples: np.ndarray, sample_rate_hz: float, cutoff_hz: float
) -> np.ndarray:
    """First-order RC low-pass filter (the envelope detector's smoothing).

    A single-pole IIR with time constant ``1 / (2*pi*cutoff)``; matches the
    behaviour of the detector's internal RC network well enough for
    behavioural simulation.  This per-sample loop is the *reference oracle*
    for :func:`envelope_rc_lowpass_fast` and stays 1-D on purpose.
    """
    x = np.asarray(samples, dtype=float)
    if x.ndim > 1:
        raise ConfigurationError(
            f"envelope_rc_lowpass is the 1-D reference oracle, got shape {x.shape}; "
            "use envelope_rc_lowpass_fast for batched input"
        )
    if sample_rate_hz <= 0 or cutoff_hz <= 0:
        raise ConfigurationError("sample_rate_hz and cutoff_hz must be positive")
    dt = 1.0 / sample_rate_hz
    alpha = dt / (dt + 1.0 / (2.0 * np.pi * cutoff_hz))
    out = np.empty_like(x)
    acc = x[0] if x.size else 0.0
    for i, sample in enumerate(x):
        acc += alpha * (sample - acc)
        out[i] = acc
    return out


def envelope_rc_lowpass_fast(
    samples: np.ndarray, sample_rate_hz: float, cutoff_hz: float
) -> np.ndarray:
    """Vectorized equivalent of :func:`envelope_rc_lowpass` using lfilter.

    Accepts a leading batch axis: a ``(..., n)`` input is filtered along
    the last axis with per-row initial conditions, and every row of the
    result is bit-identical to filtering that row alone (``lfilter`` runs
    the same per-row recursion for either layout).
    """
    from scipy.signal import lfilter

    x = np.asarray(samples, dtype=float)
    if sample_rate_hz <= 0 or cutoff_hz <= 0:
        raise ConfigurationError("sample_rate_hz and cutoff_hz must be positive")
    dt = 1.0 / sample_rate_hz
    alpha = dt / (dt + 1.0 / (2.0 * np.pi * cutoff_hz))
    if x.ndim > 1:
        if x.shape[-1] == 0:
            return x.copy()
        zi = (1.0 - alpha) * x[..., :1]
        out, _ = lfilter([alpha], [1.0, alpha - 1.0], x, axis=-1, zi=zi)
        return out
    zi = np.array([(1.0 - alpha) * x[0]]) if x.size else np.zeros(1)
    out, _ = lfilter([alpha], [1.0, alpha - 1.0], x, zi=zi)
    return out


def quantize_uniform(
    samples: np.ndarray, bits: int, full_scale: float
) -> np.ndarray:
    """Mid-rise uniform quantization with clipping at +/- ``full_scale``.

    Models an ideal ``bits``-bit ADC transfer function.
    """
    if bits < 1:
        raise ConfigurationError(f"bits must be >= 1, got {bits}")
    if full_scale <= 0:
        raise ConfigurationError(f"full_scale must be positive, got {full_scale!r}")
    levels = 2**bits
    step = 2.0 * full_scale / levels
    clipped = np.clip(np.asarray(samples, dtype=float), -full_scale, full_scale - step / 2)
    return (np.floor(clipped / step) + 0.5) * step


def next_pow2(n: int) -> int:
    """Smallest power of two >= ``n`` (FFT sizing helper)."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return 1 << (int(n) - 1).bit_length()
