"""Channel models: propagation, noise, multipath, Doppler, link budgets."""

import numpy as np
import pytest

from repro.channel.doppler import (
    doppler_shift_hz,
    max_unambiguous_velocity_m_s,
    radial_velocity_phase,
    velocity_resolution_m_s,
)
from repro.channel.link_budget import DownlinkBudget, UplinkBudget, ook_ber_from_snr_db
from repro.channel.multipath import Clutter, ClutterReflector
from repro.channel.noise import (
    NoiseModel,
    awgn,
    awgn_for_snr,
    phase_noise_samples,
    thermal_noise_power_dbm,
)
from repro.channel.propagation import (
    free_space_path_loss_db,
    one_way_received_power_dbm,
    radar_received_power_dbm,
)
from repro.errors import LinkBudgetError


class TestPropagation:
    def test_fspl_doubles_distance_plus_6db(self):
        a = free_space_path_loss_db(1.0, 9e9)
        b = free_space_path_loss_db(2.0, 9e9)
        assert b - a == pytest.approx(6.0206, rel=1e-3)

    def test_fspl_higher_frequency_more_loss(self):
        assert free_space_path_loss_db(5.0, 24e9) > free_space_path_loss_db(5.0, 9e9)

    def test_one_way_budget_composition(self):
        power = one_way_received_power_dbm(10.0, 20.0, 10.0, 1.0, 9e9)
        expected = 10 + 20 + 10 - free_space_path_loss_db(1.0, 9e9)
        assert power == pytest.approx(expected)

    def test_radar_equation_r4(self):
        near = radar_received_power_dbm(7, 20, 20, 1.0, 9e9, 1e-3)
        far = radar_received_power_dbm(7, 20, 20, 2.0, 9e9, 1e-3)
        assert near - far == pytest.approx(40 * np.log10(2), rel=1e-3)

    def test_radar_equation_rcs_linear(self):
        small = radar_received_power_dbm(7, 20, 20, 3.0, 9e9, 1e-4)
        large = radar_received_power_dbm(7, 20, 20, 3.0, 9e9, 1e-3)
        assert large - small == pytest.approx(10.0, rel=1e-6)

    def test_rejects_bad_inputs(self):
        with pytest.raises(LinkBudgetError):
            free_space_path_loss_db(0.0, 9e9)
        with pytest.raises(LinkBudgetError):
            radar_received_power_dbm(7, 20, 20, 1.0, 9e9, 0.0)


class TestNoise:
    def test_thermal_noise_minus_114_at_1mhz(self):
        assert thermal_noise_power_dbm(1e6) == pytest.approx(-114.0, abs=0.1)

    def test_noise_model_adds_nf(self):
        model = NoiseModel(noise_figure_db=6.0)
        assert model.noise_power_dbm(1e6) == pytest.approx(-108.0, abs=0.1)

    def test_snr(self):
        model = NoiseModel(noise_figure_db=0.0)
        assert model.snr_db(-80.0, 1e6) == pytest.approx(-80 + 114, abs=0.1)

    def test_awgn_power(self):
        noise = awgn(200000, 2.0, rng=0)
        assert np.mean(noise**2) == pytest.approx(2.0, rel=0.02)

    def test_awgn_complex_power_split(self):
        noise = awgn(200000, 2.0, complex_valued=True, rng=0)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(2.0, rel=0.02)

    def test_awgn_for_snr(self):
        signal = np.ones(100000)
        noisy = awgn_for_snr(signal, 10.0, rng=0)
        noise = noisy - signal
        snr = np.mean(signal**2) / np.mean(noise**2)
        assert 10 * np.log10(snr) == pytest.approx(10.0, abs=0.2)

    def test_phase_noise_unit_magnitude(self):
        samples = phase_noise_samples(1000, 1e6, linewidth_hz=100.0, rng=0)
        np.testing.assert_allclose(np.abs(samples), 1.0)

    def test_phase_noise_zero_linewidth_is_identity(self):
        samples = phase_noise_samples(100, 1e6, linewidth_hz=0.0)
        np.testing.assert_allclose(samples, 1.0)

    def test_phase_noise_decorrelates(self):
        samples = phase_noise_samples(100000, 1e6, linewidth_hz=10e3, rng=0)
        early = samples[:100].mean()
        assert abs(np.angle(samples[-1] / samples[0])) >= 0.0  # random walk runs


class TestClutter:
    def test_office_reproducible(self):
        a = Clutter.office(rng=0)
        b = Clutter.office(rng=0)
        assert a.reflectors == b.reflectors

    def test_office_has_reflectors(self):
        clutter = Clutter.office(num_reflectors=4, rng=1)
        assert len(clutter.reflectors) == 4

    def test_delay_spread_zero_for_empty(self):
        assert Clutter().delay_spread_s() == 0.0

    def test_delay_spread_positive_with_reflectors(self):
        clutter = Clutter(
            reflectors=(
                ClutterReflector(range_m=1.0, rcs_m2=1.0),
                ClutterReflector(range_m=10.0, rcs_m2=1.0),
            )
        )
        assert clutter.delay_spread_s() > 0

    def test_downlink_penalty_bounded(self):
        clutter = Clutter.office(rng=0)
        penalty = clutter.downlink_snr_penalty_db(1e13, 5e3)
        assert 0.0 <= penalty <= 6.0

    def test_reflector_validation(self):
        with pytest.raises(Exception):
            ClutterReflector(range_m=-1.0, rcs_m2=1.0)


class TestDoppler:
    def test_shift_sign_and_magnitude(self):
        shift = doppler_shift_hz(1.0, 9e9)
        assert shift == pytest.approx(2 * 9e9 / 299792458.0)

    def test_phase_progression_linear(self):
        times = np.array([0.0, 1e-3, 2e-3])
        phases = radial_velocity_phase(0.5, 24e9, times)
        assert phases[2] == pytest.approx(2 * phases[1])

    def test_max_unambiguous_velocity(self):
        v = max_unambiguous_velocity_m_s(24e9, 120e-6)
        lam = 299792458.0 / 24e9
        assert v == pytest.approx(lam / (4 * 120e-6))

    def test_velocity_resolution_improves_with_frame(self):
        assert velocity_resolution_m_s(24e9, 20e-3) < velocity_resolution_m_s(24e9, 10e-3)


class TestDownlinkBudget:
    def test_video_snr_falls_40db_per_decade(self):
        budget = DownlinkBudget()
        assert budget.video_snr_db(1.0) - budget.video_snr_db(10.0) == pytest.approx(
            40.0, abs=0.1
        )

    def test_detection_snr_adds_processing_gain(self):
        budget = DownlinkBudget()
        video = budget.video_snr_db(3.0)
        detection = budget.detection_snr_db(3.0, 100e-6)
        assert detection > video

    def test_processing_gain_longer_chirp_larger(self):
        budget = DownlinkBudget()
        assert budget.processing_gain_db(100e-6) > budget.processing_gain_db(20e-6)

    def test_distance_for_video_snr_inverts(self):
        budget = DownlinkBudget()
        d = budget.distance_for_video_snr(20.0)
        assert budget.video_snr_db(d) == pytest.approx(20.0, abs=0.05)

    def test_off_boresight_lowers_snr(self):
        budget = DownlinkBudget()
        assert budget.video_snr_db(3.0, off_boresight_deg=10.0) < budget.video_snr_db(3.0)

    def test_operating_range_covers_paper_7m(self):
        # The defaults must keep the 5-bit operating point alive at 7 m
        # (paper Fig. 13): video SNR above ~12 dB.
        budget = DownlinkBudget()
        assert budget.video_snr_db(7.0) > 11.0


class TestUplinkBudget:
    def test_snr_declines_with_distance(self):
        budget = UplinkBudget()
        assert budget.snr_db(0.5) > budget.snr_db(3.0) > budget.snr_db(7.0)

    def test_r4_slope(self):
        budget = UplinkBudget(
            residual_clutter_dbm=-300.0,  # thermal-limited
            self_interference_ceiling_db=None,  # pure radar equation
        )
        drop = budget.snr_db(1.0) - budget.snr_db(2.0)
        assert drop == pytest.approx(40 * np.log10(2), abs=0.1)

    def test_self_interference_ceiling_caps_close_range(self):
        budget = UplinkBudget(self_interference_ceiling_db=25.0)
        assert budget.snr_db(0.3) < 25.0
        uncapped = UplinkBudget(self_interference_ceiling_db=None)
        assert uncapped.snr_db(0.3) > 25.0

    def test_paper_7m_operating_point(self):
        # "we are still able to get over 4dB SNR at 7m" (with range-Doppler
        # processing gain of a typical frame).
        budget = UplinkBudget()
        gain = budget.range_doppler_processing_gain_db(400, 128)
        assert budget.snr_db(7.0, processing_gain_db=gain) > 4.0

    def test_modulated_rcs_below_reflective(self):
        budget = UplinkBudget()
        reflective = budget.van_atta.rcs_m2(budget.frequency_hz)
        assert budget.modulated_rcs_m2() < reflective

    def test_processing_gain_requires_positive(self):
        budget = UplinkBudget()
        with pytest.raises(LinkBudgetError):
            budget.range_doppler_processing_gain_db(0, 128)


class TestOokBer:
    def test_paper_quote_4db_1e2(self):
        assert ook_ber_from_snr_db(4.0) == pytest.approx(1.2e-2, rel=0.2)

    def test_monotone_decreasing(self):
        assert ook_ber_from_snr_db(10.0) < ook_ber_from_snr_db(4.0) < ook_ber_from_snr_db(0.0)


class TestDecoderPathLoss:
    def test_default_cascade_near_budget_default(self):
        from repro.channel.link_budget import decoder_path_loss_db
        from repro.components import CoaxialDelayLine, SpdtSwitch, SplitterCombiner

        loss = decoder_path_loss_db(
            SpdtSwitch(),
            SplitterCombiner(),
            CoaxialDelayLine(length_m=1.143),  # the 45-inch long branch
            SplitterCombiner(),
            9e9,
        )
        # The DownlinkBudget default (11 dB) is this cascade rounded up
        # for connector losses.
        assert loss == pytest.approx(10.2, abs=0.3)
        assert loss < DownlinkBudget().decoder_path_loss_db + 1.5

    def test_loss_grows_with_line_length(self):
        from repro.channel.link_budget import decoder_path_loss_db
        from repro.components import CoaxialDelayLine, SpdtSwitch, SplitterCombiner

        short = decoder_path_loss_db(
            SpdtSwitch(), SplitterCombiner(), CoaxialDelayLine(length_m=0.5),
            SplitterCombiner(), 9e9,
        )
        long = decoder_path_loss_db(
            SpdtSwitch(), SplitterCombiner(), CoaxialDelayLine(length_m=2.0),
            SplitterCombiner(), 9e9,
        )
        assert long > short
