"""Human-readable diagnostics over the run-manifest ledger.

Backs ``repro obs runs`` (ledger table), ``repro obs report`` (one
run's post-mortem: identity, throughput, fault and cache counters,
adaptive trajectories, ASCII latency histograms from the final merged
metrics snapshot), and ``repro obs diff`` (two runs side by side:
config/version changes, wall-clock and counter deltas, histogram
count/mean shifts) for regression triage.  Pure formatting over
:mod:`repro.obs.manifest` dicts — stdlib only, no registry access, so
rendering a report can never touch a live run.
"""

from __future__ import annotations

import time
from typing import Any

__all__ = [
    "diff_lines",
    "render_diff",
    "render_run_report",
    "render_runs_table",
]

_BAR_WIDTH = 24


def _table(headers: "list[str]", rows: "list[list[str]]") -> "list[str]":
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return lines


def _fmt_when(unix: "float | None") -> str:
    if unix is None:
        return "-"
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(unix))


def _fmt_num(value: "float | int | None", digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{value:.{digits}g}"


def _histogram_mean(data: "dict[str, Any]") -> "float | None":
    count = data.get("count", 0)
    if not count:
        return None
    return float(data.get("sum", 0.0)) / count


# -- ledger table ------------------------------------------------------------


def render_runs_table(manifests: "list[dict[str, Any]]") -> str:
    """One line per manifest: id, status, command, age, wall clock."""
    if not manifests:
        return "no runs in ledger"
    rows = []
    for manifest in manifests:
        rows.append([
            str(manifest.get("run_id", "?")),
            str(manifest.get("status", "?")),
            str(manifest.get("command") or "-"),
            _fmt_when(manifest.get("started_unix")),
            _fmt_num(manifest.get("wall_clock_s"), 4) + (
                " s" if manifest.get("wall_clock_s") is not None else ""
            ),
            str(manifest.get("execution", {}).get("trials", 0)),
        ])
    return "\n".join(
        _table(["run", "status", "command", "started", "wall", "trials"], rows)
    )


# -- single-run report -------------------------------------------------------


def render_run_report(manifest: "dict[str, Any]") -> str:
    lines: "list[str]" = []
    run_id = manifest.get("run_id", "?")
    lines.append(f"run {run_id} ({manifest.get('status', '?')})")
    argv = manifest.get("argv")
    if argv:
        lines.append(f"  argv: {' '.join(str(a) for a in argv)}")
    lines.append(
        f"  version: {manifest.get('version', '?')}"
        f"   python: {manifest.get('python', '?')}"
        f"   config: {manifest.get('config_fingerprint') or '-'}"
    )
    wall = manifest.get("wall_clock_s")
    lines.append(
        f"  started: {_fmt_when(manifest.get('started_unix'))}"
        f"   wall clock: {_fmt_num(wall)}{' s' if wall is not None else ''}"
        f"   exit code: {_fmt_num(manifest.get('exit_code'))}"
    )

    execution = manifest.get("execution", {})
    trials = execution.get("trials", 0)
    seconds = execution.get("seconds", 0.0)
    lines.append("")
    lines.append("executor")
    rate = f" ({trials / seconds:.1f} trials/s)" if seconds and trials else ""
    lines.append(
        f"  {execution.get('maps', 0)} map call(s), "
        f"{execution.get('chunks', 0)} chunk(s), {trials} trial(s)"
        f" in {_fmt_num(seconds)} s{rate}"
    )
    faults = execution.get("faults", {})
    lines.append(
        "  faults: "
        f"{faults.get('retries', 0)} retries, "
        f"{faults.get('pool_rebuilds', 0)} pool rebuilds, "
        f"{faults.get('timeouts', 0)} timeouts, "
        f"{faults.get('serial_recovered_chunks', 0)} serial-recovered"
    )
    events = manifest.get("fault_events", [])
    for event in events[:8]:
        lines.append(f"    event: {event}")
    if len(events) > 8 or manifest.get("fault_events_dropped", 0):
        hidden = len(events) - 8 + manifest.get("fault_events_dropped", 0)
        lines.append(f"    ... {hidden} more fault event(s)")

    store = manifest.get("store", {})
    if any(store.get(k, 0) for k in ("hits", "misses", "puts")):
        lines.append("")
        lines.append("store")
        probes = store.get("hits", 0) + store.get("misses", 0)
        rate_text = (
            f" ({store.get('hits', 0) / probes:.0%} hit rate)" if probes else ""
        )
        lines.append(
            f"  {store.get('hits', 0)} hits / {store.get('misses', 0)} misses"
            f" / {store.get('puts', 0)} puts{rate_text};"
            f" {store.get('fingerprints_seen', 0)} distinct fingerprint(s)"
        )

    sweeps = manifest.get("sweeps", [])
    if sweeps:
        lines.append("")
        lines.append("sweeps")
        rows = [
            [
                str(s.get("label", "?")),
                str(s.get("points", 0)),
                str(s.get("store_hits", 0)),
                str(s.get("store_misses", 0)),
            ]
            for s in sweeps
        ]
        lines.extend(
            "  " + line
            for line in _table(["label", "points", "hits", "misses"], rows)
        )

    adaptive = manifest.get("adaptive", [])
    if adaptive:
        lines.append("")
        lines.append("adaptive stopping")
        for trajectory in adaptive[:16]:
            ci = (
                f"[{_fmt_num(trajectory.get('ci_low'))}, "
                f"{_fmt_num(trajectory.get('ci_high'))}]"
            )
            lines.append(
                f"  {trajectory.get('frames', 0)} frames in "
                f"{trajectory.get('rounds', 0)} round(s), stop="
                f"{trajectory.get('reason', '?')}, ci={ci}"
            )
        if len(adaptive) > 16 or manifest.get("adaptive_dropped", 0):
            hidden = len(adaptive) - 16 + manifest.get("adaptive_dropped", 0)
            lines.append(f"  ... {hidden} more trajectory(ies)")

    histograms = manifest.get("metrics", {}).get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("latency histograms")
        for name, data in histograms.items():
            mean = _histogram_mean(data)
            lines.append(
                f"  {name}: n={data.get('count', 0)}"
                f" mean={_fmt_num(mean)}"
                f" min={_fmt_num(data.get('min'))}"
                f" max={_fmt_num(data.get('max'))}"
            )
            edges = list(data.get("edges", ()))
            buckets = list(data.get("bucket_counts", ()))
            peak = max(buckets) if buckets else 0
            labels = [f"<= {_fmt_num(e)}" for e in edges] + ["> last"]
            label_width = max((len(l) for l in labels), default=0)
            for label, bucket in zip(labels, buckets):
                if not bucket:
                    continue
                bar = "#" * max(1, round(_BAR_WIDTH * bucket / peak))
                lines.append(
                    f"    {label.ljust(label_width)}  {bar} {bucket}"
                )

    counters = manifest.get("metrics", {}).get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters")
        for name, value in counters.items():
            lines.append(f"  {name} = {_fmt_num(value)}")
    return "\n".join(lines)


# -- run diff ----------------------------------------------------------------


def diff_lines(a: "dict[str, Any]", b: "dict[str, Any]") -> "list[str]":
    lines: "list[str]" = []
    lines.append(
        f"diff {a.get('run_id', '?')} -> {b.get('run_id', '?')}"
    )

    def field(label: str, key: str) -> None:
        left, right = a.get(key), b.get(key)
        if left == right:
            lines.append(f"  {label}: {left if left is not None else '-'} (unchanged)")
        else:
            lines.append(f"  {label}: {left} -> {right}  [CHANGED]")

    field("version", "version")
    field("config fingerprint", "config_fingerprint")
    argv_a = a.get("argv") or []
    argv_b = b.get("argv") or []
    if argv_a == argv_b:
        lines.append("  argv: unchanged")
    else:
        lines.append(f"  argv: {' '.join(map(str, argv_a))}")
        lines.append(f"     -> {' '.join(map(str, argv_b))}")
    wall_a, wall_b = a.get("wall_clock_s"), b.get("wall_clock_s")
    if wall_a and wall_b:
        change = (wall_b - wall_a) / wall_a * 100.0
        lines.append(
            f"  wall clock: {_fmt_num(wall_a)} s -> {_fmt_num(wall_b)} s"
            f" ({change:+.1f}%)"
        )

    store_a = a.get("store", {})
    store_b = b.get("store", {})
    lines.append(
        "  store: "
        f"hits {store_a.get('hits', 0)} -> {store_b.get('hits', 0)}, "
        f"misses {store_a.get('misses', 0)} -> {store_b.get('misses', 0)}, "
        f"puts {store_a.get('puts', 0)} -> {store_b.get('puts', 0)}"
    )
    faults_a = a.get("execution", {}).get("faults", {})
    faults_b = b.get("execution", {}).get("faults", {})
    if faults_a != faults_b:
        lines.append(f"  faults: {faults_a} -> {faults_b}  [CHANGED]")

    counters_a = a.get("metrics", {}).get("counters", {})
    counters_b = b.get("metrics", {}).get("counters", {})
    names = sorted(set(counters_a) | set(counters_b))
    deltas = []
    for name in names:
        left = counters_a.get(name, 0)
        right = counters_b.get(name, 0)
        if left != right:
            deltas.append([
                name, _fmt_num(left), _fmt_num(right), _fmt_num(right - left),
            ])
    if deltas:
        lines.append("")
        lines.append("counter deltas")
        lines.extend(
            "  " + line for line in _table(["counter", "a", "b", "delta"], deltas)
        )

    gauges_a = a.get("metrics", {}).get("gauges", {})
    gauges_b = b.get("metrics", {}).get("gauges", {})
    changed = [
        [name, _fmt_num(gauges_a.get(name)), _fmt_num(gauges_b.get(name))]
        for name in sorted(set(gauges_a) | set(gauges_b))
        if gauges_a.get(name) != gauges_b.get(name)
    ]
    if changed:
        lines.append("")
        lines.append("gauge changes")
        lines.extend(
            "  " + line for line in _table(["gauge", "a", "b"], changed)
        )

    hists_a = a.get("metrics", {}).get("histograms", {})
    hists_b = b.get("metrics", {}).get("histograms", {})
    rows = []
    for name in sorted(set(hists_a) | set(hists_b)):
        left = hists_a.get(name, {})
        right = hists_b.get(name, {})
        if left.get("count") == right.get("count") and left.get("sum") == right.get("sum"):
            continue
        rows.append([
            name,
            f"{left.get('count', 0)} -> {right.get('count', 0)}",
            f"{_fmt_num(_histogram_mean(left))} -> {_fmt_num(_histogram_mean(right))}",
        ])
    if rows:
        lines.append("")
        lines.append("histogram changes")
        lines.extend(
            "  " + line for line in _table(["histogram", "count", "mean"], rows)
        )
    return lines


def render_diff(a: "dict[str, Any]", b: "dict[str, Any]") -> str:
    return "\n".join(diff_lines(a, b))
