"""Forward error correction for the downlink: Hamming(7,4) + interleaving.

CSSK's dominant error event is a single adjacent-beat confusion, which
Gray coding converts to a single bit flip — exactly what a Hamming code
corrects.  Wrapping the payload in Hamming(7,4) with a block interleaver
(so a burst hitting one chirp's bits spreads across codewords) trades
7/4 airtime for roughly squaring the residual error rate, extending the
paper's operating range by ~1 m at the margin.

The pieces are deliberately MCU-grade: syndrome decoding is a 16-entry
table, the interleaver is an index permutation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, PacketError

#: Generator matrix for systematic Hamming(7,4): codeword = [data | parity].
_G = np.array(
    [
        [1, 0, 0, 0, 1, 1, 0],
        [0, 1, 0, 0, 1, 0, 1],
        [0, 0, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ],
    dtype=np.uint8,
)

#: Parity-check matrix matching ``_G``.
_H = np.array(
    [
        [1, 1, 0, 1, 1, 0, 0],
        [1, 0, 1, 1, 0, 1, 0],
        [0, 1, 1, 1, 0, 0, 1],
    ],
    dtype=np.uint8,
)

#: Syndrome (as integer) -> error position (or -1 for no error).
_SYNDROME_TO_POSITION = {0: -1}
for _pos in range(7):
    _vector = np.zeros(7, dtype=np.uint8)
    _vector[_pos] = 1
    _syndrome = int("".join(map(str, (_H @ _vector) % 2)), 2)
    _SYNDROME_TO_POSITION[_syndrome] = _pos


def hamming74_encode(bits: np.ndarray) -> np.ndarray:
    """Encode a bit vector (multiple of 4) into Hamming(7,4) codewords."""
    data = _validate_bits(bits)
    if data.size % 4:
        raise PacketError(f"Hamming(7,4) needs a multiple of 4 bits, got {data.size}")
    blocks = data.reshape(-1, 4)
    return ((blocks @ _G) % 2).astype(np.uint8).reshape(-1)


def hamming74_decode(bits: np.ndarray) -> tuple[np.ndarray, int]:
    """Decode codewords; returns (data bits, corrected-bit count).

    Single errors per codeword are corrected; double errors mis-correct
    (the usual Hamming trade — the interleaver's job is to make doubles
    rare).
    """
    received = _validate_bits(bits)
    if received.size % 7:
        raise PacketError(f"Hamming(7,4) codewords are 7 bits, got {received.size}")
    blocks = received.reshape(-1, 7).copy()
    corrected = 0
    syndromes = (blocks @ _H.T) % 2
    for row, syndrome in enumerate(syndromes):
        key = int(syndrome[0]) << 2 | int(syndrome[1]) << 1 | int(syndrome[2])
        position = _SYNDROME_TO_POSITION[key]
        if position >= 0:
            blocks[row, position] ^= 1
            corrected += 1
    return blocks[:, :4].reshape(-1), corrected


def _validate_bits(bits: np.ndarray) -> np.ndarray:
    data = np.asarray(bits, dtype=np.uint8)
    if data.ndim != 1:
        raise PacketError(f"bits must be 1-D, got shape {data.shape}")
    if np.any((data != 0) & (data != 1)):
        raise PacketError("bits must be 0/1")
    return data


def interleave(bits: np.ndarray, depth: int) -> np.ndarray:
    """Block interleaver: write row-wise into ``depth`` rows, read column-wise.

    Bit count must be a multiple of ``depth``.
    """
    data = _validate_bits(bits)
    if depth < 1:
        raise ConfigurationError(f"depth must be >= 1, got {depth}")
    if data.size % depth:
        raise PacketError(f"{data.size} bits not a multiple of depth {depth}")
    return data.reshape(depth, -1).T.reshape(-1)


def deinterleave(bits: np.ndarray, depth: int) -> np.ndarray:
    """Inverse of :func:`interleave`."""
    data = _validate_bits(bits)
    if depth < 1:
        raise ConfigurationError(f"depth must be >= 1, got {depth}")
    if data.size % depth:
        raise PacketError(f"{data.size} bits not a multiple of depth {depth}")
    return data.reshape(-1, depth).T.reshape(-1)


@dataclass(frozen=True)
class FecConfig:
    """A protected-downlink configuration.

    Parameters
    ----------
    interleaver_depth:
        Rows of the block interleaver.  Choosing the symbol size (bits per
        chirp) spreads any one chirp's bits across that many codewords.
    """

    interleaver_depth: int = 5

    def __post_init__(self) -> None:
        if self.interleaver_depth < 1:
            raise ConfigurationError(
                f"interleaver_depth must be >= 1, got {self.interleaver_depth}"
            )

    @property
    def code_rate(self) -> float:
        """Payload bits per transmitted bit (4/7 for Hamming(7,4))."""
        return 4.0 / 7.0

    def encoded_size(self, payload_bits: int) -> int:
        """Transmitted bits for a payload (after padding to the lattice)."""
        lattice = 4 * self.interleaver_depth
        padded = int(np.ceil(payload_bits / lattice)) * lattice
        return padded * 7 // 4

    def protect(self, payload: np.ndarray) -> np.ndarray:
        """Payload -> interleaved codeword stream."""
        data = _validate_bits(payload)
        lattice = 4 * self.interleaver_depth
        remainder = data.size % lattice
        if remainder:
            data = np.concatenate(
                [data, np.zeros(lattice - remainder, dtype=np.uint8)]
            )
        encoded = hamming74_encode(data)
        return interleave(encoded, self.interleaver_depth)

    def recover(self, received: np.ndarray, payload_bits: int) -> tuple[np.ndarray, int]:
        """Received stream -> (payload, corrected-bit count)."""
        stream = _validate_bits(received)
        deinterleaved = deinterleave(stream, self.interleaver_depth)
        decoded, corrected = hamming74_decode(deinterleaved)
        if decoded.size < payload_bits:
            raise PacketError(
                f"recovered {decoded.size} bits, caller expected {payload_bits}"
            )
        return decoded[:payload_bits], corrected
