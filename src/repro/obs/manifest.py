"""Run-manifest ledger: one durable, schema-versioned record per run.

A *manifest* is the post-mortem counterpart to the live exporter: when a
run starts, :func:`begin` writes ``manifest_<run_id>.json`` (status
``"running"``) into the ledger directory, and the engines note facts
into the active :class:`RunRecorder` as they happen — executor fault
events from each :class:`~repro.sim.executor.ExecutionReport`, adaptive
stopping trajectories, store cache traffic and the fingerprints it
touched, sweep point counts.  :func:`finalize` stamps the exit code,
wall clock, and the final merged metrics snapshot and rewrites the file
with status ``"complete"``.

Durability uses the store's fsync'd atomic-write discipline
(:func:`repro.store.cache.atomic_write_bytes`, imported lazily to keep
``repro.obs`` import-light and cycle-free): a crash mid-run leaves the
last good ``"running"`` manifest — partial but valid JSON — never a
torn file.

Like the BENCH artifacts, manifests carry a schema version
(:data:`MANIFEST_SCHEMA_VERSION`); :func:`load` rejects files written
by a newer schema instead of misreading them.

Every ``note_*`` helper is a no-op returning after one global-is-None
check while no recorder is active, so instrumented paths stay inside
the disabled-telemetry overhead budget.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.obs import runtime as _runtime

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.executor import ExecutionReport

__all__ = [
    "MANIFEST_DIR_ENV",
    "MANIFEST_SCHEMA_VERSION",
    "RunRecorder",
    "active",
    "begin",
    "discard",
    "finalize",
    "list_runs",
    "load",
    "manifest_path",
    "note_adaptive",
    "note_cache",
    "note_execution",
    "note_store_put",
    "note_sweep",
]

MANIFEST_SCHEMA_VERSION = 1

#: Environment equivalent of ``--manifest-dir`` on run subcommands.
MANIFEST_DIR_ENV = "REPRO_MANIFEST_DIR"

#: Caps keep a manifest readable no matter how long the run was; drops
#: beyond each cap are counted, never silent.
MAX_FAULT_EVENTS = 256
MAX_ADAPTIVE_TRAJECTORIES = 256
MAX_SWEEPS = 64
MAX_FINGERPRINT_SAMPLE = 32


def manifest_path(ledger_dir: "str | os.PathLike", run_id: str) -> str:
    return os.path.join(os.fspath(ledger_dir), f"manifest_{run_id}.json")


class RunRecorder:
    """Accumulates one run's facts; thread-safe (serve notes from pool
    threads)."""

    def __init__(
        self,
        ledger_dir: str,
        run_id: str,
        *,
        argv: "list[str] | None" = None,
        command: "str | None" = None,
        config_fingerprint: "str | None" = None,
    ) -> None:
        self.ledger_dir = ledger_dir
        self.run_id = run_id
        self.argv = list(argv) if argv is not None else None
        self.command = command
        self.config_fingerprint = config_fingerprint
        self.started_unix = time.time()
        self._started_monotonic = time.monotonic()
        self._lock = threading.Lock()
        self._execution = {
            "maps": 0,
            "trials": 0,
            "chunks": 0,
            "seconds": 0.0,
            "faults": {
                "retries": 0,
                "pool_rebuilds": 0,
                "timeouts": 0,
                "serial_recovered_chunks": 0,
            },
        }
        self._fault_events: "list[dict[str, Any]]" = []
        self._fault_events_dropped = 0
        self._adaptive: "list[dict[str, Any]]" = []
        self._adaptive_dropped = 0
        self._sweeps: "list[dict[str, Any]]" = []
        self._sweeps_dropped = 0
        self._store = {"hits": 0, "misses": 0, "puts": 0}
        self._fingerprints: "set[str]" = set()
        self._fingerprints_seen = 0
        # Registry baseline: the finalized manifest records this *run's*
        # metrics (diff vs. begin), not whatever the process accumulated
        # before — several runs can share one process (tests, notebooks).
        from repro.obs import metrics as _metrics

        self._metrics_before = _metrics.snapshot()

    @property
    def path(self) -> str:
        return manifest_path(self.ledger_dir, self.run_id)

    # -- notes ---------------------------------------------------------------

    def note_execution(self, report: "ExecutionReport") -> None:
        meta = report.as_metadata()
        faults = meta.get("faults", {})
        with self._lock:
            self._execution["maps"] += 1
            self._execution["trials"] += int(meta.get("num_trials", 0))
            self._execution["chunks"] += len(meta.get("chunks", ()))
            self._execution["seconds"] += float(meta.get("total_seconds", 0.0))
            for key in self._execution["faults"]:
                self._execution["faults"][key] += int(faults.get(key, 0))
            for event in faults.get("events", ()):
                if len(self._fault_events) >= MAX_FAULT_EVENTS:
                    self._fault_events_dropped += 1
                else:
                    self._fault_events.append(dict(event))

    def note_adaptive(self, trajectory: "dict[str, Any]") -> None:
        with self._lock:
            if len(self._adaptive) >= MAX_ADAPTIVE_TRAJECTORIES:
                self._adaptive_dropped += 1
            else:
                self._adaptive.append(dict(trajectory))

    def note_sweep(self, label: str, points: int, hits: int, misses: int) -> None:
        with self._lock:
            if len(self._sweeps) >= MAX_SWEEPS:
                self._sweeps_dropped += 1
            else:
                self._sweeps.append({
                    "label": label,
                    "points": int(points),
                    "store_hits": int(hits),
                    "store_misses": int(misses),
                })

    def note_cache(self, *, hit: bool, fingerprint: "str | None" = None) -> None:
        with self._lock:
            self._store["hits" if hit else "misses"] += 1
            if fingerprint is not None:
                self._note_fingerprint(fingerprint)

    def note_store_put(self, fingerprint: "str | None" = None) -> None:
        with self._lock:
            self._store["puts"] += 1
            if fingerprint is not None:
                self._note_fingerprint(fingerprint)

    def _note_fingerprint(self, fingerprint: str) -> None:
        if fingerprint not in self._fingerprints:
            self._fingerprints_seen += 1
            if len(self._fingerprints) < MAX_FINGERPRINT_SAMPLE:
                self._fingerprints.add(fingerprint)

    # -- persistence ---------------------------------------------------------

    def as_manifest(self, status: str) -> "dict[str, Any]":
        from repro import __version__

        with self._lock:
            data: "dict[str, Any]" = {
                "schema_version": MANIFEST_SCHEMA_VERSION,
                "run_id": self.run_id,
                "status": status,
                "command": self.command,
                "argv": self.argv,
                "version": __version__,
                "python": sys.version.split()[0],
                "config_fingerprint": self.config_fingerprint,
                "started_unix": self.started_unix,
                "execution": json.loads(json.dumps(self._execution)),
                "fault_events": [dict(e) for e in self._fault_events],
                "fault_events_dropped": self._fault_events_dropped,
                "adaptive": [dict(t) for t in self._adaptive],
                "adaptive_dropped": self._adaptive_dropped,
                "sweeps": [dict(s) for s in self._sweeps],
                "sweeps_dropped": self._sweeps_dropped,
                "store": {
                    **self._store,
                    "fingerprints_seen": self._fingerprints_seen,
                    "fingerprint_sample": sorted(self._fingerprints),
                },
            }
        return data

    def write(self, status: str, **extra: Any) -> str:
        """Atomically (fsync'd) persist the manifest; returns its path."""
        from repro.store.cache import atomic_write_bytes

        data = self.as_manifest(status)
        data.update(extra)
        os.makedirs(self.ledger_dir, exist_ok=True)
        payload = json.dumps(data, indent=2, sort_keys=True).encode("utf-8")
        atomic_write_bytes(self.path, payload)
        return self.path

    def finalize(
        self,
        exit_code: int = 0,
        *,
        metrics_snapshot: "dict[str, Any] | None" = None,
    ) -> str:
        """Stamp the final record and rewrite with status ``complete``."""
        if metrics_snapshot is None:
            from repro.obs import metrics as _metrics

            metrics_snapshot = _metrics.diff_snapshots(
                self._metrics_before, _metrics.snapshot()
            )
        return self.write(
            "complete",
            exit_code=int(exit_code),
            wall_clock_s=round(time.monotonic() - self._started_monotonic, 6),
            finished_unix=time.time(),
            metrics=metrics_snapshot,
        )


# -- module-global active recorder ------------------------------------------

_active: "RunRecorder | None" = None


def active() -> "RunRecorder | None":
    return _active


def begin(
    ledger_dir: "str | os.PathLike",
    *,
    run_id: "str | None" = None,
    argv: "list[str] | None" = None,
    command: "str | None" = None,
    config_fingerprint: "str | None" = None,
) -> RunRecorder:
    """Open a run record and persist it immediately (status ``running``).

    Adopts the observability run id when one is configured so traces,
    metrics snapshots, and the manifest all share a key; otherwise mints
    a fresh id.  Replaces any previously active recorder without
    finalizing it (the old file keeps its last written status).
    """
    global _active
    if run_id is None:
        run_id = _runtime.run_id() or _runtime._mint_run_id()
    # Several runs can share one process (and thus one obs run id);
    # each still gets its own ledger entry.
    if os.path.exists(manifest_path(ledger_dir, run_id)):
        attempt = 2
        while os.path.exists(manifest_path(ledger_dir, f"{run_id}-b{attempt}")):
            attempt += 1
        run_id = f"{run_id}-b{attempt}"
    recorder = RunRecorder(
        os.fspath(ledger_dir),
        run_id,
        argv=argv,
        command=command,
        config_fingerprint=config_fingerprint,
    )
    recorder.write("running")
    _active = recorder
    return recorder


def finalize(
    exit_code: int = 0,
    *,
    metrics_snapshot: "dict[str, Any] | None" = None,
) -> "str | None":
    """Finalize and deactivate the active recorder; returns its path."""
    global _active
    if _active is None:
        return None
    path = _active.finalize(exit_code, metrics_snapshot=metrics_snapshot)
    _active = None
    return path


def discard() -> None:
    """Drop the active recorder without writing (tests, error paths)."""
    global _active
    _active = None


# -- hook points (each is one None-check when no recorder is active) ---------


def note_execution(report: "ExecutionReport") -> None:
    if _active is not None:
        _active.note_execution(report)


def note_adaptive(trajectory: "dict[str, Any]") -> None:
    if _active is not None:
        _active.note_adaptive(trajectory)


def note_sweep(label: str, points: int, hits: int, misses: int) -> None:
    if _active is not None:
        _active.note_sweep(label, points, hits, misses)


def note_cache(*, hit: bool, fingerprint: "str | None" = None) -> None:
    if _active is not None:
        _active.note_cache(hit=hit, fingerprint=fingerprint)


def note_store_put(fingerprint: "str | None" = None) -> None:
    if _active is not None:
        _active.note_store_put(fingerprint)


# -- ledger reading ----------------------------------------------------------


def list_runs(ledger_dir: "str | os.PathLike") -> "list[str]":
    """Run ids with a manifest under ``ledger_dir``, oldest first."""
    ledger_dir = os.fspath(ledger_dir)
    if not os.path.isdir(ledger_dir):
        return []
    entries = []
    for name in os.listdir(ledger_dir):
        if name.startswith("manifest_") and name.endswith(".json"):
            path = os.path.join(ledger_dir, name)
            entries.append((os.path.getmtime(path), name[len("manifest_"):-len(".json")]))
    return [run_id for _, run_id in sorted(entries)]


def load(ledger_dir: "str | os.PathLike", run_id: str) -> "dict[str, Any]":
    """Read one manifest, checking the schema version.

    Raises ``FileNotFoundError`` for an unknown run id and
    ``ValueError`` for a manifest written by a newer (or missing)
    schema version.
    """
    path = manifest_path(ledger_dir, run_id)
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"manifest {path} is not a JSON object")
    version = data.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"manifest {path} has no valid schema_version")
    if version > MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"manifest {path} uses schema v{version}; this build reads "
            f"up to v{MANIFEST_SCHEMA_VERSION}"
        )
    return data
