"""Alpha-beta tag tracking: smoothing, gating, coast-and-drop."""

import numpy as np
import pytest

from repro.core.tracking import (
    AlphaBetaTracker,
    TagMeasurement,
    TrackManager,
)
from repro.errors import ConfigurationError


def linear_motion_measurements(
    r0=5.0, v=-0.5, frames=30, dt=0.05, noise=0.01, seed=0, angle0=10.0, angle_rate=-1.0
):
    rng = np.random.default_rng(seed)
    out = []
    for k in range(frames):
        t = k * dt
        out.append(
            TagMeasurement(
                time_s=t,
                range_m=r0 + v * t + rng.normal(0, noise),
                angle_deg=angle0 + angle_rate * t + rng.normal(0, 0.3),
                radial_velocity_m_s=v + rng.normal(0, 0.05),
            )
        )
    return out


class TestMeasurement:
    def test_position_xy(self):
        m = TagMeasurement(time_s=0.0, range_m=2.0, angle_deg=30.0)
        x, y = m.position_xy()
        assert x == pytest.approx(1.0, rel=1e-6)
        assert y == pytest.approx(np.sqrt(3.0), rel=1e-6)

    def test_no_angle_no_position(self):
        assert TagMeasurement(time_s=0.0, range_m=2.0).position_xy() is None

    def test_validation(self):
        with pytest.raises(Exception):
            TagMeasurement(time_s=0.0, range_m=-1.0)


class TestAlphaBetaTracker:
    def test_first_measurement_initializes(self):
        tracker = AlphaBetaTracker()
        state = tracker.update(TagMeasurement(time_s=0.0, range_m=3.0, radial_velocity_m_s=1.0))
        assert state.range_m == 3.0
        assert state.range_rate_m_s == 1.0
        assert state.updates == 1

    def test_smooths_noise_below_measurement_level(self):
        measurements = linear_motion_measurements(noise=0.05, frames=60)
        tracker = AlphaBetaTracker()
        errors_raw = []
        errors_track = []
        for k, m in enumerate(measurements):
            truth = 5.0 - 0.5 * m.time_s
            state = tracker.update(m)
            if k > 10:  # after convergence
                errors_raw.append(abs(m.range_m - truth))
                errors_track.append(abs(state.range_m - truth))
        assert np.mean(errors_track) < np.mean(errors_raw)

    def test_rate_converges_to_true_velocity(self):
        measurements = linear_motion_measurements(v=-0.5, frames=40, noise=0.005)
        tracker = AlphaBetaTracker()
        for m in measurements:
            state = tracker.update(m)
        assert state.range_rate_m_s == pytest.approx(-0.5, abs=0.08)

    def test_angle_tracked(self):
        measurements = linear_motion_measurements(frames=40)
        tracker = AlphaBetaTracker()
        for m in measurements:
            state = tracker.update(m)
        truth = 10.0 - 1.0 * measurements[-1].time_s
        assert state.angle_deg == pytest.approx(truth, abs=0.5)

    def test_outlier_gated(self):
        tracker = AlphaBetaTracker(gate_range_m=0.5)
        tracker.update(TagMeasurement(time_s=0.0, range_m=3.0, radial_velocity_m_s=0.0))
        tracker.update(TagMeasurement(time_s=0.05, range_m=3.0, radial_velocity_m_s=0.0))
        # A 5 m jump (ghost detection) must not drag the track.
        state = tracker.update(TagMeasurement(time_s=0.10, range_m=8.0))
        assert state.range_m == pytest.approx(3.0, abs=0.1)
        assert state.misses == 1

    def test_predict_coasts_linearly(self):
        tracker = AlphaBetaTracker()
        tracker.update(TagMeasurement(time_s=0.0, range_m=3.0, radial_velocity_m_s=2.0))
        predicted = tracker.predict(0.5)
        assert predicted.range_m == pytest.approx(4.0, abs=0.2)

    def test_predict_without_state(self):
        with pytest.raises(ConfigurationError):
            AlphaBetaTracker().predict(1.0)

    def test_gain_validation(self):
        with pytest.raises(ConfigurationError):
            AlphaBetaTracker(alpha=0.2, beta=0.5)

    def test_time_reversal_rejected(self):
        tracker = AlphaBetaTracker()
        tracker.update(TagMeasurement(time_s=1.0, range_m=3.0))
        with pytest.raises(ConfigurationError):
            tracker.predict(0.5)


class TestTrackManager:
    def test_tracks_multiple_tags(self):
        manager = TrackManager()
        manager.observe(0, TagMeasurement(time_s=0.0, range_m=2.0), 0.0)
        manager.observe(1, TagMeasurement(time_s=0.0, range_m=5.0), 0.0)
        tracks = manager.active_tracks()
        assert set(tracks) == {0, 1}
        assert tracks[0].range_m == 2.0

    def test_coast_then_drop(self):
        manager = TrackManager(max_coasts=2)
        manager.observe(0, TagMeasurement(time_s=0.0, range_m=2.0, radial_velocity_m_s=0.0), 0.0)
        state = manager.observe(0, None, 0.05)
        assert state is not None and state.misses == 1
        manager.observe(0, None, 0.10)
        assert manager.observe(0, None, 0.15) is None  # dropped
        assert manager.track(0) is None

    def test_redetection_resets_coasts(self):
        manager = TrackManager(max_coasts=2)
        manager.observe(0, TagMeasurement(time_s=0.0, range_m=2.0), 0.0)
        manager.observe(0, None, 0.05)
        manager.observe(0, TagMeasurement(time_s=0.10, range_m=2.0), 0.10)
        manager.observe(0, None, 0.15)
        assert manager.track(0) is not None

    def test_miss_before_any_detection(self):
        manager = TrackManager()
        assert manager.observe(7, None, 0.0) is None


class TestEndToEndTracking:
    def test_tracks_moving_tag_through_isac_frames(self):
        """Measurements from real ISAC frames feed the tracker; the fused
        track is tighter than the raw per-frame ranging."""
        from repro.core.isac import IsacSession
        from repro.core.ber import random_bits
        from repro.sim.scenario import default_office_scenario

        velocity = -1.0
        dt_between_frames = 0.05
        truth0 = 5.0
        manager = TrackManager()
        raw_errors = []
        track_errors = []
        for k in range(6):
            t = k * dt_between_frames
            truth = truth0 + velocity * t
            scenario = default_office_scenario(tag_range_m=truth)
            session = IsacSession(
                scenario.radar_config,
                scenario.alphabet,
                scenario.tag,
                tag_range_m=truth,
                tag_velocity_m_s=velocity,
                clutter=scenario.clutter,
            )
            result = session.run_frame(
                random_bits(10, rng=k), random_bits(4, rng=100 + k), rng=200 + k
            )
            measurement = TagMeasurement(
                time_s=t,
                range_m=result.localization.range_m,
                radial_velocity_m_s=result.estimated_velocity_m_s,
            )
            state = manager.observe(0, measurement, t)
            raw_errors.append(abs(measurement.range_m - truth))
            track_errors.append(abs(state.range_m - truth))
        assert max(track_errors) < 0.1
        assert manager.track(0).range_rate_m_s == pytest.approx(velocity, abs=0.3)
