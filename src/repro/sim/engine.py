"""Monte-Carlo engines behind the evaluation benches.

Three workhorses:

* :func:`run_downlink_trials` — downlink BER at a distance or pinned SNR
  (Figs. 12-14, 17).
* :func:`run_uplink_snr_measurement` — uplink signature SNR vs distance
  (Fig. 15).
* :func:`run_localization_trials` — ranging error with fixed or varying
  slopes (Fig. 16).

All three accept an ``execution`` :class:`~repro.sim.executor.ExecutionPlan`
and fan trials out over the executor layer.  Trial ``i``'s generator is
index-keyed off the root seed (``SeedSpec.stream(i)``), and per-trial
results are reduced in trial order, so results are bit-identical for any
worker count — the contract ``tests/unit/test_executor.py`` enforces.
The plan's fault knobs (``max_retries``, ``chunk_timeout_s``,
``on_failure``) apply unchanged: a worker crash mid-run is retried
bit-identically, and only retry exhaustion surfaces as
:class:`repro.errors.ExecutorError` with the failing trial indices.
The trial bodies live in module-level ``_*_chunk`` functions so they can
be pickled to worker processes; each chunk rebuilds its (deterministic)
DSP objects once, amortising setup over the chunk's trials.

All three also accept ``store=`` (an
:class:`repro.store.ExperimentStore`): the whole run is fingerprinted
over its configuration + root :class:`~repro.utils.rng.SeedSpec` + trial
count, a valid cache entry is returned without computing anything, and a
fresh result is stored with a replay recipe so ``repro cache verify``
can later recompute it bit-exactly.  Determinism makes the hit provably
identical to the recompute; work units the fingerprinter cannot pin down
simply run uncached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.channel.link_budget import DownlinkBudget
from repro.channel.multipath import Clutter
from repro.core.ber import ErrorCounter, random_bits
from repro.core.cssk import CsskAlphabet
from repro.core.downlink import DownlinkEncoder
from repro.core.localization import TagLocalizer
from repro.core.packet import DownlinkPacket, PacketFields
from repro.core.uplink import UplinkDecoder
from repro.errors import SimulationError, StoreError, SyncError
from repro.impair.spec import ImpairmentSpec
from repro.obs import runtime as _obs_runtime
from repro.radar.config import RadarConfig
from repro.radar.fmcw import FMCWRadar, Scatterer
from repro.tag.decoder_dsp import TagDecoder
from repro.tag.frontend import AnalyticTagFrontend
from repro.tag.modulator import UplinkModulator
from repro.components.van_atta import VanAttaArray
from repro.sim.executor import ExecutionPlan, map_trials
from repro.sim.results import BerPoint
from repro.utils.rng import SeedSpec
from repro.utils.validation import ensure_positive


def _plain(value):
    """Numpy scalar -> Python scalar (JSON-safe cache payloads)."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def _store_lookup(store, kind: str, work_unit) -> "tuple[str | None, dict | None]":
    """Fingerprint a work unit and probe the store.

    Returns ``(fingerprint, record)``; both ``None`` when no store is
    attached or the work unit cannot be canonically fingerprinted (the
    run then proceeds uncached — caching never changes *whether* an
    engine runs).
    """
    if store is None:
        return None, None
    from repro.store.fingerprint import fingerprint
    try:
        work_fingerprint = fingerprint(kind, work_unit)
    except StoreError:
        return None, None
    return work_fingerprint, store.get(work_fingerprint)


def _store_put(store, work_fingerprint, kind, payload, *, arrays=None, replay_entry=None, replay_payload=None):
    """Persist a fresh result (+ replay recipe when the payload pickles)."""
    from repro.sim.executor import _is_picklable
    from repro.store.cache import ReplayRecipe

    replay = None
    if replay_entry is not None and _is_picklable(replay_payload):
        replay = ReplayRecipe(entry=replay_entry, payload=replay_payload)
    store.put(work_fingerprint, kind, payload, arrays=arrays, replay=replay)


def _ber_point_payload(point: "BerPoint") -> "dict":
    return {
        "parameter": float(point.parameter),
        "ber": float(point.ber),
        "bits_total": int(point.bits_total),
        "bit_errors": int(point.bit_errors),
        "extra": {key: _plain(value) for key, value in point.extra.items()},
    }


def _ber_point_from_payload(payload: "dict") -> "BerPoint":
    return BerPoint(
        parameter=float(payload["parameter"]),
        ber=float(payload["ber"]),
        bits_total=int(payload["bits_total"]),
        bit_errors=int(payload["bit_errors"]),
        extra=dict(payload["extra"]),
    )


@dataclass
class DownlinkTrialConfig:
    """Configuration for a downlink BER Monte-Carlo run.

    Parameters
    ----------
    radar_config / alphabet:
        The link configuration under test.
    distance_m:
        Radar-tag separation (sets SNR via the budget) — or use
        ``snr_override_db`` to pin video SNR directly.
    num_frames / payload_symbols_per_frame:
        Monte-Carlo sizing; total bits = frames x symbols x bits/symbol.
    full_sync:
        True exercises period estimation + sync search every frame
        (over-the-air realism); False uses genie alignment to isolate
        symbol-level BER (faster, used for wide sweeps).
    budget:
        Downlink link budget; None builds one from the radar config.
    impairments:
        Optional :class:`repro.impair.ImpairmentSpec` injected into every
        frame's tag capture (clock drift also skews the decoder grid).
        None or an all-zero-severity spec is bit-identical to the
        unimpaired engine.
    """

    radar_config: RadarConfig
    alphabet: CsskAlphabet
    distance_m: float = 2.0
    snr_override_db: float | None = None
    num_frames: int = 100
    payload_symbols_per_frame: int = 16
    full_sync: bool = False
    fields: PacketFields = field(default_factory=PacketFields)
    budget: DownlinkBudget | None = None
    clutter: Clutter | None = None
    impairments: ImpairmentSpec | None = None

    def resolved_budget(self) -> DownlinkBudget:
        """The link budget in effect."""
        if self.budget is not None:
            return self.budget
        return DownlinkBudget(
            tx_power_dbm=self.radar_config.tx_power_dbm,
            radar_antenna=self.radar_config.antenna,
            frequency_hz=self.radar_config.center_frequency_hz,
        )


def _effective_snr_override(config: DownlinkTrialConfig) -> "float | None":
    """The SNR override in effect after any clutter penalty."""
    snr_override = config.snr_override_db
    if snr_override is not None and config.clutter is not None:
        # Multipath smears the beat tone; charge the penalty against SNR.
        mid_slope = config.alphabet.bandwidth_hz / (
            0.5 * (config.alphabet.header_duration_s + config.alphabet.sync_duration_s)
        )
        snr_override = snr_override - config.clutter.downlink_snr_penalty_db(
            mid_slope, config.alphabet.beat_spacing_hz
        )
    return snr_override


def _downlink_chunk(
    config: DownlinkTrialConfig, spec: SeedSpec, indices
) -> "list[tuple[int, int, int]]":
    """One chunk of downlink frames -> (bit_errors, bits, sync_failed) per trial."""
    budget = config.resolved_budget()
    encoder = DownlinkEncoder(radar_config=config.radar_config, alphabet=config.alphabet)
    impair = config.impairments if (
        config.impairments is not None and config.impairments.active
    ) else None
    clock_offset_ppm = impair.clock_offset_ppm() if impair is not None else 0.0
    decoder = TagDecoder(
        config.alphabet, fields=config.fields, clock_offset_ppm=clock_offset_ppm
    )
    frontend = AnalyticTagFrontend(
        budget=budget, delta_t_s=config.alphabet.decoder.delta_t_s
    )
    snr_override = _effective_snr_override(config)

    bits_per_frame = config.payload_symbols_per_frame * config.alphabet.symbol_bits
    results = []
    for index in indices:
        stream = spec.stream(index)
        payload = random_bits(bits_per_frame, rng=stream)
        packet = DownlinkPacket.from_bits(config.alphabet, payload, fields=config.fields)
        frame = encoder.encode_packet(packet)
        capture = frontend.capture(
            frame,
            config.distance_m,
            rng=stream,
            snr_override_db=snr_override,
        )
        if impair is not None:
            capture = impair.apply_to_capture(capture, rng=stream)
        counter = ErrorCounter()
        sync_failed = 0
        try:
            if config.full_sync:
                decoded = decoder.decode(
                    capture, num_payload_symbols=config.payload_symbols_per_frame
                )
            else:
                decoded = decoder.decode_aligned(
                    capture, num_payload_symbols=config.payload_symbols_per_frame
                )
            counter.update(payload, decoded.bits)
        except SyncError:
            sync_failed = 1
            counter.update(payload, np.empty(0, dtype=np.uint8))
        results.append((counter.bit_errors, counter.bits_total, sync_failed))
    if _obs_runtime._enabled:
        # Incremented inside the (possibly worker) process; the executor
        # serializes the registry delta back with the chunk results.
        obs.inc("engine.downlink.trials", len(results))
        obs.inc("engine.downlink.sync_failures", sum(r[2] for r in results))
    return results


class _DownlinkBatchLayout:
    """Precomputed per-sweep-point geometry for the batched downlink path.

    Everything the per-frame path derives object-by-object — slot start
    times, per-symbol chirp durations and slopes, the Gray bit->symbol map
    — is tabulated once per chunk so synthesizing a whole chunk of frames
    never touches ``DownlinkPacket`` / ``FrameSchedule`` / per-slot Python
    loops.  Every table entry is produced by the *same* float expressions
    the object path evaluates (``bandwidth / duration`` for slopes,
    ``index * period`` for starts, ``gray_decode(packed bits)`` for
    symbols), which is what keeps the fast path bit-identical.
    """

    def __init__(self, config: DownlinkTrialConfig) -> None:
        from repro.core.cssk import gray_decode

        alphabet = config.alphabet
        # Runs the same platform-limit validation the per-frame encoder
        # path performs, so both modes reject identical configurations.
        DownlinkEncoder(radar_config=config.radar_config, alphabet=alphabet)
        self.alphabet = alphabet
        self.num_payload = config.payload_symbols_per_frame
        fields = config.fields
        self.header_repeats = fields.header_repeats
        self.sync_repeats = fields.sync_repeats
        self.num_slots = fields.preamble_length + self.num_payload
        period = alphabet.chirp_period_s
        self.start_times_s = np.array(
            [index * period for index in range(self.num_slots)]
        )
        # FrameSchedule.duration_s is the last slot's end time: its start
        # (index * period) plus one period — replicate that float exactly.
        self.duration_s = (self.num_slots - 1) * period + period
        bandwidth = alphabet.bandwidth_hz
        self.header_duration_s = alphabet.header_duration_s
        self.sync_duration_s = alphabet.sync_duration_s
        self.header_slope = bandwidth / self.header_duration_s
        self.sync_slope = bandwidth / self.sync_duration_s
        self.data_durations = np.array(
            [alphabet.data_symbol_duration_s(s) for s in range(alphabet.num_data_symbols)]
        )
        self.data_slopes = np.array(
            [bandwidth / alphabet.data_symbol_duration_s(s)
             for s in range(alphabet.num_data_symbols)]
        )
        width = alphabet.symbol_bits
        self.bit_weights = 1 << np.arange(width - 1, -1, -1)
        self.symbol_of_code = np.array(
            [gray_decode(code) for code in range(2**width)], dtype=int
        )

    def payload_symbols(self, payloads: "list[np.ndarray]") -> np.ndarray:
        """(batch, num_payload) Gray-decoded symbol indices.

        ``symbol_for_bits`` packs MSB-first then Gray-decodes; the integer
        dot product with ``bit_weights`` is the same packing, exactly.
        """
        bits = np.stack(payloads).astype(np.int64)
        codes = bits.reshape(len(payloads), self.num_payload, -1) @ self.bit_weights
        return self.symbol_of_code[codes]

    def slot_tables(self, symbols: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Per-slot (durations, slopes), shape (batch, num_slots)."""
        batch = symbols.shape[0]
        durations = np.empty((batch, self.num_slots))
        slopes = np.empty((batch, self.num_slots))
        durations[:, : self.header_repeats] = self.header_duration_s
        slopes[:, : self.header_repeats] = self.header_slope
        preamble = self.header_repeats + self.sync_repeats
        durations[:, self.header_repeats : preamble] = self.sync_duration_s
        slopes[:, self.header_repeats : preamble] = self.sync_slope
        durations[:, preamble:] = self.data_durations[symbols]
        slopes[:, preamble:] = self.data_slopes[symbols]
        return durations, slopes


def _downlink_chunk_batched(
    config: DownlinkTrialConfig, spec: SeedSpec, indices
) -> "list[tuple[int, int, int]]":
    """Batched-frame downlink chunk — bit-identical to :func:`_downlink_chunk`.

    The chunk's frames are synthesized and decoded as stacked
    ``(frames, samples)`` array ops (see
    :func:`repro.tag.frontend._synthesize_batch` and
    :meth:`repro.tag.decoder_dsp.TagDecoder.decode_aligned_batch`); trial
    RNG streams are consumed in exactly the oracle's draw order, so the
    per-trial tuples match the per-frame chunk bit for bit.  Partial
    batching applies in two modes: active impairments keep per-frame
    synthesis (injection needs per-capture slot metadata and its own RNG
    draws) while still decoding the chunk batched, and ``full_sync``
    keeps per-capture OTA decoding (period estimation + preamble search
    is inherently sequential) on top of batched synthesis.  Only the
    combination — ``full_sync`` *with* active impairments — falls back
    wholesale, since neither stage can then be stacked.
    """
    budget = config.resolved_budget()
    impair = config.impairments if (
        config.impairments is not None and config.impairments.active
    ) else None
    if config.full_sync and impair is not None:
        return _downlink_chunk(config, spec, indices)
    clock_offset_ppm = impair.clock_offset_ppm() if impair is not None else 0.0
    decoder = TagDecoder(
        config.alphabet, fields=config.fields, clock_offset_ppm=clock_offset_ppm
    )
    frontend = AnalyticTagFrontend(
        budget=budget, delta_t_s=config.alphabet.decoder.delta_t_s
    )
    snr_override = _effective_snr_override(config)
    bits_per_frame = config.payload_symbols_per_frame * config.alphabet.symbol_bits
    streams = [spec.stream(index) for index in indices]
    payloads = [random_bits(bits_per_frame, rng=stream) for stream in streams]

    if impair is not None:
        encoder = DownlinkEncoder(
            radar_config=config.radar_config, alphabet=config.alphabet
        )
        captures = []
        for payload, stream in zip(payloads, streams):
            packet = DownlinkPacket.from_bits(config.alphabet, payload, fields=config.fields)
            frame = encoder.encode_packet(packet)
            capture = frontend.capture(
                frame, config.distance_m, rng=stream, snr_override_db=snr_override
            )
            captures.append(impair.apply_to_capture(capture, rng=stream))
    else:
        from repro.tag.frontend import TagCapture, _synthesize_batch

        layout = _DownlinkBatchLayout(config)
        fs = budget.adc.sample_rate_hz
        total_samples = int(round(layout.duration_s * fs))
        if total_samples < 2:
            raise SimulationError("frame too short for the tag ADC rate")
        ensure_positive("distance_m", config.distance_m)
        symbols = layout.payload_symbols(payloads)
        durations, slopes = layout.slot_tables(symbols)
        with obs.span("engine.downlink.batch.synthesize", frames=len(streams)):
            block = _synthesize_batch(
                frontend,
                fs=fs,
                total_samples=total_samples,
                distance_m=config.distance_m,
                generators=streams,
                start_samples=np.round(layout.start_times_s * fs).astype(int),
                start_times_s=layout.start_times_s,
                durations_s=durations,
                slopes_hz_per_s=slopes,
                absorptive=np.ones(layout.num_slots, dtype=bool),
                off_boresight_deg=0.0,
                snr_override_db=snr_override,
                wrap_fractions=None,
            )
        captures = [
            TagCapture(samples=block[row], sample_rate_hz=fs)
            for row in range(len(streams))
        ]

    results = []
    if config.full_sync:
        # OTA sync: batched synthesis above, but period estimation and
        # preamble search stay per capture.  decode() draws no RNG, so the
        # oracle's stream order is already fully consumed at this point.
        with obs.span("engine.downlink.batch.decode_full_sync", frames=len(captures)):
            for payload, capture in zip(payloads, captures):
                counter = ErrorCounter()
                sync_failed = 0
                try:
                    decoded = decoder.decode(
                        capture, num_payload_symbols=config.payload_symbols_per_frame
                    )
                    counter.update(payload, decoded.bits)
                except SyncError:
                    sync_failed = 1
                    counter.update(payload, np.empty(0, dtype=np.uint8))
                results.append((counter.bit_errors, counter.bits_total, sync_failed))
    else:
        with obs.span("engine.downlink.batch.decode", frames=len(captures)):
            decoded = decoder.decode_aligned_batch(
                captures, num_payload_symbols=config.payload_symbols_per_frame
            )
        for payload, packet in zip(payloads, decoded):
            counter = ErrorCounter()
            counter.update(payload, packet.bits)
            # decode_aligned never loses sync (genie alignment), matching the
            # per-frame chunk's always-zero sync_failed in this mode.
            results.append((counter.bit_errors, counter.bits_total, 0))
    if _obs_runtime._enabled:
        obs.inc("engine.downlink.trials", len(results))
        obs.inc("engine.downlink.sync_failures", sum(r[2] for r in results))
    return results


def _replay_downlink_trials(payload) -> "dict":
    """Recompute a cached downlink run (``repro cache verify`` hook)."""
    config, spec = payload
    return _ber_point_payload(run_downlink_trials(config, rng=spec))


def _replay_downlink_trials_adaptive(payload) -> "dict":
    """Recompute a cached adaptive downlink run (``repro cache verify``)."""
    config, spec, adaptive = payload
    return _ber_point_payload(
        run_downlink_trials(config, rng=spec, adaptive=adaptive)
    )


def downlink_trials_work_unit(
    config: DownlinkTrialConfig, spec: SeedSpec, adaptive=None
) -> "tuple[str, dict]":
    """The ``(kind, work_unit)`` a downlink run is fingerprinted under.

    Shared with the serve protocol so streamed jobs hit exactly the
    cache entries batch runs write.  Adaptive runs live under a distinct
    kind with the stopping rule folded into the unit: the rule decides
    how many trials exist, so it is part of the work's identity and
    adaptive results never collide with fixed-budget ones.
    """
    if adaptive is None:
        return "downlink-trials", {"config": config, "seed": spec}
    return "downlink-trials-adaptive", {
        "config": config,
        "seed": spec,
        "adaptive": adaptive,
    }


def run_downlink_trials(
    config: DownlinkTrialConfig,
    *,
    rng: int | np.random.Generator | None = 0,
    execution: ExecutionPlan | None = None,
    store=None,
    adaptive=None,
) -> BerPoint:
    """Monte-Carlo downlink BER for one operating point.

    ``store`` caches the aggregated :class:`BerPoint` under a fingerprint
    of (config, root seed, trial count); a valid entry short-circuits the
    whole Monte-Carlo run, bit-identically.

    ``adaptive`` (an :class:`repro.sim.adaptive.AdaptiveConfig`) switches
    to CI-driven sequential stopping: ``config.num_frames`` is ignored
    and trials run in index-keyed rounds until the BER interval is tight
    enough or ``adaptive.max_frames`` is hit.  Trial seeds are identical
    to a fixed-budget run's, so a degenerate rule
    (``target_rel_width=0``) reproduces ``num_frames=max_frames``
    bit for bit; the stopping rule joins the store fingerprint.
    """
    if config.num_frames < 1 or config.payload_symbols_per_frame < 1:
        raise SimulationError("num_frames and payload_symbols_per_frame must be >= 1")
    ensure_positive("distance_m", config.distance_m)

    spec = SeedSpec.from_rng(rng)
    kind, work_unit = downlink_trials_work_unit(config, spec, adaptive)
    work_fingerprint, record = _store_lookup(store, kind, work_unit)
    if record is not None:
        return _ber_point_from_payload(record["payload"])

    budget = config.resolved_budget()
    plan = execution if execution is not None else ExecutionPlan()
    # Both chunk bodies are bit-identical by contract (the differential
    # suite enforces it), so the store fingerprint deliberately excludes
    # the execution plan: batched and per-frame runs share cache entries.
    chunk_fn = _downlink_chunk_batched if plan.batch_frames else _downlink_chunk
    trajectory = None
    if adaptive is not None:
        from repro.sim.adaptive import run_adaptive_trials

        with obs.span(
            "engine.downlink",
            max_frames=adaptive.max_frames,
            batched=plan.batch_frames,
            adaptive=True,
        ):
            outcome = run_adaptive_trials(
                chunk_fn,
                config,
                adaptive,
                spec,
                plan,
                counts=lambda result: (result[0], result[1]),
            )
        per_trial = outcome.per_trial
        trajectory = outcome.summary()
    else:
        with obs.span(
            "engine.downlink", frames=config.num_frames, batched=plan.batch_frames
        ):
            per_trial, _report = map_trials(
                chunk_fn, config, config.num_frames, spec, plan
            )
    counter = ErrorCounter()
    sync_failures = 0
    for bit_errors, bits_total, sync_failed in per_trial:
        counter.bit_errors += bit_errors
        counter.bits_total += bits_total
        sync_failures += sync_failed
    parameter = (
        config.snr_override_db if config.snr_override_db is not None else config.distance_m
    )
    extra = {
        "sync_failures": sync_failures,
        "symbol_bits": config.alphabet.symbol_bits,
        "bandwidth_hz": config.alphabet.bandwidth_hz,
        "video_snr_db": budget.video_snr_db(config.distance_m),
    }
    if trajectory is not None:
        extra["adaptive"] = trajectory
    point = BerPoint(
        parameter=float(parameter),
        ber=counter.ber,
        bits_total=counter.bits_total,
        bit_errors=counter.bit_errors,
        extra=extra,
    )
    if _obs_runtime._enabled:
        obs.log(
            "engine.downlink.done",
            frames=len(per_trial),
            ber=point.ber,
            sync_failures=sync_failures,
        )
    if work_fingerprint is not None:
        if adaptive is None:
            replay_entry = "repro.sim.engine:_replay_downlink_trials"
            replay_payload = (config, spec)
        else:
            replay_entry = "repro.sim.engine:_replay_downlink_trials_adaptive"
            replay_payload = (config, spec, adaptive)
        _store_put(
            store,
            work_fingerprint,
            kind,
            _ber_point_payload(point),
            replay_entry=replay_entry,
            replay_payload=replay_payload,
        )
    return point


def _uplink_chunk(payload, spec: SeedSpec, indices) -> "list[float]":
    """One chunk of uplink SNR trials -> signature SNR (dB) per trial."""
    (radar_config, modulator, van_atta, tag_range_m, num_chirps,
     chirp_duration_s, clutter) = payload
    from repro.waveform.frame import FrameSchedule

    chirp = radar_config.chirp(chirp_duration_s)
    frame = FrameSchedule.from_chirps(
        [chirp] * num_chirps, modulator.chirp_period_s
    )
    times = np.array([slot.start_time_s for slot in frame.slots])
    states = modulator.beacon_states(times)
    frequency = radar_config.center_frequency_hz
    on_rcs, off_rcs = van_atta.modulated_rcs_amplitudes(frequency)
    schedule = np.where(states, 1.0, float(np.sqrt(off_rcs / on_rcs)))
    env = clutter or Clutter()
    radar = FMCWRadar(radar_config)
    decoder = UplinkDecoder(modulator)
    snrs = []
    for index in indices:
        stream = spec.stream(index)
        scatterers = [
            Scatterer(
                range_m=tag_range_m,
                rcs_m2=van_atta.rcs_m2(frequency),
                amplitude_schedule=schedule,
            )
        ] + [
            Scatterer(range_m=r.range_m, rcs_m2=r.rcs_m2, angle_deg=r.angle_deg)
            for r in env.reflectors
        ]
        if_frame = radar.receive_frame(frame, scatterers, rng=stream)
        snrs.append(decoder.measure_snr_db(if_frame))
    if _obs_runtime._enabled:
        obs.inc("engine.uplink.trials", len(snrs))
    return snrs


def _replay_uplink_snr(payload) -> "dict":
    """Recompute a cached uplink SNR run (``repro cache verify`` hook)."""
    (radar_config, modulator, van_atta, tag_range_m, num_chirps,
     chirp_duration_s, clutter, num_trials, spec) = payload
    snr_db = run_uplink_snr_measurement(
        radar_config, modulator, van_atta,
        tag_range_m=tag_range_m, num_chirps=num_chirps,
        chirp_duration_s=chirp_duration_s, clutter=clutter,
        rng=spec, num_trials=num_trials,
    )
    return {"snr_db": float(snr_db)}


def run_uplink_snr_measurement(
    radar_config: RadarConfig,
    modulator: UplinkModulator,
    van_atta: VanAttaArray,
    *,
    tag_range_m: float,
    num_chirps: int = 128,
    chirp_duration_s: float = 80e-6,
    clutter: Clutter | None = None,
    rng: int | np.random.Generator | None = 0,
    num_trials: int = 5,
    execution: ExecutionPlan | None = None,
    store=None,
) -> float:
    """Median uplink signature SNR (dB) at one distance (Fig. 15 point)."""
    ensure_positive("tag_range_m", tag_range_m)
    spec = SeedSpec.from_rng(rng)
    work_unit = {
        "radar_config": radar_config,
        "modulator": modulator,
        "van_atta": van_atta,
        "tag_range_m": float(tag_range_m),
        "num_chirps": int(num_chirps),
        "chirp_duration_s": float(chirp_duration_s),
        "clutter": clutter,
        "num_trials": int(num_trials),
        "seed": spec,
    }
    work_fingerprint, record = _store_lookup(store, "uplink-snr", work_unit)
    if record is not None:
        return float(record["payload"]["snr_db"])
    payload = (
        radar_config, modulator, van_atta, tag_range_m, num_chirps,
        chirp_duration_s, clutter,
    )
    with obs.span("engine.uplink", trials=num_trials):
        snrs, _report = map_trials(_uplink_chunk, payload, num_trials, spec, execution)
    snr_db = float(np.median(snrs))
    if work_fingerprint is not None:
        _store_put(
            store,
            work_fingerprint,
            "uplink-snr",
            {"snr_db": snr_db},
            replay_entry="repro.sim.engine:_replay_uplink_snr",
            replay_payload=(
                radar_config, modulator, van_atta, tag_range_m, num_chirps,
                chirp_duration_s, clutter, num_trials, spec,
            ),
        )
    return snr_db


def _localization_chunk(payload, spec: SeedSpec, indices) -> "list[float]":
    """One chunk of localization frames -> absolute ranging error per trial."""
    (radar_config, alphabet, modulator, van_atta, tag_range_m,
     varying_slopes, num_chirps, clutter) = payload
    from repro.waveform.frame import FrameSchedule
    from repro.waveform.parameters import ChirpParameters

    env = clutter or Clutter()
    radar = FMCWRadar(radar_config)
    localizer = TagLocalizer(modulator.modulation_rate_hz)
    frequency = radar_config.center_frequency_hz
    on_rcs, off_rcs = van_atta.modulated_rcs_amplitudes(frequency)
    off_factor = float(np.sqrt(off_rcs / on_rcs))

    errors = []
    for index in indices:
        stream = spec.stream(index)
        if varying_slopes:
            symbols = stream.integers(0, alphabet.num_data_symbols, num_chirps)
            durations = [alphabet.data_symbol_duration_s(int(s)) for s in symbols]
        else:
            durations = [alphabet.header_duration_s] * num_chirps
        chirps = [
            ChirpParameters(
                start_frequency_hz=radar_config.start_frequency_hz,
                bandwidth_hz=alphabet.bandwidth_hz,
                duration_s=duration,
            )
            for duration in durations
        ]
        frame = FrameSchedule.from_chirps(chirps, alphabet.chirp_period_s)
        times = np.array([slot.start_time_s for slot in frame.slots])
        states = modulator.beacon_states(times)
        schedule = np.where(states, 1.0, off_factor)
        scatterers = [
            Scatterer(
                range_m=tag_range_m,
                rcs_m2=van_atta.rcs_m2(frequency),
                amplitude_schedule=schedule,
            )
        ] + [
            Scatterer(range_m=r.range_m, rcs_m2=r.rcs_m2, angle_deg=r.angle_deg)
            for r in env.reflectors
        ]
        if_frame = radar.receive_frame(frame, scatterers, rng=stream)
        result = localizer.localize(if_frame)
        errors.append(abs(result.range_m - tag_range_m))
    if _obs_runtime._enabled:
        obs.inc("engine.localization.frames", len(errors))
    return errors


def _localization_payload(errors: np.ndarray) -> "dict":
    """Cache payload for a localization run: summary + array digest.

    The digest (via :func:`repro.store.fingerprint.canonicalize`) folds
    the full per-frame array into the checksummed payload, so a replay
    recompute is compared bit-exactly against the cached *array*, not
    just its median.
    """
    from repro.store.fingerprint import canonicalize

    errors = np.asarray(errors, dtype=np.float64)
    return {
        "num_frames": int(errors.size),
        "median_abs_error_m": float(np.median(errors)) if errors.size else 0.0,
        "errors_digest": canonicalize(errors),
    }


def _replay_localization(payload) -> "dict":
    """Recompute a cached localization run (``repro cache verify`` hook)."""
    (radar_config, alphabet, modulator, van_atta, tag_range_m,
     varying_slopes, num_frames, num_chirps, clutter, spec) = payload
    errors = run_localization_trials(
        radar_config, alphabet, modulator, van_atta,
        tag_range_m=tag_range_m, varying_slopes=varying_slopes,
        num_frames=num_frames, num_chirps=num_chirps, clutter=clutter,
        rng=spec,
    )
    return _localization_payload(errors)


def run_localization_trials(
    radar_config: RadarConfig,
    alphabet: CsskAlphabet,
    modulator: UplinkModulator,
    van_atta: VanAttaArray,
    *,
    tag_range_m: float,
    varying_slopes: bool,
    num_frames: int = 10,
    num_chirps: int = 128,
    clutter: Clutter | None = None,
    rng: int | np.random.Generator | None = 0,
    execution: ExecutionPlan | None = None,
    store=None,
) -> np.ndarray:
    """Per-frame absolute ranging errors (m), fixed vs varying slopes.

    ``varying_slopes=True`` draws random CSSK data symbols for every chirp
    (communication ongoing); ``False`` repeats the header slope
    (sensing-only) — the two arms of Fig. 16.  With ``store`` the
    per-frame error array round-trips through the cache's ``.npz`` side
    file, bit-exactly (float64 preserved).
    """
    ensure_positive("tag_range_m", tag_range_m)
    spec = SeedSpec.from_rng(rng)
    work_unit = {
        "radar_config": radar_config,
        "alphabet": alphabet,
        "modulator": modulator,
        "van_atta": van_atta,
        "tag_range_m": float(tag_range_m),
        "varying_slopes": bool(varying_slopes),
        "num_frames": int(num_frames),
        "num_chirps": int(num_chirps),
        "clutter": clutter,
        "seed": spec,
    }
    work_fingerprint, record = _store_lookup(store, "localization-trials", work_unit)
    if record is not None:
        arrays = store.load_arrays(work_fingerprint)
        if arrays is not None and "errors" in arrays:
            return np.asarray(arrays["errors"], dtype=np.float64)
    payload = (
        radar_config, alphabet, modulator, van_atta, tag_range_m,
        varying_slopes, num_chirps, clutter,
    )
    with obs.span("engine.localization", frames=num_frames):
        errors, _report = map_trials(
            _localization_chunk, payload, num_frames, spec, execution
        )
    errors = np.asarray(errors, dtype=np.float64)
    if work_fingerprint is not None:
        _store_put(
            store,
            work_fingerprint,
            "localization-trials",
            _localization_payload(errors),
            arrays={"errors": errors},
            replay_entry="repro.sim.engine:_replay_localization",
            replay_payload=(
                radar_config, alphabet, modulator, van_atta, tag_range_m,
                varying_slopes, num_frames, num_chirps, clutter, spec,
            ),
        )
    return errors
