"""Section 3.2.2 / 6 — downlink data-rate design space (Eqs. 12-14).

Regenerates the paper's data-rate bookkeeping: the 0.1 Mbps example
(10-bit symbols, 100 us period), the 50-100 kbps practical envelope, and
how the rate trades against symbol size, chirp period, and the beat-
spacing feasibility limit set by the delay line and bandwidth.
"""

from pytest import approx as pytest_approx

from conftest import emit
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.errors import AlphabetError
from repro.sim.results import format_table


def explore_design_space():
    decoder = DecoderDesign.from_inches(45.0)
    rows = []
    feasible = {}
    for period_us in (100, 120, 200):
        for bits in (2, 5, 8, 10):
            try:
                alphabet = CsskAlphabet.design(
                    bandwidth_hz=1e9,
                    decoder=decoder,
                    symbol_bits=bits,
                    chirp_period_s=period_us * 1e-6,
                    min_chirp_duration_s=20e-6,
                    min_beat_spacing_hz=150.0,
                )
            except AlphabetError:
                rows.append([f"{period_us}", f"{bits}", "infeasible", "-", "-"])
                continue
            rate = alphabet.data_rate_bps()
            feasible[(period_us, bits)] = rate
            rows.append(
                [
                    f"{period_us}",
                    f"{bits}",
                    f"{rate / 1e3:.1f}",
                    f"{alphabet.num_slopes}",
                    f"{alphabet.beat_spacing_hz / 1e3:.2f}",
                ]
            )
    return rows, feasible


def test_data_rate_design_space(benchmark):
    rows, feasible = benchmark.pedantic(explore_design_space, rounds=1, iterations=1)
    table = format_table(
        ["period (us)", "symbol bits", "rate (kbps)", "slopes", "beat spacing (kHz)"],
        rows,
    )
    table += "\n(1 GHz bandwidth, 45-inch delay-line difference)"
    emit("data_rate_design_space", table)

    # Paper example: 10 bits at 100 us -> 0.1 Mbps.
    assert abs(feasible[(100, 10)] - 100e3) < 1e-3
    # Practical envelope: the 5-bit configurations land in 25-50 kbps,
    # and the paper's stated 50-100 kbps ceiling is reachable with 8-10
    # bit symbols at 100-120 us periods.
    assert 40e3 <= feasible[(120, 5)] <= 50e3
    assert any(rate >= 50e3 for rate in feasible.values())
    # Rate is linear in bits and inverse in period.
    assert feasible[(100, 10)] == pytest_approx(2 * feasible[(200, 10)])
    assert feasible[(100, 10)] == pytest_approx(2 * feasible[(100, 5)])
