"""Passive RF components: splitter, delay lines, switch, Van Atta array."""

import numpy as np
import pytest

from repro.components.delay_line import (
    CoaxialDelayLine,
    MeanderDelayLine,
    delay_difference_s,
)
from repro.components.rf_switch import SpdtSwitch, SwitchState
from repro.components.splitter import SplitterCombiner
from repro.components.van_atta import VanAttaArray
from repro.constants import SPEED_OF_LIGHT


class TestSplitter:
    def test_split_loss_is_3db_plus_excess(self):
        splitter = SplitterCombiner(excess_loss_db=1.0)
        assert splitter.split_loss_db == pytest.approx(4.0103, rel=1e-3)

    def test_split_halves_power_at_ideal(self):
        splitter = SplitterCombiner(excess_loss_db=0.0)
        a, b = splitter.split(np.array([1.0]))
        # Each branch carries half the power (amplitude 1/sqrt(2)).
        assert a[0] ** 2 == pytest.approx(0.5, rel=1e-3)
        np.testing.assert_array_equal(a, b)

    def test_combine_coherent_recovers_amplitude(self):
        splitter = SplitterCombiner(excess_loss_db=0.0)
        a, b = splitter.split(np.array([1.0 + 0j]))
        out = splitter.combine(a, b)
        # Ideal split then coherent combine restores the input.
        assert abs(out[0]) == pytest.approx(1.0, rel=1e-3)

    def test_combine_shape_mismatch(self):
        splitter = SplitterCombiner()
        with pytest.raises(ValueError):
            splitter.combine(np.ones(3), np.ones(4))

    def test_negative_excess_rejected(self):
        with pytest.raises(ValueError):
            SplitterCombiner(excess_loss_db=-1.0)


class TestCoaxialDelayLine:
    def test_delay_follows_eq10(self):
        line = CoaxialDelayLine(length_m=1.143, velocity_factor=0.7)  # 45 inches
        expected = 1.143 / (0.7 * SPEED_OF_LIGHT)
        assert line.group_delay_s() == pytest.approx(expected)

    def test_paper_example_delay_magnitude(self):
        # 45in at k=0.7 is ~5.4 ns.
        line = CoaxialDelayLine(length_m=45 * 0.0254)
        assert line.group_delay_s() == pytest.approx(5.44e-9, rel=0.01)

    def test_loss_grows_with_sqrt_frequency(self):
        line = CoaxialDelayLine(length_m=1.0)
        assert line.insertion_loss_db(4e9) == pytest.approx(2 * line.insertion_loss_db(1e9))

    def test_delay_difference(self):
        short = CoaxialDelayLine(length_m=0.5)
        long = CoaxialDelayLine(length_m=1.5)
        expected = 1.0 / (0.7 * SPEED_OF_LIGHT)
        assert delay_difference_s(long, short) == pytest.approx(expected)

    def test_rejects_bad_velocity_factor(self):
        with pytest.raises(Exception):
            CoaxialDelayLine(length_m=1.0, velocity_factor=1.5)


class TestMeanderDelayLine:
    def test_paper_defaults(self):
        line = MeanderDelayLine()
        assert line.nominal_delay_s == pytest.approx(1.26e-9)
        assert line.length_m == pytest.approx(0.064)

    def test_delay_ripple_bounded(self):
        line = MeanderDelayLine()
        freqs = np.linspace(8.5e9, 9.5e9, 101)
        delays = line.group_delay_s(freqs)
        assert np.all(np.abs(delays - line.nominal_delay_s) <= line.delay_ripple_fraction * line.nominal_delay_s + 1e-15)

    def test_insertion_loss_rises_with_frequency(self):
        line = MeanderDelayLine()
        assert line.insertion_loss_db(9.5e9) > line.insertion_loss_db(8.5e9)

    def test_s11_stays_matched_in_band(self):
        line = MeanderDelayLine()
        freqs = np.linspace(8.5e9, 9.5e9, 201)
        s11 = line.s11_db(freqs)
        assert np.all(s11 <= -10.0)

    def test_s11_has_resonant_dips(self):
        line = MeanderDelayLine()
        freqs = np.linspace(8.5e9, 9.5e9, 801)
        s11 = line.s11_db(freqs)
        assert s11.min() < line.s11_floor_db - 8.0

    def test_effective_velocity_factor_below_substrate_speed(self):
        line = MeanderDelayLine()
        # The meander makes the line electrically much longer than straight.
        assert line.effective_velocity_factor < 1 / np.sqrt(line.dielectric_constant)


class TestSpdtSwitch:
    def test_reflection_amplitudes_ordered(self):
        switch = SpdtSwitch()
        on = switch.reflection_amplitude(SwitchState.REFLECTIVE)
        off = switch.reflection_amplitude(SwitchState.ABSORPTIVE)
        assert on > off
        assert switch.modulation_contrast() == pytest.approx(on - off)

    def test_isolation_sets_absorptive_leakage(self):
        switch = SpdtSwitch(isolation_db=40.0)
        assert switch.reflection_amplitude(SwitchState.ABSORPTIVE) == pytest.approx(0.01)

    def test_max_modulation_rate(self):
        switch = SpdtSwitch(switching_time_s=20e-9)
        assert switch.max_modulation_rate_hz == pytest.approx(5e6)

    def test_square_wave_duty(self):
        switch = SpdtSwitch()
        states = switch.square_wave_states(1e3, 10e-3, 1e-5)
        duty = states.mean()
        assert duty == pytest.approx(0.5, abs=0.02)

    def test_square_wave_rate_limit(self):
        switch = SpdtSwitch(switching_time_s=1e-3)
        with pytest.raises(ValueError):
            switch.square_wave_states(1e3, 1e-2, 1e-5)

    def test_initial_state_inverts(self):
        switch = SpdtSwitch()
        a = switch.square_wave_states(1e3, 2e-3, 1e-5)
        b = switch.square_wave_states(1e3, 2e-3, 1e-5, initial_state=SwitchState.REFLECTIVE)
        np.testing.assert_array_equal(a, ~b)


class TestVanAtta:
    def test_peak_rcs_scales_with_n_squared(self):
        two = VanAttaArray(num_elements=2)
        four = VanAttaArray(num_elements=4)
        ratio = four.rcs_m2(9e9) / two.rcs_m2(9e9)
        assert ratio == pytest.approx(4.0, rel=1e-6)

    def test_rcs_larger_at_lower_frequency(self):
        array = VanAttaArray()
        assert array.rcs_m2(9e9) > array.rcs_m2(24e9)

    def test_absorptive_rcs_much_smaller(self):
        array = VanAttaArray()
        on, off = array.modulated_rcs_amplitudes(9e9)
        assert off < on / 100

    def test_rcs_rolls_off_with_angle(self):
        array = VanAttaArray()
        assert array.rcs_m2(9e9, incidence_deg=30.0) < array.rcs_m2(9e9)

    def test_out_of_fov_collapse(self):
        array = VanAttaArray(retro_field_of_view_deg=45.0)
        out = array.rcs_m2(9e9, incidence_deg=60.0)
        assert out == pytest.approx(0.01 * array.rcs_m2(9e9) / np.cos(0.0) ** 2, rel=0.05)

    def test_odd_elements_rejected(self):
        with pytest.raises(ValueError):
            VanAttaArray(num_elements=3)
