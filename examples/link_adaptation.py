#!/usr/bin/env python3
"""Link adaptation: using the downlink to retune the tag as conditions change.

This is the capability the paper argues downlink access unlocks ("adapting
the tag modulation scheme or data rate to link conditions, or minimizing
interference"): a read-only tag is stuck with its factory settings, but a
BiScatter tag can be commanded to a more robust configuration when the
link degrades.

The script sweeps the tag outward, measures the symbol-level downlink BER
at each range for every symbol size, and plays a simple adaptation policy:
keep the highest-rate alphabet whose measured BER stays under 1e-3.
The policy's chosen rate falls back gracefully with distance — the
rate/robustness trade-off of Figs. 12-13 turned into a control loop.

Run:  python examples/link_adaptation.py
"""

from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.errors import AlphabetError
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials

TARGET_BER = 1e-3
SYMBOL_CHOICES = [7, 6, 5, 4, 3, 2]  # highest rate first
DISTANCES_M = [1.0, 3.0, 5.0, 7.0, 9.0, 11.0]


def build_alphabets():
    decoder = DecoderDesign.from_inches(45.0)
    alphabets = {}
    for bits in SYMBOL_CHOICES:
        try:
            alphabets[bits] = CsskAlphabet.design(
                bandwidth_hz=1e9,
                decoder=decoder,
                symbol_bits=bits,
                chirp_period_s=120e-6,
                min_chirp_duration_s=20e-6,
            )
        except AlphabetError:
            pass
    return alphabets


def measure_ber(alphabet, distance_m, seed):
    config = DownlinkTrialConfig(
        radar_config=XBAND_9GHZ,
        alphabet=alphabet,
        distance_m=distance_m,
        num_frames=40,
        payload_symbols_per_frame=16,
    )
    return run_downlink_trials(config, rng=seed).ber


def main() -> None:
    print("Downlink link adaptation")
    print("========================")
    alphabets = build_alphabets()
    print(f"candidate symbol sizes: {sorted(alphabets)} bits "
          f"(rates {', '.join(f'{alphabets[b].data_rate_bps() / 1e3:.0f}' for b in sorted(alphabets))} kbps)")
    print(f"policy: highest rate with BER < {TARGET_BER:.0e}\n")

    chosen_rates = []
    for distance in DISTANCES_M:
        chosen = None
        measurements = {}
        for bits in SYMBOL_CHOICES:
            if bits not in alphabets:
                continue
            ber = measure_ber(alphabets[bits], distance, seed=int(distance * 10) + bits)
            measurements[bits] = ber
            if ber < TARGET_BER:
                chosen = bits
                break
        if chosen is None:
            chosen = min(alphabets)  # most robust fallback
        rate_kbps = alphabets[chosen].data_rate_bps() / 1e3
        chosen_rates.append(rate_kbps)
        measured = ", ".join(
            f"{bits}b:{ber:.1e}" for bits, ber in sorted(measurements.items(), reverse=True)
        )
        print(f"d = {distance:4.1f} m -> use {chosen}-bit symbols "
              f"({rate_kbps:.0f} kbps)   [probed: {measured}]")

    # The adapted rate must be non-increasing as the link stretches.
    assert all(a >= b for a, b in zip(chosen_rates, chosen_rates[1:])), chosen_rates
    print("\nOK: the radar can retune the tag's data rate as the link degrades —"
          "\nexactly the write-access capability the paper motivates.")


if __name__ == "__main__":
    main()
