"""ImpairmentSpec: a composable bundle of faults plus the CLI grammar.

A spec is an ordered tuple of :class:`~repro.impair.models.Impairment`
instances.  Order matters and is part of the identity: impairments are
applied (and draw RNG) in tuple order, so two specs with the same models
in a different order are different experiments — and fingerprint as such.

The CLI grammar (``--impair``) is ``name[:severity][,name[:severity]…]``::

    interference:0.5,drift:0.2,clip,loss:0.3,impulse

Names: ``interference``, ``drift`` (clock/CFO), ``clip`` (ADC
saturation), ``loss`` (dropped/truncated chirps), ``impulse``
(non-Gaussian noise).  Omitted severity means 1.0 (the model's configured
maximum).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ImpairmentError
from repro.impair.models import (
    AdcSaturation,
    ChirpLoss,
    ClockDrift,
    Impairment,
    ImpulsiveNoise,
    InterferenceBurst,
)

#: CLI name -> model factory (default parameters, severity applied after).
IMPAIRMENT_NAMES = {
    "interference": InterferenceBurst,
    "drift": ClockDrift,
    "clip": AdcSaturation,
    "loss": ChirpLoss,
    "impulse": ImpulsiveNoise,
}


@dataclass(frozen=True)
class ImpairmentSpec:
    """An ordered, composable set of signal-chain impairments."""

    impairments: "tuple[Impairment, ...]" = ()

    def __post_init__(self) -> None:
        for impairment in self.impairments:
            if not isinstance(impairment, Impairment):
                raise ImpairmentError(
                    f"spec entries must be Impairment instances, got "
                    f"{type(impairment).__name__}"
                )

    @property
    def active(self) -> bool:
        """Whether any member impairment perturbs anything."""
        return any(impairment.active for impairment in self.impairments)

    def at_severity(self, severity: float) -> "ImpairmentSpec":
        """Scale every member's severity by ``severity`` (sweep knob).

        Each member's configured severity acts as its relative weight:
        ``at_severity(0.5)`` on a member at 0.8 yields 0.4.
        """
        if not 0.0 <= severity <= 1.0:
            raise ImpairmentError(f"severity must be in [0, 1], got {severity!r}")
        return ImpairmentSpec(
            tuple(
                impairment.with_severity(impairment.severity * severity)
                for impairment in self.impairments
            )
        )

    def fingerprint(self) -> str:
        """Content hash of the whole spec (order-sensitive)."""
        from repro.store.fingerprint import fingerprint

        return fingerprint("impairment-spec", self)

    def clock_offset_ppm(self) -> float:
        """Net tag clock drift contributed by :class:`ClockDrift` members."""
        return sum(
            impairment.offset_ppm
            for impairment in self.impairments
            if isinstance(impairment, ClockDrift) and impairment.active
        )

    # ------------------------------------------------------------- injection

    def apply_to_capture(self, capture, *, rng: np.random.Generator):
        """Impair a :class:`repro.tag.frontend.TagCapture` (tag video path).

        Identity — same object back, zero RNG draws — when inactive.
        """
        if not self.active:
            return capture
        from repro.impair.inject import impair_tag_capture

        return impair_tag_capture(capture, self, rng=rng)

    def apply_to_if_frame(self, if_frame, *, rng: np.random.Generator):
        """Impair a :class:`repro.radar.fmcw.IFFrame` (radar IF path).

        Identity — same object back, zero RNG draws — when inactive.
        """
        if not self.active:
            return if_frame
        from repro.impair.inject import impair_if_frame

        return impair_if_frame(if_frame, self, rng=rng)

    # ------------------------------------------------------------- parsing

    @classmethod
    def parse(cls, text: "str | None") -> "ImpairmentSpec":
        """Parse the CLI grammar; ``None``/empty means no impairments."""
        if text is None or not text.strip():
            return cls()
        impairments = []
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            name, _, severity_text = token.partition(":")
            name = name.strip().lower()
            factory = IMPAIRMENT_NAMES.get(name)
            if factory is None:
                known = ", ".join(sorted(IMPAIRMENT_NAMES))
                raise ImpairmentError(
                    f"unknown impairment {name!r} (known: {known})"
                )
            model = factory()
            if severity_text:
                try:
                    severity = float(severity_text)
                except ValueError:
                    raise ImpairmentError(
                        f"bad severity {severity_text!r} for impairment {name!r}"
                    ) from None
                if not 0.0 <= severity <= 1.0:
                    raise ImpairmentError(
                        f"severity for {name!r} must be in [0, 1], got {severity}"
                    )
                model = replace(model, severity=severity)
            impairments.append(model)
        return cls(tuple(impairments))

    def describe(self) -> str:
        """Round-trippable ``name:severity`` summary (CLI/report text)."""
        if not self.impairments:
            return "(none)"
        by_type = {factory: name for name, factory in IMPAIRMENT_NAMES.items()}
        parts = []
        for impairment in self.impairments:
            name = by_type.get(type(impairment), type(impairment).__name__)
            parts.append(f"{name}:{impairment.severity:g}")
        return ",".join(parts)
