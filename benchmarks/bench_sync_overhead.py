"""Divergence D4 quantified — over-the-air sync cost vs genie alignment.

EXPERIMENTS.md documents that full over-the-air synchronization (period
estimation + preamble matched search) costs extra BER at the extreme-range
margin relative to genie-aligned symbol decoding.  This bench measures
both arms across distance so the gap is a tracked number, not an
anecdote.
"""


from conftest import emit
from repro.radar.config import XBAND_9GHZ
from repro.sim.engine import DownlinkTrialConfig, run_downlink_trials
from repro.sim.results import format_table

DISTANCES_M = [2.0, 5.0, 7.0, 8.0]
FRAMES_PER_POINT = 40


def run_comparison(paper_alphabet):
    rows = []
    for distance in DISTANCES_M:
        bers = {}
        for full_sync in (False, True):
            config = DownlinkTrialConfig(
                radar_config=XBAND_9GHZ,
                alphabet=paper_alphabet,
                distance_m=distance,
                num_frames=FRAMES_PER_POINT,
                payload_symbols_per_frame=16,
                full_sync=full_sync,
            )
            point = run_downlink_trials(config, rng=int(distance * 10))
            bers[full_sync] = (point.ber, point.extra["sync_failures"])
        rows.append((distance, bers))
    return rows


def test_sync_overhead(benchmark, paper_alphabet):
    rows = benchmark.pedantic(
        run_comparison, args=(paper_alphabet,), rounds=1, iterations=1
    )
    table = format_table(
        ["distance (m)", "genie-aligned BER", "over-the-air BER", "sync failures"],
        [
            [
                f"{distance:.1f}",
                f"{bers[False][0]:.2e}",
                f"{bers[True][0]:.2e}",
                str(bers[True][1]),
            ]
            for distance, bers in rows
        ],
    )
    emit("sync_overhead", table)

    for distance, bers in rows:
        aligned_ber, _ = bers[False]
        ota_ber, sync_failures = bers[True]
        if distance <= 5.0:
            # In the practical envelope, over-the-air sync is free.
            assert ota_ber == aligned_ber == 0.0
            assert sync_failures == 0
        else:
            # At the margin the OTA arm may pay extra errors, but it must
            # remain a working link (not a collapse to coin-flipping).
            assert ota_ber < 0.2
