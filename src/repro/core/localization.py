"""Tag localization (paper Section 3.3, Fig. 16).

BiScatter localizes the tag by its modulation signature — not raw power —
so strong static clutter cannot steal the detection.  The coarse estimate
comes from the signature matched filter on the IF-corrected range grid;
a zoom-DFT refinement over the background-subtracted raw IF samples then
reaches centimeter accuracy, the same super-resolution recipe Millimetro
uses, here made slope-agnostic by the IF correction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.radar.detection import TagDetection, detect_modulated_tag
from repro.radar.fmcw import IFFrame
from repro.radar.if_correction import IFCorrectionResult, align_profiles_to_common_grid
from repro.radar.range_processing import estimate_range_zoom
from repro.utils.validation import ensure_positive


@dataclass
class LocalizationResult:
    """Output of one localization pass."""

    range_m: float
    coarse_range_m: float
    detection: TagDetection
    num_chirps_used: int


class TagLocalizer:
    """Centimeter-level tag ranging from modulated backscatter.

    Parameters
    ----------
    modulation_rate_hz:
        The tag's assigned switching rate (its signature).
    min_range_m:
        Closest credible tag range (excludes TX leakage around 0 m).
    zoom_width_m / zoom_points:
        Extent and density of the refinement grid around the coarse peak.
    max_refine_chirps:
        Cap on per-chirp zoom evaluations (runtime control).
    """

    def __init__(
        self,
        modulation_rate_hz: "float | Sequence[float]",
        *,
        min_range_m: float = 0.3,
        zoom_width_m: float = 0.4,
        zoom_points: int = 161,
        max_refine_chirps: int = 64,
        coherence_chirps: int | None = None,
    ) -> None:
        rates = (
            [float(modulation_rate_hz)]
            if np.isscalar(modulation_rate_hz)
            else [float(r) for r in modulation_rate_hz]
        )
        for rate in rates:
            ensure_positive("modulation_rate_hz", rate)
        self.modulation_rate_hz = rates if len(rates) > 1 else rates[0]
        self.min_range_m = min_range_m
        self.zoom_width_m = zoom_width_m
        self.zoom_points = zoom_points
        self.max_refine_chirps = max_refine_chirps
        self.coherence_chirps = coherence_chirps

    def coarse_detect(
        self, if_frame: IFFrame, *, correction: IFCorrectionResult | None = None
    ) -> tuple[TagDetection, IFCorrectionResult]:
        """Signature-based coarse detection on the common range grid."""
        if correction is None:
            correction = align_profiles_to_common_grid(if_frame)
        period = if_frame.frame.uniform_period_s()
        detection = detect_modulated_tag(
            correction.aligned,
            correction.range_grid_m,
            period,
            self.modulation_rate_hz,
            min_range_m=self.min_range_m,
            coherence_chirps=self.coherence_chirps,
        )
        return detection, correction

    def localize(
        self,
        if_frame: IFFrame,
        *,
        correction: IFCorrectionResult | None = None,
        refine: bool = True,
    ) -> LocalizationResult:
        """Locate the tag; optionally refine with per-chirp zoom DFTs.

        Refinement subtracts each chirp's static background (the mean IF
        samples over chirps *of the same slope*, the slope-safe version of
        the paper's first-chirp subtraction), evaluates a fine DTFT grid
        around the coarse range per chirp, and averages the per-chirp
        estimates weighted by their residual energy.
        """
        detection, correction = self.coarse_detect(if_frame, correction=correction)
        if not refine:
            return LocalizationResult(
                range_m=detection.range_m,
                coarse_range_m=detection.range_m,
                detection=detection,
                num_chirps_used=0,
            )

        # Group chirps by (slope, length) so backgrounds subtract cleanly.
        groups: dict[tuple[float, int], list[int]] = {}
        for index, (slot, samples) in enumerate(
            zip(if_frame.frame.slots, if_frame.chirp_samples)
        ):
            key = (round(slot.chirp.slope_hz_per_s, 3), samples.size)
            groups.setdefault(key, []).append(index)

        estimates: list[float] = []
        weights: list[float] = []
        used = 0
        for indices in groups.values():
            if len(indices) < 2:
                continue  # cannot form a background from a single chirp
            stack = np.vstack([if_frame.chirp_samples[i] for i in indices])
            background = stack.mean(axis=0)
            residual = stack - background
            energies = np.sum(np.abs(residual) ** 2, axis=1)
            order = np.argsort(energies)[::-1]
            budget = max(self.max_refine_chirps - used, 0)
            for rank in order[: min(len(indices) // 2, budget)]:
                chirp = if_frame.frame.slots[indices[rank]].chirp
                estimate = estimate_range_zoom(
                    residual[rank],
                    chirp,
                    if_frame.sample_rate_hz,
                    coarse_range_m=detection.range_m,
                    zoom_width_m=self.zoom_width_m,
                    zoom_points=self.zoom_points,
                )
                estimates.append(estimate)
                weights.append(float(energies[rank]))
                used += 1
            if used >= self.max_refine_chirps:
                break

        if not estimates:
            # Degenerate frame (all-unique slopes): fall back to coarse.
            return LocalizationResult(
                range_m=detection.range_m,
                coarse_range_m=detection.range_m,
                detection=detection,
                num_chirps_used=0,
            )
        refined = float(np.average(estimates, weights=weights))
        return LocalizationResult(
            range_m=refined,
            coarse_range_m=detection.range_m,
            detection=detection,
            num_chirps_used=used,
        )

    def ranging_error_m(self, if_frame: IFFrame, true_range_m: float) -> float:
        """Absolute ranging error against ground truth (bench metric)."""
        ensure_positive("true_range_m", true_range_m)
        result = self.localize(if_frame)
        return abs(result.range_m - true_range_m)
