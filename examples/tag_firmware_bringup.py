#!/usr/bin/env python3
"""Tag firmware bring-up: calibration, then MCU-style streaming decode.

Walks the lifecycle of a freshly manufactured tag, the way real firmware
would experience it:

1. **As-built error** — the delay line's dielectric differs from the
   datasheet (k = 0.66 vs the nominal 0.70), so the factory decision table
   mis-maps every beat frequency and the downlink is broken.
2. **One-time calibration** (paper §3.2.1) — the tag listens to known
   preamble slopes at close range, least-squares fits its true delay, and
   rebuilds the decision table.
3. **Streaming operation** — the decoder then runs as a bounded-memory
   state machine (IDLE -> PERIOD_LOCK -> SYNC_SEARCH -> PAYLOAD),
   consuming ADC chunks the size an MCU DMA buffer would hand it.

Run:  python examples/tag_firmware_bringup.py
"""

import numpy as np

from repro.channel.link_budget import DownlinkBudget
from repro.core.ber import bit_error_rate, random_bits
from repro.core.cssk import CsskAlphabet, DecoderDesign
from repro.core.downlink import DownlinkEncoder
from repro.core.packet import DownlinkPacket
from repro.radar.config import XBAND_9GHZ
from repro.tag.calibration import (
    estimate_delta_t,
    measure_calibration_beats,
    recalibrate_alphabet,
)
from repro.tag.decoder_dsp import TagDecoder
from repro.tag.frontend import AnalyticTagFrontend
from repro.tag.streaming import StreamingTagDecoder

NOMINAL_K = 0.70
AS_BUILT_K = 0.66


def main() -> None:
    print("Tag firmware bring-up")
    print("=====================")
    nominal = DecoderDesign.from_inches(45.0, velocity_factor=NOMINAL_K)
    as_built = DecoderDesign.from_inches(45.0, velocity_factor=AS_BUILT_K)
    alphabet = CsskAlphabet.design(
        bandwidth_hz=1e9, decoder=nominal, symbol_bits=5, chirp_period_s=120e-6
    )
    encoder = DownlinkEncoder(radar_config=XBAND_9GHZ, alphabet=alphabet)
    budget = DownlinkBudget(
        tx_power_dbm=XBAND_9GHZ.tx_power_dbm,
        radar_antenna=XBAND_9GHZ.antenna,
        frequency_hz=XBAND_9GHZ.center_frequency_hz,
    )
    # The physical tag has the as-built delay, whatever the datasheet says.
    frontend = AnalyticTagFrontend(budget=budget, delta_t_s=as_built.delta_t_s)

    def measure_ber(decode_alphabet, trials=6):
        decoder = TagDecoder(decode_alphabet)
        errors = total = 0
        for trial in range(trials):
            bits = random_bits(5 * 16, rng=trial)
            frame = encoder.encode_packet(DownlinkPacket.from_bits(alphabet, bits))
            capture = frontend.capture(frame, 3.0, rng=50 + trial)
            decoded = decoder.decode_aligned(capture, num_payload_symbols=16)
            errors += int(np.sum(bits[: decoded.bits.size] != decoded.bits))
            errors += bits.size - decoded.bits.size
            total += bits.size
        return errors / total

    print(f"\n[1] factory table (k = {NOMINAL_K}, as-built k = {AS_BUILT_K}):")
    broken_ber = measure_ber(alphabet)
    print(f"    downlink BER at 3 m: {broken_ber:.1%}  <- unusable")

    print("\n[2] one-time calibration at 0.5 m:")
    calibration_frame = encoder.sensing_frame(8)
    capture = frontend.capture(calibration_frame, 0.5, rng=7)
    beats = measure_calibration_beats(capture, calibration_frame)
    calibration = estimate_delta_t(beats, calibration_frame, nominal.delta_t_s)
    print(f"    measured dT = {calibration.estimated_delta_t_s * 1e9:.3f} ns "
          f"(nominal {nominal.delta_t_s * 1e9:.3f} ns, "
          f"scale error {calibration.scale_error:.4f})")
    corrected = recalibrate_alphabet(alphabet, calibration)
    fixed_ber = measure_ber(corrected)
    print(f"    downlink BER after calibration: {fixed_ber:.2%}")
    assert fixed_ber < 1e-3 < broken_ber

    print("\n[3] streaming operation (256-sample DMA chunks):")
    bits = random_bits(5 * 16, rng=99)
    packet = DownlinkPacket.from_bits(alphabet, bits)
    frame = encoder.encode_packet(packet)
    on_air = frontend.capture(frame, 3.0, rng=100)
    rng = np.random.default_rng(101)
    stream = np.concatenate(
        [rng.normal(0, 1e-7, 900), on_air.samples, rng.normal(0, 1e-7, 600)]
    )
    decoder = StreamingTagDecoder(corrected, 1e6, payload_symbols=16)
    for start in range(0, stream.size, 256):
        decoder.process(stream[start : start + 256])
    decoder.finish()
    recovered = decoder.decoded_bits()[: bits.size]
    print(f"    packets completed: {decoder.stats.packets_completed}")
    print(f"    max buffer: {decoder.stats.max_buffer_samples} samples "
          f"(bound {decoder.buffer_bound_samples}; "
          f"~{decoder.buffer_bound_samples * 2 / 1024:.1f} KiB of int16 RAM)")
    print(f"    payload BER: {bit_error_rate(bits, recovered):.0%}")
    assert bit_error_rate(bits, recovered) == 0.0
    print("\nOK: a mis-built tag was calibrated once and now decodes "
          "packets in bounded memory.")


if __name__ == "__main__":
    main()
