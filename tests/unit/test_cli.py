"""Command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.range_m == 3.0
        assert args.command == "demo"


class TestDesignCommand:
    def test_prints_alphabet(self):
        code, text = run_cli(
            ["design", "--bandwidth-ghz", "1.0", "--delta-l-inches", "45",
             "--symbol-bits", "5"]
        )
        assert code == 0
        assert "slopes: 34" in text
        assert "41.7 kbps" in text

    def test_infeasible_design_exits_nonzero(self):
        code, text = run_cli(
            ["design", "--symbol-bits", "5", "--period-us", "25"]
        )
        assert code == 1
        assert "infeasible" in text


class TestPowerCommand:
    def test_prints_both_designs(self):
        code, text = run_cli(["power"])
        assert code == 0
        assert "COTS prototype" in text
        assert "projected IC" in text
        assert "48.00 mW" in text


class TestBerCommand:
    def test_runs_small_monte_carlo(self):
        code, text = run_cli(
            ["ber", "--distance", "2", "--frames", "3", "--seed", "1"]
        )
        assert code == 0
        assert "BER:" in text
        assert "video SNR" in text

    def test_snr_override(self):
        code, text = run_cli(
            ["ber", "--snr-db", "20", "--frames", "3"]
        )
        assert code == 0
        assert "BER:" in text


class TestLocalizeCommand:
    def test_fixed_slopes(self):
        code, text = run_cli(
            ["localize", "--range", "2.5", "--frames", "2", "--seed", "3"]
        )
        assert code == 0
        assert "fixed slope" in text
        assert "median error" in text

    def test_varying_slopes(self):
        code, text = run_cli(
            ["localize", "--range", "2.5", "--frames", "2", "--varying-slopes"]
        )
        assert code == 0
        assert "communicating" in text


class TestDemoCommand:
    def test_full_exchange(self):
        code, text = run_cli(["demo", "--range", "2.0", "--seed", "4"])
        assert code == 0
        assert "downlink BER: 0.000" in text
        assert "uplink BER: 0.000" in text
        assert "localized" in text


class TestSoakCommand:
    def test_healthy_soak_exits_zero(self):
        code, text = run_cli(["soak", "--frames", "2", "--range", "2.5", "--seed", "3"])
        assert code == 0
        assert "healthy (default targets): yes" in text
        assert "frames: 2" in text
